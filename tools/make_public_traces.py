"""Generate the committed public-trace fixtures and their fetch manifest.

Captures the committed branch streams of two real algorithms running on
deterministic inputs and serialises them in the two external formats
the adapter layer supports:

* ``tests/data/traces/quicksort.champsim.gz`` — iterative quicksort
  over an LCG-shuffled array, written as a gzip-wrapped ChampSim
  instruction trace (with loads and load-dependent compares);
* ``tests/data/traces/dijkstra.bt9`` — Dijkstra shortest paths over a
  synthetic sparse graph, written as a BT9 text trace.

Also rewrites ``traces/public-traces.json`` with the fixtures' SHA-256
checksums so ``repro trace fetch`` verifies them end to end.  Output is
byte-stable: fixed seeds, no clocks, gzip with ``mtime=0``.

Run from the repository root::

    PYTHONPATH=src python tools/make_public_traces.py
"""

from __future__ import annotations

import gzip
import hashlib
import json
from pathlib import Path

from repro.trace.adapters import write_bt9, write_champsim
from repro.trace.records import BranchKind, BranchRecord

_FIXTURE_DIR = Path("tests/data/traces")
_MANIFEST_PATH = Path("traces/public-traces.json")

_CODE_BASE = 0x4000_0000
_DATA_BASE = 0x1000_0000
_SITE_STRIDE = 0x40


class _Capture:
    """Records the committed branch stream of an instrumented algorithm.

    Each static branch site gets a stable pc and taken target derived
    from its registration order, and a fixed non-branch gap — the shape
    real compiled code would have, held deterministic.
    """

    def __init__(self) -> None:
        self.records: list[BranchRecord] = []
        self._sites: dict[str, int] = {}

    def _pc(self, site: str) -> int:
        index = self._sites.setdefault(site, len(self._sites))
        return _CODE_BASE + index * _SITE_STRIDE

    def cond(
        self,
        site: str,
        taken: bool,
        gap: int = 3,
        load_index: int | None = None,
        depends: bool = False,
    ) -> bool:
        """Record one conditional outcome; returns ``taken`` for use inline."""
        pc = self._pc(site)
        self.records.append(
            BranchRecord(
                pc=pc,
                target=pc + 0x20,
                taken=taken,
                kind=BranchKind.COND,
                inst_gap=gap,
                load_addr=(
                    _DATA_BASE + load_index * 8 if load_index is not None else 0
                ),
                depends_on_load=depends and load_index is not None,
            )
        )
        return taken

    def flow(self, site: str, kind: BranchKind, gap: int = 2) -> None:
        """Record an always-taken control transfer (call/ret/jump)."""
        pc = self._pc(site)
        self.records.append(
            BranchRecord(
                pc=pc, target=pc + 0x100, taken=True, kind=kind, inst_gap=gap
            )
        )


def _lcg_array(count: int, seed: int = 0x2545F491) -> list[int]:
    values: list[int] = []
    state = seed
    for _ in range(count):
        state = (state * 6364136223846793005 + 1442695040888963407) % 2**64
        values.append(state >> 33)
    return values


def capture_quicksort(count: int = 96) -> list[BranchRecord]:
    """Branch stream of an iterative Lomuto quicksort."""
    cap = _Capture()
    data = _lcg_array(count)
    stack = [(0, count - 1)]
    while cap.cond("qs.loop", bool(stack), gap=2):
        lo, hi = stack.pop()
        if not cap.cond("qs.span", lo < hi, gap=1):
            continue
        cap.flow("qs.call-partition", BranchKind.CALL)
        pivot = data[hi]
        i = lo - 1
        j = lo
        while cap.cond("qs.part-loop", j < hi, gap=2):
            if cap.cond(
                "qs.compare", data[j] <= pivot, gap=3, load_index=j, depends=True
            ):
                i += 1
                data[i], data[j] = data[j], data[i]
            j += 1
        data[i + 1], data[hi] = data[hi], data[i + 1]
        cap.flow("qs.ret-partition", BranchKind.RET)
        p = i + 1
        if cap.cond("qs.push-left", p - 1 > lo, gap=1):
            stack.append((lo, p - 1))
        if cap.cond("qs.push-right", p + 1 < hi, gap=1):
            stack.append((p + 1, hi))
    assert data == sorted(data)
    return cap.records


def _graph(nodes: int) -> list[list[tuple[int, int]]]:
    """Deterministic sparse weighted digraph (ring + chords)."""
    weights = _lcg_array(nodes * 4, seed=0x9E3779B9)
    adjacency: list[list[tuple[int, int]]] = [[] for _ in range(nodes)]
    for node in range(nodes):
        for k, stride in enumerate((1, 3, 7, 11)):
            neighbor = (node + stride) % nodes
            weight = weights[node * 4 + k] % 97 + 1
            adjacency[node].append((neighbor, weight))
    return adjacency


def capture_dijkstra(nodes: int = 48) -> list[BranchRecord]:
    """Branch stream of O(V^2) Dijkstra from node 0."""
    cap = _Capture()
    adjacency = _graph(nodes)
    infinity = 1 << 60
    dist = [infinity] * nodes
    dist[0] = 0
    visited = [False] * nodes
    for _ in range(nodes):
        cap.flow("dj.outer", BranchKind.UNCOND, gap=2)
        best = -1
        best_dist = infinity
        node = 0
        while cap.cond("dj.scan-loop", node < nodes, gap=1):
            if not cap.cond("dj.visited", visited[node], gap=2):
                if cap.cond("dj.closer", dist[node] < best_dist, gap=2):
                    best = node
                    best_dist = dist[node]
            node += 1
        if not cap.cond("dj.found", best >= 0, gap=1):
            break
        visited[best] = True
        for neighbor, weight in adjacency[best]:
            relaxed = dist[best] + weight
            if cap.cond("dj.relax", relaxed < dist[neighbor], gap=4):
                dist[neighbor] = relaxed
    cap.flow("dj.done", BranchKind.RET, gap=1)
    assert sum(1 for d in dist if d < infinity) == nodes
    return cap.records


def main() -> int:
    _FIXTURE_DIR.mkdir(parents=True, exist_ok=True)
    _MANIFEST_PATH.parent.mkdir(parents=True, exist_ok=True)

    quicksort = capture_quicksort()
    champsim_payload = gzip.compress(write_champsim(quicksort), mtime=0)
    champsim_path = _FIXTURE_DIR / "quicksort.champsim.gz"
    champsim_path.write_bytes(champsim_payload)

    dijkstra = capture_dijkstra()
    bt9_payload = write_bt9(dijkstra).encode("ascii")
    bt9_path = _FIXTURE_DIR / "dijkstra.bt9"
    bt9_path.write_bytes(bt9_payload)

    manifest = {
        "version": 1,
        "comment": (
            "Checksum-verified sources for 'repro trace fetch'. URLs are "
            "resolved relative to this file; the committed fixtures double "
            "as offline-fetchable public traces."
        ),
        "traces": {
            "public-quicksort": {
                "url": "../tests/data/traces/quicksort.champsim.gz",
                "sha256": hashlib.sha256(champsim_payload).hexdigest(),
                "format": "champsim",
                "description": (
                    f"iterative quicksort over 96 LCG-shuffled keys "
                    f"({len(quicksort)} branch records)"
                ),
            },
            "public-dijkstra": {
                "url": "../tests/data/traces/dijkstra.bt9",
                "sha256": hashlib.sha256(bt9_payload).hexdigest(),
                "format": "bt9",
                "description": (
                    f"O(V^2) Dijkstra over a 48-node ring+chord graph "
                    f"({len(dijkstra)} branch records)"
                ),
            },
        },
    }
    _MANIFEST_PATH.write_text(json.dumps(manifest, indent=2) + "\n")

    print(f"wrote {champsim_path} ({champsim_path.stat().st_size} bytes, "
          f"{len(quicksort)} records)")
    print(f"wrote {bt9_path} ({bt9_path.stat().st_size} bytes, "
          f"{len(dijkstra)} records)")
    print(f"wrote {_MANIFEST_PATH}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
