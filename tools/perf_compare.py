#!/usr/bin/env python3
"""Non-gating perf-trajectory comparison for CI.

Compares a freshly measured ``BENCH_perf.json`` against the committed
baseline and prints GitHub workflow-command warnings (``::warning::``)
for every metric that moved past its tolerance.  The exit code is
always 0: shared CI runners are far too noisy for wall-clock numbers
to gate a merge — the annotations exist so a human notices a trend,
not so a flaky runner blocks a PR.

Usage (the CI perf-smoke job)::

    python benchmarks/bench_perf.py --branches 4000 --repeats 1 \
        --out fresh_perf.json --no-sampling
    python tools/perf_compare.py BENCH_perf.json fresh_perf.json

Throughput and warm-sweep ratios are compared whenever both files
carry them; the sampled-vs-exact, batch-kernel and specialized-engine
sections are compared only when both files measured them (older
baselines predate them, and the smoke job can skip any with
``--no-sampling`` / ``--no-batch`` / ``--no-specialize``).  A section
present in only one file is skipped with a printed note — never a
KeyError.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Any

#: Fractional slowdown in branches/sec that earns an annotation.  Wide
#: on purpose: run-to-run noise on shared runners is routinely 15%.
THROUGHPUT_TOLERANCE = 0.25

#: Fractional loss of sampled-engine speedup that earns an annotation.
SPEEDUP_TOLERANCE = 0.25

#: Fractional loss of batch-kernel speedup that earns an annotation.
#: Wider than the others: the denominator is a scalar sweep measured
#: once, so the ratio inherits two runs' worth of runner noise.
BATCH_SPEEDUP_TOLERANCE = 0.40

#: Fractional loss of specialized-engine speedup that earns an
#: annotation.  The ratio is generic-vs-specialized wall-clock of the
#: same exact simulation, so it inherits two runs' worth of noise —
#: same width as the batch tolerance.
SPECIALIZE_SPEEDUP_TOLERANCE = 0.40

#: Absolute relative-error ceilings for the sampled estimates — these
#: are accuracy claims, not timings, so they are compared against the
#: documented bounds rather than against the baseline's exact values.
MPKI_ERROR_BOUND = 0.02
IPC_ERROR_BOUND = 0.01


def _load(path: Path) -> dict[str, Any] | None:
    try:
        payload = json.loads(path.read_text())
    except (OSError, ValueError) as exc:
        print(f"::warning::perf-compare: cannot read {path}: {exc}")
        return None
    if not isinstance(payload, dict):
        print(f"::warning::perf-compare: {path} is not a perf payload")
        return None
    return payload


def _warn(message: str) -> None:
    print(f"::warning::{message}")


def _sections_present(
    name: str, baseline: dict[str, Any], fresh: dict[str, Any]
) -> bool:
    """Whether both payloads carry section ``name`` as a mapping.

    Absence is normal (older baselines predate newer sections, smoke
    jobs skip slow ones), so it is reported as a plain skip note rather
    than a warning annotation.
    """
    base_section = baseline.get(name)
    fresh_section = fresh.get(name)
    if isinstance(base_section, dict) and isinstance(fresh_section, dict):
        return True
    missing = []
    if not isinstance(base_section, dict):
        missing.append("baseline")
    if not isinstance(fresh_section, dict):
        missing.append("fresh")
    print(
        f"perf-compare: skipping {name!r} section "
        f"(not measured in {' and '.join(missing)})"
    )
    return False


def _compare_throughput(
    baseline: dict[str, Any], fresh: dict[str, Any]
) -> int:
    warned = 0
    base_rows = baseline.get("throughput") or {}
    fresh_rows = fresh.get("throughput") or {}
    for system, base_row in base_rows.items():
        fresh_row = fresh_rows.get(system)
        if not isinstance(base_row, dict) or not isinstance(fresh_row, dict):
            continue
        base_bps = base_row.get("branches_per_s")
        fresh_bps = fresh_row.get("branches_per_s")
        if not base_bps or not fresh_bps:
            continue
        change = fresh_bps / base_bps - 1.0
        if change < -THROUGHPUT_TOLERANCE:
            _warn(
                f"perf-smoke: {system} throughput {fresh_bps:,.0f} branches/s "
                f"is {-change:.0%} below the committed baseline "
                f"({base_bps:,.0f}); noisy runners are expected, a trend "
                "across PRs is not"
            )
            warned += 1
    return warned


def _compare_sampling(baseline: dict[str, Any], fresh: dict[str, Any]) -> int:
    if not _sections_present("sampling", baseline, fresh):
        return 0
    base_section = baseline["sampling"]
    fresh_section = fresh["sampling"]
    warned = 0
    base_rows = base_section.get("systems") or {}
    fresh_rows = fresh_section.get("systems") or {}
    for system, fresh_row in fresh_rows.items():
        if not isinstance(fresh_row, dict):
            continue
        base_row = base_rows.get(system)
        speedup = fresh_row.get("speedup")
        base_speedup = (
            base_row.get("speedup") if isinstance(base_row, dict) else None
        )
        if speedup and base_speedup:
            change = speedup / base_speedup - 1.0
            if change < -SPEEDUP_TOLERANCE:
                _warn(
                    f"perf-smoke: {system} sampled-engine speedup {speedup:.2f}x "
                    f"is {-change:.0%} below the committed baseline "
                    f"({base_speedup:.2f}x)"
                )
                warned += 1
        mpki_err = fresh_row.get("mpki_rel_err")
        if mpki_err is not None and abs(mpki_err) > MPKI_ERROR_BOUND:
            _warn(
                f"perf-smoke: {system} sampled MPKI error {mpki_err:+.2%} "
                f"exceeds the documented ±{MPKI_ERROR_BOUND:.0%} bound"
            )
            warned += 1
        ipc_err = fresh_row.get("ipc_rel_err")
        if ipc_err is not None and abs(ipc_err) > IPC_ERROR_BOUND:
            _warn(
                f"perf-smoke: {system} sampled IPC error {ipc_err:+.2%} "
                f"exceeds the documented ±{IPC_ERROR_BOUND:.0%} bound"
            )
            warned += 1
    return warned


def _compare_batch(baseline: dict[str, Any], fresh: dict[str, Any]) -> int:
    if not _sections_present("batch", baseline, fresh):
        return 0
    base_section = baseline["batch"]
    fresh_section = fresh["batch"]
    warned = 0
    if fresh_section.get("mpki_identical") is False:
        _warn(
            "perf-smoke: batch kernel MPKI diverged from the exact scalar "
            "engine — this is a correctness regression, not noise"
        )
        warned += 1
    speedup = fresh_section.get("speedup")
    base_speedup = base_section.get("speedup")
    if speedup and base_speedup:
        change = speedup / base_speedup - 1.0
        if change < -BATCH_SPEEDUP_TOLERANCE:
            _warn(
                f"perf-smoke: batch-kernel speedup {speedup:.1f}x is "
                f"{-change:.0%} below the committed baseline "
                f"({base_speedup:.1f}x)"
            )
            warned += 1
    return warned


def _compare_specialize(baseline: dict[str, Any], fresh: dict[str, Any]) -> int:
    if not _sections_present("specialize", baseline, fresh):
        return 0
    base_rows = baseline["specialize"].get("systems") or {}
    fresh_rows = fresh["specialize"].get("systems") or {}
    warned = 0
    for system, fresh_row in fresh_rows.items():
        if not isinstance(fresh_row, dict):
            continue
        if fresh_row.get("stats_identical") is False:
            _warn(
                f"perf-smoke: {system} specialized-engine stats diverged from "
                "the generic exact engine — this is a correctness regression, "
                "not noise"
            )
            warned += 1
        base_row = base_rows.get(system)
        speedup = fresh_row.get("speedup")
        base_speedup = (
            base_row.get("speedup") if isinstance(base_row, dict) else None
        )
        if speedup and base_speedup:
            change = speedup / base_speedup - 1.0
            if change < -SPECIALIZE_SPEEDUP_TOLERANCE:
                _warn(
                    f"perf-smoke: {system} specialized-engine speedup "
                    f"{speedup:.2f}x is {-change:.0%} below the committed "
                    f"baseline ({base_speedup:.2f}x)"
                )
                warned += 1
    probe = fresh["specialize"].get("abort_probe")
    if isinstance(probe, dict) and probe.get("stats_identical") is False:
        _warn(
            "perf-smoke: guard-abort path diverged from the generic exact "
            "engine — the restore-and-finish-generic contract is broken"
        )
        warned += 1
    return warned


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", type=Path, help="committed BENCH_perf.json")
    parser.add_argument("fresh", type=Path, help="freshly measured payload")
    args = parser.parse_args(argv)
    baseline = _load(args.baseline)
    fresh = _load(args.fresh)
    if baseline is None or fresh is None:
        return 0
    warned = _compare_throughput(baseline, fresh)
    warned += _compare_sampling(baseline, fresh)
    warned += _compare_batch(baseline, fresh)
    warned += _compare_specialize(baseline, fresh)
    if warned:
        print(f"perf-compare: {warned} warning(s) — non-gating, exit 0")
    else:
        print("perf-compare: within tolerance of the committed baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
