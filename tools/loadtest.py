#!/usr/bin/env python3
"""Load-test harness for the ``repro serve`` job server.

Drives N concurrent clients against a running server (boot one first,
e.g. ``repro serve --port 8321``), in two phases:

* **cold** — every client submits the same small set of distinct
  requests concurrently, so identical in-flight submissions pile up and
  the server's dedup has to collapse them onto single executions;
* **warm** — the same requests again, which must be answered from the
  completed-job index or the persistent result cache with **zero** new
  simulations.

At the end it scrapes ``/metrics`` and prints a summary.  With
``--smoke`` (the CI mode) it additionally asserts the service-level
guarantees and exits non-zero if any fail:

    python tools/loadtest.py --base-url http://127.0.0.1:8321 --smoke

Stdlib only; safe to run against a production instance (requests are
tiny and the warm phase is cache-served).
"""

from __future__ import annotations

import argparse
import json
import sys
import threading
import time
import urllib.error
import urllib.request
from dataclasses import dataclass, field
from typing import Any


@dataclass
class ClientStats:
    """Per-thread tally, merged after the run."""

    submitted: int = 0
    deduplicated: int = 0
    rate_limited: int = 0
    errors: list[str] = field(default_factory=list)
    #: Seconds from submit to terminal state, per completed job.
    latencies: list[float] = field(default_factory=list)


def _post(
    base: str, payload: dict[str, Any], client_id: str, timeout: float
) -> tuple[int, dict[str, Any], dict[str, str]]:
    req = urllib.request.Request(
        f"{base}/v1/jobs",
        data=json.dumps(payload).encode("utf-8"),
        method="POST",
        headers={"Content-Type": "application/json", "X-Client-Id": client_id},
    )
    try:
        with urllib.request.urlopen(req, timeout=timeout) as resp:
            return resp.status, json.load(resp), dict(resp.headers)
    except urllib.error.HTTPError as exc:
        body = json.loads(exc.read().decode("utf-8") or "{}")
        return exc.code, body, dict(exc.headers)


def _get_json(base: str, path: str, timeout: float) -> dict[str, Any]:
    with urllib.request.urlopen(f"{base}{path}", timeout=timeout) as resp:
        payload = json.load(resp)
    if not isinstance(payload, dict):
        raise SystemExit(f"unexpected non-object response from {path}")
    return payload


def _run_client(
    base: str,
    client_id: str,
    payloads: list[dict[str, Any]],
    stats: ClientStats,
    timeout: float,
) -> None:
    for payload in payloads:
        t0 = time.monotonic()
        for _attempt in range(20):
            status, body, headers = _post(base, payload, client_id, timeout)
            if status != 429:
                break
            stats.rate_limited += 1
            time.sleep(min(5.0, float(headers.get("Retry-After", 1))))
        else:
            stats.errors.append(f"{client_id}: gave up after repeated 429s")
            continue
        if status not in (200, 202):
            stats.errors.append(f"{client_id}: HTTP {status}: {body.get('error')}")
            continue
        stats.submitted += 1
        if body.get("deduplicated"):
            stats.deduplicated += 1
        job_id = body["job"]["id"]
        deadline = time.monotonic() + timeout
        state = body["job"]["state"]
        while state not in ("done", "failed", "cancelled"):
            if time.monotonic() > deadline:
                stats.errors.append(f"{client_id}: job {job_id} timed out in {state}")
                break
            out = _get_json(base, f"/v1/jobs/{job_id}?wait=10", timeout + 15)
            state = out["job"]["state"]
        if state == "done":
            stats.latencies.append(time.monotonic() - t0)
        elif state in ("failed", "cancelled"):
            stats.errors.append(f"{client_id}: job {job_id} ended {state}")


def _parse_metrics(text: str) -> dict[str, float]:
    values: dict[str, float] = {}
    for line in text.splitlines():
        if line.startswith("#") or not line.strip():
            continue
        name, _, value = line.rpartition(" ")
        if "{" in name:
            continue
        try:
            values[name.strip()] = float(value)
        except ValueError:
            continue
    return values


def _scrape(base: str, timeout: float) -> dict[str, float]:
    with urllib.request.urlopen(f"{base}/metrics", timeout=timeout) as resp:
        return _parse_metrics(resp.read().decode("utf-8"))


def _phase(
    name: str,
    base: str,
    clients: int,
    payloads: list[dict[str, Any]],
    timeout: float,
) -> ClientStats:
    merged = ClientStats()
    per_client = [ClientStats() for _ in range(clients)]
    threads = [
        threading.Thread(
            target=_run_client,
            args=(base, f"loadtest-{i}", payloads, per_client[i], timeout),
            daemon=True,
        )
        for i in range(clients)
    ]
    t0 = time.monotonic()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    wall = time.monotonic() - t0
    for stats in per_client:
        merged.submitted += stats.submitted
        merged.deduplicated += stats.deduplicated
        merged.rate_limited += stats.rate_limited
        merged.errors.extend(stats.errors)
        merged.latencies.extend(stats.latencies)
    lat = sorted(merged.latencies)
    p50 = lat[len(lat) // 2] if lat else 0.0
    p95 = lat[int(len(lat) * 0.95)] if lat else 0.0
    print(
        f"{name:5s} {wall:6.1f}s  {merged.submitted} ok, "
        f"{merged.deduplicated} deduplicated, {merged.rate_limited} x 429, "
        f"{len(merged.errors)} errors, p50 {p50:.2f}s p95 {p95:.2f}s"
    )
    return merged


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=(__doc__ or "").splitlines()[0])
    parser.add_argument("--base-url", default="http://127.0.0.1:8321")
    parser.add_argument(
        "--clients", type=int, default=8, help="concurrent client threads"
    )
    parser.add_argument(
        "--distinct", type=int, default=3, help="distinct requests in the mix"
    )
    parser.add_argument(
        "--branches", type=int, default=2000, help="branches per simulation"
    )
    parser.add_argument(
        "--workload", default="hpc-fft", help="workload every request targets"
    )
    parser.add_argument(
        "--timeout", type=float, default=60.0, help="per-job completion timeout"
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="CI mode: assert dedup/queue-depth/zero-warm-sims guarantees",
    )
    args = parser.parse_args(argv)

    base = args.base_url.rstrip("/")
    health = _get_json(base, "/healthz", args.timeout)
    print(f"server {base}: {health['status']}, executor {health['executor']}")

    payloads = [
        {
            "kind": "run",
            "workload": args.workload,
            "system": "forward-walk-coalesce",
            "branches": args.branches + i,
        }
        for i in range(args.distinct)
    ]

    before = _scrape(base, args.timeout)
    cold = _phase("cold", base, args.clients, payloads, args.timeout)
    after_cold = _scrape(base, args.timeout)
    warm = _phase("warm", base, args.clients, payloads, args.timeout)
    after = _scrape(base, args.timeout)

    def counter(snap: dict[str, float], name: str) -> float:
        return snap.get(f"repro_service_{name}_total", 0.0)

    cold_sims = counter(after_cold, "sim_runs") - counter(before, "sim_runs")
    warm_sims = counter(after, "sim_runs") - counter(after_cold, "sim_runs")
    dedup = (
        counter(after, "dedup_inflight")
        + counter(after, "dedup_completed")
        - counter(before, "dedup_inflight")
        - counter(before, "dedup_completed")
    )
    depth = after.get("repro_service_queue_depth")
    print(
        f"metrics: {cold_sims:.0f} cold simulations for {args.distinct} distinct "
        f"requests, {warm_sims:.0f} warm simulations, {dedup:.0f} dedup hits, "
        f"queue depth {depth}"
    )

    failures: list[str] = []
    failures.extend(cold.errors)
    failures.extend(warm.errors)
    if args.smoke:
        expected = args.clients * args.distinct * 2
        completed = cold.submitted + warm.submitted
        if completed != expected:
            failures.append(f"completed {completed} of {expected} submissions")
        if dedup < 1:
            failures.append("no dedup hits recorded despite identical submissions")
        if cold_sims > args.distinct:
            failures.append(
                f"{cold_sims:.0f} cold simulations for only "
                f"{args.distinct} distinct requests (dedup failed)"
            )
        if warm_sims != 0:
            failures.append(
                f"warm phase re-simulated {warm_sims:.0f} times (expected 0)"
            )
        if depth is None:
            failures.append("repro_service_queue_depth gauge missing from /metrics")
        elif depth != 0:
            failures.append(f"queue depth {depth} after drain (expected 0)")
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print("loadtest passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
