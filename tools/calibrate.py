#!/usr/bin/env python3
"""Calibration sweep: per-category opportunity of the local predictor.

Development utility used to tune the workload-category parameters so the
suite reproduces the paper's per-category shape (Figures 4 and 7):
substantial perfect-repair MPKI reduction everywhere, no-repair flat or
negative, MM/BP clearly negative without repair, FSPEC the weakest
gainer.

Usage::

    python tools/calibrate.py [n_branches] [workloads_per_category]
"""

from __future__ import annotations

import sys
import time

from repro.core import LoopPredictor, LoopPredictorConfig, StandardLocalUnit
from repro.core.repair import NoRepair, PerfectRepair
from repro.core.repair.base import RepairScheme
from repro.memory import CacheHierarchy
from repro.pipeline import PipelineModel
from repro.pipeline.stats import SimStats
from repro.predictors import TagePredictor
from repro.trace.records import BranchRecord
from repro.workloads import generate_trace, suite_by_category


def run_system(trace: list[BranchRecord], unit: StandardLocalUnit | None) -> SimStats:
    model = PipelineModel(TagePredictor(), unit=unit, hierarchy=CacheHierarchy())
    return model.run(trace)


def loop_unit(scheme: RepairScheme) -> StandardLocalUnit:
    return StandardLocalUnit(LoopPredictor(LoopPredictorConfig.entries(128)), scheme)


def main() -> None:
    n_branches = int(sys.argv[1]) if len(sys.argv) > 1 else 20_000
    per_category = int(sys.argv[2]) if len(sys.argv) > 2 else 2

    print(f"{'category':10s} {'workload':30s} {'mpki':>7s} {'ipc':>6s} "
          f"{'perf-red':>8s} {'perf-gain':>9s} {'none-red':>8s} {'none-gain':>9s}")
    t0 = time.time()
    for category, specs in suite_by_category().items():
        reductions, gains = [], []
        for spec in specs[:per_category]:
            trace = generate_trace(spec, n_branches)
            base = run_system(trace, None)
            perfect = run_system(trace, loop_unit(PerfectRepair()))
            none = run_system(trace, loop_unit(NoRepair()))
            p_red = (base.mpki - perfect.mpki) / base.mpki if base.mpki else 0.0
            p_gain = perfect.ipc / base.ipc - 1.0
            n_red = (base.mpki - none.mpki) / base.mpki if base.mpki else 0.0
            n_gain = none.ipc / base.ipc - 1.0
            reductions.append(p_red)
            gains.append(p_gain)
            print(f"{category:10s} {spec.name:30s} {base.mpki:7.2f} {base.ipc:6.3f} "
                  f"{p_red:8.1%} {p_gain:9.2%} {n_red:8.1%} {n_gain:9.2%}")
        if reductions:
            mean_red = sum(reductions) / len(reductions)
            mean_gain = sum(gains) / len(gains)
            print(f"{category:10s} {'== mean ==':30s} {'':7s} {'':6s} "
                  f"{mean_red:8.1%} {mean_gain:9.2%}")
    print(f"total {time.time() - t0:.1f}s")


if __name__ == "__main__":
    main()
