#!/usr/bin/env python3
"""Regression check between two persisted sweeps.

Run a sweep, save it, change code, run it again, diff:

    python tools/regression.py sweep --out before.json
    ... hack hack ...
    python tools/regression.py sweep --out after.json
    python tools/regression.py diff before.json after.json

`diff` exits non-zero when any (workload, system) pair regressed in IPC
beyond the tolerance — suitable for CI.
"""

from __future__ import annotations

import argparse
import sys

from repro.analysis import diff_sweeps
from repro.harness.persist import load_results, save_results
from repro.harness.report import format_table
from repro.harness.runner import run_matrix, select_workloads
from repro.harness.scale import resolve_scale
from repro.harness.systems import TABLE3_SYSTEMS


def _cmd_sweep(args: argparse.Namespace) -> int:
    scale = resolve_scale(args.scale)
    workloads = select_workloads(scale)
    results = run_matrix(workloads, TABLE3_SYSTEMS, scale)
    save_results(args.out, results, scale=scale, label=args.label)
    print(f"saved {len(results)} runs to {args.out}")
    return 0


def _cmd_diff(args: argparse.Namespace) -> int:
    before = load_results(args.before)
    after = load_results(args.after)
    deltas = diff_sweeps(before, after)
    regressions = [d for d in deltas if d.is_regression(args.tolerance)]
    improvements = [d for d in deltas if d.ipc_change > args.tolerance]
    print(
        f"{len(deltas)} paired runs: {len(regressions)} regressions, "
        f"{len(improvements)} improvements (tolerance {args.tolerance:.1%})"
    )
    if regressions:
        rows = [
            (
                d.workload,
                d.system,
                f"{d.ipc_before:.3f}",
                f"{d.ipc_after:.3f}",
                f"{d.ipc_change:+.2%}",
                f"{d.mpki_change:+.2f}",
            )
            for d in sorted(regressions, key=lambda d: d.ipc_change)
        ]
        print()
        print(
            format_table(
                ["workload", "system", "IPC before", "IPC after", "ΔIPC", "ΔMPKI"],
                rows,
                title="Regressions",
            )
        )
    return 1 if regressions else 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="regression", description="Sweep-and-diff regression checking."
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_sweep = sub.add_parser("sweep", help="run Table 3 systems and save results")
    p_sweep.add_argument("--out", required=True)
    p_sweep.add_argument("--scale", default="smoke")
    p_sweep.add_argument("--label", default="")
    p_sweep.set_defaults(func=_cmd_sweep)

    p_diff = sub.add_parser("diff", help="compare two saved sweeps")
    p_diff.add_argument("before")
    p_diff.add_argument("after")
    p_diff.add_argument("--tolerance", type=float, default=0.01)
    p_diff.set_defaults(func=_cmd_diff)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
