"""Aggregation of per-workload results into category and suite summaries."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.metrics.basic import geomean_gain, ipc_gain, mpki_reduction

__all__ = ["WorkloadResult", "CategorySummary", "summarize", "overall"]


@dataclass(frozen=True, slots=True)
class WorkloadResult:
    """One (workload, system) measurement paired with its baseline."""

    workload: str
    category: str
    baseline_mpki: float
    system_mpki: float
    baseline_ipc: float
    system_ipc: float

    @property
    def mpki_reduction(self) -> float:
        return mpki_reduction(self.baseline_mpki, self.system_mpki)

    @property
    def ipc_gain(self) -> float:
        return ipc_gain(self.baseline_ipc, self.system_ipc)


@dataclass(slots=True)
class CategorySummary:
    """Aggregated metrics for one workload category."""

    category: str
    results: list[WorkloadResult] = field(default_factory=list)

    @property
    def count(self) -> int:
        return len(self.results)

    @property
    def mean_mpki_reduction(self) -> float:
        """Arithmetic mean of per-workload MPKI reductions."""
        if not self.results:
            return 0.0
        return sum(r.mpki_reduction for r in self.results) / len(self.results)

    @property
    def mean_ipc_gain(self) -> float:
        """Geometric-mean IPC gain (speedup-style aggregation)."""
        if not self.results:
            return 0.0
        return geomean_gain(r.ipc_gain for r in self.results)

    @property
    def mean_baseline_mpki(self) -> float:
        if not self.results:
            return 0.0
        return sum(r.baseline_mpki for r in self.results) / len(self.results)

    @property
    def mean_system_mpki(self) -> float:
        if not self.results:
            return 0.0
        return sum(r.system_mpki for r in self.results) / len(self.results)


def summarize(results: list[WorkloadResult]) -> dict[str, CategorySummary]:
    """Group results by category, preserving encounter order."""
    grouped: dict[str, CategorySummary] = {}
    for result in results:
        summary = grouped.get(result.category)
        if summary is None:
            summary = grouped[result.category] = CategorySummary(result.category)
        summary.results.append(result)
    return grouped


def overall(results: list[WorkloadResult]) -> CategorySummary:
    """One summary across every workload (the paper's "Overall" bar)."""
    summary = CategorySummary(category="overall")
    summary.results.extend(results)
    return summary
