"""S-curve construction (Figure 7c): per-workload gains, sorted."""

from __future__ import annotations

from dataclasses import dataclass

from repro.metrics.aggregate import WorkloadResult

__all__ = ["ScurvePoint", "scurve"]


@dataclass(frozen=True, slots=True)
class ScurvePoint:
    """One workload's position on the S-curve."""

    rank: int
    workload: str
    category: str
    ipc_gain: float


def scurve(results: list[WorkloadResult]) -> list[ScurvePoint]:
    """Workloads ordered by IPC gain, ascending (the paper's S-curve).

    The interesting features are the tails: workloads on the right are
    the local-predictor success stories (> 15% in the paper), while any
    point below zero is a workload the predictor configuration hurts.
    """
    ordered = sorted(results, key=lambda r: r.ipc_gain)
    return [
        ScurvePoint(
            rank=rank,
            workload=result.workload,
            category=result.category,
            ipc_gain=result.ipc_gain,
        )
        for rank, result in enumerate(ordered)
    ]
