"""Core metric arithmetic: MPKI reductions, IPC gains, normalisation."""

from __future__ import annotations

import math
from collections.abc import Iterable, Sequence

from repro.errors import MetricsError

__all__ = [
    "mpki_reduction",
    "ipc_gain",
    "normalized_gain",
    "geomean",
    "geomean_gain",
]


def mpki_reduction(baseline_mpki: float, system_mpki: float) -> float:
    """Fractional MPKI reduction relative to the baseline.

    Positive is better; negative means the system *added*
    mispredictions.  A zero-MPKI baseline yields 0.0 by convention.
    """
    if baseline_mpki <= 0.0:
        return 0.0
    return (baseline_mpki - system_mpki) / baseline_mpki


def ipc_gain(baseline_ipc: float, system_ipc: float) -> float:
    """Fractional IPC speedup over the baseline."""
    if baseline_ipc <= 0.0:
        return 0.0
    return system_ipc / baseline_ipc - 1.0


def normalized_gain(scheme_gain: float, perfect_gain: float) -> float:
    """Fraction of the perfect-repair gain a scheme retains.

    This is Table 3's "Percentage of perfect repair gains retained"
    column.  Degenerate perfect gains (<= 0) yield 0.0.
    """
    if perfect_gain <= 0.0:
        return 0.0
    return scheme_gain / perfect_gain


def geomean(values: Sequence[float] | Iterable[float]) -> float:
    """Geometric mean of positive values (0.0 for an empty input)."""
    values = list(values)
    if not values:
        return 0.0
    if any(v <= 0.0 for v in values):
        raise MetricsError("geomean requires strictly positive values")
    return math.exp(sum(math.log(v) for v in values) / len(values))


def geomean_gain(gains: Sequence[float] | Iterable[float]) -> float:
    """Geometric mean of fractional gains (each expressed vs. 1.0).

    ``geomean_gain([0.05, 0.02])`` is the aggregate speedup of two
    workloads gaining 5% and 2% — the paper-standard way to summarise
    per-workload IPC gains.
    """
    speedups = [1.0 + g for g in gains]
    if not speedups:
        return 0.0
    if any(s <= 0.0 for s in speedups):
        raise MetricsError("gains must stay above -100%")
    return geomean(speedups) - 1.0
