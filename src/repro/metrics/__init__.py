"""Metrics: MPKI / IPC arithmetic, aggregation, S-curves."""

from repro.metrics.aggregate import (
    CategorySummary,
    WorkloadResult,
    overall,
    summarize,
)
from repro.metrics.basic import (
    geomean,
    geomean_gain,
    ipc_gain,
    mpki_reduction,
    normalized_gain,
)
from repro.metrics.scurve import ScurvePoint, scurve

__all__ = [
    "mpki_reduction",
    "ipc_gain",
    "normalized_gain",
    "geomean",
    "geomean_gain",
    "WorkloadResult",
    "CategorySummary",
    "summarize",
    "overall",
    "ScurvePoint",
    "scurve",
]
