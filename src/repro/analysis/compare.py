"""Sweep comparison: diff two sets of runs.

Used to compare code versions (did a change regress a scheme?), scale
levels (is smoke representative of small?), or two systems within one
sweep (the per-workload view behind every aggregate in EXPERIMENTS.md).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.errors import ExperimentError
from repro.harness.runner import RunResult

__all__ = ["RunDelta", "diff_sweeps", "compare_systems"]


@dataclass(frozen=True, slots=True)
class RunDelta:
    """Per-(workload, system) change between two runs."""

    workload: str
    category: str
    system: str
    ipc_before: float
    ipc_after: float
    mpki_before: float
    mpki_after: float

    @property
    def ipc_change(self) -> float:
        """Relative IPC change (positive = after is faster)."""
        if self.ipc_before <= 0:
            return 0.0
        return self.ipc_after / self.ipc_before - 1.0

    @property
    def mpki_change(self) -> float:
        """Absolute MPKI change (negative = after mispredicts less)."""
        return self.mpki_after - self.mpki_before

    def is_regression(self, ipc_tolerance: float = 0.01) -> bool:
        """After is noticeably slower than before."""
        return self.ipc_change < -ipc_tolerance


def _key(result: RunResult) -> tuple[str, str]:
    return (result.workload, result.system)


def diff_sweeps(
    before: Sequence[RunResult], after: Sequence[RunResult]
) -> list[RunDelta]:
    """Pair two sweeps on (workload, system) and compute deltas.

    Rows present in only one sweep are ignored; an empty intersection
    raises (it means the sweeps are not comparable at all).
    """
    before_map = {_key(r): r for r in before}
    deltas: list[RunDelta] = []
    for result in after:
        base = before_map.get(_key(result))
        if base is None:
            continue
        deltas.append(
            RunDelta(
                workload=result.workload,
                category=result.category,
                system=result.system,
                ipc_before=base.ipc,
                ipc_after=result.ipc,
                mpki_before=base.mpki,
                mpki_after=result.mpki,
            )
        )
    if not deltas:
        raise ExperimentError("sweeps share no (workload, system) pairs")
    return deltas


def compare_systems(
    results: Sequence[RunResult], system_a: str, system_b: str
) -> list[RunDelta]:
    """Within one sweep, express system B relative to system A."""
    a_rows = [r for r in results if r.system == system_a]
    b_rows = [r for r in results if r.system == system_b]
    if not a_rows or not b_rows:
        raise ExperimentError(
            f"sweep lacks rows for {system_a!r} and/or {system_b!r}"
        )
    a_map = {r.workload: r for r in a_rows}
    deltas: list[RunDelta] = []
    for b in b_rows:
        a = a_map.get(b.workload)
        if a is None:
            continue
        deltas.append(
            RunDelta(
                workload=b.workload,
                category=b.category,
                system=f"{system_b} vs {system_a}",
                ipc_before=a.ipc,
                ipc_after=b.ipc,
                mpki_before=a.mpki,
                mpki_after=b.mpki,
            )
        )
    return deltas
