"""Post-run analysis: sweep diffs, markdown reports, drilldowns,
telemetry-trace summaries."""

from repro.analysis.compare import RunDelta, compare_systems, diff_sweeps
from repro.analysis.drilldown import Diagnosis, diagnose
from repro.analysis.markdown import category_markdown, markdown_table, table3_markdown
from repro.telemetry.summary import TraceSummary, summarize_trace

__all__ = [
    "RunDelta",
    "diff_sweeps",
    "compare_systems",
    "Diagnosis",
    "diagnose",
    "markdown_table",
    "category_markdown",
    "table3_markdown",
    "TraceSummary",
    "summarize_trace",
]
