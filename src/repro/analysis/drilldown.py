"""Per-workload drilldown: why did this system score what it scored?

Turns one RunResult's statistics payload into a readable diagnosis —
override efficiency, repair traffic, checkpoint pressure — the numbers
that explain a scheme's position before anyone re-runs anything.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.harness.runner import RunResult

__all__ = ["Diagnosis", "diagnose"]


@dataclass(frozen=True)
class Diagnosis:
    """Derived indicators for one run."""

    workload: str
    system: str
    ipc: float
    mpki: float
    #: Fraction of overrides that beat the baseline (saves / (saves+damages)).
    override_precision: float
    #: Saves per kilo-instruction — the raw win rate.
    saves_per_kinst: float
    #: Mean BHT writes per repair event (Figure 8's per-workload metric).
    repairs_per_event: float
    #: Fraction of speculative updates that could not be checkpointed.
    checkpoint_overflow_rate: float
    #: Cycles spent with the BHT (partially) unavailable, per kilo-cycle.
    busy_per_kcycle: float
    notes: tuple[str, ...]

    def render(self) -> str:
        lines = [
            f"{self.workload} / {self.system}: IPC {self.ipc:.3f}, MPKI {self.mpki:.2f}",
            f"  override precision {self.override_precision:.0%}, "
            f"saves/kinst {self.saves_per_kinst:.2f}",
            f"  repairs/event {self.repairs_per_event:.1f}, "
            f"checkpoint overflow {self.checkpoint_overflow_rate:.1%}, "
            f"busy {self.busy_per_kcycle:.1f}/kcycle",
        ]
        lines.extend(f"  note: {note}" for note in self.notes)
        return "\n".join(lines)


def diagnose(result: RunResult) -> Diagnosis:
    """Compute the drilldown indicators for one run."""
    unit = result.extra.get("unit", {})
    repair = result.extra.get("repair", {})

    saves = unit.get("saves", 0)
    damages = unit.get("damages", 0)
    decided = saves + damages
    precision = saves / decided if decided else 0.0

    kinst = result.instructions / 1000 if result.instructions else 1.0
    events = repair.get("events", 0)
    pushes = unit.get("lookups", 0)
    overflows = repair.get("uncheckpointed", 0)
    overflow_rate = overflows / pushes if pushes else 0.0
    busy = repair.get("busy_cycles", 0)
    kcycles = result.cycles / 1000 if result.cycles else 1.0

    notes: list[str] = []
    if decided and precision < 0.5:
        notes.append("overrides are net-negative: expect the chooser to gate them")
    if overflow_rate > 0.2:
        notes.append("checkpoint structure is undersized for this workload")
    if events and repair.get("skipped_events", 0) > events * 0.2:
        notes.append("many repairs skipped (mispredicting branches uncheckpointed)")
    if repair.get("restarts", 0) > events * 0.05 and events:
        notes.append("frequent repair restarts: overlapping mispredictions")

    return Diagnosis(
        workload=result.workload,
        system=result.system,
        ipc=result.ipc,
        mpki=result.mpki,
        override_precision=precision,
        saves_per_kinst=saves / kinst,
        repairs_per_event=repair.get("mean_writes_per_event", 0.0),
        checkpoint_overflow_rate=overflow_rate,
        busy_per_kcycle=busy / kcycles,
        notes=tuple(notes),
    )
