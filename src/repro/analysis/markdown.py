"""Markdown rendering of experiment aggregates.

EXPERIMENTS.md-style tables, generated from live results so documents
can be refreshed from a sweep instead of retyped.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.harness.systems import PAPER_TABLE3
from repro.metrics.aggregate import WorkloadResult, overall, summarize
from repro.metrics.basic import normalized_gain
from repro.workloads.categories import CATEGORIES

__all__ = ["markdown_table", "category_markdown", "table3_markdown"]


def markdown_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Render a GitHub-flavoured markdown table."""
    lines = [
        "| " + " | ".join(str(h) for h in headers) + " |",
        "|" + "|".join("---" for _ in headers) + "|",
    ]
    for row in rows:
        lines.append("| " + " | ".join(str(cell) for cell in row) + " |")
    return "\n".join(lines)


def category_markdown(paired: Sequence[WorkloadResult], title: str = "") -> str:
    """Per-category MPKI/IPC table for one system."""
    grouped = summarize(list(paired))
    rows = []
    for category in CATEGORIES:
        summary = grouped.get(category)
        if summary is None:
            continue
        rows.append(
            (
                category,
                summary.count,
                f"{summary.mean_mpki_reduction:+.1%}",
                f"{summary.mean_ipc_gain:+.2%}",
            )
        )
    total = overall(list(paired))
    rows.append(
        ("**overall**", total.count, f"**{total.mean_mpki_reduction:+.1%}**",
         f"**{total.mean_ipc_gain:+.2%}**")
    )
    table = markdown_table(["category", "n", "MPKI redn", "IPC gain"], rows)
    return f"### {title}\n\n{table}" if title else table


def table3_markdown(paired: dict[str, list[WorkloadResult]]) -> str:
    """The EXPERIMENTS.md headline table from a live Table 3 sweep."""
    perfect = paired.get("perfect-repair", [])
    perfect_gain = overall(list(perfect)).mean_ipc_gain if perfect else 0.0
    rows = []
    for name, paper in PAPER_TABLE3.items():
        if name == "baseline-tage":
            continue
        results = paired.get(name)
        if not results:
            continue
        summary = overall(list(results))
        retained = normalized_gain(summary.mean_ipc_gain, perfect_gain)
        rows.append(
            (
                name,
                f"{paper[0]:.1f}% / {paper[1]:.2f}% / {paper[2]:.0f}%",
                f"{summary.mean_mpki_reduction:+.1%} / "
                f"{summary.mean_ipc_gain:+.2%} / {retained:.0%}",
            )
        )
    return markdown_table(
        ["technique", "paper (redn/gain/retained)", "measured (redn/gain/retained)"],
        rows,
    )
