"""Descriptive statistics over branch traces.

Used by workload calibration, tests, and the Table 1 reproduction to
characterise generated traces: how many static branch sites, how biased
they are, how much *local* structure exists (the property the paper's
predictor exploits).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Iterable

from repro.trace.records import BranchKind, BranchRecord

__all__ = ["PcProfile", "TraceStats", "collect_stats"]


@dataclass(slots=True)
class PcProfile:
    """Per static-branch-site statistics."""

    pc: int
    occurrences: int = 0
    taken: int = 0
    #: Number of direction changes across consecutive occurrences.
    transitions: int = 0
    _last: bool | None = field(default=None, repr=False)

    def observe(self, taken: bool) -> None:
        """Record one dynamic occurrence of this site."""
        self.occurrences += 1
        if taken:
            self.taken += 1
        if self._last is not None and self._last != taken:
            self.transitions += 1
        self._last = taken

    @property
    def bias(self) -> float:
        """Fraction of occurrences that were taken."""
        if self.occurrences == 0:
            return 0.0
        return self.taken / self.occurrences

    @property
    def run_length(self) -> float:
        """Mean run length of a single direction.

        Loop branches with trip count T have run length ~T; this is the
        simplest observable signature of loop-predictor-friendly sites.
        """
        if self.transitions == 0:
            return float(self.occurrences)
        return self.occurrences / (self.transitions + 1)


@dataclass(slots=True)
class TraceStats:
    """Aggregate statistics of one branch trace."""

    total_branches: int = 0
    total_instructions: int = 0
    conditional_branches: int = 0
    taken_branches: int = 0
    kind_counts: Counter = field(default_factory=Counter)
    profiles: dict[int, PcProfile] = field(default_factory=dict)

    @property
    def static_sites(self) -> int:
        """Number of distinct conditional-branch PCs."""
        return len(self.profiles)

    @property
    def branch_density(self) -> float:
        """Branches per instruction."""
        if self.total_instructions == 0:
            return 0.0
        return self.total_branches / self.total_instructions

    @property
    def taken_rate(self) -> float:
        """Fraction of conditional branches that were taken."""
        if self.conditional_branches == 0:
            return 0.0
        return self.taken_branches / self.conditional_branches

    def mean_run_length(self) -> float:
        """Occurrence-weighted mean direction run length across sites."""
        if not self.profiles:
            return 0.0
        weight = sum(p.occurrences for p in self.profiles.values())
        if weight == 0:
            return 0.0
        return (
            sum(p.run_length * p.occurrences for p in self.profiles.values()) / weight
        )

    def top_sites(self, count: int = 10) -> list[PcProfile]:
        """The ``count`` most frequently executed conditional sites."""
        ranked = sorted(
            self.profiles.values(), key=lambda p: p.occurrences, reverse=True
        )
        return ranked[:count]


def collect_stats(records: Iterable[BranchRecord]) -> TraceStats:
    """Single-pass statistics collection over a trace."""
    stats = TraceStats()
    profiles = stats.profiles
    for rec in records:
        stats.total_branches += 1
        stats.total_instructions += rec.group_size
        stats.kind_counts[rec.kind] += 1
        if rec.kind is BranchKind.COND:
            stats.conditional_branches += 1
            if rec.taken:
                stats.taken_branches += 1
            profile = profiles.get(rec.pc)
            if profile is None:
                profile = profiles[rec.pc] = PcProfile(pc=rec.pc)
            profile.observe(rec.taken)
    return stats
