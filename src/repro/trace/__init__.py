"""Branch trace substrate: record types, streams, serialization, stats."""

from repro.trace.io import dumps_trace, loads_trace, read_trace, write_trace
from repro.trace.records import BranchKind, BranchRecord
from repro.trace.stats import PcProfile, TraceStats, collect_stats
from repro.trace.stream import TraceStream

__all__ = [
    "BranchKind",
    "BranchRecord",
    "TraceStream",
    "TraceStats",
    "PcProfile",
    "collect_stats",
    "dumps_trace",
    "loads_trace",
    "read_trace",
    "write_trace",
]
