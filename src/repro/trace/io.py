"""Binary trace serialization.

Traces round-trip through a compact little-endian binary format so
generated workloads can be cached on disk and shared between experiment
runs.  The format is deliberately simple:

``header``
    magic ``b"RPTR"`` | version u16 | record count u64

``record`` (repeated)
    pc u64 | target u64 | flags u8 | kind u8 | inst_gap u16 | load_addr u64

``flags`` bit 0 = taken, bit 1 = depends_on_load.
"""

from __future__ import annotations

import io
import mmap
import struct
from collections.abc import Iterable, Sequence
from pathlib import Path

from repro.errors import TraceFormatError
from repro.trace.records import BranchKind, BranchRecord

__all__ = ["write_trace", "read_trace", "dumps_trace", "loads_trace"]

_MAGIC = b"RPTR"
_VERSION = 1
_HEADER = struct.Struct("<4sHQ")
_RECORD = struct.Struct("<QQBBHQ")
_KIND_BY_VALUE = {int(kind): kind for kind in BranchKind}


def dumps_trace(records: Sequence[BranchRecord] | Iterable[BranchRecord]) -> bytes:
    """Serialize a branch trace to bytes."""
    records = tuple(records)
    buf = io.BytesIO()
    buf.write(_HEADER.pack(_MAGIC, _VERSION, len(records)))
    pack = _RECORD.pack
    for rec in records:
        flags = (1 if rec.taken else 0) | (2 if rec.depends_on_load else 0)
        buf.write(
            pack(rec.pc, rec.target, flags, int(rec.kind), rec.inst_gap, rec.load_addr)
        )
    return buf.getvalue()


def loads_trace(data: bytes | bytearray | memoryview | mmap.mmap) -> list[BranchRecord]:
    """Deserialize a branch trace produced by :func:`dumps_trace`.

    Accepts any readable buffer — plain bytes or a memory-mapped file —
    and parses it without copying the payload (``iter_unpack`` walks a
    memoryview over the buffer).
    """
    if len(data) < _HEADER.size:
        raise TraceFormatError(
            "trace data truncated: missing header", offset=len(data)
        )
    magic, version, count = _HEADER.unpack_from(data, 0)
    if magic != _MAGIC:
        raise TraceFormatError(f"bad trace magic {magic!r}", offset=0)
    if version != _VERSION:
        raise TraceFormatError(f"unsupported trace version {version}", offset=4)
    expected = _HEADER.size + count * _RECORD.size
    if len(data) < expected:
        raise TraceFormatError(
            f"trace data truncated: expected {expected} bytes, got {len(data)}",
            offset=len(data),
        )
    # Hot deserialization path: iter_unpack over the packed body, and
    # records built through __new__ + object.__setattr__ rather than the
    # (frozen, validating) dataclass __init__.  The format itself
    # guarantees what __post_init__ would re-check — u64/u16 fields are
    # non-negative by construction — except the direction invariant,
    # which is enforced explicitly below.
    body = memoryview(data)[_HEADER.size : expected]
    kinds = _KIND_BY_VALUE
    records: list[BranchRecord] = []
    append = records.append
    new = BranchRecord.__new__
    set_field = object.__setattr__
    for pc, target, flags, kind, inst_gap, load_addr in _RECORD.iter_unpack(body):
        branch_kind = kinds.get(kind)
        if branch_kind is None:
            # len(records) is the index of the record being decoded, so
            # the offset names the exact malformed record for free.
            raise TraceFormatError(
                f"unknown branch kind {kind}",
                offset=_HEADER.size + len(records) * _RECORD.size,
            )
        taken = flags & 1
        if not taken and kind != 0:
            raise TraceFormatError(
                f"{branch_kind.name} branches are always taken",
                offset=_HEADER.size + len(records) * _RECORD.size,
            )
        record = new(BranchRecord)
        set_field(record, "pc", pc)
        set_field(record, "target", target)
        set_field(record, "taken", bool(taken))
        set_field(record, "kind", branch_kind)
        set_field(record, "inst_gap", inst_gap)
        set_field(record, "load_addr", load_addr)
        set_field(record, "depends_on_load", bool(flags & 2))
        append(record)
    return records


def write_trace(path: str | Path, records: Sequence[BranchRecord]) -> None:
    """Write a branch trace to ``path``."""
    Path(path).write_bytes(dumps_trace(records))


def read_trace(path: str | Path) -> list[BranchRecord]:
    """Read a branch trace previously written by :func:`write_trace`.

    The file is memory-mapped and parsed in place: the kernel pages the
    trace straight into the parser with no intermediate ``read()`` copy
    of the whole payload, which matters for the multi-megabyte traces
    larger sweep scales cache on disk.  Files too small to hold a
    header (mmap rejects empty files) fall back to a plain read.
    """
    with open(path, "rb") as fh:
        fh.seek(0, io.SEEK_END)
        size = fh.tell()
        if size < _HEADER.size:
            fh.seek(0)
            return loads_trace(fh.read())
        with mmap.mmap(fh.fileno(), 0, access=mmap.ACCESS_READ) as mapped:
            return loads_trace(mapped)
