"""The :class:`TraceAdapter` protocol, registry, and format detection.

An adapter turns one external branch-trace format into the repository's
native RPTR record layout (:class:`~repro.trace.records.BranchRecord`).
Everything downstream of the normalisation — the binary cache, the
columnar store and its shared-memory fan-out, sampling plans, the batch
sweep kernel, and the persistent result cache — consumes RPTR and never
sees the source format again.

Adapters are *pure*: bytes in, records out, no environment reads and no
network.  Fetching, caching, and the imported-trace store live in
:mod:`repro.harness.tracestore` where policy belongs.

Compression is handled here, once, for every adapter: gzip and xz
payloads (the two wrappings public trace distributions actually use)
are transparently decompressed before detection, so ``detect_format``
and every ``read`` always see the raw payload.
"""

from __future__ import annotations

import gzip
import lzma
from dataclasses import dataclass
from typing import Protocol, runtime_checkable

from repro.errors import TraceFormatError
from repro.trace.records import BranchRecord

__all__ = [
    "ADAPTER_VERSION",
    "TraceAdapter",
    "ConvertedTrace",
    "register_adapter",
    "registered_adapters",
    "get_adapter",
    "decompress_payload",
    "detect_format",
    "convert_bytes",
]

#: Bump whenever any adapter's normalisation rules change.  Folded into
#: imported-trace workload hashes and the columnar decode-cache key, so
#: a re-converted trace can never be served from stale caches.
ADAPTER_VERSION = 1

_GZIP_MAGIC = b"\x1f\x8b"
_XZ_MAGIC = b"\xfd7zXZ\x00"


@runtime_checkable
class TraceAdapter(Protocol):
    """One external trace format's reader.

    ``sniff`` must be cheap and must not raise on arbitrary bytes — it
    is called with every candidate payload during auto-detection.
    ``read`` may assume the payload is already decompressed and raises
    :class:`~repro.errors.TraceFormatError` on structural violations.
    """

    #: Stable format id (``"champsim"``, ``"bt9"``, ``"rptr"``).
    format: str
    #: Per-adapter normalisation revision.
    version: int

    def sniff(self, payload: bytes, filename: str = "") -> bool:
        """Whether ``payload`` plausibly is this format."""
        ...

    def read(self, payload: bytes) -> list[BranchRecord]:
        """Normalise ``payload`` into RPTR records."""
        ...


@dataclass(frozen=True)
class ConvertedTrace:
    """The outcome of one conversion: records plus provenance."""

    records: list[BranchRecord]
    format: str
    adapter_version: int
    compression: str | None = None


_REGISTRY: dict[str, TraceAdapter] = {}
#: Detection order — first sniff wins, so adapters with unambiguous
#: magic must be registered before heuristic ones.
_DETECT_ORDER: list[TraceAdapter] = []


def register_adapter(adapter: TraceAdapter) -> TraceAdapter:
    """Add an adapter to the registry (and the detection order)."""
    if adapter.format in _REGISTRY:
        raise TraceFormatError(f"adapter {adapter.format!r} already registered")
    _REGISTRY[adapter.format] = adapter
    _DETECT_ORDER.append(adapter)
    return adapter


def registered_adapters() -> tuple[TraceAdapter, ...]:
    """Registered adapters, in detection order."""
    return tuple(_DETECT_ORDER)


def get_adapter(fmt: str) -> TraceAdapter:
    """Adapter for format id ``fmt`` (:class:`TraceFormatError` if none)."""
    adapter = _REGISTRY.get(fmt)
    if adapter is None:
        known = ", ".join(sorted(_REGISTRY))
        raise TraceFormatError(
            f"unknown trace format {fmt!r}; known formats: {known}"
        )
    return adapter


def decompress_payload(payload: bytes) -> tuple[bytes, str | None]:
    """Undo one layer of gzip/xz wrapping, if present.

    Returns ``(raw payload, compression name or None)``.  Truncated or
    corrupt compressed streams surface as :class:`TraceFormatError`
    rather than codec-specific exceptions.
    """
    if payload.startswith(_GZIP_MAGIC):
        try:
            return gzip.decompress(payload), "gzip"
        except (OSError, EOFError) as exc:
            raise TraceFormatError(f"corrupt gzip payload: {exc}") from exc
    if payload.startswith(_XZ_MAGIC):
        try:
            return lzma.decompress(payload), "xz"
        except (lzma.LZMAError, EOFError) as exc:
            raise TraceFormatError(f"corrupt xz payload: {exc}") from exc
    return payload, None


def detect_format(payload: bytes, filename: str = "") -> str:
    """Auto-detect the format of a (decompressed) payload.

    ``filename`` participates only as a tiebreaker hint for adapters
    whose binary layout has no magic (ChampSim); content always wins
    over extension.
    """
    for adapter in _DETECT_ORDER:
        if adapter.sniff(payload, filename):
            return adapter.format
    raise TraceFormatError(
        "unrecognised trace format: payload matches no registered adapter "
        f"(known formats: {', '.join(sorted(_REGISTRY))})"
    )


def convert_bytes(
    payload: bytes, fmt: str | None = None, filename: str = ""
) -> ConvertedTrace:
    """Decompress, detect (unless pinned), and normalise one payload."""
    raw, compression = decompress_payload(payload)
    resolved = fmt if fmt is not None and fmt != "auto" else detect_format(raw, filename)
    adapter = get_adapter(resolved)
    return ConvertedTrace(
        records=adapter.read(raw),
        format=adapter.format,
        adapter_version=adapter.version,
        compression=compression,
    )
