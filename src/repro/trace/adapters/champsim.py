"""ChampSim / CBP-2016-style binary instruction trace adapter.

ChampSim traces are flat arrays of 64-byte ``trace_instr_format``
records — every committed instruction, branch or not::

    ip u64 | is_branch u8 | branch_taken u8 |
    destination_registers u8[2] | source_registers u8[4] |
    destination_memory u64[2] | source_memory u64[4]

There is no file magic and no branch-type field: consumers re-derive
the branch class from the architectural register sets exactly as the
ChampSim simulator does (x86 conventions: ``SP=6``, ``FLAGS=25``,
``IP=26``).  This adapter performs the same classification and then
*collapses* the instruction stream into the RPTR per-branch layout:

* ``inst_gap`` counts the non-branch instructions since the previous
  branch (clamped to the RPTR u16 field).
* A taken branch's target is the next instruction's ``ip`` — the trace
  records committed execution, so control provably continued there.
  Not-taken conditionals are backfilled from taken occurrences of the
  same static branch, and stay 0 for never-taken branches.
* The last load in each gap becomes ``load_addr``; the branch depends
  on it when the load's destination register appears among the branch's
  source registers.
* Direct and indirect calls both normalise to :data:`BranchKind.CALL`
  (the pipeline model does not distinguish them), and non-conditional
  branches are always taken, matching the RPTR invariant.

The writer emits a *consistent* instruction stream (fillers laid out at
each branch's committed continuation), which is what makes the
reader's next-ip target recovery exact on round trips.
"""

from __future__ import annotations

import struct

from repro.errors import TraceFormatError
from repro.trace.records import BranchKind, BranchRecord

__all__ = ["ChampSimAdapter", "write_champsim", "CHAMPSIM_RECORD_SIZE"]

_RECORD = struct.Struct("<Q8B6Q")
CHAMPSIM_RECORD_SIZE = _RECORD.size  # 64 bytes

_REG_SP = 6
_REG_FLAGS = 25
_REG_IP = 26
# Synthetic registers used by the writer; any GPR works for the reader.
_REG_LOAD = 8
_REG_TARGET = 10
_SPECIAL_REGS = frozenset((0, _REG_SP, _REG_FLAGS, _REG_IP))
_MAX_GAP = 0xFFFF
_INSN_SIZE = 4
_SNIFF_RECORDS = 64


def _classify(dst: tuple[int, ...], src: tuple[int, ...]) -> BranchKind:
    """ChampSim's register-set branch classification, collapsed to RPTR kinds."""
    if _REG_FLAGS in src:
        return BranchKind.COND
    if _REG_SP in src and _REG_SP in dst:
        return BranchKind.RET if _REG_IP not in src else BranchKind.CALL
    if any(reg not in _SPECIAL_REGS for reg in src):
        return BranchKind.INDIRECT
    return BranchKind.UNCOND


class ChampSimAdapter:
    """Reader for ChampSim/CBP-2016-style 64-byte instruction records."""

    format = "champsim"
    version = 1

    def sniff(self, payload: bytes, filename: str = "") -> bool:
        """Structural plausibility check — the format has no magic.

        A payload passes when it is a non-empty multiple of 64 bytes
        and every scanned record keeps its two flag bytes boolean.
        Random binaries fail this with overwhelming probability.
        """
        if not payload or len(payload) % _RECORD.size:
            return False
        scan = min(len(payload) // _RECORD.size, _SNIFF_RECORDS)
        for i in range(scan):
            base = i * _RECORD.size
            if payload[base + 8] > 1 or payload[base + 9] > 1:
                return False
        return True

    def read(self, payload: bytes) -> list[BranchRecord]:
        """Collapse an instruction stream into RPTR branch records."""
        if len(payload) % _RECORD.size:
            raise TraceFormatError(
                f"champsim payload is not a whole number of {_RECORD.size}-byte "
                f"records ({len(payload)} bytes)",
                offset=len(payload) - len(payload) % _RECORD.size,
            )
        records: list[BranchRecord] = []
        # Mutable [pc, target, taken, kind, gap, load_addr, dep] rows;
        # target is patched from the *next* instruction's ip, so rows
        # can only be frozen into BranchRecords afterwards.
        rows: list[list[int]] = []
        pending: list[int] | None = None
        gap = 0
        load_addr = 0
        load_reg = -1
        for index, fields in enumerate(_RECORD.iter_unpack(payload)):
            ip = fields[0]
            is_branch = fields[1]
            taken_flag = fields[2]
            if is_branch > 1 or taken_flag > 1:
                raise TraceFormatError(
                    f"champsim record {index} has non-boolean branch flags "
                    f"({is_branch}, {taken_flag})",
                    offset=index * _RECORD.size,
                )
            if pending is not None:
                # Committed execution continued at this ip, so it is the
                # pending taken branch's target by construction.
                pending[1] = ip
                pending = None
            if not is_branch:
                gap += 1
                src_mem = fields[11]
                if src_mem:
                    load_addr = src_mem
                    load_reg = fields[3]
                continue
            dst = fields[3:5]
            src = fields[5:9]
            kind = _classify(dst, src)
            # Non-conditional control flow always redirects; RPTR encodes
            # that as taken=True regardless of the tracer's flag.
            taken = bool(taken_flag) or kind is not BranchKind.COND
            depends = (
                kind is BranchKind.COND and load_reg > 0 and load_reg in src
            )
            row = [
                ip,
                0,
                int(taken),
                int(kind),
                min(gap, _MAX_GAP),
                load_addr,
                int(depends),
            ]
            rows.append(row)
            if taken:
                pending = row
            gap = 0
            load_addr = 0
            load_reg = -1
        # Backfill not-taken targets from taken sightings of the same
        # static branch so direction-independent fields stay stable.
        taken_targets: dict[int, int] = {}
        for row in rows:
            if row[2] and row[1] and row[0] not in taken_targets:
                taken_targets[row[0]] = row[1]
        for row in rows:
            if not row[2]:
                row[1] = taken_targets.get(row[0], 0)
            records.append(
                BranchRecord(
                    pc=row[0],
                    target=row[1],
                    taken=bool(row[2]),
                    kind=BranchKind(row[3]),
                    inst_gap=row[4],
                    load_addr=row[5],
                    depends_on_load=bool(row[6]),
                )
            )
        return records


def _pack_instr(
    ip: int,
    is_branch: int,
    taken: int,
    dst: tuple[int, int],
    src: tuple[int, int, int, int],
    src_mem0: int = 0,
) -> bytes:
    return _RECORD.pack(
        ip, is_branch, taken, dst[0], dst[1], src[0], src[1], src[2], src[3],
        0, 0, src_mem0, 0, 0, 0,
    )


_BRANCH_REGS: dict[BranchKind, tuple[tuple[int, int], tuple[int, int, int, int]]] = {
    BranchKind.COND: ((_REG_IP, 0), (_REG_IP, _REG_FLAGS, 0, 0)),
    BranchKind.UNCOND: ((_REG_IP, 0), (_REG_IP, 0, 0, 0)),
    BranchKind.CALL: ((_REG_IP, _REG_SP), (_REG_IP, _REG_SP, 0, 0)),
    BranchKind.RET: ((_REG_IP, _REG_SP), (_REG_SP, 0, 0, 0)),
    BranchKind.INDIRECT: ((_REG_IP, 0), (_REG_IP, _REG_TARGET, 0, 0)),
}


def write_champsim(records: list[BranchRecord] | tuple[BranchRecord, ...]) -> bytes:
    """Serialise RPTR records as a consistent ChampSim instruction stream.

    Gap fillers are placed at each branch's committed continuation
    (taken target, or fall-through), so re-reading the stream recovers
    taken targets exactly.  A gap's ``load_addr`` is expressed as a load
    into a scratch register on the filler closest to the branch; gaps of
    zero instructions cannot carry a load and drop it.  A single
    trailing filler closes the final branch's target.
    """
    out = bytearray()
    continuation: int | None = None
    for rec in records:
        gap = rec.inst_gap
        if continuation is None:
            start = rec.pc - _INSN_SIZE * gap
            if start < 0:
                start = 0x1000
        else:
            start = continuation
        for j in range(gap):
            ip = start + j * _INSN_SIZE
            if j == gap - 1 and rec.load_addr:
                out += _pack_instr(
                    ip, 0, 0, (_REG_LOAD, 0), (0, 0, 0, 0), src_mem0=rec.load_addr
                )
            else:
                out += _pack_instr(ip, 0, 0, (9, 0), (9, 0, 0, 0))
        dst, src = _BRANCH_REGS[rec.kind]
        if (
            rec.kind is BranchKind.COND
            and rec.depends_on_load
            and rec.load_addr
            and gap > 0
        ):
            src = (src[0], src[1], _REG_LOAD, src[3])
        out += _pack_instr(rec.pc, 1, int(rec.taken), dst, src)
        continuation = rec.target if rec.taken else rec.pc + _INSN_SIZE
    if continuation is not None:
        out += _pack_instr(continuation, 0, 0, (9, 0), (9, 0, 0, 0))
    return bytes(out)
