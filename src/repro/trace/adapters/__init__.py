"""External trace-format adapters normalising into RPTR records.

Importing this package registers the built-in adapters in detection
order: RPTR passthrough (unambiguous magic), BT9 (unambiguous text
header), then ChampSim (structural heuristic — it has no magic, so it
must sniff last).
"""

from __future__ import annotations

from repro.trace.adapters.base import (
    ADAPTER_VERSION,
    ConvertedTrace,
    TraceAdapter,
    convert_bytes,
    decompress_payload,
    detect_format,
    get_adapter,
    register_adapter,
    registered_adapters,
)
from repro.trace.adapters.bt9 import Bt9Adapter, write_bt9
from repro.trace.adapters.champsim import ChampSimAdapter, write_champsim
from repro.trace.io import loads_trace
from repro.trace.records import BranchRecord

__all__ = [
    "ADAPTER_VERSION",
    "TraceAdapter",
    "ConvertedTrace",
    "RptrAdapter",
    "ChampSimAdapter",
    "Bt9Adapter",
    "register_adapter",
    "registered_adapters",
    "get_adapter",
    "decompress_payload",
    "detect_format",
    "convert_bytes",
    "write_champsim",
    "write_bt9",
]

_RPTR_MAGIC = b"RPTR"


class RptrAdapter:
    """Passthrough adapter for the native binary format.

    Lets ``repro trace import``/``info`` accept already-converted
    traces (including gzip/xz-wrapped ones) through the same front
    door as external formats.
    """

    format = "rptr"
    version = 1

    def sniff(self, payload: bytes, filename: str = "") -> bool:
        return payload[: len(_RPTR_MAGIC)] == _RPTR_MAGIC

    def read(self, payload: bytes) -> list[BranchRecord]:
        return loads_trace(payload)


register_adapter(RptrAdapter())
register_adapter(Bt9Adapter())
register_adapter(ChampSimAdapter())
