"""BT9 (Branch Trace version 9) text trace adapter.

BT9 is the CBP-2016 / SPA branch-trace container: a text header, a
static control-flow graph (``BT9_NODES`` — one line per static branch,
``BT9_EDGES`` — one line per observed (branch, outcome) arc), and a
dynamic ``BT9_EDGE_SEQUENCE`` replaying the committed execution as a
walk over that graph::

    BT9_SPA_TRACE_FORMAT version: 0
    ...key: value header lines...
    BT9_NODES
    NODE <id> <virt_addr> <phys_addr> <opcode> <size> ["CLASS+TOKENS"]
    BT9_EDGES
    EDGE <id> <src> <dest> <T|N> <br_virt_target> <br_phys_target> \
         <inst_cnt> <traverse_cnt>
    BT9_EDGE_SEQUENCE
    <edge id per line>

Normalisation into RPTR:

* Each sequence entry emits one branch record for the edge's *source*
  node (pc = node virtual address, direction = the edge's ``T``/``N``
  flag).  Nodes with virtual address 0 are pseudo nodes (the ``ENTRY``
  node 0 and a terminal ``EXIT``) and emit nothing.
* ``inst_cnt`` counts non-branch instructions traversed *along* the
  edge, i.e. the gap *before the next branch* — a pending-gap walk
  turns it into RPTR ``inst_gap`` (clamped to u16).
* Taken targets come straight from the edge's ``br_virt_target``;
  not-taken conditionals borrow the target of the node's taken edge
  (0 when the branch was never observed taken).
* Node class tokens map ``RET``→RET, ``CALL``→CALL, ``CND``→COND,
  ``IND``→INDIRECT, anything else →UNCOND; a node without a class
  string defaults to conditional.
* BT9 carries no memory information: ``load_addr`` is always 0.

The walk is validated: every edge's source must equal the previous
edge's destination, and a not-taken edge out of a non-conditional node
is a format error.  All diagnostics carry 1-based line numbers
(``unit="line"``).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import TraceFormatError
from repro.trace.records import BranchKind, BranchRecord

__all__ = ["Bt9Adapter", "write_bt9", "BT9_MAGIC"]

BT9_MAGIC = "BT9_SPA_TRACE_FORMAT"
_MAX_GAP = 0xFFFF


@dataclass(frozen=True)
class _Node:
    vaddr: int
    kind: BranchKind

    @property
    def pseudo(self) -> bool:
        return self.vaddr == 0


@dataclass(frozen=True)
class _Edge:
    src: int
    dest: int
    taken: bool
    target: int
    inst_cnt: int
    line: int


def _parse_int(token: str, what: str, line: int) -> int:
    """Parse a BT9 integer field (decimal or 0x hex; ``-`` means absent)."""
    if token == "-":
        return 0
    try:
        return int(token, 0)
    except ValueError as exc:
        raise TraceFormatError(
            f"malformed {what} {token!r}", offset=line, unit="line"
        ) from exc


def _class_kind(token: str) -> BranchKind:
    tokens = token.strip('"').split("+")
    if "RET" in tokens:
        return BranchKind.RET
    if "CALL" in tokens:
        return BranchKind.CALL
    if "CND" in tokens:
        return BranchKind.COND
    if "IND" in tokens:
        return BranchKind.INDIRECT
    return BranchKind.UNCOND


_KIND_CLASS = {
    BranchKind.COND: "JMP+DIRECT+CND",
    BranchKind.UNCOND: "JMP+DIRECT+UCD",
    BranchKind.CALL: "CALL+DIRECT+UCD",
    BranchKind.RET: "RET+IND+UCD",
    BranchKind.INDIRECT: "JMP+IND+UCD",
}


class Bt9Adapter:
    """Reader for BT9 text traces."""

    format = "bt9"
    version = 1

    def sniff(self, payload: bytes, filename: str = "") -> bool:
        return payload.lstrip()[: len(BT9_MAGIC)] == BT9_MAGIC.encode("ascii")

    def read(self, payload: bytes) -> list[BranchRecord]:
        try:
            text = payload.decode("ascii")
        except UnicodeDecodeError as exc:
            raise TraceFormatError(f"bt9 payload is not ASCII text: {exc}") from exc
        nodes, edges, sequence = self._parse_sections(text)
        # A node's canonical taken target, for backfilling not-taken
        # conditionals.  First sighting wins (indirect nodes may have
        # several; any stable choice works for direction prediction).
        taken_targets: dict[int, int] = {}
        for edge in edges.values():
            if edge.taken and edge.target and edge.src not in taken_targets:
                taken_targets[edge.src] = edge.target
        records: list[BranchRecord] = []
        gap = 0
        prev_dest: int | None = None
        for edge_id, line in sequence:
            edge = edges.get(edge_id)
            if edge is None:
                raise TraceFormatError(
                    f"edge sequence references unknown edge {edge_id}",
                    offset=line,
                    unit="line",
                )
            if prev_dest is not None and edge.src != prev_dest:
                raise TraceFormatError(
                    f"edge sequence discontinuity: edge {edge_id} leaves node "
                    f"{edge.src} but execution was at node {prev_dest}",
                    offset=line,
                    unit="line",
                )
            prev_dest = edge.dest
            src = nodes.get(edge.src)
            if src is None:
                raise TraceFormatError(
                    f"edge {edge_id} references unknown node {edge.src}",
                    offset=edge.line,
                    unit="line",
                )
            if edge.dest not in nodes:
                raise TraceFormatError(
                    f"edge {edge_id} references unknown node {edge.dest}",
                    offset=edge.line,
                    unit="line",
                )
            if not src.pseudo:
                if not edge.taken and src.kind is not BranchKind.COND:
                    raise TraceFormatError(
                        f"not-taken edge {edge_id} leaves non-conditional node "
                        f"{edge.src} ({src.kind.name})",
                        offset=edge.line,
                        unit="line",
                    )
                target = (
                    edge.target if edge.taken else taken_targets.get(edge.src, 0)
                )
                records.append(
                    BranchRecord(
                        pc=src.vaddr,
                        target=target,
                        taken=edge.taken,
                        kind=src.kind,
                        inst_gap=min(gap, _MAX_GAP),
                    )
                )
            gap = edge.inst_cnt
        return records

    def _parse_sections(
        self, text: str
    ) -> tuple[dict[int, _Node], dict[int, _Edge], list[tuple[int, int]]]:
        nodes: dict[int, _Node] = {}
        edges: dict[int, _Edge] = {}
        sequence: list[tuple[int, int]] = []
        section = "header"
        saw_magic = False
        for line_no, raw in enumerate(text.splitlines(), start=1):
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            if not saw_magic:
                if not line.startswith(BT9_MAGIC):
                    raise TraceFormatError(
                        f"bt9 header must start with {BT9_MAGIC}",
                        offset=line_no,
                        unit="line",
                    )
                saw_magic = True
                continue
            if line == "BT9_NODES":
                section = "nodes"
                continue
            if line == "BT9_EDGES":
                section = "edges"
                continue
            if line == "BT9_EDGE_SEQUENCE":
                section = "sequence"
                continue
            if section == "header":
                continue  # free-form "key: value" provenance lines
            if section == "nodes":
                nodes.update(self._parse_node(line, line_no))
            elif section == "edges":
                edges.update(self._parse_edge(line, line_no))
            else:
                for token in line.split():
                    sequence.append((_parse_int(token, "edge id", line_no), line_no))
        if not saw_magic:
            raise TraceFormatError(
                f"bt9 header must start with {BT9_MAGIC}", offset=1, unit="line"
            )
        if not nodes:
            raise TraceFormatError("bt9 trace has no BT9_NODES section")
        if not edges:
            raise TraceFormatError("bt9 trace has no BT9_EDGES section")
        return nodes, edges, sequence

    def _parse_node(self, line: str, line_no: int) -> dict[int, _Node]:
        fields = line.split()
        if fields[0] != "NODE" or len(fields) < 6:
            raise TraceFormatError(
                f"malformed NODE line {line!r}", offset=line_no, unit="line"
            )
        node_id = _parse_int(fields[1], "node id", line_no)
        vaddr = _parse_int(fields[2], "node virtual address", line_no)
        kind = _class_kind(fields[6]) if len(fields) > 6 else BranchKind.COND
        return {node_id: _Node(vaddr=vaddr, kind=kind)}

    def _parse_edge(self, line: str, line_no: int) -> dict[int, _Edge]:
        fields = line.split()
        if fields[0] != "EDGE" or len(fields) < 9:
            raise TraceFormatError(
                f"malformed EDGE line {line!r}", offset=line_no, unit="line"
            )
        direction = fields[4]
        if direction not in ("T", "N"):
            raise TraceFormatError(
                f"edge direction must be T or N, got {direction!r}",
                offset=line_no,
                unit="line",
            )
        return {
            _parse_int(fields[1], "edge id", line_no): _Edge(
                src=_parse_int(fields[2], "edge source", line_no),
                dest=_parse_int(fields[3], "edge destination", line_no),
                taken=direction == "T",
                target=_parse_int(fields[5], "edge target", line_no),
                inst_cnt=_parse_int(fields[7], "edge instruction count", line_no),
                line=line_no,
            )
        }


def write_bt9(records: list[BranchRecord] | tuple[BranchRecord, ...]) -> str:
    """Serialise RPTR records as a BT9 text trace.

    Builds the static graph (one node per distinct branch pc, pseudo
    ``ENTRY``/``EXIT`` nodes with virtual address 0) and replays the
    record stream as an edge sequence.  Distinct (source, destination,
    direction, target, gap) combinations become distinct edges with
    ``traverse_cnt`` multiplicity.  Loads cannot be represented and are
    dropped — BT9 is a pure branch-direction container.
    """
    node_ids: dict[int, int] = {}
    node_kinds: dict[int, BranchKind] = {}
    for rec in records:
        node_id = node_ids.setdefault(rec.pc, len(node_ids) + 1)
        known = node_kinds.setdefault(node_id, rec.kind)
        if known is not rec.kind:
            raise TraceFormatError(
                f"conflicting branch kinds for pc {rec.pc:#x}: "
                f"{known.name} vs {rec.kind.name}"
            )
    exit_id = len(node_ids) + 1
    edge_ids: dict[tuple[int, int, bool, int, int], int] = {}
    traverse: dict[int, int] = {}
    sequence: list[int] = []

    def edge_for(key: tuple[int, int, bool, int, int]) -> int:
        edge_id = edge_ids.setdefault(key, len(edge_ids))
        traverse[edge_id] = traverse.get(edge_id, 0) + 1
        sequence.append(edge_id)
        return edge_id

    if records:
        first = records[0]
        edge_for((0, node_ids[first.pc], True, first.pc, first.inst_gap))
        for i, rec in enumerate(records):
            nxt = records[i + 1] if i + 1 < len(records) else None
            dest = node_ids[nxt.pc] if nxt is not None else exit_id
            gap = nxt.inst_gap if nxt is not None else 0
            target = rec.target if rec.taken else 0
            edge_for((node_ids[rec.pc], dest, rec.taken, target, gap))

    total_insts = sum(rec.inst_gap + 1 for rec in records)
    lines = [
        f"{BT9_MAGIC} version: 0",
        "bt9_minor_version: 0",
        "has_physical_address: 0",
        f"total_instruction_count: {total_insts}",
        f"branch_instruction_count: {len(records)}",
        "BT9_NODES",
        "# NODE id virt_addr phys_addr opcode size class",
        "NODE 0 0x0 - 0x0 0",
    ]
    for pc, node_id in node_ids.items():
        kind = node_kinds[node_id]
        lines.append(
            f'NODE {node_id} {pc:#x} - 0x0 4 "{_KIND_CLASS[kind]}"'
        )
    lines.append(f"NODE {exit_id} 0x0 - 0x0 0")
    lines.append("BT9_EDGES")
    lines.append(
        "# EDGE id src dest taken br_virt_target br_phys_target "
        "inst_cnt traverse_cnt"
    )
    for (src, dest, taken, target, gap), edge_id in edge_ids.items():
        direction = "T" if taken else "N"
        target_str = f"{target:#x}" if taken else "-"
        lines.append(
            f"EDGE {edge_id} {src} {dest} {direction} {target_str} - "
            f"{gap} {traverse[edge_id]}"
        )
    lines.append("BT9_EDGE_SEQUENCE")
    lines.extend(str(edge_id) for edge_id in sequence)
    return "\n".join(lines) + "\n"
