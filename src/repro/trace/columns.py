"""Columnar (structure-of-arrays) trace storage and zero-copy sharing.

:mod:`repro.trace.io` decodes a trace by iterating ``struct`` records —
fine for one process reading one file, but a sweep fans a trace out to
many worker processes, and re-decoding ~28 bytes/record Python-side in
every worker dominates small-sweep wall time.  This module keeps the
trace as a single NumPy structured array over the *exact* RPTR record
layout, which buys three things:

* **vectorised decode** — ``ColumnarTrace.decode`` maps the packed
  record body straight into a structured array (one ``frombuffer``, no
  per-record Python), and validation of the format invariants runs as
  whole-column predicates;
* **zero-copy fan-out** — the array's bytes live in a
  :class:`multiprocessing.shared_memory.SharedMemory` segment published
  once by the parent; workers attach by name and view the same pages
  rather than regenerating or re-reading the trace;
* **columnar analysis** — the ``pc``/``taken``/... column views feed
  NumPy consumers (interval vectors, proxy models) without building
  record objects at all.

The pipeline itself still consumes :class:`~repro.trace.records.
BranchRecord` objects; :meth:`ColumnarTrace.to_records` materialises
them once per attached process via the same fast path the binary reader
uses.

Nothing here reads the environment — policy (whether a sweep uses
shared memory at all) belongs to the harness, see
:mod:`repro.harness.runner`.
"""

from __future__ import annotations

import os
import struct
from collections import OrderedDict
from collections.abc import Sequence
from multiprocessing import shared_memory
from pathlib import Path
from typing import Any

import numpy as np

from repro.errors import TraceError, TraceFormatError
from repro.telemetry import TELEMETRY
from repro.trace.adapters.base import ADAPTER_VERSION
from repro.trace.io import dumps_trace
from repro.trace.records import BranchKind, BranchRecord

__all__ = ["TRACE_DTYPE", "ColumnarTrace", "SharedTrace", "load_columnar"]

_HEADER = struct.Struct("<4sHQ")
_MAGIC = b"RPTR"
_VERSION = 1

#: The RPTR record layout as an unaligned little-endian structured
#: dtype.  Field order, widths, and the 28-byte stride match
#: ``repro.trace.io._RECORD`` (``<QQBBHQ``) exactly, so the packed
#: record body of a trace file *is* a valid buffer for this dtype.
TRACE_DTYPE = np.dtype(
    [
        ("pc", "<u8"),
        ("target", "<u8"),
        ("flags", "u1"),
        ("kind", "u1"),
        ("inst_gap", "<u2"),
        ("load_addr", "<u8"),
    ]
)

_MAX_KIND = max(int(kind) for kind in BranchKind)
_KIND_BY_VALUE = {int(kind): kind for kind in BranchKind}


class ColumnarTrace:
    """A branch trace as one structured NumPy array.

    Construct via :meth:`from_records`, :meth:`decode` (RPTR bytes), or
    :meth:`from_buffer` (a bare record-body buffer, e.g. a shared-memory
    view).  The backing array may be a view into memory owned by someone
    else — callers that need the trace to outlive the owner must
    ``copy()`` it.
    """

    __slots__ = ("array",)

    def __init__(self, array: "np.ndarray[Any, Any]") -> None:
        if array.dtype != TRACE_DTYPE:
            raise TraceError(f"expected {TRACE_DTYPE}, got {array.dtype}")
        self.array = array

    # ------------------------------------------------------------- #
    # construction

    @classmethod
    def from_records(cls, records: Sequence[BranchRecord]) -> "ColumnarTrace":
        """Pack record objects into a freshly owned columnar array."""
        data = dumps_trace(records)
        array = np.frombuffer(data, dtype=TRACE_DTYPE, offset=_HEADER.size).copy()
        return cls(array)

    @classmethod
    def decode(cls, data: bytes | memoryview) -> "ColumnarTrace":
        """Vectorised decode of RPTR bytes (header + packed records).

        The returned trace *views* ``data`` — no per-record copies are
        made.  Raises :class:`TraceError` on a bad header, truncation,
        or column contents that violate the format invariants.
        """
        if len(data) < _HEADER.size:
            raise TraceFormatError(
                "trace data truncated: missing header", offset=len(data)
            )
        magic, version, count = _HEADER.unpack_from(data, 0)
        if magic != _MAGIC:
            raise TraceFormatError(f"bad trace magic {magic!r}", offset=0)
        if version != _VERSION:
            raise TraceFormatError(f"unsupported trace version {version}", offset=4)
        expected = _HEADER.size + count * TRACE_DTYPE.itemsize
        if len(data) < expected:
            raise TraceFormatError(
                f"trace data truncated: expected {expected} bytes, got {len(data)}",
                offset=len(data),
            )
        array = np.frombuffer(data, dtype=TRACE_DTYPE, count=count, offset=_HEADER.size)
        trace = cls(array)
        trace.validate()
        return trace

    @classmethod
    def from_buffer(
        cls, buffer: Any, count: int, offset: int = 0
    ) -> "ColumnarTrace":
        """View ``count`` packed records inside a raw buffer (no copy)."""
        array = np.frombuffer(buffer, dtype=TRACE_DTYPE, count=count, offset=offset)
        return cls(array)

    # ------------------------------------------------------------- #
    # columns

    def __len__(self) -> int:
        return int(self.array.shape[0])

    @property
    def nbytes(self) -> int:
        """Size of the packed record body in bytes."""
        return int(self.array.nbytes)

    @property
    def pc(self) -> "np.ndarray[Any, Any]":
        return self.array["pc"]

    @property
    def target(self) -> "np.ndarray[Any, Any]":
        return self.array["target"]

    @property
    def taken(self) -> "np.ndarray[Any, Any]":
        return (self.array["flags"] & 1).astype(bool)

    @property
    def depends_on_load(self) -> "np.ndarray[Any, Any]":
        return (self.array["flags"] & 2).astype(bool)

    @property
    def kind(self) -> "np.ndarray[Any, Any]":
        return self.array["kind"]

    @property
    def inst_gap(self) -> "np.ndarray[Any, Any]":
        return self.array["inst_gap"]

    @property
    def load_addr(self) -> "np.ndarray[Any, Any]":
        return self.array["load_addr"]

    # ------------------------------------------------------------- #
    # validation / conversion

    def validate(self) -> None:
        """Whole-column checks of the RPTR format invariants.

        Mirrors what the scalar reader enforces per record: known kind
        codes, no undefined flag bits, and the always-taken rule for
        non-conditional kinds.
        """
        array = self.array
        if len(array) == 0:
            return

        def record_offset(mask: "np.ndarray[Any, Any]") -> int:
            return _HEADER.size + int(np.argmax(mask)) * TRACE_DTYPE.itemsize

        kinds = array["kind"]
        if int(kinds.max()) > _MAX_KIND:
            bad_kinds = kinds > _MAX_KIND
            raise TraceFormatError(
                f"unknown branch kind {int(kinds[bad_kinds][0])}",
                offset=record_offset(bad_kinds),
            )
        flags = array["flags"]
        if int(flags.max()) > 3:
            bad_flags = flags > 3
            raise TraceFormatError(
                f"undefined flag bits 0x{int(flags[bad_flags][0]):02x}",
                offset=record_offset(bad_flags),
            )
        not_taken_noncond = (kinds != int(BranchKind.COND)) & ((flags & 1) == 0)
        if bool(not_taken_noncond.any()):
            bad = int(kinds[not_taken_noncond][0])
            raise TraceFormatError(
                f"{BranchKind(bad).name} branches are always taken",
                offset=record_offset(not_taken_noncond),
            )

    def to_records(self) -> list[BranchRecord]:
        """Materialise :class:`BranchRecord` objects for the pipeline.

        One pass over ``tolist()`` rows through the same ``__new__``
        fast path the binary reader uses; :meth:`validate` is assumed
        to have run (``decode`` always does).
        """
        kinds = _KIND_BY_VALUE
        records: list[BranchRecord] = []
        append = records.append
        new = BranchRecord.__new__
        set_field = object.__setattr__
        for pc, target, flags, kind, inst_gap, load_addr in self.array.tolist():
            record = new(BranchRecord)
            set_field(record, "pc", pc)
            set_field(record, "target", target)
            set_field(record, "taken", bool(flags & 1))
            set_field(record, "kind", kinds[kind])
            set_field(record, "inst_gap", inst_gap)
            set_field(record, "load_addr", load_addr)
            set_field(record, "depends_on_load", bool(flags & 2))
            append(record)
        return records

    # ------------------------------------------------------------- #
    # shared memory

    def publish(self) -> "SharedTrace":
        """Copy the packed records into a new shared-memory segment.

        The caller owns the returned handle and must ``unlink()`` it
        exactly once (typically in a ``finally``); every attached
        process must ``close()`` its own handle.
        """
        shm = shared_memory.SharedMemory(create=True, size=max(self.nbytes, 1))
        view = np.frombuffer(shm.buf, dtype=TRACE_DTYPE, count=len(self))
        view[:] = self.array
        del view  # views into shm.buf must die before shm can close
        return SharedTrace(shm=shm, count=len(self), owner=True)


#: Per-process memo of decoded trace files, keyed by (path, mtime,
#: size, format version, adapter version) so an overwritten file — or
#: a trace re-converted by a newer adapter revision — is a miss, never
#: stale data.  Entries are decode *views* over the file bytes held
#: alive by the arrays — callers must treat them as immutable, like the
#: runner's record memo.
_COLUMN_CACHE: OrderedDict[tuple[str, int, int, int, int], ColumnarTrace] = (
    OrderedDict()
)
_COLUMN_CACHE_MAX = 4


def load_columnar(path: str | Path) -> ColumnarTrace:
    """Decode an RPTR trace file into a :class:`ColumnarTrace`, memoized.

    Repeated loads of an unchanged file in one process (a batch sweep
    touching the same workload from several groups, analysis tools
    re-reading a trace) return the cached decode instead of re-reading
    and re-validating; hits increment the ``trace.column_cache_hits``
    telemetry counter.  The cache key is (path, mtime_ns, size, RPTR
    format version, adapter version): rewriting the file invalidates
    its entry, and so does upgrading the trace format or the external-
    format adapters (a re-converted trace must never be served from a
    pre-conversion decode, even if mtime granularity hides the write).
    """
    target = Path(path)
    stat = os.stat(target)
    key = (str(target), stat.st_mtime_ns, stat.st_size, _VERSION, ADAPTER_VERSION)
    cached = _COLUMN_CACHE.get(key)
    if cached is not None:
        _COLUMN_CACHE.move_to_end(key)
        TELEMETRY.registry.counter("trace.column_cache_hits").inc()
        return cached
    trace = ColumnarTrace.decode(target.read_bytes())
    _COLUMN_CACHE[key] = trace
    if len(_COLUMN_CACHE) > _COLUMN_CACHE_MAX:
        _COLUMN_CACHE.popitem(last=False)
    return trace


def _tracker_register(name: str) -> None:
    """Re-register ``name`` with this process's resource tracker.

    Registration is a set-add, so this is idempotent; it rebalances the
    tracker before an owner unlink when attached processes sharing the
    same tracker (fork start method) have already unregistered the
    name, which would otherwise leave the tracker's final unregister
    unmatched.
    """
    try:  # pragma: no cover - tracker internals vary by platform
        from multiprocessing import resource_tracker

        resource_tracker.register(name, "shared_memory")
    except (ImportError, AttributeError, ValueError):
        pass


class SharedTrace:
    """A columnar trace living in a named shared-memory segment."""

    __slots__ = ("shm", "count", "owner", "_closed", "_unlinked")

    def __init__(
        self, shm: shared_memory.SharedMemory, count: int, owner: bool
    ) -> None:
        self.shm = shm
        self.count = count
        self.owner = owner
        self._closed = False
        self._unlinked = False

    @property
    def name(self) -> str:
        """Segment name another process passes to :meth:`attach`."""
        return str(self.shm.name)

    @classmethod
    def attach(cls, name: str, count: int) -> "SharedTrace":
        """Open an existing segment published by another process.

        The attaching process does not own the segment: its
        ``resource_tracker`` registration is dropped so that this
        process exiting (cleanly or not) never unlinks pages the
        publisher is still handing to other workers.
        """
        shm = shared_memory.SharedMemory(name=name)
        try:  # pragma: no cover - tracker internals vary by platform
            from multiprocessing import resource_tracker

            resource_tracker.unregister(shm._name, "shared_memory")  # type: ignore[attr-defined]
        except (ImportError, AttributeError, KeyError, ValueError):
            pass
        return cls(shm=shm, count=count, owner=False)

    def trace(self) -> ColumnarTrace:
        """Zero-copy columnar view of the shared records."""
        return ColumnarTrace.from_buffer(self.shm.buf, self.count)

    def to_records(self) -> list[BranchRecord]:
        """Materialise records without holding views into the segment."""
        trace = self.trace()
        try:
            return trace.to_records()
        finally:
            del trace

    def close(self) -> None:
        """Detach this process's mapping (idempotent)."""
        if not self._closed:
            self._closed = True
            self.shm.close()

    def unlink(self) -> None:
        """Destroy the segment (owner only, once; implies :meth:`close`)."""
        self.close()
        if self.owner and not self._unlinked:
            self._unlinked = True
            _tracker_register(self.shm._name)  # type: ignore[attr-defined]
            try:
                self.shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass
