"""Branch trace record types.

The simulator is *trace driven*: a workload is a sequence of
:class:`BranchRecord` objects describing the committed (correct-path)
conditional-branch stream of a program, in program order.  Non-branch
instructions are not recorded individually; each branch record carries the
number of non-branch instructions that precede it (``inst_gap``) together
with a compact summary of the memory behaviour of that gap (``load_addr``
and ``depends_on_load``).  This is the same compression used by the
Championship Branch Prediction trace format and keeps traces small enough
for a pure-Python pipeline model while preserving everything the branch
and memory subsystems need.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import TraceError

__all__ = ["BranchKind", "BranchRecord"]


class BranchKind(enum.IntEnum):
    """Classification of control-flow instructions.

    Only conditional branches (:attr:`COND`) are predicted by the
    direction predictors studied here; the other kinds still occupy
    pipeline slots, consult the BTB, and can end fetch groups.
    """

    COND = 0
    UNCOND = 1
    CALL = 2
    RET = 3
    INDIRECT = 4

    @property
    def is_conditional(self) -> bool:
        """True for direction-predicted branches."""
        return self is BranchKind.COND


@dataclass(frozen=True, slots=True)
class BranchRecord:
    """One committed branch and the instruction gap preceding it.

    Attributes:
        pc: Byte address of the branch instruction.
        target: Byte address of the taken target.
        taken: Committed direction (always True for unconditional kinds).
        kind: Control-flow classification.
        inst_gap: Number of non-branch instructions committed since the
            previous branch record (>= 0).
        load_addr: Address of a representative load issued in this gap, or
            0 when the gap contains no load worth modelling.
        depends_on_load: Whether the branch's condition depends on the
            load, i.e. the branch cannot resolve before the load returns.
            Meaningless when ``load_addr`` is 0.
    """

    pc: int
    target: int
    taken: bool
    kind: BranchKind = BranchKind.COND
    inst_gap: int = 4
    load_addr: int = 0
    depends_on_load: bool = False

    def __post_init__(self) -> None:
        if self.pc < 0:
            raise TraceError(f"branch pc must be non-negative, got {self.pc}")
        if self.inst_gap < 0:
            raise TraceError(
                f"inst_gap must be non-negative, got {self.inst_gap}"
            )
        if self.kind is not BranchKind.COND and not self.taken:
            raise TraceError(f"{self.kind.name} branches are always taken")

    @property
    def group_size(self) -> int:
        """Instructions this record contributes to the pipeline window."""
        return self.inst_gap + 1

    def with_direction(self, taken: bool) -> "BranchRecord":
        """Copy of this record with a different committed direction.

        Used by wrong-path synthesis, where replayed branches re-resolve
        with possibly different outcomes.
        """
        return BranchRecord(
            pc=self.pc,
            target=self.target,
            taken=taken,
            kind=self.kind,
            inst_gap=self.inst_gap,
            load_addr=self.load_addr,
            depends_on_load=self.depends_on_load,
        )


# A tiny sentinel used by pipeline code paths that must hand a record to
# bookkeeping before the first real branch arrives.
SENTINEL_RECORD = BranchRecord(pc=0, target=0, taken=True, kind=BranchKind.UNCOND, inst_gap=0)
