"""Trace streams and replay windows.

A :class:`TraceStream` is a restartable view over a sequence of
:class:`~repro.trace.records.BranchRecord`.  The pipeline consumes the
stream in order; the stream additionally maintains a bounded *replay
window* of recently delivered records which the front end uses to
synthesise wrong-path fetch (see ``repro.pipeline.wrongpath``).
"""

from __future__ import annotations

from collections import deque
from collections.abc import Iterable, Iterator, Sequence

from repro.errors import TraceError
from repro.trace.records import BranchRecord

__all__ = ["TraceStream"]


class TraceStream:
    """Sequential reader over a branch trace with a bounded history window.

    Args:
        records: The committed branch stream, in program order.
        window: Maximum number of recently read records retained for
            wrong-path replay.
    """

    def __init__(
        self, records: Sequence[BranchRecord] | Iterable[BranchRecord], window: int = 64
    ) -> None:
        if window <= 0:
            raise TraceError(f"replay window must be positive, got {window}")
        self._records: tuple[BranchRecord, ...] = tuple(records)
        self._pos = 0
        self._window: deque[BranchRecord] = deque(maxlen=window)

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[BranchRecord]:
        # Iteration is non-destructive; use next_record() to advance.
        return iter(self._records)

    @property
    def position(self) -> int:
        """Index of the next record to be delivered."""
        return self._pos

    @property
    def records(self) -> tuple[BranchRecord, ...]:
        """The full committed stream (read-only view for fast readers)."""
        return self._records

    @property
    def window(self) -> deque[BranchRecord]:
        """The live replay window.

        Exposed so externally-driven readers (the specialized engines of
        :mod:`repro.pipeline.specialize`) can keep the window current
        while consuming :attr:`records` by index; combine with
        :meth:`seek` to hand the stream back in a consistent state.
        """
        return self._window

    @property
    def exhausted(self) -> bool:
        """True once every record has been delivered."""
        return self._pos >= len(self._records)

    def next_record(self) -> BranchRecord:
        """Deliver the next committed record and push it into the window."""
        if self.exhausted:
            raise TraceError("trace stream exhausted")
        record = self._records[self._pos]
        self._pos += 1
        self._window.append(record)
        return record

    def peek(self) -> BranchRecord | None:
        """Next committed record without consuming it, or None at the end."""
        if self.exhausted:
            return None
        return self._records[self._pos]

    def recent(self, count: int) -> list[BranchRecord]:
        """Up to ``count`` most recently delivered records, oldest first.

        This is the raw material for wrong-path replay: after a
        misprediction, real hardware typically re-fetches nearby code
        (another loop iteration, the fall-through block), so the recent
        committed window is a faithful stand-in for the wrong path.
        """
        if count <= 0:
            return []
        window = list(self._window)
        return window[-count:]

    def seek(self, position: int) -> None:
        """Set the read position to ``position`` (records delivered externally).

        Used by readers that consume :attr:`records` directly (appending
        to :attr:`window` themselves) to resynchronise the stream before
        handing it to code that calls :meth:`next_record`.
        """
        if not 0 <= position <= len(self._records):
            raise TraceError(
                f"seek position {position} outside trace of {len(self._records)}"
            )
        self._pos = position

    def checkpoint(self) -> tuple[int, list[BranchRecord]]:
        """Snapshot of (position, replay window) for later :meth:`restore`."""
        return self._pos, list(self._window)

    def restore(self, state: tuple[int, list[BranchRecord]]) -> None:
        """Rewind to a :meth:`checkpoint`; the window contents come back too."""
        position, window = state
        self.seek(position)
        self._window.clear()
        self._window.extend(window)

    def restart(self) -> None:
        """Rewind to the beginning and clear the replay window."""
        self._pos = 0
        self._window.clear()
