"""repro: reproduction of "Towards the adoption of Local Branch
Predictors in Modern Out-of-Order Superscalar Processors" (MICRO 2019).

Quickstart::

    from repro.harness import run_system, build_system
    from repro.workloads import get_workload, generate_trace

    spec = get_workload("hpc-fft")
    trace = generate_trace(spec, 20_000)
    stats = run_system(trace, system="forward-walk")
    print(stats.ipc, stats.mpki)

Packages:

* :mod:`repro.core` — the paper's contribution: CBPw-Loop (two-level
  BHT + PT), checkpointing structures, and every repair scheme;
* :mod:`repro.predictors` — TAGE and other global baselines;
* :mod:`repro.pipeline` — the Skylake-like OOO core timing model;
* :mod:`repro.memory` — the cache hierarchy;
* :mod:`repro.trace` / :mod:`repro.workloads` — trace substrate and the
  202-workload synthetic suite;
* :mod:`repro.metrics` / :mod:`repro.harness` — measurement and the
  per-figure experiment harness;
* :mod:`repro.telemetry` — observability: metrics registry, structured
  event tracing, and run provenance manifests.
"""

from repro.errors import (
    ConfigError,
    ExperimentError,
    ReproError,
    SimulationError,
    TelemetryError,
    TraceError,
    WorkloadError,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "ReproError",
    "ConfigError",
    "TraceError",
    "WorkloadError",
    "SimulationError",
    "ExperimentError",
    "TelemetryError",
]
