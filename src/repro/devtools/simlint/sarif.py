"""SARIF 2.1.0 output: lint findings as PR annotations.

``repro lint --format sarif`` emits a single-run SARIF log that CI
uploads via ``github/codeql-action/upload-sarif``; GitHub then renders
each finding as an inline annotation on the pull request diff.  Only
the fields code-scanning consumes are emitted — tool metadata with the
full rule catalogue (so the UI shows the invariant a rule protects),
and one ``result`` per violation with a physical location.

Baseline-waived findings are *absent* by construction: the report
passed in is post-filtering, so annotations only mark findings the
gate would actually fail on.
"""

from __future__ import annotations

import json

from repro.devtools.simlint.engine import LintReport
from repro.devtools.simlint.model import all_rules
from repro.devtools.simlint.rules import load as _load_rules

__all__ = ["to_sarif", "render_sarif"]

_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)


def _uri(path: str) -> str:
    """Repo-relative, forward-slash artifact URI."""
    return path.lstrip("./").replace("\\", "/")


def to_sarif(report: LintReport) -> dict[str, object]:
    """The SARIF log object for one lint run."""
    _load_rules()
    rules = [
        {
            "id": rule.rule_id,
            "shortDescription": {"text": rule.summary},
            "fullDescription": {"text": rule.invariant},
            "defaultConfiguration": {"level": "error"},
        }
        for rule in all_rules()
    ]
    results = [
        {
            "ruleId": violation.rule,
            "level": "error",
            "message": {"text": violation.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {
                            "uri": _uri(violation.path),
                            "uriBaseId": "%SRCROOT%",
                        },
                        "region": {
                            "startLine": max(violation.line, 1),
                            "startColumn": violation.col + 1,
                        },
                    }
                }
            ],
        }
        for violation in report.violations
    ]
    return {
        "$schema": _SCHEMA,
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "simlint",
                        "informationUri": "docs/static-analysis.md",
                        "rules": rules,
                    }
                },
                "results": results,
            }
        ],
    }


def render_sarif(report: LintReport) -> str:
    """Serialized SARIF log, ready to write to a file or stdout."""
    return json.dumps(to_sarif(report), indent=2, sort_keys=True)
