"""simlint engine: discovery, the local and project passes, filtering.

v2 runs in two passes.  The **local pass** parses each file once and
runs every :class:`~repro.devtools.simlint.model.RuleKind.LOCAL` rule
that applies to the file's role; its raw output is cached per file
(content hash + rule versions) and fans out across processes with
``--jobs``.  The **project pass** assembles a
:class:`~repro.devtools.simlint.program.ProgramModel` from every parsed
file and runs the whole-program rules (lock order, determinism taint,
write-path purity), with the stale-suppression check last so it can see
every other rule's raw findings.  Suppressions, ``--select`` and the
baseline are applied at the end, over raw findings — so cache entries
survive filter changes.

All simulator knowledge lives in the rule modules; the engine only
orchestrates.
"""

from __future__ import annotations

import ast
import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.devtools.simlint.baseline import load_baseline, write_baseline
from repro.devtools.simlint.cache import (
    FileResult,
    LintCache,
    file_key,
    program_key,
)
from repro.devtools.simlint.model import (
    PARSE_RULE_ID,
    REGISTRY,
    STALE_RULE_ID,
    FileContext,
    LintError,
    ModuleRole,
    Violation,
    local_rules,
    project_rules,
    rules_signature,
)
from repro.devtools.simlint.program import build_program
from repro.devtools.simlint.rules import load as _load_rules
from repro.devtools.simlint.suppress import (
    Suppressions,
    from_directives,
    parse_suppressions,
)

__all__ = [
    "LintReport",
    "infer_role",
    "iter_python_files",
    "lint_source",
    "lint_file",
    "lint_paths",
    "scan_source",
]

#: Subpackages of ``repro`` with simulation semantics: bit-determinism
#: and speculative-state rules apply here.
SIM_PACKAGES = frozenset(
    {"core", "pipeline", "predictors", "memory", "workloads", "trace", "metrics"}
)

#: Directory names never descended into during discovery.
_SKIP_DIRS = frozenset(
    {"__pycache__", ".git", ".mypy_cache", ".ruff_cache", ".simlint-cache"}
)

#: Below this many cache misses a process pool costs more than it saves.
_MIN_FANOUT = 8


def _normalise(path: str) -> tuple[str, ...]:
    return tuple(part for part in os.path.normpath(path).split(os.sep) if part)


def infer_role(path: str) -> ModuleRole:
    """Classify a file by its repo-relative location."""
    parts = _normalise(path)
    name = parts[-1] if parts else ""
    if "tests" in parts or "benchmarks" in parts or name == "conftest.py":
        return ModuleRole.TEST
    if "tools" in parts or "examples" in parts or name == "setup.py":
        return ModuleRole.TOOL
    if "repro" in parts:
        index = parts.index("repro")
        sub = parts[index + 1] if index + 1 < len(parts) else ""
        if sub in SIM_PACKAGES:
            return ModuleRole.SIM
        if sub == "telemetry":
            return ModuleRole.TELEMETRY
        if sub == "service":
            return ModuleRole.SERVICE
        if sub == "cli.py":
            return ModuleRole.CLI
        return ModuleRole.LIB
    return ModuleRole.UNKNOWN


def iter_python_files(paths: Sequence[str]) -> list[str]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    found: list[str] = []
    for path in paths:
        if os.path.isfile(path):
            found.append(path)
        elif os.path.isdir(path):
            for root, dirs, files in os.walk(path):
                dirs[:] = sorted(d for d in dirs if d not in _SKIP_DIRS)
                found.extend(
                    os.path.join(root, f) for f in sorted(files) if f.endswith(".py")
                )
        else:
            raise LintError(f"no such file or directory: {path!r}")
    return sorted(dict.fromkeys(found))


def _resolve_select(select: Iterable[str] | None) -> frozenset[str]:
    _load_rules()
    if select is None:
        return frozenset(REGISTRY)
    chosen = frozenset(select)
    unknown = chosen - set(REGISTRY)
    if unknown:
        known = ", ".join(sorted(REGISTRY))
        raise LintError(
            f"unknown rule id(s) {sorted(unknown)}; known rules: {known}"
        )
    return chosen


# ----------------------------------------------------------------- #
# local pass


def _parse(source: str, path: str) -> ast.Module | Violation:
    try:
        return ast.parse(source, filename=path)
    except (SyntaxError, ValueError) as exc:
        line = getattr(exc, "lineno", None) or 1
        col = getattr(exc, "offset", None) or 0
        return Violation(
            path=path,
            line=line,
            col=col,
            rule=PARSE_RULE_ID,
            message=f"file does not parse: {exc.args[0] if exc.args else exc}",
        )


def scan_source(path: str, source: str) -> FileResult:
    """Run every applicable local rule; raw findings, no filtering."""
    _load_rules()
    suppressions = parse_suppressions(source)
    parsed = _parse(source, path)
    if isinstance(parsed, Violation):
        return FileResult(
            violations=(parsed,),
            directives=suppressions.directives,
            parse_ok=False,
        )
    role = infer_role(path)
    ctx = FileContext(
        path=path,
        role=role,
        source=source,
        tree=parsed,
        parts=_normalise(path),
    )
    found = [
        violation
        for rule in local_rules()
        if rule.applies(role)
        for violation in rule.check(ctx)
    ]
    return FileResult(
        violations=tuple(sorted(found, key=Violation.sort_key)),
        directives=suppressions.directives,
        parse_ok=True,
    )


def _scan_worker(item: tuple[str, str]) -> FileResult:
    """Process-pool entry point for one (path, source) unit."""
    return scan_source(*item)


def _read(path: str) -> str:
    try:
        with open(path, "r", encoding="utf-8") as handle:
            return handle.read()
    except OSError as exc:
        raise LintError(f"cannot read {path!r}: {exc}") from exc


def _resolve_jobs(jobs: int) -> int:
    if jobs > 0:
        return jobs
    return min(os.cpu_count() or 1, 8)


def _local_pass(
    files: Sequence[str], cache: LintCache, jobs: int
) -> tuple[dict[str, str], dict[str, FileResult], dict[str, str]]:
    """Read + scan every file, via cache and process pool.

    Returns (sources, results, per-file cache keys).
    """
    signature = rules_signature(local_rules())
    sources: dict[str, str] = {}
    keys: dict[str, str] = {}
    results: dict[str, FileResult] = {}
    misses: list[str] = []
    for path in files:
        source = _read(path)
        sources[path] = source
        keys[path] = file_key(source, signature)
        hit = cache.load_file(path, keys[path])
        if hit is None:
            misses.append(path)
        else:
            results[path] = hit
    jobs = _resolve_jobs(jobs)
    if jobs > 1 and len(misses) >= _MIN_FANOUT:
        with ProcessPoolExecutor(max_workers=jobs) as pool:
            scanned = pool.map(
                _scan_worker,
                [(path, sources[path]) for path in misses],
                chunksize=max(1, len(misses) // (jobs * 4)),
            )
            for path, result in zip(misses, scanned):
                results[path] = result
    else:
        for path in misses:
            results[path] = scan_source(path, sources[path])
    for path in misses:
        cache.store_file(path, keys[path], results[path])
    return sources, results, keys


# ----------------------------------------------------------------- #
# project pass


def _project_pass(
    sources: dict[str, str],
    results: dict[str, FileResult],
    suppressions: dict[str, Suppressions],
) -> list[Violation]:
    """Build the program model and run every whole-program rule."""
    entries = []
    for path, result in sorted(results.items()):
        if not result.parse_ok:
            continue
        parsed = _parse(sources[path], path)
        if isinstance(parsed, Violation):  # raced with an edit; degrade
            continue
        entries.append(
            (path, infer_role(path), sources[path], parsed, _normalise(path))
        )
    model = build_program(entries)
    for path, result in results.items():
        model.raw_violations[path] = list(result.violations)
    model.suppressions = dict(suppressions)
    rules = project_rules()
    ordered = [rule for rule in rules if rule.rule_id != STALE_RULE_ID] + [
        rule for rule in rules if rule.rule_id == STALE_RULE_ID
    ]
    found: list[Violation] = []
    for rule in ordered:
        produced = list(rule.check(model))
        for violation in produced:
            model.raw_violations.setdefault(violation.path, []).append(violation)
        found.extend(produced)
    return found


# ----------------------------------------------------------------- #
# single-file entry points (local rules only; kept for library users)


def lint_source(
    source: str,
    path: str = "<string>",
    *,
    role: ModuleRole | None = None,
    select: Iterable[str] | None = None,
    respect_suppressions: bool = True,
) -> list[Violation]:
    """Lint raw source text as if it lived at ``path``.

    Runs the per-file rules only: whole-program rules need the module
    graph and are reached through :func:`lint_paths`.
    """
    chosen = _resolve_select(select)
    file_role = role if role is not None else infer_role(path)
    parsed = _parse(source, path)
    if isinstance(parsed, Violation):
        return [parsed]
    ctx = FileContext(
        path=path,
        role=file_role,
        source=source,
        tree=parsed,
        parts=_normalise(path),
    )
    violations = [
        violation
        for rule in local_rules()
        if rule.rule_id in chosen and rule.applies(file_role)
        for violation in rule.check(ctx)
    ]
    if respect_suppressions and violations:
        suppressions = parse_suppressions(source)
        violations = [v for v in violations if not suppressions.covers(v)]
    return sorted(violations, key=Violation.sort_key)


def lint_file(
    path: str,
    *,
    role: ModuleRole | None = None,
    select: Iterable[str] | None = None,
    respect_suppressions: bool = True,
) -> list[Violation]:
    """Lint one file from disk (per-file rules only)."""
    return lint_source(
        _read(path),
        path,
        role=role,
        select=select,
        respect_suppressions=respect_suppressions,
    )


# ----------------------------------------------------------------- #
# the full pipeline


@dataclass(frozen=True, slots=True)
class LintReport:
    """Outcome of linting a path set."""

    files: int
    violations: list[Violation] = field(default_factory=list)
    #: Findings silenced by the committed baseline (debt, not success).
    waived: int = 0

    @property
    def clean(self) -> bool:
        return not self.violations

    def counts(self) -> dict[str, int]:
        """Violation count per rule ID, sorted by ID."""
        tally: dict[str, int] = {}
        for violation in self.violations:
            tally[violation.rule] = tally.get(violation.rule, 0) + 1
        return dict(sorted(tally.items()))

    def as_dict(self) -> dict[str, object]:
        return {
            "version": 2,
            "files": self.files,
            "counts": self.counts(),
            "waived": self.waived,
            "violations": [v.as_dict() for v in self.violations],
        }


def lint_paths(
    paths: Sequence[str],
    *,
    select: Iterable[str] | None = None,
    respect_suppressions: bool = True,
    jobs: int = 1,
    cache_dir: str | None = None,
    baseline_path: str | None = None,
    update_baseline: bool = False,
) -> LintReport:
    """Lint files and directories; the core entry point behind the CLI.

    All rules always run (so cache records are complete); ``select``
    filters the report afterwards.  ``cache_dir=None`` disables the
    incremental cache, ``baseline_path=None`` disables the baseline.
    """
    chosen = _resolve_select(select)
    files = iter_python_files(paths)
    cache = LintCache(cache_dir)
    sources, results, keys = _local_pass(files, cache, jobs)
    suppressions = {
        path: from_directives(result.directives)
        for path, result in results.items()
    }

    project_sig = rules_signature(project_rules())
    project_cache_key = program_key(keys.items(), project_sig)
    project_found = cache.load_project(project_cache_key)
    if project_found is None:
        project_found = tuple(_project_pass(sources, results, suppressions))
        cache.store_project(project_cache_key, project_found)

    raw: list[Violation] = [
        violation for result in results.values() for violation in result.violations
    ]
    raw.extend(project_found)

    violations = [
        violation
        for violation in raw
        if violation.rule in chosen or violation.rule == PARSE_RULE_ID
    ]
    if respect_suppressions:
        violations = [
            violation
            for violation in violations
            if not (
                (supp := suppressions.get(violation.path)) is not None
                and supp.covers(violation)
            )
        ]
    violations.sort(key=Violation.sort_key)

    waived = 0
    if baseline_path is not None:
        if update_baseline:
            waived = write_baseline(baseline_path, violations)
            violations = []
        else:
            violations, waived = load_baseline(baseline_path).apply(violations)
    return LintReport(files=len(files), violations=violations, waived=waived)
