"""simlint engine: file discovery, role inference, rule dispatch.

The engine is deliberately small: it parses each file once, asks every
registered rule that *applies to the file's role* for violations, and
filters the result through suppression comments.  All simulator
knowledge lives in the rule modules.
"""

from __future__ import annotations

import ast
import os
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.devtools.simlint.model import (
    PARSE_RULE_ID,
    REGISTRY,
    FileContext,
    LintError,
    ModuleRole,
    Violation,
    all_rules,
)
from repro.devtools.simlint.rules import load as _load_rules
from repro.devtools.simlint.suppress import parse_suppressions

__all__ = [
    "LintReport",
    "infer_role",
    "iter_python_files",
    "lint_source",
    "lint_file",
    "lint_paths",
]

#: Subpackages of ``repro`` with simulation semantics: bit-determinism
#: and speculative-state rules apply here.
SIM_PACKAGES = frozenset(
    {"core", "pipeline", "predictors", "memory", "workloads", "trace", "metrics"}
)

#: Directory names never descended into during discovery.
_SKIP_DIRS = frozenset({"__pycache__", ".git", ".mypy_cache", ".ruff_cache"})


def _normalise(path: str) -> tuple[str, ...]:
    return tuple(part for part in os.path.normpath(path).split(os.sep) if part)


def infer_role(path: str) -> ModuleRole:
    """Classify a file by its repo-relative location."""
    parts = _normalise(path)
    name = parts[-1] if parts else ""
    if "tests" in parts or "benchmarks" in parts or name == "conftest.py":
        return ModuleRole.TEST
    if "tools" in parts or "examples" in parts or name == "setup.py":
        return ModuleRole.TOOL
    if "repro" in parts:
        index = parts.index("repro")
        sub = parts[index + 1] if index + 1 < len(parts) else ""
        if sub in SIM_PACKAGES:
            return ModuleRole.SIM
        if sub == "telemetry":
            return ModuleRole.TELEMETRY
        if sub == "service":
            return ModuleRole.SERVICE
        if sub == "cli.py":
            return ModuleRole.CLI
        return ModuleRole.LIB
    return ModuleRole.UNKNOWN


def iter_python_files(paths: Sequence[str]) -> list[str]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    found: list[str] = []
    for path in paths:
        if os.path.isfile(path):
            found.append(path)
        elif os.path.isdir(path):
            for root, dirs, files in os.walk(path):
                dirs[:] = sorted(d for d in dirs if d not in _SKIP_DIRS)
                found.extend(
                    os.path.join(root, f) for f in sorted(files) if f.endswith(".py")
                )
        else:
            raise LintError(f"no such file or directory: {path!r}")
    return sorted(dict.fromkeys(found))


def _resolve_select(select: Iterable[str] | None) -> frozenset[str]:
    _load_rules()
    if select is None:
        return frozenset(REGISTRY)
    chosen = frozenset(select)
    unknown = chosen - set(REGISTRY)
    if unknown:
        known = ", ".join(sorted(REGISTRY))
        raise LintError(
            f"unknown rule id(s) {sorted(unknown)}; known rules: {known}"
        )
    return chosen


def lint_source(
    source: str,
    path: str = "<string>",
    *,
    role: ModuleRole | None = None,
    select: Iterable[str] | None = None,
    respect_suppressions: bool = True,
) -> list[Violation]:
    """Lint raw source text as if it lived at ``path``."""
    chosen = _resolve_select(select)
    file_role = role if role is not None else infer_role(path)
    try:
        tree = ast.parse(source, filename=path)
    except (SyntaxError, ValueError) as exc:
        line = getattr(exc, "lineno", None) or 1
        col = getattr(exc, "offset", None) or 0
        return [
            Violation(
                path=path,
                line=line,
                col=col,
                rule=PARSE_RULE_ID,
                message=f"file does not parse: {exc.args[0] if exc.args else exc}",
            )
        ]
    ctx = FileContext(
        path=path,
        role=file_role,
        source=source,
        tree=tree,
        parts=_normalise(path),
    )
    violations = [
        violation
        for rule in all_rules()
        if rule.rule_id in chosen and rule.applies(file_role)
        for violation in rule.check(ctx)
    ]
    if respect_suppressions and violations:
        suppressions = parse_suppressions(source)
        violations = [v for v in violations if not suppressions.covers(v)]
    return sorted(violations, key=Violation.sort_key)


def lint_file(
    path: str,
    *,
    role: ModuleRole | None = None,
    select: Iterable[str] | None = None,
    respect_suppressions: bool = True,
) -> list[Violation]:
    """Lint one file from disk."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            source = handle.read()
    except OSError as exc:
        raise LintError(f"cannot read {path!r}: {exc}") from exc
    return lint_source(
        source,
        path,
        role=role,
        select=select,
        respect_suppressions=respect_suppressions,
    )


@dataclass(frozen=True, slots=True)
class LintReport:
    """Outcome of linting a path set."""

    files: int
    violations: list[Violation] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not self.violations

    def counts(self) -> dict[str, int]:
        """Violation count per rule ID, sorted by ID."""
        tally: dict[str, int] = {}
        for violation in self.violations:
            tally[violation.rule] = tally.get(violation.rule, 0) + 1
        return dict(sorted(tally.items()))

    def as_dict(self) -> dict[str, object]:
        return {
            "version": 1,
            "files": self.files,
            "counts": self.counts(),
            "violations": [v.as_dict() for v in self.violations],
        }


def lint_paths(
    paths: Sequence[str],
    *,
    select: Iterable[str] | None = None,
    respect_suppressions: bool = True,
) -> LintReport:
    """Lint files and directories; the core entry point behind the CLI."""
    chosen = _resolve_select(select)
    files = iter_python_files(paths)
    violations: list[Violation] = []
    for path in files:
        violations.extend(
            lint_file(
                path, select=chosen, respect_suppressions=respect_suppressions
            )
        )
    return LintReport(files=len(files), violations=sorted(violations, key=Violation.sort_key))
