"""Whole-program model: module graph, symbol table, call graph.

Local rules see one file at a time; the rules that guard concurrency
and determinism need to follow a value *across* modules — ``DET002``
asks "does wall-clock time flow into anything the simulation core can
reach?", which is unanswerable per file.  This module builds the shared
substrate those rules query:

* a **module graph** — every linted file, its inferred dotted module
  name, role, parse tree and import table;
* a **symbol table** — every top-level function, class, and method,
  addressable by qualified name (``repro.core.bht.BHT.update``);
* a **call graph** — resolved call edges between those symbols, built
  from syntactic evidence only: direct names, imported aliases,
  ``module.attr`` chains, ``self``/``cls`` method calls (including
  single-level base-class resolution), and constructor calls.

The resolver is deliberately an *under*-approximation: an edge exists
only when the callee is identified with confidence, so project rules
built on reachability produce no speculative findings from dynamic
dispatch.  The cost is that truly dynamic calls (telemetry handles,
callbacks) are invisible — which is the right trade for a gate that
must stay near zero false positives.

The engine attaches each file's raw (pre-suppression) findings and its
parsed suppression directives to the model so late passes like
``STALE001`` can cross-reference them.
"""

from __future__ import annotations

import ast
from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Iterator, Sequence

from repro.devtools.simlint.model import ModuleRole, Violation

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.devtools.simlint.suppress import Suppressions

__all__ = [
    "CallSite",
    "FunctionInfo",
    "ModuleInfo",
    "ProgramModel",
    "build_program",
    "dotted_chain",
    "module_name_for",
]

#: Subpackages forming the simulation core: the detailed engine and the
#: structures it drives every cycle.  Reachability for DET002/PURE001
#: starts here.
CORE_PREFIXES = ("repro.core", "repro.pipeline", "repro.predictors")

#: Top-level trees outside ``src`` that map onto module names.
_TOP_DIRS = frozenset({"tools", "benchmarks", "examples", "tests"})


def dotted_chain(node: ast.expr) -> tuple[str, ...]:
    """Flatten ``a.b.c`` into ``("a","b","c")``; empty when impure."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return tuple(reversed(parts))
    return ()


def module_name_for(parts: Sequence[str]) -> str:
    """Dotted module name for normalised path parts.

    ``("src","repro","core","bht.py")`` → ``repro.core.bht``;
    ``("tools","loadtest.py")`` → ``tools.loadtest``; files outside any
    recognised tree fall back to their basename.
    """
    tail: Sequence[str] = parts
    if "repro" in parts:
        tail = parts[parts.index("repro") :]
    else:
        for index, part in enumerate(parts):
            if part in _TOP_DIRS:
                tail = parts[index:]
                break
        else:
            tail = parts[-1:]
    pieces = list(tail)
    if not pieces:
        return ""
    last = pieces[-1]
    if last.endswith(".py"):
        last = last[: -len(".py")]
    if last == "__init__":
        pieces = pieces[:-1]
    else:
        pieces[-1] = last
    return ".".join(pieces)


@dataclass(frozen=True, slots=True)
class CallSite:
    """Location of one resolved call edge (for violation reporting)."""

    path: str
    line: int
    col: int


@dataclass(slots=True)
class FunctionInfo:
    """One function or method in the symbol table."""

    qname: str
    module: str
    cls: str | None
    name: str
    node: ast.FunctionDef | ast.AsyncFunctionDef
    path: str
    role: ModuleRole


@dataclass(slots=True)
class ModuleInfo:
    """One linted file in the module graph."""

    name: str
    path: str
    role: ModuleRole
    source: str
    tree: ast.Module
    is_package: bool
    #: Local binding → fully qualified target it was imported as.
    imports: dict[str, str] = field(default_factory=dict)
    #: Class name → base-class names (qualified where resolvable).
    bases: dict[str, list[str]] = field(default_factory=dict)


class ProgramModel:
    """Queryable program-wide facts for project rules."""

    def __init__(self) -> None:
        self.modules: dict[str, ModuleInfo] = {}
        self.by_path: dict[str, ModuleInfo] = {}
        self.functions: dict[str, FunctionInfo] = {}
        #: Caller qname → callee qnames.
        self.calls: dict[str, set[str]] = {}
        #: (caller, callee) → first syntactic call site.
        self.call_sites: dict[tuple[str, str], CallSite] = {}
        #: Raw per-file findings (pre-suppression), attached by the engine.
        self.raw_violations: dict[str, list[Violation]] = {}
        #: Parsed suppression sets per path, attached by the engine.
        self.suppressions: "dict[str, Suppressions]" = {}

    # ------------------------------------------------------------- #
    # construction

    def add_module(self, info: ModuleInfo) -> None:
        self.modules[info.name] = info
        self.by_path[info.path] = info

    def index_symbols(self) -> None:
        """Populate the symbol table from every registered module."""
        for info in self.modules.values():
            for func in _iter_defs(info):
                self.functions[func.qname] = func

    def link_calls(self) -> None:
        """Resolve call edges; requires :meth:`index_symbols` first."""
        for info in self.modules.values():
            for func in _iter_defs(info):
                callees = self.calls.setdefault(func.qname, set())
                for call in _iter_calls(func.node):
                    target = self.resolve_call(info, call.func, func.cls)
                    if target is None or target == func.qname:
                        continue
                    callees.add(target)
                    self.call_sites.setdefault(
                        (func.qname, target),
                        CallSite(path=info.path, line=call.lineno, col=call.col_offset),
                    )

    # ------------------------------------------------------------- #
    # resolution

    def resolve_call(
        self, module: ModuleInfo, callee: ast.expr, cls: str | None
    ) -> str | None:
        """Qualified name of a call target, or None when unresolvable."""
        chain = dotted_chain(callee)
        if not chain:
            return None
        if chain[0] in ("self", "cls"):
            if cls is None or len(chain) != 2:
                return None
            return self._resolve_method(module, cls, chain[1])
        target = module.imports.get(chain[0])
        if target is not None:
            return self._lookup(".".join((target, *chain[1:])))
        return self._lookup(f"{module.name}." + ".".join(chain))

    def _resolve_method(self, module: ModuleInfo, cls: str, name: str) -> str | None:
        found = self._lookup_exact(f"{module.name}.{cls}.{name}")
        if found is not None:
            return found
        for base in module.bases.get(cls, []):
            found = self._lookup_exact(f"{base}.{name}")
            if found is not None:
                return found
        return None

    def _lookup_exact(self, qname: str) -> str | None:
        return qname if qname in self.functions else None

    def _lookup(self, qname: str) -> str | None:
        if qname in self.functions:
            return qname
        # A bare class call is its constructor.
        init = f"{qname}.__init__"
        if init in self.functions:
            return init
        return None

    # ------------------------------------------------------------- #
    # queries

    def functions_in(self, *prefixes: str) -> Iterator[FunctionInfo]:
        """Functions whose module name starts with any given prefix."""
        for func in self.functions.values():
            if any(
                func.module == prefix or func.module.startswith(prefix + ".")
                for prefix in prefixes
            ):
                yield func

    def reachable_from(self, roots: Iterable[str]) -> dict[str, str | None]:
        """BFS closure over the call graph.

        Returns ``{qname: predecessor}`` for every reachable function
        (roots map to None), so callers can rebuild the witness path a
        finding travelled.  Iteration order is made deterministic by
        sorting at every frontier.
        """
        parents: dict[str, str | None] = {}
        frontier = deque(sorted(set(roots) & set(self.functions)))
        for root in frontier:
            parents[root] = None
        while frontier:
            current = frontier.popleft()
            for callee in sorted(self.calls.get(current, ())):
                if callee not in parents:
                    parents[callee] = current
                    frontier.append(callee)
        return parents

    def core_reachable(self) -> dict[str, str | None]:
        """Functions reachable from the simulation core (with parents)."""
        roots = [func.qname for func in self.functions_in(*CORE_PREFIXES)]
        return self.reachable_from(roots)

    def witness_path(
        self, parents: dict[str, str | None], qname: str, limit: int = 6
    ) -> list[str]:
        """Root → ``qname`` chain recovered from a BFS parent map."""
        path = [qname]
        seen = {qname}
        while True:
            parent = parents.get(path[-1])
            if parent is None or parent in seen:
                break
            path.append(parent)
            seen.add(parent)
        path.reverse()
        if len(path) > limit:
            path = path[: limit - 1] + ["...", path[-1]]
        return path


def build_program(
    entries: Iterable[tuple[str, ModuleRole, str, ast.Module, Sequence[str]]],
) -> ProgramModel:
    """Assemble a :class:`ProgramModel` from parsed files.

    ``entries`` yields ``(path, role, source, tree, parts)`` tuples —
    exactly what the engine already has in hand after the local pass.
    Files that failed to parse are simply absent (they carry a
    ``PARSE001`` finding instead).
    """
    model = ProgramModel()
    for path, role, source, tree, parts in entries:
        name = module_name_for(parts)
        if not name:
            continue
        info = ModuleInfo(
            name=name,
            path=path,
            role=role,
            source=source,
            tree=tree,
            is_package=parts[-1] == "__init__.py" if parts else False,
        )
        _collect_imports(info)
        model.add_module(info)
    model.index_symbols()
    _resolve_bases(model)
    model.link_calls()
    return model


# ----------------------------------------------------------------- #
# construction helpers


def _package_of(info: ModuleInfo) -> str:
    if info.is_package:
        return info.name
    return info.name.rpartition(".")[0]


def _collect_imports(info: ModuleInfo) -> None:
    """Fill ``info.imports`` and raw class-base names from the tree."""
    for node in ast.walk(info.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname is not None:
                    info.imports[alias.asname] = alias.name
                else:
                    head = alias.name.split(".", 1)[0]
                    info.imports.setdefault(head, head)
        elif isinstance(node, ast.ImportFrom):
            base = node.module or ""
            if node.level:
                package = _package_of(info)
                for _ in range(node.level - 1):
                    package = package.rpartition(".")[0]
                base = f"{package}.{base}" if base else package
            for alias in node.names:
                if alias.name == "*":
                    continue
                bound = alias.asname or alias.name
                info.imports[bound] = f"{base}.{alias.name}" if base else alias.name
    for node in info.tree.body:
        if isinstance(node, ast.ClassDef):
            info.bases[node.name] = [
                ".".join(chain) for base in node.bases if (chain := dotted_chain(base))
            ]


def _resolve_bases(model: ProgramModel) -> None:
    """Qualify base-class names through each module's import table."""
    for info in model.modules.values():
        for cls, bases in info.bases.items():
            resolved: list[str] = []
            for base in bases:
                head, _, rest = base.partition(".")
                target = info.imports.get(head)
                if target is not None:
                    qualified = f"{target}.{rest}" if rest else target
                elif f"{info.name}.{base}" in model.modules or any(
                    qname.startswith(f"{info.name}.{base}.")
                    for qname in model.functions
                ):
                    qualified = f"{info.name}.{base}"
                else:
                    qualified = base
                resolved.append(qualified)
            info.bases[cls] = resolved


def _iter_defs(info: ModuleInfo) -> Iterator[FunctionInfo]:
    """Top-level functions and class methods of one module."""
    for node in info.tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield FunctionInfo(
                qname=f"{info.name}.{node.name}",
                module=info.name,
                cls=None,
                name=node.name,
                node=node,
                path=info.path,
                role=info.role,
            )
        elif isinstance(node, ast.ClassDef):
            for item in node.body:
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    yield FunctionInfo(
                        qname=f"{info.name}.{node.name}.{item.name}",
                        module=info.name,
                        cls=node.name,
                        name=item.name,
                        node=item,
                        path=info.path,
                        role=info.role,
                    )


def _iter_calls(func: ast.FunctionDef | ast.AsyncFunctionDef) -> Iterator[ast.Call]:
    """Every call in a function body, including nested scopes.

    Nested functions and lambdas execute (at the latest) when their
    enclosing function runs callbacks it created, so their calls are
    attributed to the enclosing symbol — a sound over-approximation for
    taint purposes.
    """
    for node in ast.walk(func):
        if isinstance(node, ast.Call):
            yield node
