"""Baseline file: ratchet new rules in without a big-bang cleanup.

When a new rule lands, pre-existing findings are recorded in a
committed ``.simlint-baseline.json``; the lint gate then fails only on
findings *not* in the baseline.  The debt stays visible (the report
prints the waived count) and can only shrink: re-running
``--update-baseline`` after fixes drops the fixed entries, and a
baseline entry never matches more occurrences than it recorded.

Matching is by ``(path, rule, message)`` with an occurrence count —
deliberately no line numbers, so editing elsewhere in a file does not
resurrect waived findings, while a *second* identical finding in the
same file still fails the gate.  Paths are stored relative to the
baseline file's directory with ``/`` separators, so the file is stable
across checkouts and operating systems.
"""

from __future__ import annotations

import json
import os
from collections import Counter
from typing import Iterable, Sequence

from repro.devtools.simlint.model import LintError, Violation

__all__ = [
    "DEFAULT_BASELINE",
    "Baseline",
    "load_baseline",
    "write_baseline",
]

#: Conventional committed location, relative to the invocation directory.
DEFAULT_BASELINE = ".simlint-baseline.json"

_VERSION = 1


def _rel(path: str, root: str) -> str:
    try:
        rel = os.path.relpath(path, root)
    except ValueError:  # different drive on Windows
        rel = path
    return rel.replace(os.sep, "/")


class Baseline:
    """Occurrence-counted waivers keyed on (relative path, rule, message)."""

    def __init__(self, entries: Counter[tuple[str, str, str]], root: str) -> None:
        self.entries = entries
        self.root = root

    @property
    def total(self) -> int:
        return sum(self.entries.values())

    def apply(
        self, violations: Iterable[Violation]
    ) -> tuple[list[Violation], int]:
        """Split findings into (new, waived-count).

        Each baseline entry waives at most its recorded number of
        occurrences; extras of the same finding are new.
        """
        budget = Counter(self.entries)
        fresh: list[Violation] = []
        waived = 0
        for violation in violations:
            key = (_rel(violation.path, self.root), violation.rule, violation.message)
            if budget[key] > 0:
                budget[key] -= 1
                waived += 1
            else:
                fresh.append(violation)
        return fresh, waived


def load_baseline(path: str) -> Baseline:
    """Read a baseline file; missing file means an empty baseline."""
    root = os.path.dirname(os.path.abspath(path))
    try:
        with open(path, "r", encoding="utf-8") as handle:
            data = json.load(handle)
    except FileNotFoundError:
        return Baseline(Counter(), root)
    except (OSError, ValueError) as exc:
        raise LintError(f"unreadable baseline {path!r}: {exc}") from exc
    if not isinstance(data, dict) or data.get("version") != _VERSION:
        raise LintError(
            f"baseline {path!r} has unsupported format "
            f"(expected version {_VERSION})"
        )
    entries: Counter[tuple[str, str, str]] = Counter()
    for item in data.get("entries", []):
        try:
            key = (str(item["path"]), str(item["rule"]), str(item["message"]))
            count = int(item.get("count", 1))
        except (KeyError, TypeError, ValueError) as exc:
            raise LintError(f"malformed baseline entry in {path!r}: {item!r}") from exc
        if count > 0:
            entries[key] += count
    return Baseline(entries, root)


def write_baseline(path: str, violations: Sequence[Violation]) -> int:
    """Record the given findings as the new baseline; returns entry count."""
    root = os.path.dirname(os.path.abspath(path))
    entries: Counter[tuple[str, str, str]] = Counter(
        (_rel(v.path, root), v.rule, v.message) for v in violations
    )
    payload = {
        "version": _VERSION,
        "entries": [
            {"path": key[0], "rule": key[1], "message": key[2], "count": count}
            for key, count in sorted(entries.items())
        ],
    }
    tmp = f"{path}.tmp"
    with open(tmp, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    os.replace(tmp, path)
    return len(violations)
