"""Suppression comments: opt out of a rule with an audit trail.

Two forms are recognised (rule lists are comma-separated; ``*`` matches
every rule):

* line suppression — trailing comment on the violating line::

      slot = hash(pc) & mask  # simlint: ignore[DET001] -- pc is an int

* file suppression — a comment anywhere at column 0, typically in the
  header, silencing a rule for the whole file::

      # simlint: ignore-file[TEL001] -- bench measures telemetry itself

Everything after ``--`` is a free-form justification; the linter does
not require one, but the project's review convention does (see
``docs/static-analysis.md``).  Violations whose rule cannot be
suppressed (:data:`~repro.devtools.simlint.model.PARSE_RULE_ID`) ignore
both forms.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.devtools.simlint.model import PARSE_RULE_ID, Violation

__all__ = ["Suppressions", "parse_suppressions"]

_DIRECTIVE = re.compile(
    r"#\s*simlint:\s*(?P<kind>ignore-file|ignore)\[(?P<rules>[A-Z0-9*,\s]+)\]"
)


@dataclass(frozen=True, slots=True)
class Suppressions:
    """Parsed suppression directives for one file."""

    #: Rule IDs silenced for the whole file ("*" = every rule).
    file_rules: frozenset[str]
    #: Line number → rule IDs silenced on that line.
    line_rules: dict[int, frozenset[str]]

    def covers(self, violation: Violation) -> bool:
        if violation.rule == PARSE_RULE_ID:
            return False
        for scope in (self.file_rules, self.line_rules.get(violation.line, frozenset())):
            if "*" in scope or violation.rule in scope:
                return True
        return False


def parse_suppressions(source: str) -> Suppressions:
    """Extract suppression directives from raw source text.

    Scanning is line-based on purpose: suppression comments must stay
    greppable, and a directive inside a string literal is so unlikely in
    practice that AST-grade precision is not worth the cost.
    """
    file_rules: set[str] = set()
    line_rules: dict[int, frozenset[str]] = {}
    for lineno, text in enumerate(source.splitlines(), start=1):
        match = _DIRECTIVE.search(text)
        if match is None:
            continue
        rules = frozenset(
            part.strip() for part in match.group("rules").split(",") if part.strip()
        )
        if not rules:
            continue
        if match.group("kind") == "ignore-file":
            file_rules |= rules
        else:
            line_rules[lineno] = line_rules.get(lineno, frozenset()) | rules
    return Suppressions(file_rules=frozenset(file_rules), line_rules=line_rules)
