"""Suppression comments: opt out of a rule with an audit trail.

Two forms are recognised (rule lists are comma-separated; ``*`` matches
every rule):

* line suppression — trailing comment on the violating line, written as
  ``simlint: ignore[RULE] -- reason``;
* file suppression — a comment anywhere in the file (typically the
  header) written as ``simlint: ignore-file[RULE] -- reason``, silencing
  a rule for the whole file.

Everything after ``--`` is a free-form justification; the linter does
not require one, but the project's review convention does (see
``docs/static-analysis.md``).  Violations whose rule cannot be
suppressed (:data:`~repro.devtools.simlint.model.UNSUPPRESSABLE_RULES`)
ignore both forms.

Directives are extracted from real ``COMMENT`` tokens via
:mod:`tokenize`, so a directive *example* inside a docstring or string
literal is inert.  Files that cannot be tokenized (syntax errors —
already a ``PARSE001`` finding) fall back to a line scan, which only
matters for ``--no-suppress`` style audits since ``PARSE001`` is
unsuppressable anyway.

Every parsed directive is kept as a :class:`Directive` record: the
engine's ``STALE001`` pass compares them against the raw findings to
flag suppressions that no longer silence anything, and ``--fix``
rewrites or removes them in place.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass, field

from repro.devtools.simlint.model import UNSUPPRESSABLE_RULES, Violation

__all__ = ["Directive", "Suppressions", "from_directives", "parse_suppressions"]

_DIRECTIVE = re.compile(
    r"#\s*simlint:\s*(?P<kind>ignore-file|ignore)\[(?P<rules>[^\]]*)\]"
)

#: A rule id inside the brackets must look like one (``DET001``, ``*``);
#: anything else is recorded as malformed so STALE001 can point at it.
_RULE_TOKEN = re.compile(r"^(?:\*|[A-Z][A-Z0-9]{2,15})$")


@dataclass(frozen=True, slots=True)
class Directive:
    """One suppression comment, as written in the source."""

    #: 1-based line the comment sits on (for line directives this is
    #: also the line whose violations it silences).
    line: int
    #: ``"ignore"`` (line scope) or ``"ignore-file"`` (file scope).
    kind: str
    #: Well-formed rule ids named in the brackets (may include ``"*"``).
    rules: tuple[str, ...]
    #: Bracket entries that do not look like rule ids at all.
    malformed: tuple[str, ...] = ()

    @property
    def file_scoped(self) -> bool:
        return self.kind == "ignore-file"


@dataclass(frozen=True, slots=True)
class Suppressions:
    """Parsed suppression directives for one file."""

    #: Rule IDs silenced for the whole file ("*" = every rule).
    file_rules: frozenset[str]
    #: Line number → rule IDs silenced on that line.
    line_rules: dict[int, frozenset[str]]
    #: Every directive in source order (drives STALE001 and --fix).
    directives: tuple[Directive, ...] = field(default=())

    def covers(self, violation: Violation) -> bool:
        if violation.rule in UNSUPPRESSABLE_RULES:
            return False
        for scope in (self.file_rules, self.line_rules.get(violation.line, frozenset())):
            if "*" in scope or violation.rule in scope:
                return True
        return False


def _comment_lines(source: str) -> list[tuple[int, str]]:
    """(line, text) for every comment token; line-scan fallback on error."""
    comments: list[tuple[int, str]] = []
    try:
        for token in tokenize.generate_tokens(io.StringIO(source).readline):
            if token.type == tokenize.COMMENT:
                comments.append((token.start[0], token.string))
        return comments
    except (tokenize.TokenError, SyntaxError, IndentationError, ValueError):
        return [
            (lineno, text)
            for lineno, text in enumerate(source.splitlines(), start=1)
            if "#" in text
        ]


def from_directives(directives: tuple[Directive, ...]) -> Suppressions:
    """Build the queryable suppression set from parsed directives.

    Also the rehydration path for the incremental cache, which stores
    directives (not the derived maps) per file.
    """
    file_rules: set[str] = set()
    line_rules: dict[int, frozenset[str]] = {}
    for directive in directives:
        if not directive.rules:
            continue
        if directive.file_scoped:
            file_rules.update(directive.rules)
        else:
            line_rules[directive.line] = line_rules.get(
                directive.line, frozenset()
            ) | frozenset(directive.rules)
    return Suppressions(
        file_rules=frozenset(file_rules),
        line_rules=line_rules,
        directives=directives,
    )


def parse_suppressions(source: str) -> Suppressions:
    """Extract suppression directives from raw source text."""
    directives: list[Directive] = []
    for lineno, text in _comment_lines(source):
        match = _DIRECTIVE.search(text)
        if match is None:
            continue
        named = [part.strip() for part in match.group("rules").split(",")]
        named = [part for part in named if part]
        directives.append(
            Directive(
                line=lineno,
                kind=match.group("kind"),
                rules=tuple(part for part in named if _RULE_TOKEN.match(part)),
                malformed=tuple(
                    part for part in named if not _RULE_TOKEN.match(part)
                ),
            )
        )
    return from_directives(tuple(directives))
