"""Incremental-analysis cache: skip work whose inputs have not changed.

Two granularities, matching the two rule kinds:

* **per-file** — one JSON record per linted path under ``files/``,
  keyed on the file's content hash plus the *local* rules signature
  (IDs and versions).  A hit supplies the file's raw (pre-suppression)
  findings and its parsed suppression directives, so a warm run never
  tokenizes or parses the file at all.  Editing a file, or bumping any
  local rule's ``version``, invalidates exactly that record.
* **project** — one record for the whole-program pass, keyed on the
  program hash (every path with its content hash) plus the *project*
  rules signature.  Any file change misses this record, which is the
  honest cost of whole-program rules: their output may depend on any
  module.

Records store raw findings; suppression, ``--select`` and baseline
filtering always run afterwards so a cached entry stays valid when only
the filters change.  Corrupt or unreadable records degrade to a miss —
the cache is an accelerator, never a source of truth.  Writes go
through a temp file + ``os.replace`` so parallel lint invocations can
share a directory without torn records.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass
from typing import Any, Iterable

from repro.devtools.simlint.model import Violation
from repro.devtools.simlint.suppress import Directive

__all__ = [
    "DEFAULT_CACHE_DIR",
    "FileResult",
    "LintCache",
    "file_key",
    "program_key",
]

#: Default cache location, relative to the invocation directory.
DEFAULT_CACHE_DIR = ".simlint-cache"

#: Bump when the record layout changes; part of every key.
_LAYOUT = "simlint-cache-v1"


@dataclass(frozen=True, slots=True)
class FileResult:
    """Everything the local pass learned about one file."""

    #: Raw findings (pre-suppression), including PARSE001.
    violations: tuple[Violation, ...]
    #: Parsed suppression directives, in source order.
    directives: tuple[Directive, ...]
    #: False when the file failed to parse (no AST for the model).
    parse_ok: bool


def file_key(source: str, local_signature: str) -> str:
    """Cache key for one file's local pass."""
    digest = hashlib.sha256()
    digest.update(_LAYOUT.encode())
    digest.update(local_signature.encode())
    digest.update(b"\x00")
    digest.update(source.encode("utf-8", "surrogatepass"))
    return digest.hexdigest()


def program_key(
    file_hashes: Iterable[tuple[str, str]], project_signature: str
) -> str:
    """Cache key for the whole-program pass.

    ``file_hashes`` is (path, per-file key) for every discovered file —
    the per-file key already folds in content and local rule versions,
    and the project signature folds in the project rules.
    """
    digest = hashlib.sha256()
    digest.update(_LAYOUT.encode())
    digest.update(project_signature.encode())
    for path, key in sorted(file_hashes):
        digest.update(b"\x00")
        digest.update(path.encode("utf-8", "surrogatepass"))
        digest.update(b"\x01")
        digest.update(key.encode())
    return digest.hexdigest()


def _violation_to_dict(violation: Violation) -> dict[str, Any]:
    return violation.as_dict()


def _violation_from_dict(data: dict[str, Any]) -> Violation:
    return Violation(
        path=str(data["path"]),
        line=int(data["line"]),
        col=int(data["col"]),
        rule=str(data["rule"]),
        message=str(data["message"]),
    )


def _directive_to_dict(directive: Directive) -> dict[str, Any]:
    return {
        "line": directive.line,
        "kind": directive.kind,
        "rules": list(directive.rules),
        "malformed": list(directive.malformed),
    }


def _directive_from_dict(data: dict[str, Any]) -> Directive:
    return Directive(
        line=int(data["line"]),
        kind=str(data["kind"]),
        rules=tuple(str(rule) for rule in data["rules"]),
        malformed=tuple(str(entry) for entry in data["malformed"]),
    )


class LintCache:
    """Filesystem-backed incremental cache (``root=None`` disables it)."""

    def __init__(self, root: str | None) -> None:
        self.root = root

    # ------------------------------------------------------------- #
    # low-level record I/O

    def _record_path(self, bucket: str, name: str) -> str | None:
        if self.root is None:
            return None
        return os.path.join(self.root, bucket, name)

    def _read(self, path: str | None, key: str) -> dict[str, Any] | None:
        if path is None:
            return None
        try:
            with open(path, "r", encoding="utf-8") as handle:
                record = json.load(handle)
        except (OSError, ValueError):
            return None
        if not isinstance(record, dict) or record.get("key") != key:
            return None
        return record

    def _write(self, path: str | None, record: dict[str, Any]) -> None:
        if path is None:
            return
        tmp = f"{path}.{os.getpid()}.tmp"
        try:
            os.makedirs(os.path.dirname(path), exist_ok=True)
            with open(tmp, "w", encoding="utf-8") as handle:
                json.dump(record, handle, sort_keys=True)
            os.replace(tmp, path)
        except OSError:
            # Cache directory unusable (read-only checkout, quota):
            # linting still works, just cold.
            try:
                os.unlink(tmp)
            except OSError:
                pass

    # ------------------------------------------------------------- #
    # per-file records

    def _file_record(self, path: str) -> str | None:
        name = hashlib.sha256(path.encode("utf-8", "surrogatepass")).hexdigest()
        return self._record_path("files", f"{name[:32]}.json")

    def load_file(self, path: str, key: str) -> FileResult | None:
        record = self._read(self._file_record(path), key)
        if record is None:
            return None
        try:
            return FileResult(
                violations=tuple(
                    _violation_from_dict(item) for item in record["violations"]
                ),
                directives=tuple(
                    _directive_from_dict(item) for item in record["directives"]
                ),
                parse_ok=bool(record["parse_ok"]),
            )
        except (KeyError, TypeError, ValueError):
            return None

    def store_file(self, path: str, key: str, result: FileResult) -> None:
        self._write(
            self._file_record(path),
            {
                "key": key,
                "path": path,
                "violations": [
                    _violation_to_dict(v) for v in result.violations
                ],
                "directives": [
                    _directive_to_dict(d) for d in result.directives
                ],
                "parse_ok": result.parse_ok,
            },
        )

    # ------------------------------------------------------------- #
    # whole-program record

    def load_project(self, key: str) -> tuple[Violation, ...] | None:
        record = self._read(self._record_path("", "project.json"), key)
        if record is None:
            return None
        try:
            return tuple(
                _violation_from_dict(item) for item in record["violations"]
            )
        except (KeyError, TypeError, ValueError):
            return None

    def store_project(self, key: str, violations: Iterable[Violation]) -> None:
        self._write(
            self._record_path("", "project.json"),
            {
                "key": key,
                "violations": [_violation_to_dict(v) for v in violations],
            },
        )
