"""Command-line front end for simlint.

Invoked as ``repro lint ...`` (the CLI subcommand delegates here) or
directly via ``python -m repro.devtools.simlint``.

Exit codes are part of the contract (CI keys off them):

* ``0`` — all files parsed and no violations,
* ``1`` — at least one violation (including unparseable files),
* ``2`` — internal error: bad invocation, unknown rule, checker crash.

Defaults match the CI gate: the incremental cache lives in
``.simlint-cache`` and a committed ``.simlint-baseline.json`` (when
present) waives the recorded debt.  ``--no-cache``/``--no-baseline``
turn either off; library callers get both off unless asked
(:func:`~repro.devtools.simlint.engine.lint_paths`).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Sequence

from repro.devtools.simlint.baseline import DEFAULT_BASELINE
from repro.devtools.simlint.cache import DEFAULT_CACHE_DIR
from repro.devtools.simlint.engine import lint_paths
from repro.devtools.simlint.model import LintError, all_rules
from repro.devtools.simlint.rules import load as _load_rules

__all__ = ["build_parser", "run_lint", "main"]

EXIT_CLEAN = 0
EXIT_VIOLATIONS = 1
EXIT_INTERNAL = 2


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    """Lint flags, shared between ``simlint`` and ``repro lint``."""
    parser.add_argument(
        "paths",
        nargs="*",
        metavar="PATH",
        help="files or directories to lint (e.g. src tests tools)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help="violation report format (default: text)",
    )
    parser.add_argument(
        "--select",
        metavar="RULES",
        default=None,
        help="comma-separated rule IDs to run (default: all)",
    )
    parser.add_argument(
        "--no-suppress",
        action="store_true",
        help="report violations even where suppression comments cover them",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue and exit",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=0,
        metavar="N",
        help="worker processes for the per-file pass (0 = auto)",
    )
    parser.add_argument(
        "--fix",
        action="store_true",
        help="apply mechanical fixes (stale suppressions, unused imports, "
        "ReproError conversions) before reporting",
    )
    parser.add_argument(
        "--cache-dir",
        metavar="DIR",
        default=DEFAULT_CACHE_DIR,
        help=f"incremental-analysis cache directory (default: {DEFAULT_CACHE_DIR})",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the incremental cache for this run",
    )
    parser.add_argument(
        "--baseline",
        metavar="FILE",
        default=DEFAULT_BASELINE,
        help=f"baseline file of waived findings (default: {DEFAULT_BASELINE})",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="fail on baselined findings too (audit the full debt)",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="record the current findings as the new baseline and exit clean",
    )


def build_parser(prog: str = "repro lint") -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog=prog,
        description="Project-wide invariant checker for the simulator "
        "(determinism taint, lock discipline, telemetry purity, error "
        "hygiene, API typing).",
    )
    add_lint_arguments(parser)
    return parser


def _print_rules() -> None:
    _load_rules()
    for rule in all_rules():
        roles = ",".join(sorted(role.value for role in rule.roles))
        print(f"{rule.rule_id}  {rule.summary}")
        print(f"         invariant: {rule.invariant}")
        print(f"         applies to: {roles}  [{rule.kind.value}, v{rule.version}]")


def _baseline_path(args: argparse.Namespace) -> str | None:
    if args.no_baseline:
        return None
    if args.update_baseline:
        return args.baseline
    # A lint without a baseline file is simply un-baselined; do not
    # invent an empty one on disk.
    return args.baseline if os.path.exists(args.baseline) else None


def run_lint(args: argparse.Namespace) -> int:
    """Execute a parsed lint invocation; returns the process exit code."""
    if args.list_rules:
        _print_rules()
        return EXIT_CLEAN
    if not args.paths:
        print("error: no paths given (try: repro lint src tests tools)", file=sys.stderr)
        return EXIT_INTERNAL
    select = (
        [part.strip() for part in args.select.split(",") if part.strip()]
        if args.select
        else None
    )
    cache_dir = None if args.no_cache else args.cache_dir
    try:
        if args.fix:
            from repro.devtools.simlint.fixes import apply_fixes

            for fix in apply_fixes(args.paths, jobs=args.jobs, cache_dir=cache_dir):
                print(f"fixed {fix.path}:{fix.line}: {fix.rule} {fix.description}")
        report = lint_paths(
            args.paths,
            select=select,
            respect_suppressions=not args.no_suppress,
            jobs=args.jobs,
            cache_dir=cache_dir,
            baseline_path=_baseline_path(args),
            update_baseline=args.update_baseline,
        )
    except LintError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_INTERNAL
    except Exception as exc:  # simlint: ignore[ERR001] -- checker crash -> exit 2
        print(f"internal error: {type(exc).__name__}: {exc}", file=sys.stderr)
        return EXIT_INTERNAL
    if args.format == "json":
        print(json.dumps(report.as_dict(), indent=2, sort_keys=True))
    elif args.format == "sarif":
        from repro.devtools.simlint.sarif import render_sarif

        print(render_sarif(report))
    else:
        for violation in report.violations:
            print(violation.render())
        counts = ", ".join(f"{k}:{v}" for k, v in report.counts().items())
        status = "clean" if report.clean else f"violations ({counts})"
        waived = f", {report.waived} waived by baseline" if report.waived else ""
        print(f"simlint: {report.files} files, {status}{waived}")
    return EXIT_CLEAN if report.clean else EXIT_VIOLATIONS


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser(prog="simlint").parse_args(
        list(argv) if argv is not None else None
    )
    return run_lint(args)


if __name__ == "__main__":
    sys.exit(main())
