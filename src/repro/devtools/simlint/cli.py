"""Command-line front end for simlint.

Invoked as ``repro lint ...`` (the CLI subcommand delegates here) or
directly via ``python -m repro.devtools.simlint``.

Exit codes are part of the contract (CI keys off them):

* ``0`` — all files parsed and no violations,
* ``1`` — at least one violation (including unparseable files),
* ``2`` — internal error: bad invocation, unknown rule, checker crash.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Sequence

from repro.devtools.simlint.engine import lint_paths
from repro.devtools.simlint.model import LintError, all_rules
from repro.devtools.simlint.rules import load as _load_rules

__all__ = ["build_parser", "run_lint", "main"]

EXIT_CLEAN = 0
EXIT_VIOLATIONS = 1
EXIT_INTERNAL = 2


def build_parser(prog: str = "repro lint") -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog=prog,
        description="AST-based invariant checker for the simulator "
        "(determinism, speculative-state discipline, telemetry fidelity, "
        "error hygiene, API typing).",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        metavar="PATH",
        help="files or directories to lint (e.g. src tests tools)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="violation report format (default: text)",
    )
    parser.add_argument(
        "--select",
        metavar="RULES",
        default=None,
        help="comma-separated rule IDs to run (default: all)",
    )
    parser.add_argument(
        "--no-suppress",
        action="store_true",
        help="report violations even where suppression comments cover them",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue and exit",
    )
    return parser


def _print_rules() -> None:
    _load_rules()
    for rule in all_rules():
        roles = ",".join(sorted(role.value for role in rule.roles))
        print(f"{rule.rule_id}  {rule.summary}")
        print(f"         invariant: {rule.invariant}")
        print(f"         applies to: {roles}")


def run_lint(args: argparse.Namespace) -> int:
    """Execute a parsed lint invocation; returns the process exit code."""
    if args.list_rules:
        _print_rules()
        return EXIT_CLEAN
    if not args.paths:
        print("error: no paths given (try: repro lint src tests tools)", file=sys.stderr)
        return EXIT_INTERNAL
    select = (
        [part.strip() for part in args.select.split(",") if part.strip()]
        if args.select
        else None
    )
    try:
        report = lint_paths(
            args.paths,
            select=select,
            respect_suppressions=not args.no_suppress,
        )
    except LintError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_INTERNAL
    except Exception as exc:  # simlint: ignore[ERR001] -- checker crash -> exit 2
        print(f"internal error: {type(exc).__name__}: {exc}", file=sys.stderr)
        return EXIT_INTERNAL
    if args.format == "json":
        print(json.dumps(report.as_dict(), indent=2, sort_keys=True))
    else:
        for violation in report.violations:
            print(violation.render())
        counts = ", ".join(f"{k}:{v}" for k, v in report.counts().items())
        status = "clean" if report.clean else f"violations ({counts})"
        print(f"simlint: {report.files} files, {status}")
    return EXIT_CLEAN if report.clean else EXIT_VIOLATIONS


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser(prog="simlint").parse_args(
        list(argv) if argv is not None else None
    )
    return run_lint(args)


if __name__ == "__main__":
    sys.exit(main())
