"""``repro lint --fix``: mechanical repairs for the mechanical rules.

Only rule classes whose remedy is purely syntactic are automated:

* **STALE001** — dead suppression directives: stale rule ids are
  dropped from the bracket list; a directive with nothing live left is
  deleted (the whole line when nothing else is on it);
* **IMP001** — unused imports: the dead alias is removed from its
  statement, or the statement is deleted when every alias on it is
  dead;
* **ERR001** (raise form only) — ``raise ValueError(...)`` for a
  library failure becomes ``raise ReproError(...)``, importing it if
  needed.  The substitute is the hierarchy root on purpose: choosing
  the precise subclass is a judgement call, and a too-specific guess
  is worse than an honest general one.  Broad-handler findings are
  *not* auto-fixed — what to catch instead needs a human.

Fixes honour suppressions (a suppressed finding is a decision, not a
defect) and never touch a line the analysis did not flag.  All edits
for one file are planned against the original line numbering and
applied in a single pass through an edit map, so fix classes cannot
invalidate each other's positions.  The fixer rewrites files in place;
callers re-lint afterwards — the edits invalidate the incremental
cache via the content hash, so nothing special is needed.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from typing import Sequence

from repro.devtools.simlint.cache import LintCache
from repro.devtools.simlint.engine import (
    _local_pass,
    _project_pass,
    iter_python_files,
)
from repro.devtools.simlint.model import STALE_RULE_ID, Violation
from repro.devtools.simlint.rules.imports import unused_import_aliases
from repro.devtools.simlint.rules.stale import stale_rule_ids
from repro.devtools.simlint.suppress import Suppressions, from_directives

__all__ = ["Fix", "apply_fixes", "fix_source"]

_IMP_RULE = "IMP001"
_ERR_RULE = "ERR001"

#: The whole directive comment, through its trailing justification.
_DIRECTIVE_SPAN = re.compile(
    r"\s*#\s*simlint:\s*ignore(?:-file)?\[[^\]\n]*\][^#\n]*"
)

_ERR_NAME = re.compile(r"^raise (\w+) ")


@dataclass(frozen=True, slots=True)
class Fix:
    """One applied repair, for the ``--fix`` summary."""

    path: str
    line: int
    rule: str
    description: str


class _Edits:
    """Line-indexed edit map over one file's original numbering."""

    def __init__(self, lines: list[str]) -> None:
        self.lines = lines
        #: 0-based index → replacement text, or None for deletion.
        self.changed: dict[int, str | None] = {}

    def current(self, index: int) -> str | None:
        if index in self.changed:
            return self.changed[index]
        if 0 <= index < len(self.lines):
            return self.lines[index]
        return None

    def put(self, index: int, text: str | None) -> None:
        self.changed[index] = text

    def render(self, insert: tuple[int, str] | None) -> str:
        """Final text; ``insert`` is (original line index, new line)."""
        out: list[str] = []
        for index, line in enumerate(self.lines):
            if insert is not None and index == insert[0]:
                out.append(insert[1])
            text = self.current(index)
            if text is not None:
                out.append(text)
        if insert is not None and insert[0] >= len(self.lines):
            out.append(insert[1])
        return "\n".join(out)


def _plan_raises(
    edits: _Edits, findings: list[Violation], path: str
) -> tuple[list[Fix], bool]:
    fixes: list[Fix] = []
    converted = False
    for violation in sorted(findings, key=lambda v: v.line):
        match = _ERR_NAME.match(violation.message)
        if match is None:
            continue  # handler-form finding: not mechanically fixable
        name = match.group(1)
        index = violation.line - 1
        text = edits.current(index)
        if text is None:
            continue
        new_text, count = re.subn(
            rf"\braise\s+{re.escape(name)}\b", "raise ReproError", text, count=1
        )
        if count == 0:
            continue
        edits.put(index, new_text)
        converted = True
        fixes.append(
            Fix(path, violation.line, _ERR_RULE, f"raise {name} -> raise ReproError")
        )
    return fixes, converted


def _plan_imports(
    edits: _Edits, tree: ast.Module, flagged_lines: set[int], path: str
) -> list[Fix]:
    dead_by_stmt: dict[ast.Import | ast.ImportFrom, list[ast.alias]] = {}
    for node, alias, _ in unused_import_aliases(tree):
        if node.lineno in flagged_lines:
            dead_by_stmt.setdefault(node, []).append(alias)
    fixes: list[Fix] = []
    for node in sorted(dead_by_stmt, key=lambda n: n.lineno):
        dead = dead_by_stmt[node]
        keep = [alias for alias in node.names if alias not in dead]
        start = node.lineno - 1
        end = (node.end_lineno or node.lineno) - 1
        names = ", ".join(
            alias.name if alias.asname is None else f"{alias.name} as {alias.asname}"
            for alias in dead
        )
        if keep:
            original = edits.current(start) or ""
            indent = original[: len(original) - len(original.lstrip())]
            stmt: ast.stmt
            if isinstance(node, ast.Import):
                stmt = ast.Import(names=keep)
            else:
                stmt = ast.ImportFrom(module=node.module, names=keep, level=node.level)
            rendered = ast.unparse(
                ast.fix_missing_locations(ast.Module(body=[stmt], type_ignores=[]))
            )
            edits.put(start, indent + rendered)
            description = f"removed unused import name(s) {names}"
        else:
            edits.put(start, None)
            description = f"removed unused import statement ({names})"
        for index in range(start + 1, end + 1):
            edits.put(index, None)
        fixes.append(Fix(path, node.lineno, _IMP_RULE, description))
    return fixes


def _plan_stale(
    edits: _Edits,
    suppressions: Suppressions,
    raw: list[Violation],
    path: str,
) -> list[Fix]:
    # Only directives the analysis actually reported are touched: the
    # rule exempts TEST-role files (directive fixtures are directives
    # by design), and the fixer must honour that exemption too.
    flagged_lines = {v.line for v in raw if v.rule == STALE_RULE_ID}
    fixes: list[Fix] = []
    for directive in suppressions.directives:
        if directive.line not in flagged_lines:
            continue
        dead = {entry for entry, _ in stale_rule_ids(directive, raw)}
        if not dead:
            continue
        index = directive.line - 1
        text = edits.current(index)
        if text is None:
            continue  # the line is already gone (e.g. a dead import)
        live = [rule for rule in directive.rules if rule not in dead]
        if live:
            new_text = _DIRECTIVE_SPAN.sub(
                lambda m: re.sub(
                    r"\[[^\]]*\]", f"[{','.join(live)}]", m.group(0), count=1
                ),
                text,
                count=1,
            )
            description = f"dropped stale rule ids {sorted(dead)} from suppression"
        else:
            new_text = _DIRECTIVE_SPAN.sub("", text, count=1)
            description = "removed suppression that silenced nothing"
        if new_text == text:
            continue
        edits.put(index, None if not new_text.strip() else new_text)
        fixes.append(Fix(path, directive.line, STALE_RULE_ID, description))
    return fixes


def _import_anchor(tree: ast.Module) -> int:
    """Original line index the ReproError import is inserted at."""
    anchor = 0
    for node in tree.body:
        if isinstance(node, (ast.Import, ast.ImportFrom)):
            anchor = node.end_lineno or node.lineno
        elif (
            isinstance(node, ast.Expr)
            and isinstance(node.value, ast.Constant)
            and isinstance(node.value.value, str)
            and anchor == 0
        ):
            anchor = node.end_lineno or node.lineno  # module docstring
        else:
            break
    return anchor


def fix_source(
    path: str,
    source: str,
    raw: list[Violation],
    suppressions: Suppressions,
) -> tuple[str, list[Fix]]:
    """Apply every mechanical fix to one file's text; pure function."""
    try:
        tree = ast.parse(source, filename=path)
    except (SyntaxError, ValueError):
        return source, []  # PARSE001 territory; nothing mechanical to do
    active = [v for v in raw if not suppressions.covers(v)]
    edits = _Edits(source.splitlines())
    fixes: list[Fix] = []
    err_fixes, converted = _plan_raises(
        edits, [v for v in active if v.rule == _ERR_RULE], path
    )
    fixes.extend(err_fixes)
    fixes.extend(
        _plan_imports(
            edits, tree, {v.line for v in active if v.rule == _IMP_RULE}, path
        )
    )
    fixes.extend(_plan_stale(edits, suppressions, raw, path))
    insert: tuple[int, str] | None = None
    if converted and not re.search(r"\bReproError\b", source):
        insert = (_import_anchor(tree), "from repro.errors import ReproError")
    if not fixes:
        return source, []
    text = edits.render(insert)
    if source.endswith("\n") and not text.endswith("\n"):
        text += "\n"
    return text, fixes


def apply_fixes(
    paths: Sequence[str],
    *,
    jobs: int = 1,
    cache_dir: str | None = None,
) -> list[Fix]:
    """Run the analysis, rewrite files in place, return what changed."""
    files = iter_python_files(paths)
    cache = LintCache(cache_dir)
    sources, results, _ = _local_pass(files, cache, jobs)
    suppressions = {
        p: from_directives(result.directives) for p, result in results.items()
    }
    raw_by_path: dict[str, list[Violation]] = {
        p: list(result.violations) for p, result in results.items()
    }
    for violation in _project_pass(sources, results, suppressions):
        raw_by_path.setdefault(violation.path, []).append(violation)
    applied: list[Fix] = []
    for path in files:
        new_source, fixes = fix_source(
            path, sources[path], raw_by_path.get(path, []), suppressions[path]
        )
        if fixes and new_source != sources[path]:
            with open(path, "w", encoding="utf-8") as handle:
                handle.write(new_source)
            applied.extend(fixes)
    return applied
