"""``python -m repro.devtools.simlint`` entry point."""

from __future__ import annotations

import sys

from repro.devtools.simlint.cli import main

if __name__ == "__main__":
    sys.exit(main())
