"""simlint: AST-based invariant checker for the simulator.

Shipped rules (full catalogue in ``docs/static-analysis.md``):

========  ==========================================================
rule      invariant protected
========  ==========================================================
API001    public functions carry complete type annotations
DET001    simulations are bit-deterministic under a seed
ERR001    intentional library failures derive from ``ReproError``
SPEC001   speculative BHT/PT/OBQ state mutates only via update/repair
TEL001    telemetry off means bit-identical ``SimStats``
PARSE001  (pseudo-rule) every linted file parses
========  ==========================================================

Suppress with a trailing ``# simlint: ignore[RULE] -- reason`` comment
or a column-0 ``# simlint: ignore-file[RULE] -- reason`` line.

Programmatic use::

    from repro.devtools.simlint import lint_paths

    report = lint_paths(["src", "tests", "tools"])
    assert report.clean, report.violations
"""

from __future__ import annotations

from repro.devtools.simlint.engine import (
    LintReport,
    infer_role,
    iter_python_files,
    lint_file,
    lint_paths,
    lint_source,
)
from repro.devtools.simlint.model import (
    PARSE_RULE_ID,
    FileContext,
    LintError,
    ModuleRole,
    Rule,
    Violation,
    all_rules,
    register,
)

__all__ = [
    "LintReport",
    "LintError",
    "FileContext",
    "ModuleRole",
    "Rule",
    "Violation",
    "PARSE_RULE_ID",
    "all_rules",
    "register",
    "infer_role",
    "iter_python_files",
    "lint_source",
    "lint_file",
    "lint_paths",
]
