"""simlint: project-wide invariant checker for the simulator.

v2 runs two passes: per-file **local** rules, and whole-program
**project** rules that query a program model (module graph, symbol
table, call graph — see :mod:`repro.devtools.simlint.program`).

Shipped rules (full catalogue in ``docs/static-analysis.md``):

========  ==========================================================
rule      invariant protected
========  ==========================================================
API001    public functions carry complete type annotations
DET001    simulations are bit-deterministic under a seed (local)
DET002    nothing nondeterministic is reachable from the core (taint)
ERR001    intentional library failures derive from ``ReproError``
IMP001    every import binding is used
LOCK001   lock-guarded attributes are only touched under their lock
LOCK002   nested lock acquisitions follow one global order
PURE001   the telemetry/metrics write path never mutates sim state
SPEC001   speculative BHT/PT/OBQ state mutates only via update/repair
STALE001  every suppression still silences a real finding
TEL001    telemetry off means bit-identical ``SimStats``
PARSE001  (pseudo-rule) every linted file parses
========  ==========================================================

Suppress with a trailing ``# simlint: ignore[RULE] -- reason`` comment
or a column-0 ``# simlint: ignore-file[RULE] -- reason`` line
(``PARSE001``/``STALE001`` cannot be suppressed).

Programmatic use::

    from repro.devtools.simlint import lint_paths

    report = lint_paths(["src", "tests", "tools"])
    assert report.clean, report.violations

The CLI (``repro lint``) additionally enables the incremental cache,
the committed baseline, multi-process fan-out (``--jobs``), SARIF
output and the ``--fix`` autofixer.
"""

from __future__ import annotations

from repro.devtools.simlint.engine import (
    LintReport,
    infer_role,
    iter_python_files,
    lint_file,
    lint_paths,
    lint_source,
)
from repro.devtools.simlint.model import (
    PARSE_RULE_ID,
    STALE_RULE_ID,
    FileContext,
    LintError,
    ModuleRole,
    Rule,
    RuleKind,
    Violation,
    all_rules,
    register,
)
from repro.devtools.simlint.program import ProgramModel, build_program

__all__ = [
    "LintReport",
    "LintError",
    "FileContext",
    "ModuleRole",
    "ProgramModel",
    "Rule",
    "RuleKind",
    "Violation",
    "PARSE_RULE_ID",
    "STALE_RULE_ID",
    "all_rules",
    "build_program",
    "register",
    "infer_role",
    "iter_python_files",
    "lint_source",
    "lint_file",
    "lint_paths",
]
