"""Core data model for simlint: rules, violations, file context.

A *rule* is a stable identifier plus a checker; checkers register
themselves into :data:`REGISTRY` at import time (see
:mod:`repro.devtools.simlint.rules`).  Rule IDs are part of the
project's public contract — suppression comments, ``--select`` filters
and the JSON output all refer to them — so IDs are never reused or
renamed once shipped.
"""

from __future__ import annotations

import ast
import enum
from dataclasses import dataclass, field
from typing import Callable, Iterable, Iterator

from repro.errors import ReproError

__all__ = [
    "LintError",
    "ModuleRole",
    "RuleKind",
    "FileContext",
    "Violation",
    "Rule",
    "Checker",
    "REGISTRY",
    "register",
    "all_rules",
    "local_rules",
    "project_rules",
    "rules_signature",
    "PARSE_RULE_ID",
    "STALE_RULE_ID",
    "UNSUPPRESSABLE_RULES",
]

#: Pseudo-rule reported when a target file does not parse.  It cannot be
#: suppressed (an unparseable file cannot carry trustworthy comments).
PARSE_RULE_ID = "PARSE001"

#: Stale-suppression rule: a directive that silences nothing is itself a
#: violation.  Computed by the engine from every other rule's raw output
#: (see ``rules/stale.py`` for the registry entry), and unsuppressable —
#: a suppression of a stale-suppression finding could never match.
STALE_RULE_ID = "STALE001"

#: Rules suppression comments can never silence.
UNSUPPRESSABLE_RULES = frozenset({PARSE_RULE_ID, STALE_RULE_ID})


class LintError(ReproError):
    """simlint was invoked incorrectly (bad rule id, missing path)."""


class RuleKind(enum.Enum):
    """How a rule's checker is driven by the engine.

    ``LOCAL`` checkers see one :class:`FileContext` at a time and their
    results are cacheable per file.  ``PROJECT`` checkers run once per
    lint invocation against the whole
    :class:`~repro.devtools.simlint.program.ProgramModel` — they may
    follow the call graph across modules, so any file change invalidates
    their cached output as a unit.
    """

    LOCAL = "local"
    PROJECT = "project"


class ModuleRole(enum.Enum):
    """What kind of module a file is, deciding which rules apply.

    Roles are inferred from the path (see ``engine.infer_role``) and can
    be forced per call, which is how the test-suite fixtures exercise
    simulation-only rules from files living under ``tests/``.
    """

    SIM = "sim"  #: simulation semantics (core, pipeline, predictors, ...)
    LIB = "lib"  #: library infrastructure inside src/repro
    CLI = "cli"  #: user-facing entry points
    TELEMETRY = "telemetry"  #: observability subsystem (may read env/clock)
    SERVICE = "service"  #: the repro serve HTTP layer (threads/clock OK)
    TOOL = "tool"  #: developer scripts (tools/, examples/, setup.py)
    TEST = "test"  #: tests/ and benchmarks/ — white-box by design
    UNKNOWN = "unknown"


@dataclass(frozen=True, slots=True)
class FileContext:
    """Everything a checker may look at for one file."""

    path: str
    role: ModuleRole
    source: str
    tree: ast.Module
    #: Normalised, repo-relative path parts (``("src","repro","core","bht.py")``).
    parts: tuple[str, ...]

    def under(self, *prefix: str) -> bool:
        """True when the file lives under the given path prefix.

        The prefix is matched at any position so callers can write
        ``ctx.under("repro", "core")`` without caring whether the tree
        is addressed as ``src/repro`` or an installed ``repro``.
        """
        n = len(prefix)
        return any(
            self.parts[i : i + n] == prefix for i in range(len(self.parts) - n + 1)
        )


@dataclass(frozen=True, slots=True)
class Violation:
    """One rule violation at a source location."""

    path: str
    line: int
    col: int
    rule: str
    message: str

    def sort_key(self) -> tuple[str, int, int, str]:
        return (self.path, self.line, self.col, self.rule)

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"

    def as_dict(self) -> dict[str, object]:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "message": self.message,
        }


@dataclass(frozen=True, slots=True)
class Rule:
    """Metadata and checker for one stable rule ID."""

    rule_id: str
    summary: str
    #: The invariant this rule protects, shown by ``--list-rules``.
    invariant: str
    #: Roles the rule applies to; other files are skipped silently.
    #: Project rules use this to scope which files they *report into*.
    roles: frozenset[ModuleRole]
    #: Local checkers take a FileContext, project checkers a ProgramModel.
    check: Callable[..., Iterator[Violation]] = field(compare=False)
    #: Bumped whenever the checker's behaviour changes; part of the
    #: incremental-cache key so stale cached findings never survive a
    #: rule upgrade.
    version: int = 1
    kind: RuleKind = RuleKind.LOCAL

    def applies(self, role: ModuleRole) -> bool:
        return role in self.roles


Checker = Callable[[FileContext], Iterator[Violation]]

#: Rule ID → rule.  Populated by :func:`register` at rules-import time.
REGISTRY: dict[str, Rule] = {}


def register(
    rule_id: str,
    summary: str,
    invariant: str,
    roles: Iterable[ModuleRole],
    version: int = 1,
    kind: RuleKind = RuleKind.LOCAL,
) -> Callable[[Callable[..., Iterator[Violation]]], Callable[..., Iterator[Violation]]]:
    """Class/function decorator adding a checker to :data:`REGISTRY`."""

    def deco(
        check: Callable[..., Iterator[Violation]],
    ) -> Callable[..., Iterator[Violation]]:
        if rule_id in REGISTRY:
            raise LintError(f"duplicate simlint rule id {rule_id!r}")
        REGISTRY[rule_id] = Rule(
            rule_id=rule_id,
            summary=summary,
            invariant=invariant,
            roles=frozenset(roles),
            check=check,
            version=version,
            kind=kind,
        )
        return check

    return deco


def all_rules() -> list[Rule]:
    """Registered rules in stable (ID) order."""
    return [REGISTRY[rule_id] for rule_id in sorted(REGISTRY)]


def local_rules() -> list[Rule]:
    """Per-file rules in stable order (the cacheable set)."""
    return [rule for rule in all_rules() if rule.kind is RuleKind.LOCAL]


def project_rules() -> list[Rule]:
    """Whole-program rules in stable order."""
    return [rule for rule in all_rules() if rule.kind is RuleKind.PROJECT]


def rules_signature(rules: Iterable[Rule]) -> str:
    """Stable fingerprint of a rule set: IDs plus versions.

    Cache entries embed this so bumping any rule's ``version`` (or
    adding/removing a rule) invalidates exactly the findings that could
    differ.
    """
    return ",".join(f"{rule.rule_id}:{rule.version}" for rule in sorted_rules(rules))


def sorted_rules(rules: Iterable[Rule]) -> list[Rule]:
    """Rules sorted by ID (the project's canonical order)."""
    return sorted(rules, key=lambda rule: rule.rule_id)
