"""API001 — public functions carry complete type annotations.

The strict-typing gate (``mypy --strict`` in CI) only binds when it can
see types at module boundaries; an unannotated public function turns
every caller into ``Any`` and the gate into decoration.  This rule is
the fast, dependency-free half of that gate: every *public* function or
method in library and tool code must annotate all parameters and its
return type.

Public means: module-level functions and methods of public classes
whose name does not start with ``_``, plus ``__init__`` and the other
dunders (they are the most-called API of all).  Exemptions: nested
functions, lambdas, anything inside a private class, ``self``/``cls``
receivers, and functions decorated with ``@overload`` (the
implementation signature is the annotated one).
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.devtools.simlint.model import FileContext, ModuleRole, Violation, register

__all__ = ["check_public_annotations"]

_RULE = "API001"

_FuncDef = ast.FunctionDef | ast.AsyncFunctionDef


def _is_public(name: str) -> bool:
    return not name.startswith("_") or (name.startswith("__") and name.endswith("__"))


def _has_overload(func: _FuncDef) -> bool:
    for deco in func.decorator_list:
        target = deco.func if isinstance(deco, ast.Call) else deco
        name = target.attr if isinstance(target, ast.Attribute) else (
            target.id if isinstance(target, ast.Name) else ""
        )
        if name == "overload":
            return True
    return False


def _missing_bits(func: _FuncDef, *, is_method: bool) -> list[str]:
    """Human-readable list of unannotated pieces of one signature."""
    missing: list[str] = []
    args = func.args
    positional = list(args.posonlyargs) + list(args.args)
    if is_method and positional and not any(
        isinstance(deco, ast.Name) and deco.id == "staticmethod"
        for deco in func.decorator_list
    ):
        positional = positional[1:]  # self / cls
    for arg in positional + list(args.kwonlyargs):
        if arg.annotation is None:
            missing.append(f"parameter {arg.arg!r}")
    for vararg, star in ((args.vararg, "*"), (args.kwarg, "**")):
        if vararg is not None and vararg.annotation is None:
            missing.append(f"parameter {star}{vararg.arg}")
    if func.returns is None:
        missing.append("return type")
    return missing


def _check_function(
    ctx: FileContext, func: _FuncDef, *, is_method: bool
) -> Iterator[Violation]:
    if not _is_public(func.name) or _has_overload(func):
        return
    missing = _missing_bits(func, is_method=is_method)
    if missing:
        kind = "method" if is_method else "function"
        yield Violation(
            path=ctx.path,
            line=func.lineno,
            col=func.col_offset,
            rule=_RULE,
            message=(
                f"public {kind} {func.name!r} missing annotations: "
                + ", ".join(missing)
            ),
        )


@register(
    _RULE,
    summary="public function or method lacks full type annotations",
    invariant="the strict typing gate sees real types at every API boundary",
    roles=(
        ModuleRole.SIM,
        ModuleRole.LIB,
        ModuleRole.CLI,
        ModuleRole.TELEMETRY,
        ModuleRole.SERVICE,
        ModuleRole.TOOL,
    ),
)
def check_public_annotations(ctx: FileContext) -> Iterator[Violation]:
    for node in ctx.tree.body:
        if isinstance(node, _FuncDef):
            yield from _check_function(ctx, node, is_method=False)
        elif isinstance(node, ast.ClassDef) and _is_public(node.name):
            for item in node.body:
                if isinstance(item, _FuncDef):
                    yield from _check_function(ctx, item, is_method=True)
