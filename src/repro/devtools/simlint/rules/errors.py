"""ERR001 — library failures derive from ReproError; no blind catches.

The public contract (see :mod:`repro.errors`) is that *every* failure
the library signals on purpose is a :class:`~repro.errors.ReproError`
subclass, so callers — the CLI, the harness, user scripts — can write
``except ReproError`` once and let genuine programming errors
(``TypeError`` from a bad call, ``AttributeError`` from a typo)
propagate loudly.  Two anti-patterns erode that contract:

* raising a builtin exception (``ValueError``, ``RuntimeError`` ...)
  for a library-level failure — callers either miss it or are forced
  into broad catches;
* bare ``except:`` / ``except Exception:`` without re-raising — which
  swallows the programming errors the hierarchy exists to let through.

Allowed: ``NotImplementedError`` (abstract-method convention),
``SystemExit`` in CLI/tool entry points, bare ``raise`` re-raises,
``raise X from exc`` where ``X`` is a ReproError, and broad handlers
that re-raise.  Names the checker cannot resolve to a builtin (imported
exception types, local subclasses) are trusted — the rule is a
tripwire, not a type system.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.devtools.simlint.model import FileContext, ModuleRole, Violation, register

__all__ = ["check_error_hygiene"]

_RULE = "ERR001"

#: Builtin exceptions that indicate a library failure when raised on
#: purpose — exactly what ReproError subclasses are for.
_BUILTIN_EXCEPTIONS = frozenset(
    {
        "Exception",
        "BaseException",
        "ValueError",
        "TypeError",
        "KeyError",
        "IndexError",
        "LookupError",
        "RuntimeError",
        "ArithmeticError",
        "ZeroDivisionError",
        "AttributeError",
        "OSError",
        "IOError",
        "EOFError",
        "StopIteration",
        "UnicodeDecodeError",
    }
)

_BROAD_HANDLERS = frozenset({"Exception", "BaseException"})


def _exception_name(node: ast.expr | None) -> str | None:
    """Name of the raised/caught exception class, if syntactically plain."""
    if isinstance(node, ast.Call):
        node = node.func
    if isinstance(node, ast.Name):
        return node.id
    return None


def _reraises(handler: ast.ExceptHandler) -> bool:
    """Does the handler body contain a bare ``raise``?"""
    return any(
        isinstance(sub, ast.Raise) and sub.exc is None for sub in ast.walk(handler)
    )


@register(
    _RULE,
    summary="non-ReproError raise or blind exception handler",
    invariant="all intentional library failures derive from ReproError",
    roles=(
        ModuleRole.SIM,
        ModuleRole.LIB,
        ModuleRole.CLI,
        ModuleRole.TELEMETRY,
        ModuleRole.SERVICE,
        ModuleRole.TOOL,
    ),
)
def check_error_hygiene(ctx: FileContext) -> Iterator[Violation]:
    allow_system_exit = ctx.role in (ModuleRole.CLI, ModuleRole.TOOL)
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.Raise):
            name = _exception_name(node.exc)
            if name is None or name == "NotImplementedError":
                continue
            if name == "SystemExit" and allow_system_exit:
                continue
            if name in _BUILTIN_EXCEPTIONS or name == "SystemExit":
                yield Violation(
                    path=ctx.path,
                    line=node.lineno,
                    col=node.col_offset,
                    rule=_RULE,
                    message=(
                        f"raise {name} for a library failure; raise a "
                        "ReproError subclass (see repro.errors) so callers "
                        "can catch library errors in one place"
                    ),
                )
        elif isinstance(node, ast.ExceptHandler):
            if node.type is None:
                yield Violation(
                    path=ctx.path,
                    line=node.lineno,
                    col=node.col_offset,
                    rule=_RULE,
                    message="bare except: swallows programming errors; catch "
                    "ReproError (or a specific builtin) instead",
                )
                continue
            names = [
                _exception_name(entry)
                for entry in (
                    node.type.elts
                    if isinstance(node.type, ast.Tuple)
                    else [node.type]
                )
            ]
            broad = [name for name in names if name in _BROAD_HANDLERS]
            if broad and not _reraises(node):
                yield Violation(
                    path=ctx.path,
                    line=node.lineno,
                    col=node.col_offset,
                    rule=_RULE,
                    message=(
                        f"except {broad[0]} without re-raise swallows "
                        "programming errors; catch ReproError (or re-raise)"
                    ),
                )
