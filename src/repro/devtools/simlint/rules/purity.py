"""PURE001 — the telemetry/metrics write path stays pure.

``TEL001`` polices the *emit sites* inside simulation modules.  This
rule polices the other side of the contract: the telemetry and metrics
functions those emits land in.  Earlier simlint versions approximated
"write path" by module naming; v2 derives it from the call graph — a
function in ``repro.telemetry``/``repro.metrics`` is on the write path
exactly when the simulation core can reach it
(:meth:`~repro.devtools.simlint.program.ProgramModel.core_reachable`).

A write-path function must record and return; it may not:

* mutate a caller-owned argument (in-place method call, attribute or
  subscript store rooted at a parameter) — that writes telemetry state
  *back into simulation objects*, so disabling telemetry changes
  behaviour;
* declare ``global`` — per-event mutation of module state makes the
  write path order-dependent and unsafe under the threaded service;
* perform synchronous I/O (``open``/``print``/``input``) — the hot
  emit path must buffer; sinks flush outside the simulated region.

Clock reads are deliberately *not* flagged here: timestamps are
telemetry's raison d'être (and DET002 exempts the role for the same
reason).
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Iterator

from repro.devtools.simlint.model import ModuleRole, RuleKind, Violation, register

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.devtools.simlint.program import FunctionInfo, ProgramModel

__all__ = ["check_write_path_purity", "WRITE_PATH_PREFIXES"]

_RULE = "PURE001"

#: Module prefixes forming the telemetry/metrics write path.
WRITE_PATH_PREFIXES = ("repro.telemetry", "repro.metrics")

#: Method calls that mutate their receiver in place.
_MUTATING_METHODS = frozenset(
    {
        "append",
        "appendleft",
        "add",
        "clear",
        "discard",
        "extend",
        "insert",
        "pop",
        "popleft",
        "popitem",
        "remove",
        "reverse",
        "setdefault",
        "sort",
        "update",
    }
)

#: Builtins whose call is synchronous I/O.
_IO_BUILTINS = frozenset({"open", "print", "input"})


def _param_names(func: ast.FunctionDef | ast.AsyncFunctionDef) -> frozenset[str]:
    """Caller-owned parameter names (``self``/``cls`` excluded: mutating
    the instrument's own state is the whole point of recording)."""
    args = func.args
    names = [
        arg.arg
        for arg in (*args.posonlyargs, *args.args, *args.kwonlyargs)
    ]
    if args.vararg is not None:
        names.append(args.vararg.arg)
    if args.kwarg is not None:
        names.append(args.kwarg.arg)
    return frozenset(names) - {"self", "cls"}


def _root_name(node: ast.expr) -> str | None:
    """The ``Name`` a value/attribute/subscript chain is rooted at."""
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        node = node.value
    if isinstance(node, ast.Name):
        return node.id
    return None


def _impurities(
    func: ast.FunctionDef | ast.AsyncFunctionDef,
) -> Iterator[tuple[ast.AST, str]]:
    params = _param_names(func)
    for node in ast.walk(func):
        if isinstance(node, ast.Global):
            yield node, "declares 'global' (per-event module-state mutation)"
        elif isinstance(node, (ast.Attribute, ast.Subscript)) and isinstance(
            node.ctx, (ast.Store, ast.Del)
        ):
            root = _root_name(node.value)
            if root in params:
                yield node, f"writes into caller-owned argument {root!r}"
        elif isinstance(node, ast.Call):
            callee = node.func
            if isinstance(callee, ast.Name) and callee.id in _IO_BUILTINS:
                yield node, f"synchronous I/O via {callee.id}()"
            elif (
                isinstance(callee, ast.Attribute)
                and callee.attr in _MUTATING_METHODS
            ):
                root = _root_name(callee.value)
                if root in params:
                    yield (
                        node,
                        f"mutates caller-owned argument {root!r} "
                        f"via .{callee.attr}()",
                    )


def _write_path(model: "ProgramModel") -> Iterator[tuple["FunctionInfo", str]]:
    """(function, witness trail) for core-reachable write-path functions."""
    parents = model.core_reachable()
    for func in sorted(
        model.functions_in(*WRITE_PATH_PREFIXES), key=lambda f: f.qname
    ):
        if func.qname in parents:
            yield func, " -> ".join(model.witness_path(parents, func.qname))


@register(
    _RULE,
    summary="impure operation on the telemetry/metrics write path",
    invariant="recording an event never mutates simulation state or blocks",
    roles=(ModuleRole.TELEMETRY, ModuleRole.SIM),
    version=1,
    kind=RuleKind.PROJECT,
)
def check_write_path_purity(model: "ProgramModel") -> Iterator[Violation]:
    for func, trail in _write_path(model):
        for node, what in _impurities(func.node):
            yield Violation(
                path=func.path,
                line=getattr(node, "lineno", func.node.lineno),
                col=getattr(node, "col_offset", 0),
                rule=_RULE,
                message=(
                    f"{func.qname}() is on the telemetry write path (the "
                    f"simulation core reaches it via {trail}) but {what}; "
                    "write-path functions must only record into their own "
                    "instrument state"
                ),
            )
