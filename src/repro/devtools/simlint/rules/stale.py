"""STALE001 — suppression comments must still suppress something.

A suppression is a standing exception to an invariant; once the code it
excused is fixed (or the directive was wrong to begin with) it becomes
a silent hole the next regression walks through.  This pass runs last:
the engine attaches every file's *raw* (pre-suppression) findings and
its parsed directives to the program model, and each directive is
checked against them:

* a line ``simlint: ignore[RULE]`` is stale when no raw finding of
  ``RULE`` sits on its line (``*`` matches any suppressable finding);
* a file-level ``simlint: ignore-file[RULE]`` is stale when the file
  has no raw finding of ``RULE`` at all;
* rule ids that are not in the registry, entries that do not even look
  like rule ids, and directives naming no rules are always flagged —
  they can never have matched anything.

Findings are reported against the directive's own line, and the
``--fix`` autofixer deletes the dead part (the whole comment when every
named rule is stale, just the stale ids otherwise).  TEST-role files
are exempt: the suppression-parser fixtures *are* directives, by
design.  The rule itself is unsuppressable — a suppression of a
stale-suppression finding could never match.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator

from repro.devtools.simlint.model import (
    REGISTRY,
    STALE_RULE_ID,
    UNSUPPRESSABLE_RULES,
    ModuleRole,
    RuleKind,
    Violation,
    register,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.devtools.simlint.program import ProgramModel
    from repro.devtools.simlint.suppress import Directive

__all__ = ["check_stale_suppressions", "stale_rule_ids"]

_ROLES = tuple(role for role in ModuleRole if role is not ModuleRole.TEST)


def stale_rule_ids(
    directive: "Directive", raw: "list[Violation]"
) -> list[tuple[str, str]]:
    """(rule id or entry, reason) for each dead part of one directive.

    Shared with the autofixer: an id listed here is exactly what
    ``--fix`` strips from the comment.
    """
    matchable = [
        violation
        for violation in raw
        if violation.rule not in UNSUPPRESSABLE_RULES
        and (directive.file_scoped or violation.line == directive.line)
    ]
    present = {violation.rule for violation in matchable}
    dead: list[tuple[str, str]] = []
    for entry in directive.malformed:
        dead.append((entry, f"{entry!r} is not a rule id"))
    if not directive.rules and not directive.malformed:
        dead.append(("", "the directive names no rules"))
    for rule_id in directive.rules:
        if rule_id == "*":
            if not matchable:
                dead.append(("*", "no finding here for '*' to silence"))
        elif rule_id not in REGISTRY:
            dead.append((rule_id, f"unknown rule id {rule_id!r}"))
        elif rule_id not in present:
            scope = "this file" if directive.file_scoped else "this line"
            dead.append(
                (rule_id, f"no {rule_id} finding in {scope} to silence")
            )
    return dead


@register(
    STALE_RULE_ID,
    summary="suppression comment no longer silences any finding",
    invariant="every standing exception to an invariant is still needed",
    roles=_ROLES,
    version=1,
    kind=RuleKind.PROJECT,
)
def check_stale_suppressions(model: "ProgramModel") -> Iterator[Violation]:
    for path in sorted(model.suppressions):
        info = model.by_path.get(path)
        if info is None or info.role is ModuleRole.TEST:
            continue
        raw = model.raw_violations.get(path, [])
        for directive in model.suppressions[path].directives:
            for _, reason in stale_rule_ids(directive, raw):
                yield Violation(
                    path=path,
                    line=directive.line,
                    col=0,
                    rule=STALE_RULE_ID,
                    message=(
                        f"stale suppression: {reason}; remove or correct "
                        "the directive (repro lint --fix does this)"
                    ),
                )
