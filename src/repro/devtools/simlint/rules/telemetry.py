"""TEL001 — hot-path telemetry must be a plain emit.

PR 1's guarantee is that telemetry is *observationally free*: with
``REPRO_TELEMETRY=off`` every ``SimStats`` field is bit-identical to an
uninstrumented build.  That only holds if instrumentation sites are
fire-and-forget — the moment simulation logic consumes a telemetry
return value, or an instrument call's arguments mutate simulation
state, disabling telemetry changes behaviour (the NullRegistry returns
no-op instruments whose values never advance).

Inside simulation modules, a call reached through a telemetry handle
(``TELEMETRY``, a local ``tel``, or ``self._tel`` — the idioms blessed
in ``repro/telemetry/__init__``) is flagged when:

* its result is consumed — assigned, returned, compared, used as a
  call argument or an ``if`` test (``with tel.registry.timer(...):`` is
  allowed: the timer context manager is part of the emit idiom);
* any argument contains a walrus assignment or a call to a known
  mutating method (``pop``, ``append``, ``next`` ...), which would make
  the *argument evaluation itself* a simulation side effect.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.devtools.simlint.model import FileContext, ModuleRole, Violation, register

__all__ = ["check_telemetry_emits"]

_RULE = "TEL001"

#: Names a telemetry attribute chain may be rooted at.
_TEL_ROOTS = frozenset({"TELEMETRY", "tel", "_tel"})

#: Method names whose call mutates their receiver (or an iterator).
_MUTATING_METHODS = frozenset(
    {
        "pop",
        "popleft",
        "popitem",
        "append",
        "appendleft",
        "add",
        "remove",
        "discard",
        "clear",
        "update",
        "setdefault",
        "extend",
        "insert",
        "sort",
        "reverse",
        "write",
        "read",
        "readline",
        "__next__",
    }
)


def _telemetry_root(node: ast.expr) -> bool:
    """Does this attribute/call chain start at a telemetry handle?"""
    while True:
        if isinstance(node, ast.Attribute):
            node = node.value
        elif isinstance(node, ast.Call):
            node = node.func
        else:
            break
    if isinstance(node, ast.Name):
        return node.id in _TEL_ROOTS
    return False


def _mutates(node: ast.expr) -> bool:
    for sub in ast.walk(node):
        if isinstance(sub, ast.NamedExpr):
            return True
        if isinstance(sub, ast.Call):
            func = sub.func
            if isinstance(func, ast.Attribute) and func.attr in _MUTATING_METHODS:
                return True
            if isinstance(func, ast.Name) and func.id == "next":
                return True
    return False


class _Visitor(ast.NodeVisitor):
    def __init__(self, ctx: FileContext) -> None:
        self.ctx = ctx
        self.found: list[Violation] = []

    def _flag(self, node: ast.AST, message: str) -> None:
        self.found.append(
            Violation(
                path=self.ctx.path,
                line=getattr(node, "lineno", 1),
                col=getattr(node, "col_offset", 0),
                rule=_RULE,
                message=message,
            )
        )

    def _scan_call(self, call: ast.Call, consumed: bool) -> None:
        """Check one outermost telemetry call, then its argument trees."""
        if consumed:
            self._flag(
                call,
                "telemetry call result is consumed; hot-path instrumentation "
                "must be a plain emit so REPRO_TELEMETRY=off is a no-op",
            )
        for arg in list(call.args) + [kw.value for kw in call.keywords]:
            if _mutates(arg):
                self._flag(
                    arg,
                    "telemetry call argument has side effects; argument "
                    "evaluation must not mutate simulation state",
                )
        # Chained lookups (tel.registry.counter("x").inc()) nest calls in
        # the func position; their own arguments are scanned here too.
        func = call.func
        while isinstance(func, ast.Attribute):
            func = func.value
            if isinstance(func, ast.Call):
                self._scan_call(func, consumed=False)
                return

    def generic_visit(self, node: ast.AST) -> None:
        for field_name, value in ast.iter_fields(node):
            entries = value if isinstance(value, list) else [value]
            for entry in entries:
                if not isinstance(entry, ast.AST):
                    continue
                if isinstance(entry, ast.Call) and _telemetry_root(entry):
                    consumed = not (
                        isinstance(node, ast.Expr)
                        or (isinstance(node, ast.withitem) and field_name == "context_expr")
                    )
                    self._scan_call(entry, consumed)
                    # Arguments may themselves hold telemetry chains; the
                    # outermost-call treatment above already covered the
                    # func spine, so only recurse into the arguments.
                    for arg in list(entry.args) + [kw.value for kw in entry.keywords]:
                        self.generic_visit(arg)
                else:
                    self.generic_visit(entry)


@register(
    _RULE,
    summary="hot-path telemetry call is not a plain emit",
    invariant="telemetry off means bit-identical SimStats (no-op fidelity)",
    roles=(ModuleRole.SIM,),
)
def check_telemetry_emits(ctx: FileContext) -> Iterator[Violation]:
    visitor = _Visitor(ctx)
    visitor.visit(ctx.tree)
    yield from visitor.found
