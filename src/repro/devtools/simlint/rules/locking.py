"""LOCK001/LOCK002 — lock discipline in threaded modules.

The job server, the scheduler, and the result cache are exercised by
many threads at once (HTTP handler threads, the worker pool, long-poll
waiters).  Their correctness argument is *lock discipline*: every piece
of shared mutable state belongs to exactly one lock, and nested locks
are always taken in one global order.  Both properties are inferred,
not declared:

**LOCK001 — unguarded access to lock-protected state.**  A class that
creates a ``threading.Lock`` / ``RLock`` / ``Condition`` / ``Semaphore``
attribute in its methods is treated as lock-disciplined.  For each
non-lock attribute the rule collects every access and whether it
happens lexically inside ``with self.<lock>:``.  An attribute written
under the lock anywhere (or inside a ``*_locked`` helper — the
documented "caller holds the lock" convention) is *guarded*; any read
or write of a guarded attribute outside a lock scope is a race window
and is flagged.  ``__init__`` is exempt (construction is
single-threaded by publication), as are ``*_locked`` methods.

**LOCK002 — inconsistent lock-acquisition order.**  Across the whole
program, every lexically nested ``with lockA: ... with lockB:`` pair is
recorded (lock identity is the qualified owner attribute, e.g.
``repro.service.jobs.JobStore._lock``).  If both ``A→B`` and ``B→A``
orders exist anywhere, each participating inner acquisition is flagged:
two threads taking the pair in opposite orders is the textbook
deadlock.

Both rules are deliberately class-scoped and syntactic: a class with no
lock attribute is not analysed (its thread-safety story, if any, lives
elsewhere), and lock handles reached through other objects are ignored
rather than guessed at.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterator

from repro.devtools.simlint.model import (
    FileContext,
    ModuleRole,
    RuleKind,
    Violation,
    register,
)
from repro.devtools.simlint.program import dotted_chain

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.devtools.simlint.program import ProgramModel

__all__ = ["check_lock_guards", "check_lock_order", "LOCK_FACTORIES"]

_RULE_GUARD = "LOCK001"
_RULE_ORDER = "LOCK002"

#: threading constructors whose product is a lock-like context manager.
LOCK_FACTORIES = frozenset(
    {"Lock", "RLock", "Condition", "Semaphore", "BoundedSemaphore"}
)

#: Method-name suffix declaring "caller already holds the lock".
_LOCKED_SUFFIX = "_locked"

#: Method calls that mutate their receiver in place.
_MUTATING_METHODS = frozenset(
    {
        "append",
        "appendleft",
        "add",
        "clear",
        "discard",
        "extend",
        "insert",
        "pop",
        "popleft",
        "popitem",
        "remove",
        "reverse",
        "setdefault",
        "sort",
        "update",
    }
)

_ROLES = (
    ModuleRole.SIM,
    ModuleRole.LIB,
    ModuleRole.CLI,
    ModuleRole.TELEMETRY,
    ModuleRole.SERVICE,
    ModuleRole.TOOL,
)


def _is_lock_ctor(node: ast.expr) -> bool:
    """``threading.Lock()`` / ``Lock()`` style constructor call."""
    if not isinstance(node, ast.Call):
        return False
    chain = dotted_chain(node.func)
    if not chain or chain[-1] not in LOCK_FACTORIES:
        return False
    return len(chain) == 1 or chain[0] in ("threading", "multiprocessing")


def _self_attr(node: ast.expr) -> str | None:
    """``attr`` when the expression is exactly ``self.attr``/``cls.attr``."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id in ("self", "cls")
    ):
        return node.attr
    return None


@dataclass(slots=True)
class _Access:
    attr: str
    line: int
    col: int
    write: bool
    held: bool
    exempt: bool


class _ClassScan:
    """Lock attributes, accesses, and nested acquisitions of one class."""

    def __init__(self, cls: ast.ClassDef) -> None:
        self.cls = cls
        self.lock_attrs: set[str] = set()
        self.method_names: set[str] = set()
        self.accesses: list[_Access] = []
        #: (outer lock, inner lock, inner with-node) nesting evidence.
        self.nestings: list[tuple[str, str, ast.AST]] = []
        self._find_locks()
        for method in self._methods():
            exempt = method.name == "__init__" or method.name.endswith(_LOCKED_SUFFIX)
            assume_held = method.name.endswith(_LOCKED_SUFFIX)
            self._walk(method, held=tuple(self.lock_attrs) if assume_held else (), exempt=exempt)

    def _methods(self) -> list[ast.FunctionDef | ast.AsyncFunctionDef]:
        return [
            node
            for node in self.cls.body
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        ]

    def _find_locks(self) -> None:
        for method in self._methods():
            self.method_names.add(method.name)
            for node in ast.walk(method):
                if isinstance(node, ast.Assign) and _is_lock_ctor(node.value):
                    for target in node.targets:
                        attr = _self_attr(target)
                        if attr is not None:
                            self.lock_attrs.add(attr)
                elif isinstance(node, ast.AnnAssign) and node.value is not None:
                    if _is_lock_ctor(node.value):
                        attr = _self_attr(node.target)
                        if attr is not None:
                            self.lock_attrs.add(attr)

    # --------------------------------------------------------------- #
    # access collection

    def _walk(self, node: ast.AST, held: tuple[str, ...], exempt: bool) -> None:
        if isinstance(node, (ast.With, ast.AsyncWith)):
            acquired: list[str] = []
            for item in node.items:
                attr = _self_attr(item.context_expr)
                if attr is not None and attr in self.lock_attrs:
                    for outer in held + tuple(acquired):
                        if outer != attr:
                            self.nestings.append((outer, attr, item.context_expr))
                    acquired.append(attr)
                else:
                    self._walk(item.context_expr, held, exempt)
            inner = held + tuple(acquired)
            for stmt in node.body:
                self._walk(stmt, inner, exempt)
            return
        if isinstance(node, ast.Attribute):
            attr = _self_attr(node)
            if attr is not None and attr not in self.lock_attrs:
                self._record(node, attr, isinstance(node.ctx, (ast.Store, ast.Del)), held, exempt)
            self._walk(node.value, held, exempt)
            return
        if isinstance(node, ast.Subscript) and isinstance(node.ctx, (ast.Store, ast.Del)):
            root = node.value
            while isinstance(root, ast.Subscript):
                root = root.value
            attr = _self_attr(root)
            if attr is not None and attr not in self.lock_attrs:
                self._record(root, attr, True, held, exempt)
                self._walk(node.slice, held, exempt)
                return
        if isinstance(node, ast.Call):
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr in _MUTATING_METHODS
            ):
                attr = _self_attr(func.value)
                if attr is not None and attr not in self.lock_attrs:
                    self._record(func.value, attr, True, held, exempt)
                    for arg in node.args:
                        self._walk(arg, held, exempt)
                    for kw in node.keywords:
                        self._walk(kw.value, held, exempt)
                    return
        for child in ast.iter_child_nodes(node):
            self._walk(child, held, exempt)

    def _record(
        self, node: ast.expr, attr: str, write: bool, held: tuple[str, ...], exempt: bool
    ) -> None:
        self.accesses.append(
            _Access(
                attr=attr,
                line=node.lineno,
                col=node.col_offset,
                write=write,
                held=bool(held),
                exempt=exempt,
            )
        )

    # --------------------------------------------------------------- #
    # verdicts

    def guarded_attrs(self) -> set[str]:
        """Attributes with at least one lock-protected write.

        ``*_locked`` methods count (their whole body is treated as
        holding every class lock); ``__init__`` writes carry no
        evidence — construction precedes sharing.
        """
        return {
            access.attr for access in self.accesses if access.write and access.held
        }

    def unguarded(self) -> Iterator[_Access]:
        guarded = self.guarded_attrs()
        seen: set[tuple[str, int, int]] = set()
        for access in self.accesses:
            if access.attr not in guarded or access.held or access.exempt:
                continue
            key = (access.attr, access.line, access.col)
            if key in seen:
                continue
            seen.add(key)
            yield access


def _lock_classes(tree: ast.Module) -> Iterator[_ClassScan]:
    for node in tree.body:
        if isinstance(node, ast.ClassDef):
            scan = _ClassScan(node)
            if scan.lock_attrs:
                yield scan


@register(
    _RULE_GUARD,
    summary="lock-guarded attribute accessed without its lock",
    invariant="shared mutable state is only touched under its owning lock",
    roles=_ROLES,
    version=1,
)
def check_lock_guards(ctx: FileContext) -> Iterator[Violation]:
    for scan in _lock_classes(ctx.tree):
        locks = ", ".join(sorted(scan.lock_attrs))
        for access in scan.unguarded():
            kind = "write to" if access.write else "read of"
            yield Violation(
                path=ctx.path,
                line=access.line,
                col=access.col,
                rule=_RULE_GUARD,
                message=(
                    f"unguarded {kind} {access.attr!r} in lock-disciplined "
                    f"class {scan.cls.name!r}: the attribute is written under "
                    f"'self.{locks}' elsewhere, so this access races with "
                    "those writers; hold the lock (or rename the method "
                    "'*_locked' if the caller already does)"
                ),
            )


@register(
    _RULE_ORDER,
    summary="locks acquired in inconsistent nesting order",
    invariant="nested lock acquisitions follow one global order",
    roles=_ROLES,
    version=1,
    kind=RuleKind.PROJECT,
)
def check_lock_order(model: "ProgramModel") -> Iterator[Violation]:
    #: (outer qualified lock, inner qualified lock) → first witness.
    orders: dict[tuple[str, str], tuple[str, ast.AST]] = {}
    for info in sorted(model.modules.values(), key=lambda m: m.path):
        if info.role is ModuleRole.TEST:
            continue
        for scan in _lock_classes(info.tree):
            owner = f"{info.name}.{scan.cls.name}"
            for outer, inner, node in scan.nestings:
                orders.setdefault(
                    (f"{owner}.{outer}", f"{owner}.{inner}"), (info.path, node)
                )
    for (outer, inner), (path, node) in sorted(orders.items()):
        reverse = orders.get((inner, outer))
        if reverse is None or (outer, inner) > (inner, outer):
            continue  # report each conflicting pair once, at both sites
        for site_path, site_node, first, second in (
            (path, node, outer, inner),
            (reverse[0], reverse[1], inner, outer),
        ):
            yield Violation(
                path=site_path,
                line=getattr(site_node, "lineno", 1),
                col=getattr(site_node, "col_offset", 0),
                rule=_RULE_ORDER,
                message=(
                    f"lock order inversion: {first} is taken before {second} "
                    f"here, but the opposite order exists elsewhere — two "
                    "threads interleaving these paths can deadlock; pick one "
                    "global order"
                ),
            )
