"""SPEC001 — speculative predictor state is written only where repair can see it.

The BHT, pattern table and OBQ are updated *speculatively at prediction
time* and patched back by the repair schemes (paper §2.3, §3).  Every
repair scheme's correctness argument assumes those structures change
only through their own methods, the predictor update paths, and the
repair walkers.  A stray write from, say, the pipeline or an analysis
helper would silently invalidate Figures 8–13 while every unit test of
the structures still passes.

This rule flags writes of the form ``obj.attr = ...``, ``obj.attr[...]
= ...``, ``obj.attr += ...`` or ``del obj.attr[...]`` where

* ``attr`` is one of the speculative-state slots
  (:data:`SPECULATIVE_ATTRS`), and
* ``obj`` is **not** ``self``/``cls`` (a class mutating its own slots
  defines its own invariant — that is what its unit tests check), and
* the file is outside the trusted directories ``repro/core`` and
  ``repro/predictors``, and
* the enclosing function is not a declared update method
  (:data:`UPDATE_METHODS`).

In other words: reaching *into another object's* speculative state from
untrusted code is the violation.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.devtools.simlint.model import FileContext, ModuleRole, Violation, register

__all__ = ["check_speculative_writes", "SPECULATIVE_ATTRS", "UPDATE_METHODS"]

_RULE = "SPEC001"

#: Attribute names backing speculative BHT / pattern-table / OBQ /
#: two-level state (see repro.core.bht, .pattern_table, .obq,
#: .two_level_local).  Kept in one place so a rename updates the lint
#: and its docs together.
SPECULATIVE_ATTRS = frozenset(
    {"_state", "_valid", "_repair", "_pcs", "_trip", "_conf", "_pt", "_entries"}
)

#: Method names that constitute the declared update/repair surface:
#: writes inside a method with one of these names are sanctioned even
#: outside the trusted directories.
UPDATE_METHODS = frozenset(
    {
        "update",
        "train",
        "allocate",
        "repair",
        "restore",
        "restore_snapshot",
        "retire_update",
        "apply",
        "commit",
        "invalidate",
        "reset",
    }
)

_TRUSTED_PREFIXES = (("repro", "core"), ("repro", "predictors"))


def _written_attr(target: ast.expr) -> ast.Attribute | None:
    """The ``obj.attr`` node a write lands on, unwrapping subscripts."""
    node = target
    while isinstance(node, ast.Subscript):
        node = node.value
    return node if isinstance(node, ast.Attribute) else None


def _is_self_like(node: ast.expr) -> bool:
    return isinstance(node, ast.Name) and node.id in ("self", "cls")


class _Visitor(ast.NodeVisitor):
    def __init__(self, ctx: FileContext) -> None:
        self.ctx = ctx
        self.found: list[Violation] = []
        self._func_stack: list[str] = []

    def _visit_func(self, node: ast.FunctionDef | ast.AsyncFunctionDef) -> None:
        self._func_stack.append(node.name)
        self.generic_visit(node)
        self._func_stack.pop()

    visit_FunctionDef = _visit_func
    visit_AsyncFunctionDef = _visit_func

    def _check_targets(self, targets: list[ast.expr]) -> None:
        if any(name in UPDATE_METHODS for name in self._func_stack):
            return
        for target in targets:
            attr = _written_attr(target)
            if (
                attr is not None
                and attr.attr in SPECULATIVE_ATTRS
                and not _is_self_like(attr.value)
            ):
                self.found.append(
                    Violation(
                        path=self.ctx.path,
                        line=attr.lineno,
                        col=attr.col_offset,
                        rule=_RULE,
                        message=(
                            f"write to speculative state {attr.attr!r} outside "
                            "predictors/, core/repair/ and declared update "
                            "methods; go through the structure's API"
                        ),
                    )
                )

    def visit_Assign(self, node: ast.Assign) -> None:
        self._check_targets(node.targets)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._check_targets([node.target])
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None:
            self._check_targets([node.target])
        self.generic_visit(node)

    def visit_Delete(self, node: ast.Delete) -> None:
        self._check_targets(node.targets)
        self.generic_visit(node)


@register(
    _RULE,
    summary="speculative BHT/PT/OBQ state written from untrusted code",
    invariant="speculative state changes only via update and repair paths",
    roles=(
        ModuleRole.SIM,
        ModuleRole.LIB,
        ModuleRole.CLI,
        ModuleRole.TELEMETRY,
        ModuleRole.SERVICE,
    ),
    version=2,
)
def check_speculative_writes(ctx: FileContext) -> Iterator[Violation]:
    if any(ctx.under(*prefix) for prefix in _TRUSTED_PREFIXES):
        return
    visitor = _Visitor(ctx)
    visitor.visit(ctx.tree)
    yield from visitor.found
    # Codegen templates ship as strings and are exec'd at run time; a
    # speculative-state write hidden in one would bypass this rule
    # entirely, so scan their parsed bodies too (lines mapped back into
    # the host file).  The specializer's generated engines run outside
    # the trusted directories, so no trusted-prefix exemption applies.
    from dataclasses import replace as _replace

    from repro.devtools.simlint.rules.codegen import iter_templates

    for template in iter_templates(ctx.tree):
        if template.tree is None:
            continue  # GEN001 owns unparseable templates
        inner = _Visitor(ctx)
        inner.visit(template.tree)
        for found in inner.found:
            yield _replace(
                found,
                line=template.file_line(found.line),
                message=f"in codegen template {template.name}: {found.message}",
            )
