"""Rule modules for simlint.

Each module registers its checkers into the global registry at import
time via :func:`repro.devtools.simlint.model.register`.  :func:`load`
imports every rule module exactly once; the engine calls it before
resolving ``--select`` so the registry is always complete.
"""

from __future__ import annotations

from importlib import import_module

__all__ = ["load", "RULE_MODULES"]

#: Module basenames registering rules, in rule-ID order.
RULE_MODULES: tuple[str, ...] = (
    "api",  # API001
    "codegen",  # GEN001
    "determinism",  # DET001, DET002
    "errors",  # ERR001
    "imports",  # IMP001
    "locking",  # LOCK001, LOCK002
    "purity",  # PURE001
    "speculative",  # SPEC001
    "stale",  # STALE001
    "telemetry",  # TEL001
)


def load() -> None:
    """Import every rule module (idempotent)."""
    for name in RULE_MODULES:
        import_module(f"{__name__}.{name}")
