"""IMP001 — import hygiene: every import binding is used.

Dead imports are not cosmetic in this tree: the linter's own program
model derives the module graph from import statements, the result cache
fingerprints code by module closure, and the service loads modules into
worker processes — an unused import widens all three for nothing.

The usage test is deliberately generous so the rule stays silent on
anything remotely intentional.  A binding counts as used when its name
appears anywhere in the file as an identifier (including annotations —
``from __future__ import annotations`` keeps them as real AST
expressions) or as a word inside any string constant (which covers
``__all__`` re-export lists and docstring references).  ``__init__.py``
and ``conftest.py`` are skipped wholesale: re-exporting is their job.

This is the flagship ``--fix`` rule: the autofixer deletes the unused
alias (or the whole statement when every alias on it is dead) — see
:mod:`repro.devtools.simlint.fixes`.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator

from repro.devtools.simlint.model import FileContext, ModuleRole, Violation, register

__all__ = ["check_unused_imports", "unused_import_aliases"]

_RULE = "IMP001"

_WORD = re.compile(r"[A-Za-z_][A-Za-z0-9_]*")

#: Files whose imports exist to re-export or register side effects.
_SKIP_BASENAMES = frozenset({"__init__.py", "conftest.py"})


def _binding(alias: ast.alias, node: ast.Import | ast.ImportFrom) -> str:
    """Local name an import alias binds (``import a.b`` binds ``a``)."""
    if alias.asname is not None:
        return alias.asname
    if isinstance(node, ast.Import):
        return alias.name.split(".", 1)[0]
    return alias.name


def _used_names(tree: ast.Module) -> set[str]:
    """Identifiers and string-constant words appearing anywhere."""
    used: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Name):
            used.add(node.id)
        elif isinstance(node, ast.Attribute):
            used.add(node.attr)
        elif isinstance(node, ast.Constant) and isinstance(node.value, str):
            used.update(_WORD.findall(node.value))
    return used


def unused_import_aliases(
    tree: ast.Module,
) -> Iterator[tuple[ast.Import | ast.ImportFrom, ast.alias, str]]:
    """(statement, alias, bound name) for every dead import binding.

    Shared with the autofixer so ``--fix`` removes exactly what the
    rule reported.  ``from __future__`` and ``import *`` are compiler
    directives, not bindings, and are never flagged.
    """
    used = _used_names(tree)
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom) and node.module == "__future__":
            continue
        if not isinstance(node, (ast.Import, ast.ImportFrom)):
            continue
        for alias in node.names:
            if alias.name == "*":
                continue
            bound = _binding(alias, node)
            if bound not in used:
                yield node, alias, bound


@register(
    _RULE,
    summary="imported name is never used",
    invariant="the import graph only carries edges the code exercises",
    roles=tuple(ModuleRole),
    version=1,
)
def check_unused_imports(ctx: FileContext) -> Iterator[Violation]:
    if ctx.parts and ctx.parts[-1] in _SKIP_BASENAMES:
        return
    for node, alias, bound in unused_import_aliases(ctx.tree):
        shown = alias.name if alias.asname is None else f"{alias.name} as {alias.asname}"
        yield Violation(
            path=ctx.path,
            line=node.lineno,
            col=node.col_offset,
            rule=_RULE,
            message=(
                f"import {shown!r} binds {bound!r} but the name is never "
                "used; drop it (repro lint --fix removes it)"
            ),
        )
