"""DET001 — simulation modules must be bit-deterministic under a seed.

The reproduction's headline numbers (Figures 9–13) are only meaningful
if re-running a (workload, system, seed) triple reproduces every stat
bit-for-bit.  This rule flags the classic ways Python code silently
loses that property inside simulation modules:

* the process-global ``random`` module (unseeded, shared across call
  sites) instead of a per-run ``random.Random(seed)`` instance;
* wall-clock reads (``time.time``, ``perf_counter``, ``datetime.now``)
  feeding simulated state — simulated time must come from cycles;
* ``PYTHONHASHSEED``-sensitive constructs: iterating a ``set`` or
  ``frozenset`` directly (element order varies across processes for
  str/object elements) and ``hash()`` of non-int keys;
* environment reads (``os.environ``, ``os.getenv``) — configuration
  must flow through config objects so worker processes and the host
  agree (telemetry and the CLI are exempt by role).

Named set variables are *not* tracked (that needs type inference); the
rule intentionally only flags syntactically-obvious sources so it stays
zero-false-positive on the tree it guards.

DET002 — interprocedural determinism taint
------------------------------------------

``DET001`` is local: it only sees simulation modules, so a helper in
``repro.harness`` that reads the wall clock is invisible even when the
detailed engine calls it every cycle.  ``DET002`` closes that hole with
the call graph: every function reachable from the simulation core
(:data:`~repro.devtools.simlint.program.CORE_PREFIXES`) is scanned for
the same nondeterminism sources — plus ``os.urandom`` and ``id()`` of
an object, whose values change across processes — and each finding
carries the witness path the core takes to reach it.  Inside SIM-role
files the DET001-covered source kinds are skipped (one finding per
defect, at the stronger local rule); ``urandom``/``id`` are new and
reported everywhere.  Telemetry and tests are exempt: observability may
read the clock by design (its *write path* is PURE001's business), and
tests are white-box.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterator

from repro.devtools.simlint.model import (
    FileContext,
    ModuleRole,
    RuleKind,
    Violation,
    register,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.devtools.simlint.program import ProgramModel

__all__ = ["check_determinism", "check_determinism_taint"]

_RULE = "DET001"
_RULE_TAINT = "DET002"

#: Functions on the module-global (unseeded) RNG.
_GLOBAL_RANDOM_FNS = frozenset(
    {
        "random",
        "randint",
        "randrange",
        "choice",
        "choices",
        "shuffle",
        "sample",
        "uniform",
        "getrandbits",
        "gauss",
        "normalvariate",
        "expovariate",
        "betavariate",
        "triangular",
        "seed",
    }
)

#: Wall-clock reads, as (module, attribute) pairs.
_WALL_CLOCK = frozenset(
    {
        ("time", "time"),
        ("time", "time_ns"),
        ("time", "perf_counter"),
        ("time", "perf_counter_ns"),
        ("time", "monotonic"),
        ("time", "monotonic_ns"),
        ("time", "process_time"),
        ("time", "localtime"),
        ("datetime", "now"),
        ("datetime", "utcnow"),
        ("datetime", "today"),
        ("date", "today"),
    }
)

#: Builtins whose direct iteration over a set argument is order-sensitive.
_ITERATING_BUILTINS = frozenset({"list", "tuple", "iter", "enumerate", "reversed"})


def _dotted(node: ast.expr) -> tuple[str, ...]:
    """Flatten ``a.b.c`` into ``("a","b","c")``; empty when not a pure chain."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return tuple(reversed(parts))
    return ()


def _is_set_expr(node: ast.expr) -> bool:
    """Syntactically-obvious set expression (literal, comp, or set() call)."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in ("set", "frozenset")
    return False


def _violation(ctx: FileContext, node: ast.AST, message: str) -> Violation:
    return Violation(
        path=ctx.path,
        line=getattr(node, "lineno", 1),
        col=getattr(node, "col_offset", 0),
        rule=_RULE,
        message=message,
    )


class _Visitor(ast.NodeVisitor):
    def __init__(self, ctx: FileContext) -> None:
        self.ctx = ctx
        self.found: list[Violation] = []

    def visit_Call(self, node: ast.Call) -> None:
        chain = _dotted(node.func)
        if len(chain) == 2 and chain[0] == "random" and chain[1] in _GLOBAL_RANDOM_FNS:
            self.found.append(
                _violation(
                    self.ctx,
                    node,
                    f"global random.{chain[1]}() is unseeded shared state; "
                    "use a per-run random.Random(seed) instance",
                )
            )
        elif len(chain) >= 2 and (chain[-2], chain[-1]) in _WALL_CLOCK:
            self.found.append(
                _violation(
                    self.ctx,
                    node,
                    f"wall-clock read {'.'.join(chain)}() in a simulation module; "
                    "simulated time must come from cycle counts",
                )
            )
        elif chain == ("os", "getenv") or chain[-2:] == ("environ", "get"):
            self.found.append(
                _violation(
                    self.ctx,
                    node,
                    "environment read in a simulation module; plumb settings "
                    "through config objects instead",
                )
            )
        elif (
            isinstance(node.func, ast.Name)
            and node.func.id == "hash"
            and node.args
            and not isinstance(node.args[0], ast.Constant)
        ):
            self.found.append(
                _violation(
                    self.ctx,
                    node,
                    "hash() of a non-constant value is PYTHONHASHSEED-sensitive "
                    "for str/object keys; use an explicit integer fold",
                )
            )
        elif (
            isinstance(node.func, ast.Name)
            and node.func.id in _ITERATING_BUILTINS
            and node.args
            and _is_set_expr(node.args[0])
        ):
            self.found.append(
                _violation(
                    self.ctx,
                    node,
                    f"{node.func.id}() over a set has PYTHONHASHSEED-dependent "
                    "order; wrap in sorted(...)",
                )
            )
        self.generic_visit(node)

    def visit_Subscript(self, node: ast.Subscript) -> None:
        if _dotted(node.value) == ("os", "environ") and isinstance(
            node.ctx, ast.Load
        ):
            self.found.append(
                _violation(
                    self.ctx,
                    node,
                    "environment read in a simulation module; plumb settings "
                    "through config objects instead",
                )
            )
        self.generic_visit(node)

    def _check_iter(self, node: ast.expr) -> None:
        if _is_set_expr(node):
            self.found.append(
                _violation(
                    self.ctx,
                    node,
                    "iteration over a set has PYTHONHASHSEED-dependent order; "
                    "wrap in sorted(...)",
                )
            )

    def visit_For(self, node: ast.For) -> None:
        self._check_iter(node.iter)
        self.generic_visit(node)

    def visit_comprehension(self, node: ast.comprehension) -> None:
        self._check_iter(node.iter)
        self.generic_visit(node)


@register(
    _RULE,
    summary="nondeterminism source in a simulation module",
    invariant="simulations are bit-deterministic under a seed",
    roles=(ModuleRole.SIM,),
    version=2,
)
def check_determinism(ctx: FileContext) -> Iterator[Violation]:
    visitor = _Visitor(ctx)
    visitor.visit(ctx.tree)
    yield from visitor.found
    # Codegen templates are simulation code that only exists as a
    # string until the specializer compiles it; scan their parsed
    # bodies too, mapping lines back into the host file.
    from dataclasses import replace as _replace

    from repro.devtools.simlint.rules.codegen import iter_templates

    for template in iter_templates(ctx.tree):
        if template.tree is None:
            continue  # GEN001 owns unparseable templates
        inner = _Visitor(ctx)
        inner.visit(template.tree)
        for found in inner.found:
            yield _replace(
                found,
                line=template.file_line(found.line),
                message=f"in codegen template {template.name}: {found.message}",
            )


# ----------------------------------------------------------------- #
# DET002 — taint through the call graph


#: Source kinds DET001 already flags locally inside SIM modules.
_LOCAL_KINDS = frozenset({"global-random", "wall-clock", "env", "set-iter"})

#: Roles DET002 reports into.  TELEMETRY is exempt (clock reads are its
#: job; PURE001 audits its write path) and TEST files are white-box.
_TAINT_ROLES = frozenset(
    {
        ModuleRole.SIM,
        ModuleRole.LIB,
        ModuleRole.CLI,
        ModuleRole.SERVICE,
        ModuleRole.TOOL,
        ModuleRole.UNKNOWN,
    }
)


@dataclass(frozen=True, slots=True)
class _Source:
    """One syntactic nondeterminism source inside a function body."""

    node: ast.AST
    kind: str
    what: str


def iter_sources(root: ast.AST) -> Iterator[_Source]:
    """Nondeterminism sources anywhere under ``root`` (incl. nested defs)."""
    for node in ast.walk(root):
        if isinstance(node, ast.Call):
            chain = _dotted(node.func)
            if (
                len(chain) == 2
                and chain[0] == "random"
                and chain[1] in _GLOBAL_RANDOM_FNS
            ):
                yield _Source(node, "global-random", f"random.{chain[1]}()")
            elif len(chain) >= 2 and (chain[-2], chain[-1]) in _WALL_CLOCK:
                yield _Source(node, "wall-clock", f"{'.'.join(chain)}()")
            elif chain == ("os", "urandom"):
                yield _Source(node, "urandom", "os.urandom()")
            elif chain == ("os", "getenv") or chain[-2:] == ("environ", "get"):
                yield _Source(node, "env", "an environment read")
            elif (
                isinstance(node.func, ast.Name)
                and node.func.id == "id"
                and node.args
                and not isinstance(node.args[0], ast.Constant)
            ):
                yield _Source(node, "id", "id() of an object")
            elif (
                isinstance(node.func, ast.Name)
                and node.func.id in _ITERATING_BUILTINS
                and node.args
                and _is_set_expr(node.args[0])
            ):
                yield _Source(node, "set-iter", f"{node.func.id}() over a set")
        elif isinstance(node, ast.Subscript):
            if _dotted(node.value) == ("os", "environ") and isinstance(
                node.ctx, ast.Load
            ):
                yield _Source(node, "env", "an os.environ[...] read")
        elif isinstance(node, ast.For):
            if _is_set_expr(node.iter):
                yield _Source(node.iter, "set-iter", "iteration over a set")
        elif isinstance(node, ast.comprehension):
            if _is_set_expr(node.iter):
                yield _Source(node.iter, "set-iter", "iteration over a set")


@register(
    _RULE_TAINT,
    summary="nondeterminism source reachable from the simulation core",
    invariant="every function the detailed engine can call is deterministic",
    roles=_TAINT_ROLES,
    version=1,
    kind=RuleKind.PROJECT,
)
def check_determinism_taint(model: "ProgramModel") -> Iterator[Violation]:
    parents = model.core_reachable()
    for qname in sorted(parents):
        func = model.functions.get(qname)
        if func is None or func.role not in _TAINT_ROLES:
            continue
        trail: str | None = None
        for source in iter_sources(func.node):
            if func.role is ModuleRole.SIM and source.kind in _LOCAL_KINDS:
                continue  # DET001 already owns this finding
            if trail is None:
                trail = " -> ".join(model.witness_path(parents, qname))
            yield Violation(
                path=func.path,
                line=getattr(source.node, "lineno", func.node.lineno),
                col=getattr(source.node, "col_offset", 0),
                rule=_RULE_TAINT,
                message=(
                    f"{source.what} taints {qname}(), which the simulation "
                    f"core reaches via {trail}; results can differ across "
                    "runs — pass the value in explicitly or move it off the "
                    "simulated path"
                ),
            )
