"""DET001 — simulation modules must be bit-deterministic under a seed.

The reproduction's headline numbers (Figures 9–13) are only meaningful
if re-running a (workload, system, seed) triple reproduces every stat
bit-for-bit.  This rule flags the classic ways Python code silently
loses that property inside simulation modules:

* the process-global ``random`` module (unseeded, shared across call
  sites) instead of a per-run ``random.Random(seed)`` instance;
* wall-clock reads (``time.time``, ``perf_counter``, ``datetime.now``)
  feeding simulated state — simulated time must come from cycles;
* ``PYTHONHASHSEED``-sensitive constructs: iterating a ``set`` or
  ``frozenset`` directly (element order varies across processes for
  str/object elements) and ``hash()`` of non-int keys;
* environment reads (``os.environ``, ``os.getenv``) — configuration
  must flow through config objects so worker processes and the host
  agree (telemetry and the CLI are exempt by role).

Named set variables are *not* tracked (that needs type inference); the
rule intentionally only flags syntactically-obvious sources so it stays
zero-false-positive on the tree it guards.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.devtools.simlint.model import FileContext, ModuleRole, Violation, register

__all__ = ["check_determinism"]

_RULE = "DET001"

#: Functions on the module-global (unseeded) RNG.
_GLOBAL_RANDOM_FNS = frozenset(
    {
        "random",
        "randint",
        "randrange",
        "choice",
        "choices",
        "shuffle",
        "sample",
        "uniform",
        "getrandbits",
        "gauss",
        "normalvariate",
        "expovariate",
        "betavariate",
        "triangular",
        "seed",
    }
)

#: Wall-clock reads, as (module, attribute) pairs.
_WALL_CLOCK = frozenset(
    {
        ("time", "time"),
        ("time", "time_ns"),
        ("time", "perf_counter"),
        ("time", "perf_counter_ns"),
        ("time", "monotonic"),
        ("time", "monotonic_ns"),
        ("time", "process_time"),
        ("time", "localtime"),
        ("datetime", "now"),
        ("datetime", "utcnow"),
        ("datetime", "today"),
        ("date", "today"),
    }
)

#: Builtins whose direct iteration over a set argument is order-sensitive.
_ITERATING_BUILTINS = frozenset({"list", "tuple", "iter", "enumerate", "reversed"})


def _dotted(node: ast.expr) -> tuple[str, ...]:
    """Flatten ``a.b.c`` into ``("a","b","c")``; empty when not a pure chain."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return tuple(reversed(parts))
    return ()


def _is_set_expr(node: ast.expr) -> bool:
    """Syntactically-obvious set expression (literal, comp, or set() call)."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in ("set", "frozenset")
    return False


def _violation(ctx: FileContext, node: ast.AST, message: str) -> Violation:
    return Violation(
        path=ctx.path,
        line=getattr(node, "lineno", 1),
        col=getattr(node, "col_offset", 0),
        rule=_RULE,
        message=message,
    )


class _Visitor(ast.NodeVisitor):
    def __init__(self, ctx: FileContext) -> None:
        self.ctx = ctx
        self.found: list[Violation] = []

    def visit_Call(self, node: ast.Call) -> None:
        chain = _dotted(node.func)
        if len(chain) == 2 and chain[0] == "random" and chain[1] in _GLOBAL_RANDOM_FNS:
            self.found.append(
                _violation(
                    self.ctx,
                    node,
                    f"global random.{chain[1]}() is unseeded shared state; "
                    "use a per-run random.Random(seed) instance",
                )
            )
        elif len(chain) >= 2 and (chain[-2], chain[-1]) in _WALL_CLOCK:
            self.found.append(
                _violation(
                    self.ctx,
                    node,
                    f"wall-clock read {'.'.join(chain)}() in a simulation module; "
                    "simulated time must come from cycle counts",
                )
            )
        elif chain == ("os", "getenv") or chain[-2:] == ("environ", "get"):
            self.found.append(
                _violation(
                    self.ctx,
                    node,
                    "environment read in a simulation module; plumb settings "
                    "through config objects instead",
                )
            )
        elif (
            isinstance(node.func, ast.Name)
            and node.func.id == "hash"
            and node.args
            and not isinstance(node.args[0], ast.Constant)
        ):
            self.found.append(
                _violation(
                    self.ctx,
                    node,
                    "hash() of a non-constant value is PYTHONHASHSEED-sensitive "
                    "for str/object keys; use an explicit integer fold",
                )
            )
        elif (
            isinstance(node.func, ast.Name)
            and node.func.id in _ITERATING_BUILTINS
            and node.args
            and _is_set_expr(node.args[0])
        ):
            self.found.append(
                _violation(
                    self.ctx,
                    node,
                    f"{node.func.id}() over a set has PYTHONHASHSEED-dependent "
                    "order; wrap in sorted(...)",
                )
            )
        self.generic_visit(node)

    def visit_Subscript(self, node: ast.Subscript) -> None:
        if _dotted(node.value) == ("os", "environ") and isinstance(
            node.ctx, ast.Load
        ):
            self.found.append(
                _violation(
                    self.ctx,
                    node,
                    "environment read in a simulation module; plumb settings "
                    "through config objects instead",
                )
            )
        self.generic_visit(node)

    def _check_iter(self, node: ast.expr) -> None:
        if _is_set_expr(node):
            self.found.append(
                _violation(
                    self.ctx,
                    node,
                    "iteration over a set has PYTHONHASHSEED-dependent order; "
                    "wrap in sorted(...)",
                )
            )

    def visit_For(self, node: ast.For) -> None:
        self._check_iter(node.iter)
        self.generic_visit(node)

    def visit_comprehension(self, node: ast.comprehension) -> None:
        self._check_iter(node.iter)
        self.generic_visit(node)


@register(
    _RULE,
    summary="nondeterminism source in a simulation module",
    invariant="simulations are bit-deterministic under a seed",
    roles=(ModuleRole.SIM,),
)
def check_determinism(ctx: FileContext) -> Iterator[Violation]:
    visitor = _Visitor(ctx)
    visitor.visit(ctx.tree)
    yield from visitor.found
