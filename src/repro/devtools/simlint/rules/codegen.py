"""GEN001 — codegen templates must be parseable, round-trippable, eval-free.

The specialized engines (:mod:`repro.pipeline.specialize`) build Python
source from module-level ``*_TEMPLATE`` string constants, validate it
with ``ast.parse``/``compile`` and ``exec`` it.  Code that only ever
exists as a string is invisible to every AST-based check in this linter
— a nondeterminism source or a speculative-state write pasted into a
template would sail through DET001/SPEC001 while shipping in every
generated engine.  This module closes that hole:

* :func:`iter_templates` finds module-level ``NAME_TEMPLATE = "..."``
  constants and parses their text as Python (placeholders like
  ``__TAGE_SCAN__`` are ordinary identifiers, so raw templates parse).
  DET001 and SPEC001 import it to extend their scans *into* template
  code, reporting under their own rule IDs at file-mapped lines.
* GEN001 itself checks the generation contract: every template must
  ``ast.parse`` cleanly, must survive an ``ast.unparse`` round-trip
  (guaranteeing the text is plain structural Python the validating
  compile in ``load_engine`` can vouch for), and must not contain
  ``eval``/``exec``/``compile``/``__import__`` calls — generated code
  generating more code would make the engine cache key meaningless.

Violations point at the template constant's assignment, offset by the
line inside the template text, so findings land on (or near) the
offending generated line even though it lives inside a string literal.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.devtools.simlint.model import FileContext, ModuleRole, Violation, register

__all__ = ["Template", "iter_templates", "check_codegen_templates"]

_RULE = "GEN001"

#: Calls that would let generated code escape static validation.
_DYNAMIC_CODE_FNS = frozenset({"eval", "exec", "compile", "__import__"})


class Template:
    """One ``*_TEMPLATE`` constant: its name, location, and parsed body."""

    __slots__ = ("name", "lineno", "text", "tree", "error")

    def __init__(
        self,
        name: str,
        lineno: int,
        text: str,
        tree: ast.Module | None,
        error: SyntaxError | None,
    ) -> None:
        self.name = name
        self.lineno = lineno
        self.text = text
        self.tree = tree
        self.error = error

    def file_line(self, template_line: int) -> int:
        """Map a 1-based line inside the template onto the host file.

        Exact for triple-quoted literals (line 1 of the string is the
        assignment's line); a close anchor for anything fancier.
        """
        return self.lineno + max(template_line, 1) - 1


def iter_templates(tree: ast.Module) -> Iterator[Template]:
    """Module-level ``NAME_TEMPLATE = "..."`` constants, parsed.

    Only simple single-target assignments of a string constant to a
    name ending in ``_TEMPLATE`` count — that is the codegen idiom this
    project uses, and anything more dynamic (concatenation, formatting)
    cannot be statically vouched for anyway and is GEN001's business to
    flag via the round-trip check on what *is* found.
    """
    for node in tree.body:
        if not isinstance(node, ast.Assign) or len(node.targets) != 1:
            continue
        target = node.targets[0]
        if not isinstance(target, ast.Name) or not target.id.endswith("_TEMPLATE"):
            continue
        if not isinstance(node.value, ast.Constant) or not isinstance(
            node.value.value, str
        ):
            continue
        text = node.value.value
        try:
            parsed: ast.Module | None = ast.parse(text)
            error = None
        except SyntaxError as exc:
            parsed = None
            error = exc
        yield Template(target.id, node.value.lineno, text, parsed, error)


def _violation(ctx: FileContext, line: int, message: str) -> Violation:
    return Violation(path=ctx.path, line=line, col=0, rule=_RULE, message=message)


@register(
    _RULE,
    summary="codegen template fails the generated-source contract",
    invariant="generated engine source is parseable, static, and eval-free",
    roles=(ModuleRole.SIM, ModuleRole.LIB),
)
def check_codegen_templates(ctx: FileContext) -> Iterator[Violation]:
    for template in iter_templates(ctx.tree):
        if template.tree is None:
            line = template.error.lineno if template.error is not None else 1
            yield _violation(
                ctx,
                template.file_line(line or 1),
                f"template {template.name} does not parse as Python: "
                f"{template.error and template.error.msg}",
            )
            continue
        for node in ast.walk(template.tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id in _DYNAMIC_CODE_FNS
            ):
                yield _violation(
                    ctx,
                    template.file_line(node.lineno),
                    f"template {template.name} calls {node.func.id}(); "
                    "generated code must stay statically analyzable",
                )
        try:
            rendered = ast.unparse(template.tree)
            round_trip = ast.parse(rendered)
        except (SyntaxError, ValueError):
            yield _violation(
                ctx,
                template.file_line(1),
                f"template {template.name} does not survive an ast.unparse "
                "round-trip; the generated source is not plain structural "
                "Python",
            )
            continue
        if ast.dump(round_trip) != ast.dump(ast.parse(ast.unparse(round_trip))):
            yield _violation(
                ctx,
                template.file_line(1),
                f"template {template.name} is unstable under unparse/parse; "
                "the generated source is not plain structural Python",
            )
