"""Developer tooling that guards the reproduction's invariants.

``repro.devtools`` hosts code that never runs inside a simulation but
keeps the simulator honest:

* :mod:`repro.devtools.simlint` — an AST-based invariant checker with
  simulator-specific rules (determinism, speculative-state discipline,
  telemetry no-op fidelity, error hygiene, public-API typing).

The package is imported lazily by the CLI so simulation imports stay
unaffected.
"""

from __future__ import annotations

__all__ = ["simlint"]
