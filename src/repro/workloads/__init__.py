"""Synthetic workload suite (stand-in for the paper's Table 1 traces)."""

from repro.workloads.categories import CATEGORIES, CATEGORY_COUNTS, base_params
from repro.workloads.generators.engine import generate_trace
from repro.workloads.simpoint import Phase, select_phases
from repro.workloads.spec import WorkloadParams, WorkloadSpec
from repro.workloads.suite import (
    build_suite,
    get_workload,
    sample_suite,
    suite_by_category,
)

__all__ = [
    "CATEGORIES",
    "CATEGORY_COUNTS",
    "WorkloadParams",
    "WorkloadSpec",
    "base_params",
    "generate_trace",
    "build_suite",
    "suite_by_category",
    "get_workload",
    "sample_suite",
    "Phase",
    "select_phases",
]
