"""Synthetic trace engine: turns a WorkloadSpec into a branch trace.

The engine emulates a program as a stochastic walk over *regions*:

* **loop regions** — execute one loop nest: per iteration the body
  sites fire, then the loop branch goes its dominant direction; the
  final instance exits.  Tight loops (empty bodies, small gaps) produce
  the back-to-back same-PC runs OBQ coalescing targets.
* **straight-line regions** — a burst of pattern / biased /
  globally-correlated branches.

Every emitted conditional outcome feeds a real global-history register
so :class:`~repro.workloads.generators.sites.GlobalCorrelatedSite`
outcomes are genuinely globally predictable.  Loads come from a blend
of streaming and random-in-working-set address streams.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.trace.records import BranchKind, BranchRecord
from repro.workloads.generators.sites import (
    BiasedSite,
    GlobalCorrelatedSite,
    LoopSite,
    PatternSite,
    Site,
)
from repro.workloads.spec import WorkloadSpec

__all__ = ["generate_trace"]

_PC_STRIDE = 16
_CODE_BASE = 0x400000
_HEAP_BASE = 0x10000000
_STREAM_BASE = 0x20000000


@dataclass
class _LoopNest:
    """One loop site plus its body (sites and optional inner nest)."""

    site: LoopSite
    body: list["Site | _LoopNest"]
    tight: bool


class _Engine:
    """Stateful single-use trace builder."""

    def __init__(self, spec: WorkloadSpec, n_branches: int) -> None:
        self.spec = spec
        self.params = spec.params
        self.n_branches = n_branches
        self.rng = random.Random(spec.seed)
        self.records: list[BranchRecord] = []
        self.ghist = 0
        self._next_pc = _CODE_BASE
        self._stream_ptr = _STREAM_BASE
        self._ws_lines = max(1, (self.params.working_set_kb * 1024) // 64)
        self._build_sites()

    # ----------------------------------------------------------- #
    # site construction

    def _alloc_pc(self) -> int:
        # Irregular spacing, like real code: sites sit at varied offsets
        # so structured strides don't alias in set-indexed tables.
        pc = self._next_pc
        self._next_pc += 4 * self.rng.randint(1, 16)
        return pc

    def _make_trip_distribution(self, base: int) -> tuple[tuple[int, ...], tuple[float, ...]]:
        entropy = self.params.trip_entropy
        if entropy <= 0.0 or base <= 1:
            return (base,), (1.0,)
        low = max(1, base - 1)
        return (low, base, base + 1), (entropy / 2, 1.0 - entropy, entropy / 2)

    def _make_loop(self, tight: bool, backward: bool) -> _LoopNest:
        params = self.params
        rng = self.rng
        base_trip = rng.randint(params.trip_min, params.trip_max)
        if tight:
            base_trip = max(1, round(base_trip * params.tight_trip_scale))
        trips, weights = self._make_trip_distribution(base_trip)
        site = LoopSite(
            pc=self._alloc_pc(),
            trips=trips,
            trip_weights=weights,
            backward=backward,
        )
        body: list[Site | _LoopNest] = []
        if not tight:
            for _ in range(rng.randint(1, params.body_sites_max)):
                body.append(self._make_leaf_site())
            if rng.random() < params.nest_prob:
                inner_trip = rng.randint(
                    params.trip_min, max(params.trip_min, params.trip_max // 4)
                )
                inner_trips, inner_weights = self._make_trip_distribution(inner_trip)
                inner = _LoopNest(
                    site=LoopSite(
                        pc=self._alloc_pc(),
                        trips=inner_trips,
                        trip_weights=inner_weights,
                        backward=True,
                    ),
                    body=[self._make_leaf_site()],
                    tight=False,
                )
                body.append(inner)
        return _LoopNest(site=site, body=body, tight=tight)

    def _make_leaf_site(self) -> Site:
        """A loop-body site: mostly high-bias noise, some patterns.

        Body sites use the high ``body_bias`` range — their job is to
        perturb the global history every iteration, not to add
        irreducible mispredictions.
        """
        params = self.params
        rng = self.rng
        if rng.random() < 0.3:
            return self._make_pattern_site()
        return BiasedSite(
            pc=self._alloc_pc(),
            p_taken=rng.uniform(params.body_bias_min, params.body_bias_max),
        )

    def _make_pattern_site(self) -> PatternSite:
        params = self.params
        rng = self.rng
        length = rng.randint(params.pattern_min, params.pattern_max)
        if rng.random() < params.pattern_single_flip:
            # Fixed-trip if-then-else: one flip per period.
            if rng.random() < 0.5:
                pattern = tuple(i < length - 1 for i in range(max(length, 2)))
            else:
                pattern = tuple(i >= length - 1 for i in range(max(length, 2)))
        else:
            taken_count = rng.randint(1, length)
            pattern = tuple(i < taken_count for i in range(length))
        return PatternSite(
            pc=self._alloc_pc(), pattern=pattern, noise=params.pattern_noise
        )

    def _build_sites(self) -> None:
        params = self.params
        self.loops: list[_LoopNest] = []
        for _ in range(params.n_loops):
            self.loops.append(self._make_loop(tight=False, backward=True))
        for _ in range(params.n_tight_loops):
            self.loops.append(self._make_loop(tight=True, backward=True))
        for _ in range(params.n_forward_loops):
            self.loops.append(self._make_loop(tight=False, backward=False))
        self.straight_sites: list[Site] = []
        for _ in range(params.n_patterns):
            self.straight_sites.append(self._make_pattern_site())
        for _ in range(params.n_biased):
            self.straight_sites.append(
                BiasedSite(
                    pc=self._alloc_pc(),
                    p_taken=self.rng.uniform(params.bias_min, params.bias_max),
                )
            )
        for _ in range(params.n_global):
            self.straight_sites.append(
                GlobalCorrelatedSite(
                    pc=self._alloc_pc(),
                    history_bits=params.global_bits,
                    invert=self.rng.random() < 0.5,
                    noise=params.global_noise,
                )
            )

    # ----------------------------------------------------------- #
    # emission

    def _next_load(self) -> int:
        if self.rng.random() < self.params.stream_prob:
            self._stream_ptr += 64
            return self._stream_ptr
        line = self.rng.randrange(self._ws_lines)
        return _HEAP_BASE + line * 64

    def _emit(
        self, pc: int, taken: bool, tight: bool = False, backward: bool = False
    ) -> None:
        params = self.params
        rng = self.rng
        if rng.random() < params.uncond_prob:
            # Sprinkle unconditional control flow for BTB pressure.
            upc = _CODE_BASE + 0x100000 + (rng.randrange(64) * _PC_STRIDE)
            self.records.append(
                BranchRecord(
                    pc=upc,
                    target=upc + 128,
                    taken=True,
                    kind=BranchKind.UNCOND,
                    inst_gap=rng.randint(params.gap_min, params.gap_max),
                )
            )
        gap_max = params.tight_gap_max if tight else params.gap_max
        gap = rng.randint(min(params.gap_min, gap_max), gap_max)
        load_addr = 0
        depends = False
        if rng.random() < params.load_prob:
            load_addr = self._next_load()
            depends = rng.random() < params.load_dep_prob
        # The taken-target direction is a property of the branch site:
        # loop back-edges jump backward, everything else forward.
        target = pc - 64 if backward and pc > 64 else pc + 64
        self.records.append(
            BranchRecord(
                pc=pc,
                target=target,
                taken=taken,
                kind=BranchKind.COND,
                inst_gap=gap,
                load_addr=load_addr,
                depends_on_load=depends and load_addr != 0,
            )
        )
        self.ghist = ((self.ghist << 1) | (1 if taken else 0)) & 0xFFFFFFFF

    def _emit_site(self, site: Site) -> None:
        taken = site.next_outcome(self.rng, self.ghist)
        self._emit(site.pc, taken)

    def _run_body(self, body: list[Site | _LoopNest], depth: int) -> None:
        for element in body:
            if len(self.records) >= self.n_branches:
                return
            if isinstance(element, _LoopNest):
                if depth < 2:
                    self._run_loop(element, depth + 1)
            else:
                self._emit_site(element)

    def _run_loop(self, nest: _LoopNest, depth: int = 0) -> None:
        trip = nest.site.draw_trip(self.rng)
        dominant = nest.site.backward
        backward = nest.site.backward
        for _ in range(trip):
            if len(self.records) >= self.n_branches:
                return
            self._run_body(nest.body, depth)
            self._emit(nest.site.pc, dominant, tight=nest.tight, backward=backward)
        self._emit(nest.site.pc, not dominant, tight=nest.tight, backward=backward)

    def _run_straight(self) -> None:
        count = self.spec.params.straight_region_len
        for _ in range(count):
            if len(self.records) >= self.n_branches:
                return
            self._emit_site(self.rng.choice(self.straight_sites))

    # ----------------------------------------------------------- #

    def run(self) -> list[BranchRecord]:
        params = self.params
        rng = self.rng
        have_straight = bool(self.straight_sites)
        while len(self.records) < self.n_branches:
            if not have_straight or rng.random() < params.loop_region_weight:
                self._run_loop(rng.choice(self.loops))
            else:
                self._run_straight()
        return self.records[: self.n_branches]


def generate_trace(spec: WorkloadSpec, n_branches: int) -> list[BranchRecord]:
    """Generate the deterministic branch trace for ``spec``.

    The same (spec, n_branches) pair always produces the identical
    trace; longer traces are prefix-extensions in distribution but not
    bitwise prefixes (the stop condition truncates mid-region).
    """
    if n_branches <= 0:
        return []
    return _Engine(spec, n_branches).run()
