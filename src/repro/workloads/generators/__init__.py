"""Trace generation: branch-site behaviours and the region engine."""

from repro.workloads.generators.engine import generate_trace
from repro.workloads.generators.sites import (
    BiasedSite,
    GlobalCorrelatedSite,
    LoopSite,
    PatternSite,
    Site,
)

__all__ = [
    "generate_trace",
    "Site",
    "LoopSite",
    "PatternSite",
    "BiasedSite",
    "GlobalCorrelatedSite",
]
