"""Branch-site behaviour models for synthetic workloads.

A *site* is one static conditional branch with a parameterised dynamic
behaviour.  The four families cover the behaviours the paper's workload
discussion distinguishes (§2.2, §4):

* :class:`LoopSite` — backward loop branches (``TTT...N``) or forward
  if-then-else branches (``NNN...T``) with a low-entropy trip-count
  distribution: the CBPw-Loop target.
* :class:`PatternSite` — short periodic direction patterns, the generic
  local-history target.
* :class:`BiasedSite` — biased random noise (data-entropy branches no
  predictor captures fully).
* :class:`GlobalCorrelatedSite` — outcome a function of recent *global*
  history: TAGE-friendly, local-predictor-neutral.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.errors import WorkloadError

__all__ = [
    "Site",
    "LoopSite",
    "PatternSite",
    "BiasedSite",
    "GlobalCorrelatedSite",
]


@dataclass
class Site:
    """Base class: one static conditional branch site."""

    pc: int

    def next_outcome(self, rng: random.Random, ghist: int) -> bool:
        """Direction of the next dynamic instance."""
        raise NotImplementedError


@dataclass
class LoopSite(Site):
    """Loop-exit behaviour: runs of the dominant direction, then a flip.

    Args:
        trips: Candidate trip counts.
        trip_weights: Relative probabilities (uniform when omitted); a
            single dominant trip with small weight on ±1 gives the
            "low entropy exit count" behaviour the paper targets.
        backward: True for loop back-edges (dominant taken); False for
            forward if-then-else (dominant not-taken).
    """

    trips: tuple[int, ...] = (8,)
    trip_weights: tuple[float, ...] | None = None
    backward: bool = True

    def __post_init__(self) -> None:
        if not self.trips or any(t < 1 for t in self.trips):
            raise WorkloadError(f"loop site {self.pc:#x}: trips must be >= 1")
        if self.trip_weights is not None and len(self.trip_weights) != len(self.trips):
            raise WorkloadError(
                f"loop site {self.pc:#x}: {len(self.trip_weights)} weights for "
                f"{len(self.trips)} trips"
            )

    def draw_trip(self, rng: random.Random) -> int:
        """Sample the trip count for one loop execution."""
        if self.trip_weights is None:
            return rng.choice(self.trips)
        return rng.choices(self.trips, weights=self.trip_weights, k=1)[0]

    def next_outcome(self, rng: random.Random, ghist: int) -> bool:
        raise WorkloadError(
            "LoopSite outcomes are driven by the engine's loop regions, "
            "not sampled per instance"
        )


@dataclass
class PatternSite(Site):
    """Cyclic direction pattern (e.g. ``TTN`` repeating), with noise."""

    pattern: tuple[bool, ...] = (True, True, False)
    noise: float = 0.0
    _pos: int = field(default=0, repr=False)

    def __post_init__(self) -> None:
        if not self.pattern:
            raise WorkloadError(f"pattern site {self.pc:#x}: empty pattern")
        if not 0.0 <= self.noise < 1.0:
            raise WorkloadError(f"pattern site {self.pc:#x}: bad noise {self.noise}")

    def next_outcome(self, rng: random.Random, ghist: int) -> bool:
        outcome = self.pattern[self._pos]
        self._pos = (self._pos + 1) % len(self.pattern)
        if self.noise and rng.random() < self.noise:
            return not outcome
        return outcome


@dataclass
class BiasedSite(Site):
    """Independent biased coin — irreducible entropy."""

    p_taken: float = 0.7

    def __post_init__(self) -> None:
        if not 0.0 <= self.p_taken <= 1.0:
            raise WorkloadError(f"biased site {self.pc:#x}: bad bias {self.p_taken}")

    def next_outcome(self, rng: random.Random, ghist: int) -> bool:
        return rng.random() < self.p_taken


@dataclass
class GlobalCorrelatedSite(Site):
    """Outcome = parity of selected recent global-history bits.

    Perfectly predictable from global history (TAGE learns it), while a
    per-PC local history sees noise — the control case ensuring the
    local predictor only wins where it should.
    """

    history_bits: int = 6
    invert: bool = False
    noise: float = 0.0

    def __post_init__(self) -> None:
        if not 1 <= self.history_bits <= 32:
            raise WorkloadError(
                f"global site {self.pc:#x}: bad history_bits {self.history_bits}"
            )

    def next_outcome(self, rng: random.Random, ghist: int) -> bool:
        mask = (1 << self.history_bits) - 1
        outcome = bool(bin(ghist & mask).count("1") & 1) ^ self.invert
        if self.noise and rng.random() < self.noise:
            return not outcome
        return outcome
