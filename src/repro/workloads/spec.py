"""Workload specifications: named, seeded, category-tuned parameter sets.

A :class:`WorkloadSpec` is a complete, deterministic recipe for a
synthetic branch trace — the stand-in for the paper's proprietary
Simpoint traces (see DESIGN.md, substitution table).  The parameters
expose exactly the behaviours that differentiate repair schemes: loop
trip distributions and entropy, tight loops (OBQ coalescing pressure),
static footprint (BHT/PT thrashing), global-correlated control (TAGE's
home turf), and memory behaviour (baseline CPI).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.errors import WorkloadError

__all__ = ["WorkloadParams", "WorkloadSpec"]


@dataclass(frozen=True)
class WorkloadParams:
    """Knobs of the synthetic trace engine."""

    # -- site population ---------------------------------------------
    n_loops: int = 10
    n_tight_loops: int = 4
    n_forward_loops: int = 5
    n_patterns: int = 12
    n_biased: int = 16
    n_global: int = 8

    # -- loop behaviour ----------------------------------------------
    trip_min: int = 4
    trip_max: int = 40
    #: Probability mass moved to trip±1 (exit-count entropy).
    trip_entropy: float = 0.08
    #: Probability a loop body contains a nested inner loop.
    nest_prob: float = 0.25
    body_sites_max: int = 3

    # -- pattern behaviour -------------------------------------------
    pattern_min: int = 2
    pattern_max: int = 8
    pattern_noise: float = 0.01
    #: Fraction of pattern sites that are single-flip (``TT...TN`` /
    #: ``NN...NT``) — fixed-trip if-then-else structure, the forward
    #: branches CBPw-Loop explicitly targets (§1).  The rest are
    #: multi-flip patterns only a generic local predictor captures.
    pattern_single_flip: float = 0.7

    # -- biased branches ---------------------------------------------
    bias_min: float = 0.55
    bias_max: float = 0.95
    #: Loop-body noise branches are highly biased: they decorrelate the
    #: global history across iterations (defeating TAGE's exit capture)
    #: while adding little irreducible MPKI of their own.
    body_bias_min: float = 0.92
    body_bias_max: float = 0.985
    #: Tight loops run longer trips — real tight kernels iterate beyond
    #: the global-history window, which is where loop predictors shine.
    tight_trip_scale: float = 2.0

    # -- global-correlated branches -----------------------------------
    global_bits: int = 6
    global_noise: float = 0.02

    # -- region mix ----------------------------------------------------
    loop_region_weight: float = 0.6
    straight_region_len: int = 8

    # -- instruction stream --------------------------------------------
    gap_min: int = 3
    gap_max: int = 10
    tight_gap_max: int = 3
    uncond_prob: float = 0.05

    # -- memory behaviour ----------------------------------------------
    load_prob: float = 0.3
    load_dep_prob: float = 0.15
    working_set_kb: int = 512
    stream_prob: float = 0.5

    def __post_init__(self) -> None:
        if self.n_loops + self.n_tight_loops + self.n_forward_loops < 1:
            raise WorkloadError("need at least one loop site")
        if self.trip_min < 1 or self.trip_max < self.trip_min:
            raise WorkloadError(
                f"bad trip range [{self.trip_min}, {self.trip_max}]"
            )
        if not 0.0 <= self.trip_entropy <= 0.5:
            raise WorkloadError(f"trip_entropy out of range: {self.trip_entropy}")
        if self.pattern_min < 1 or self.pattern_max < self.pattern_min:
            raise WorkloadError("bad pattern length range")
        if not 0.0 <= self.loop_region_weight <= 1.0:
            raise WorkloadError("loop_region_weight must be a probability")
        if self.gap_min < 0 or self.gap_max < self.gap_min:
            raise WorkloadError("bad gap range")
        if self.working_set_kb < 1:
            raise WorkloadError("working_set_kb must be >= 1")

    def scaled_footprint(self, factor: float) -> "WorkloadParams":
        """Copy with the static-site population scaled by ``factor``."""
        if factor <= 0:
            raise WorkloadError(f"footprint factor must be positive: {factor}")

        def scale(n: int) -> int:
            return max(1, round(n * factor))

        return replace(
            self,
            n_loops=scale(self.n_loops),
            n_tight_loops=scale(self.n_tight_loops),
            n_forward_loops=scale(self.n_forward_loops),
            n_patterns=scale(self.n_patterns),
            n_biased=scale(self.n_biased),
            n_global=scale(self.n_global),
        )


@dataclass(frozen=True)
class WorkloadSpec:
    """A named, reproducible workload."""

    name: str
    category: str
    seed: int
    params: WorkloadParams = field(default_factory=WorkloadParams)

    def __post_init__(self) -> None:
        if not self.name:
            raise WorkloadError("workload name must be non-empty")
