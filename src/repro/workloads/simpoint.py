"""Simpoint-like representative-phase selection.

The paper characterises its workloads "using a Simpoint-like
methodology" (§4): long executions are split into fixed-size intervals,
each summarised by a basic-block vector (here: a branch-PC execution
histogram), the vectors are clustered, and the interval closest to each
cluster centroid represents that phase.

This module provides the same machinery over branch traces.  The
synthetic suite doesn't strictly need it (the generators are stationary
by construction), but it completes the methodology and lets users apply
the harness to their own long traces.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import WorkloadError
from repro.trace.records import BranchRecord

__all__ = ["Phase", "select_phases", "interval_vectors"]


@dataclass(frozen=True, slots=True)
class Phase:
    """One representative interval of a long trace."""

    #: Index of the representative interval.
    interval: int
    #: First record index of the interval.
    start: int
    #: One-past-last record index.
    end: int
    #: Fraction of all intervals this phase represents.
    weight: float


def interval_vectors(
    records: list[BranchRecord], interval_size: int
) -> tuple[np.ndarray, list[tuple[int, int]]]:
    """Branch-PC frequency vectors per interval.

    Returns (matrix of shape [n_intervals, n_pcs], interval bounds).
    Vectors are L1-normalised so intervals of unequal tail length
    compare fairly.
    """
    if interval_size <= 0:
        raise WorkloadError(f"interval_size must be positive: {interval_size}")
    if not records:
        raise WorkloadError("cannot build interval vectors from an empty trace")
    pcs = sorted({rec.pc for rec in records})
    pc_index = {pc: i for i, pc in enumerate(pcs)}
    bounds: list[tuple[int, int]] = []
    rows: list[np.ndarray] = []
    for start in range(0, len(records), interval_size):
        end = min(start + interval_size, len(records))
        row = np.zeros(len(pcs), dtype=np.float64)
        for rec in records[start:end]:
            row[pc_index[rec.pc]] += 1.0
        total = row.sum()
        if total > 0:
            row /= total
        rows.append(row)
        bounds.append((start, end))
    return np.vstack(rows), bounds


def _kmeans(matrix: np.ndarray, k: int, seed: int, iterations: int = 25) -> np.ndarray:
    """Plain Lloyd's k-means returning the assignment vector."""
    rng = np.random.default_rng(seed)
    n = matrix.shape[0]
    centroids = matrix[rng.choice(n, size=k, replace=False)].copy()
    assignment = np.zeros(n, dtype=np.int64)
    for _ in range(iterations):
        distances = ((matrix[:, None, :] - centroids[None, :, :]) ** 2).sum(axis=2)
        new_assignment = distances.argmin(axis=1)
        if np.array_equal(new_assignment, assignment):
            break
        assignment = new_assignment
        for cluster in range(k):
            members = matrix[assignment == cluster]
            if len(members):
                centroids[cluster] = members.mean(axis=0)
    return assignment


def select_phases(
    records: list[BranchRecord],
    interval_size: int = 10_000,
    max_phases: int = 4,
    seed: int = 42,
) -> list[Phase]:
    """Pick representative intervals covering the trace's phases.

    Returns at most ``max_phases`` phases, each weighted by the number
    of intervals its cluster contains, sorted by weight descending.
    """
    matrix, bounds = interval_vectors(records, interval_size)
    n_intervals = matrix.shape[0]
    k = min(max_phases, n_intervals)
    if k <= 1:
        return [Phase(interval=0, start=bounds[0][0], end=bounds[0][1], weight=1.0)]
    assignment = _kmeans(matrix, k, seed)
    phases: list[Phase] = []
    for cluster in range(k):
        member_idx = np.flatnonzero(assignment == cluster)
        if len(member_idx) == 0:
            continue
        centroid = matrix[member_idx].mean(axis=0)
        distances = ((matrix[member_idx] - centroid) ** 2).sum(axis=1)
        representative = int(member_idx[distances.argmin()])
        start, end = bounds[representative]
        phases.append(
            Phase(
                interval=representative,
                start=start,
                end=end,
                weight=len(member_idx) / n_intervals,
            )
        )
    phases.sort(key=lambda p: p.weight, reverse=True)
    return phases
