"""The 202-workload evaluation suite (paper Table 1).

Builds one :class:`~repro.workloads.spec.WorkloadSpec` per paper
workload, named after the application families Table 1 lists, with
deterministic per-workload parameter jitter.  A handful of workloads
the paper calls out by name get hand-tuned parameters reproducing their
described behaviour:

* ``server-cloud-compression`` and ``personal-tabletmark-email`` —
  extremely local-sensitive (> 15% IPC gain with perfect repair);
* ``bp-sysmark-photoshop`` — high repair demand per misprediction;
* ``personal-eembc-dither`` — so many hot PCs that CBPw-Loop128
  thrashes (IPC loss, recovered at 256 entries).
"""

from __future__ import annotations

from dataclasses import replace
from functools import lru_cache

from repro.errors import WorkloadError
from repro.workloads.categories import CATEGORIES, CATEGORY_COUNTS, jittered_params
from repro.workloads.spec import WorkloadSpec

__all__ = [
    "build_suite",
    "suite_by_category",
    "get_workload",
    "sample_suite",
]

_FLAVORS: dict[str, tuple[str, ...]] = {
    "server": (
        "hadoop-analytics",
        "cloud-compression",
        "spark-streaming",
        "bigbench",
        "cassandra-txn",
        "specjbb",
        "websearch",
        "particle-render",
    ),
    "hpc": (
        "hplinpack",
        "specmpi",
        "molecular-dynamics",
        "signal-processing",
        "fft",
    ),
    "ispec": (
        "perlbench",
        "bzip2",
        "gcc",
        "mcf",
        "gobmk",
        "hmmer",
        "sjeng",
        "libquantum",
        "h264ref",
        "omnetpp",
        "astar",
        "xalancbmk",
        "deepsjeng",
        "leela",
        "exchange2",
        "xz",
    ),
    "fspec": (
        "bwaves",
        "gamess",
        "milc",
        "zeusmp",
        "gromacs",
        "cactus",
        "leslie3d",
        "namd",
        "dealii",
        "soplex",
        "povray",
        "calculix",
        "gemsfdtd",
        "tonto",
        "lbm",
        "wrf",
        "sphinx3",
        "fotonik3d",
        "roms",
        "nab",
        "cam4",
        "imagick",
    ),
    "mm": ("photo-edit", "animation", "video-convert", "mediaplayer"),
    "bp": (
        "sysmark-office",
        "pdf-edit",
        "email",
        "presentation",
        "spreadsheet",
        "document",
        "sysmark-photoshop",
    ),
    "personal": (
        "email",
        "voice-to-text",
        "image-convert",
        "games",
        "mobilexprt",
        "geekbench",
        "tabletmark-email",
        "eembc-dither",
        "eembc-auto",
        "tabletmark-web",
    ),
}

_CATEGORY_SEED_BASE = {name: (index + 1) * 10_000 for index, name in enumerate(CATEGORIES)}


def _special_tune(spec: WorkloadSpec) -> WorkloadSpec:
    """Hand-tuned parameters for paper-named workloads."""
    params = spec.params
    if spec.name in ("server-cloud-compression", "personal-tabletmark-email"):
        # Dominated by medium, stable loops with noisy bodies: huge
        # loop-predictor opportunity, heavy repair demand after exits.
        params = replace(
            params,
            n_loops=10,
            n_tight_loops=8,
            n_forward_loops=4,
            n_patterns=6,
            n_biased=6,
            n_global=2,
            trip_min=12,
            trip_max=60,
            trip_entropy=0.02,
            pattern_noise=0.004,
            loop_region_weight=0.9,
        )
    elif spec.name == "bp-sysmark-photoshop":
        # Wide loop footprint: each misprediction leaves many PCs dirty.
        params = replace(
            params,
            n_loops=24,
            n_tight_loops=10,
            n_forward_loops=12,
            trip_min=6,
            trip_max=40,
            trip_entropy=0.04,
            loop_region_weight=0.8,
        )
    elif spec.name == "personal-eembc-dither":
        # Enormous hot-site population: CBPw-Loop128 thrashes.
        params = params.scaled_footprint(4.0)
        params = replace(params, trip_min=3, trip_max=16, loop_region_weight=0.7)
    else:
        return spec
    return replace(spec, params=params)


@lru_cache(maxsize=1)
def build_suite() -> tuple[WorkloadSpec, ...]:
    """All 202 workload specs, in category order."""
    specs: list[WorkloadSpec] = []
    for category in CATEGORIES:
        flavors = _FLAVORS[category]
        count = CATEGORY_COUNTS[category]
        for index in range(count):
            flavor = flavors[index % len(flavors)]
            repeat = index // len(flavors)
            name = f"{category}-{flavor}" + (f"-{repeat + 1}" if repeat else "")
            seed = _CATEGORY_SEED_BASE[category] + index
            spec = WorkloadSpec(
                name=name,
                category=category,
                seed=seed,
                params=jittered_params(category, seed),
            )
            specs.append(_special_tune(spec))
    return tuple(specs)


def suite_by_category() -> dict[str, list[WorkloadSpec]]:
    """Suite grouped by category, preserving order."""
    grouped: dict[str, list[WorkloadSpec]] = {name: [] for name in CATEGORIES}
    for spec in build_suite():
        grouped[spec.category].append(spec)
    return grouped


def get_workload(name: str) -> WorkloadSpec:
    """Look up one workload by its full name."""
    for spec in build_suite():
        if spec.name == name:
            return spec
    raise WorkloadError(f"unknown workload {name!r}")


def sample_suite(per_category: int) -> list[WorkloadSpec]:
    """A deterministic subsample: first N workloads of each category.

    The experiment harness uses this to scale runs (smoke/small/full)
    while keeping every category represented.
    """
    if per_category <= 0:
        raise WorkloadError(f"per_category must be positive: {per_category}")
    sampled: list[WorkloadSpec] = []
    for specs in suite_by_category().values():
        sampled.extend(specs[:per_category])
    return sampled
