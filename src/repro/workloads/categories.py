"""Per-category workload tuning (paper Table 1).

Each category gets a base parameter set shaped by the paper's
qualitative description plus the behaviours its results imply:

* **Server** — many distinct branch PCs (BHT pressure), mixed loops and
  if-then-else; good local opportunity when the right PCs are kept.
* **HPC** — few sites, deep loop nests, long stable trip counts; the
  largest MPKI reductions.
* **ISPEC** — a balanced mix of loops and forward branches.
* **FSPEC** — loop-dominated but with long trips (rare exits), more
  globally predictable control; the smallest IPC gains.
* **MM** (multimedia) — tight kernels, frequent exits; *loses* IPC when
  the BHT is not repaired (Figure 4).
* **BP** (business productivity) — forward-branch/pattern heavy; also
  no-repair-negative.
* **Personal** — a broad consumer mix with strong local structure.

The knob that controls the paper-matching shape is the ratio between
loop-exit mispredictions (recoverable by CBPw-Loop) and irreducible
biased-branch noise: loop *bodies* carry high-bias noise branches that
scramble TAGE's global history without adding many mispredictions of
their own, while straight-line code carries the noise floor.
"""

from __future__ import annotations

import random
from dataclasses import replace

from repro.errors import WorkloadError
from repro.workloads.spec import WorkloadParams

__all__ = [
    "CATEGORIES",
    "CATEGORY_COUNTS",
    "base_params",
    "jittered_params",
]

#: Category ids in the paper's presentation order.
CATEGORIES: tuple[str, ...] = (
    "server",
    "hpc",
    "ispec",
    "fspec",
    "mm",
    "bp",
    "personal",
)

#: Workloads per category (Table 1: 29+8+34+64+15+16+36 = 202).
CATEGORY_COUNTS: dict[str, int] = {
    "server": 29,
    "hpc": 8,
    "ispec": 34,
    "fspec": 64,
    "mm": 15,
    "bp": 16,
    "personal": 36,
}

_BASE_PARAMS: dict[str, WorkloadParams] = {
    "server": WorkloadParams(
        n_loops=22,
        n_tight_loops=6,
        n_forward_loops=14,
        n_patterns=30,
        n_biased=24,
        n_global=18,
        trip_min=6,
        trip_max=28,
        trip_entropy=0.08,
        bias_min=0.86,
        bias_max=0.97,
        loop_region_weight=0.6,
        gap_min=5,
        gap_max=14,
        working_set_kb=256,
        stream_prob=0.35,
        load_prob=0.15,
    ),
    "hpc": WorkloadParams(
        n_loops=6,
        n_tight_loops=3,
        n_forward_loops=2,
        n_patterns=4,
        n_biased=4,
        n_global=4,
        trip_min=12,
        trip_max=60,
        trip_entropy=0.02,
        nest_prob=0.5,
        bias_min=0.88,
        bias_max=0.97,
        body_bias_min=0.95,
        body_bias_max=0.99,
        loop_region_weight=0.88,
        gap_min=5,
        gap_max=14,
        working_set_kb=128,
        stream_prob=0.8,
        load_prob=0.15,
    ),
    "ispec": WorkloadParams(
        n_loops=12,
        n_tight_loops=4,
        n_forward_loops=8,
        n_patterns=14,
        n_biased=12,
        n_global=12,
        trip_min=5,
        trip_max=32,
        trip_entropy=0.06,
        bias_min=0.88,
        bias_max=0.97,
        loop_region_weight=0.65,
        gap_min=4,
        gap_max=12,
        working_set_kb=128,
        load_prob=0.12,
    ),
    "fspec": WorkloadParams(
        n_loops=10,
        n_tight_loops=4,
        n_forward_loops=4,
        n_patterns=8,
        n_biased=8,
        n_global=14,
        trip_min=24,
        trip_max=150,
        trip_entropy=0.04,
        nest_prob=0.4,
        bias_min=0.88,
        bias_max=0.97,
        loop_region_weight=0.8,
        gap_min=5,
        gap_max=14,
        working_set_kb=256,
        stream_prob=0.8,
        load_prob=0.15,
    ),
    "mm": WorkloadParams(
        n_loops=8,
        n_tight_loops=5,
        n_forward_loops=3,
        n_patterns=8,
        n_biased=6,
        n_global=4,
        trip_min=6,
        trip_max=24,
        trip_entropy=0.05,
        tight_trip_scale=3.0,
        bias_min=0.88,
        bias_max=0.97,
        loop_region_weight=0.78,
        gap_min=3,
        gap_max=9,
        working_set_kb=128,
        stream_prob=0.7,
        load_prob=0.12,
    ),
    "bp": WorkloadParams(
        n_loops=8,
        n_tight_loops=2,
        n_forward_loops=12,
        n_patterns=20,
        n_biased=10,
        n_global=8,
        trip_min=3,
        trip_max=16,
        trip_entropy=0.08,
        bias_min=0.86,
        bias_max=0.96,
        loop_region_weight=0.55,
        gap_min=4,
        gap_max=12,
        working_set_kb=128,
        load_prob=0.12,
    ),
    "personal": WorkloadParams(
        n_loops=12,
        n_tight_loops=4,
        n_forward_loops=8,
        n_patterns=16,
        n_biased=10,
        n_global=8,
        trip_min=5,
        trip_max=40,
        trip_entropy=0.08,
        bias_min=0.87,
        bias_max=0.96,
        loop_region_weight=0.65,
        gap_min=4,
        gap_max=12,
        working_set_kb=128,
        load_prob=0.12,
    ),
}


def base_params(category: str) -> WorkloadParams:
    """The canonical parameter set of ``category``."""
    try:
        return _BASE_PARAMS[category]
    except KeyError:
        raise WorkloadError(f"unknown workload category {category!r}") from None


def jittered_params(category: str, seed: int) -> WorkloadParams:
    """Category parameters with deterministic per-workload variation.

    Individual workloads within a suite differ in footprint, trip
    range, entropy and region mix — enough spread to produce the
    paper's S-curve (Figure 7c) rather than 202 clones.
    """
    base = base_params(category)
    rng = random.Random(seed ^ 0x9E3779B9)
    footprint = rng.uniform(0.6, 1.6)
    trip_shift = rng.uniform(0.7, 1.5)
    trip_min = max(1, round(base.trip_min * trip_shift))
    trip_max = max(trip_min, round(base.trip_max * trip_shift))
    params = base.scaled_footprint(footprint)
    return replace(
        params,
        trip_min=trip_min,
        trip_max=trip_max,
        trip_entropy=min(0.5, max(0.0, base.trip_entropy * rng.uniform(0.5, 1.8))),
        loop_region_weight=min(
            0.95, max(0.2, base.loop_region_weight + rng.uniform(-0.1, 0.1))
        ),
        bias_min=min(base.bias_max - 0.01, base.bias_min + rng.uniform(-0.04, 0.04)),
        load_prob=min(0.8, max(0.05, base.load_prob * rng.uniform(0.7, 1.3))),
    )
