"""The ``public-trace`` workload category: imported real traces.

Synthetic workloads are *recipes* — a seed and parameters regenerate
the trace anywhere.  An imported trace is *content*: the workload IS
the normalised RPTR file produced by :mod:`repro.trace.adapters` from
a ChampSim/BT9/RPTR payload.  :class:`ImportedTraceSpec` extends
:class:`~repro.workloads.spec.WorkloadSpec` with that content's
location and identity so the runner, scheduler, shm publisher, batch
executor, and result cache treat it like any other workload.

Identity is content-addressed: :meth:`ImportedTraceSpec.workload_hash_payload`
feeds the manifest's workload hash with the normalised trace's SHA-256
(plus format and adapter revision) and deliberately *excludes* the
local path — the same trace imported on two machines deduplicates to
the same result-cache entries, and a re-converted trace (adapter bump,
different source bytes) can never alias a stale one.

This module is pure (no filesystem or environment access); the store
that materialises these specs lives in :mod:`repro.harness.tracestore`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import WorkloadError
from repro.trace.adapters.base import ADAPTER_VERSION
from repro.workloads.spec import WorkloadSpec

__all__ = ["PUBLIC_CATEGORY", "ImportedTraceSpec"]

#: Category name under which imported traces appear in results,
#: summaries, and category breakdowns.
PUBLIC_CATEGORY = "public-trace"


@dataclass(frozen=True)
class ImportedTraceSpec(WorkloadSpec):
    """A workload backed by an imported, normalised trace file.

    Attributes:
        path: Absolute path of the normalised RPTR file in the local
            trace store.  Machine-specific; excluded from hashing.
        content_hash: Full SHA-256 of the normalised RPTR payload —
            the trace's portable identity.
        source_format: Adapter that produced the normalisation
            (``champsim``, ``bt9``, ``rptr``).
        adapter_version: :data:`~repro.trace.adapters.base.ADAPTER_VERSION`
            at import time; a bumped adapter re-imports under a new
            workload hash.
        trace_records: Branch records in the stored file.  Runs asking
            for more records than exist simply replay the whole trace.
    """

    path: str = ""
    content_hash: str = ""
    source_format: str = "rptr"
    adapter_version: int = ADAPTER_VERSION
    trace_records: int = 0

    def __post_init__(self) -> None:
        super().__post_init__()
        if not self.path:
            raise WorkloadError(
                f"imported workload {self.name!r} has no trace path"
            )
        if not self.content_hash:
            raise WorkloadError(
                f"imported workload {self.name!r} has no content hash"
            )
        if self.trace_records < 1:
            raise WorkloadError(
                f"imported workload {self.name!r} has no records"
            )

    def workload_hash_payload(self) -> dict[str, object]:
        """Portable identity payload for manifest/workload hashing.

        Everything that determines the simulated branch stream — and
        nothing machine-local — so result-cache dedup keys on *what*
        the trace is, not *where* it sits.
        """
        return {
            "kind": "imported-trace",
            "name": self.name,
            "category": self.category,
            "content_hash": self.content_hash,
            "source_format": self.source_format,
            "adapter_version": self.adapter_version,
            "trace_records": self.trace_records,
        }
