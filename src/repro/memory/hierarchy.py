"""Three-level cache hierarchy with inclusive LLC and DRAM backstop.

Mirrors Table 2 of the paper: private 32KB L1 (5 cycles), private 256KB
L2 (15 cycles), shared inclusive 8MB LLC (40 cycles), dual-channel
DDR4-2133 main memory (modelled as a flat latency at 3.2 GHz).
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

from repro.memory.cache import Cache, CacheConfig
from repro.memory.prefetch import NextLinePrefetcher

__all__ = ["HierarchyConfig", "CacheHierarchy"]


@dataclass(frozen=True)
class HierarchyConfig:
    """Latency/geometry bundle for the full hierarchy."""

    l1: CacheConfig = CacheConfig("L1D", 32 * 1024, 64, 8, 5)
    l2: CacheConfig = CacheConfig("L2", 256 * 1024, 64, 8, 15)
    llc: CacheConfig = CacheConfig("LLC", 8 * 1024 * 1024, 64, 16, 40)
    #: Effective DRAM access latency in core cycles (DDR4-2133 at 3.2GHz,
    #: ~60ns loaded round trip).
    dram_latency: int = 190
    prefetch_degree: int = 4

    @classmethod
    def skylake(cls) -> "HierarchyConfig":
        """The paper's Table 2 memory system."""
        return cls()


class CacheHierarchy:
    """Sequential-lookup L1→L2→LLC→DRAM timing model.

    ``load_latency(addr)`` returns the cycles until the load's value is
    available, filling all levels on the way back (inclusive LLC with
    back-invalidation on LLC eviction).
    """

    def __init__(self, config: HierarchyConfig | None = None) -> None:
        self.config = config = config if config is not None else HierarchyConfig()
        self.l1 = Cache(config.l1)
        self.l2 = Cache(config.l2)
        self.llc = Cache(config.llc)
        self._l1_prefetcher = NextLinePrefetcher(self.l1, config.prefetch_degree)
        self._l2_prefetcher = NextLinePrefetcher(self.l2, config.prefetch_degree)
        self.dram_accesses = 0

    def load_latency(self, addr: int) -> int:
        """Cycles for a demand load at ``addr`` to return data."""
        cfg = self.config
        if self.l1.access(addr).hit:
            return cfg.l1.latency
        self._l1_prefetcher.on_miss(addr)
        if self.l2.access(addr).hit:
            return cfg.l1.latency + cfg.l2.latency
        self._l2_prefetcher.on_miss(addr)
        result = self.llc.access(addr)  # fills the line on a miss
        if result.hit:
            self.l2.fill(addr)
            return cfg.l1.latency + cfg.l2.latency + cfg.llc.latency
        if result.evicted_line is not None:
            # Inclusive LLC: evicting a line removes it everywhere.
            self.l1.invalidate_line(result.evicted_line)
            self.l2.invalidate_line(result.evicted_line)
        self.l2.fill(addr)
        self.dram_accesses += 1
        return cfg.l1.latency + cfg.l2.latency + cfg.llc.latency + cfg.dram_latency

    def warm_load(self, addr: int) -> None:
        """State-only warm touch for fast-forward skip spans.

        Installs the line at every level with LRU refresh but without
        the demand walk: no latency arithmetic, no hit/miss counters,
        no prefetch emulation, no back-invalidation.  The full
        :meth:`load_latency` path costs ~17 µs on a streaming miss
        (prefetch fills + LRU victim scans at three levels); this costs
        three dict operations, which is what makes whole-trace cache
        warmth affordable between detailed intervals.  The detailed
        warmup window immediately before each measured interval runs
        real demand loads, restoring exact prefetcher-visible behaviour
        where it matters.
        """
        self.l1.touch(addr)
        self.l2.touch(addr)
        self.llc.touch(addr)

    def warm_load_batch(self, addrs: Sequence[int]) -> None:
        """Batched :meth:`warm_load` over a whole skip span.

        Bit-identical final state to per-address ``warm_load`` calls
        (see :meth:`~repro.memory.cache.Cache.touch_batch`) at a
        fraction of the cost — one dict store per address per level
        instead of a victim scan per touch.
        """
        self.l1.touch_batch(addrs)
        self.l2.touch_batch(addrs)
        self.llc.touch_batch(addrs)

    def stats(self) -> dict[str, float]:
        """Per-level hit/miss summary for reports and tests."""
        return {
            "l1_accesses": self.l1.accesses,
            "l1_miss_rate": self.l1.miss_rate,
            "l2_accesses": self.l2.accesses,
            "l2_miss_rate": self.l2.miss_rate,
            "llc_accesses": self.llc.accesses,
            "llc_miss_rate": self.llc.miss_rate,
            "dram_accesses": self.dram_accesses,
        }
