"""Set-associative cache model with true-LRU replacement.

The memory hierarchy exists to give the pipeline a realistic baseline
CPI: load-dependent branches resolve only when their load returns, and
memory stalls dilute the relative cost of branch mispredictions exactly
as they do on real machines.  The model is a timing filter — it tracks
hits/misses and returns latencies, it does not move data.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

from repro.errors import ConfigError

__all__ = ["CacheConfig", "Cache", "AccessResult"]


@dataclass(frozen=True, slots=True)
class CacheConfig:
    """Geometry and latency of one cache level."""

    name: str
    size_bytes: int
    line_bytes: int
    ways: int
    latency: int

    def __post_init__(self) -> None:
        if self.size_bytes <= 0 or self.line_bytes <= 0 or self.ways <= 0:
            raise ConfigError(f"{self.name}: sizes and ways must be positive")
        if self.size_bytes % (self.line_bytes * self.ways):
            raise ConfigError(
                f"{self.name}: size {self.size_bytes} not divisible into "
                f"{self.ways}-way sets of {self.line_bytes}B lines"
            )
        if self.line_bytes & (self.line_bytes - 1):
            raise ConfigError(f"{self.name}: line size must be a power of two")
        if self.latency <= 0:
            raise ConfigError(f"{self.name}: latency must be positive")

    @property
    def sets(self) -> int:
        return self.size_bytes // (self.line_bytes * self.ways)


@dataclass(slots=True)
class AccessResult:
    """Outcome of a single cache probe."""

    hit: bool
    evicted_line: int | None = None


class Cache:
    """One level of set-associative cache with LRU replacement.

    Sets are dicts mapping line address → LRU timestamp; true LRU on a
    handful of ways is cheap and deterministic.
    """

    def __init__(self, config: CacheConfig) -> None:
        self.config = config
        sets = config.sets
        if sets & (sets - 1):
            raise ConfigError(f"{config.name}: set count {sets} must be a power of two")
        self._set_mask = sets - 1
        self._line_shift = config.line_bytes.bit_length() - 1
        self._sets: list[dict[int, int]] = [dict() for _ in range(sets)]
        self._tick = 0
        self.hits = 0
        self.misses = 0

    def _locate(self, addr: int) -> tuple[int, dict[int, int]]:
        line = addr >> self._line_shift
        return line, self._sets[line & self._set_mask]

    def probe(self, addr: int) -> bool:
        """Check residency without updating LRU or counters."""
        line, ways = self._locate(addr)
        return line in ways

    def access(self, addr: int) -> AccessResult:
        """Look up ``addr``; on a miss, fill the line (evicting LRU)."""
        self._tick += 1
        line, ways = self._locate(addr)
        if line in ways:
            ways[line] = self._tick
            self.hits += 1
            return AccessResult(hit=True)
        self.misses += 1
        evicted: int | None = None
        if len(ways) >= self.config.ways:
            victim = min(ways, key=ways.get)  # type: ignore[arg-type]
            del ways[victim]
            evicted = victim
        ways[line] = self._tick
        return AccessResult(hit=False, evicted_line=evicted)

    def fill(self, addr: int) -> None:
        """Insert a line without counting an access (prefetch fills)."""
        self._tick += 1
        line, ways = self._locate(addr)
        if line in ways:
            return
        if len(ways) >= self.config.ways:
            victim = min(ways, key=ways.get)  # type: ignore[arg-type]
            del ways[victim]
        ways[line] = self._tick

    def touch(self, addr: int) -> None:
        """Warm insert for fast-forward: fill *and* refresh LRU on a hit.

        Unlike :meth:`access` it allocates no result object and counts
        nothing (skip-span touches must not pollute hit/miss rates);
        unlike :meth:`fill` it keeps the LRU stack current so the line
        ordering detailed intervals inherit stays realistic.
        """
        self._tick += 1
        line, ways = self._locate(addr)
        if line not in ways and len(ways) >= self.config.ways:
            victim = min(ways, key=ways.get)  # type: ignore[arg-type]
            del ways[victim]
        ways[line] = self._tick

    def touch_batch(self, addrs: Sequence[int]) -> None:
        """Apply a sequence of :meth:`touch` calls in one pass.

        Produces *bit-identical* final state (set contents, LRU
        timestamps, ``_tick``) to calling ``touch(addr)`` once per
        address in order, but without the per-touch victim scan: each
        line keeps only its last-touch position, and each set keeps the
        ``ways`` most recently touched lines.  Touch-only streams never
        read the interleaved state, which is what makes the reordering
        legal — fast-forward skip spans batch their load addresses
        through here.
        """
        if not addrs:
            return
        shift = self._line_shift
        mask = self._set_mask
        base = self._tick + 1
        self._tick += len(addrs)
        last: dict[int, int] = {}
        for pos, addr in enumerate(addrs):
            last[addr >> shift] = pos
        per_set: dict[int, list[tuple[int, int]]] = {}
        for line, pos in last.items():
            per_set.setdefault(line & mask, []).append((pos, line))
        w = self.config.ways
        sets = self._sets
        for set_index, pairs in per_set.items():
            ways = sets[set_index]
            if len(pairs) >= w:
                pairs.sort()
                del pairs[:-w]
                ways.clear()
            else:
                pairs.sort()
                for _, line in pairs:
                    ways.pop(line, None)
                overflow = len(ways) + len(pairs) - w
                if overflow > 0:
                    # Batch ticks are all newer than pre-existing ones,
                    # so sequential LRU would evict exactly the oldest
                    # pre-existing lines first.
                    for victim in sorted(ways, key=ways.get)[:overflow]:  # type: ignore[arg-type]
                        del ways[victim]
            for pos, line in pairs:
                ways[line] = base + pos

    def invalidate_line(self, line: int) -> None:
        """Back-invalidate a line (inclusive-LLC eviction)."""
        ways = self._sets[line & self._set_mask]
        ways.pop(line, None)

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def miss_rate(self) -> float:
        total = self.accesses
        return self.misses / total if total else 0.0
