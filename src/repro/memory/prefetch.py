"""Simple hardware prefetchers.

Table 2 of the paper enables prefetchers at every cache level; a
next-line (sequential) prefetcher captures the dominant first-order
benefit for the streaming access patterns our workload generators emit.
"""

from __future__ import annotations

from repro.errors import ConfigError
from repro.memory.cache import Cache

__all__ = ["NextLinePrefetcher"]


class NextLinePrefetcher:
    """Prefetch ``degree`` sequential lines into a cache after each miss."""

    def __init__(self, cache: Cache, degree: int = 1) -> None:
        if degree < 0:
            raise ConfigError(f"prefetch degree must be >= 0, got {degree}")
        self.cache = cache
        self.degree = degree
        self.issued = 0

    def on_miss(self, addr: int) -> None:
        """Called by the hierarchy when ``addr`` missed in the cache."""
        line_bytes = self.cache.config.line_bytes
        for step in range(1, self.degree + 1):
            self.cache.fill(addr + step * line_bytes)
            self.issued += 1
