"""Cache hierarchy substrate (L1/L2/LLC + prefetchers + DRAM latency)."""

from repro.memory.cache import AccessResult, Cache, CacheConfig
from repro.memory.hierarchy import CacheHierarchy, HierarchyConfig
from repro.memory.prefetch import NextLinePrefetcher

__all__ = [
    "Cache",
    "CacheConfig",
    "AccessResult",
    "CacheHierarchy",
    "HierarchyConfig",
    "NextLinePrefetcher",
]
