"""Exception hierarchy for the repro package.

All exceptions raised by this library derive from :class:`ReproError` so
callers can catch library failures with a single ``except`` clause while
letting genuine programming errors (``TypeError`` etc.) propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigError(ReproError):
    """A configuration object is internally inconsistent or out of range."""


class TraceError(ReproError):
    """A trace file or trace stream is malformed."""


class TraceFormatError(TraceError):
    """A trace payload violates its format's structural contract.

    Raised by the binary readers (:mod:`repro.trace.io`,
    :mod:`repro.trace.columns`) and the external-format adapters
    (:mod:`repro.trace.adapters`) for bad magic, unsupported versions,
    truncated payloads, and malformed records.  ``offset`` locates the
    defect: a byte offset into the payload for binary formats, a
    1-based line number for text formats (see ``unit``), or None when
    no single position is responsible.
    """

    def __init__(
        self, message: str, offset: int | None = None, unit: str = "byte"
    ) -> None:
        if offset is not None:
            message = f"{message} (at {unit} {offset})"
        super().__init__(message)
        self.offset = offset
        self.unit = unit


class WorkloadError(ReproError):
    """A workload specification cannot be resolved or generated."""


class SimulationError(ReproError):
    """The pipeline model reached an inconsistent state.

    This always indicates a bug in the simulator (or a hand-built
    configuration violating a documented invariant), never a property of
    the simulated workload.
    """


class SpecializationError(ReproError):
    """A specialized engine could not be generated, compiled, or loaded.

    Raised by :mod:`repro.pipeline.specialize` when codegen produces
    source that fails its round-trip validation (``ast.parse`` /
    ``compile``) or a cached engine file is unusable.  Guard *trips* at
    run time are not errors — they abort back to the generic engine —
    and are signalled internally with a subclass that never escapes the
    driver.
    """


class ExperimentError(ReproError):
    """An experiment harness was invoked with an unknown id or bad scale."""


class TelemetryError(ReproError):
    """A telemetry artifact (metric, trace, manifest) is malformed."""


class MetricsError(ReproError):
    """A metric aggregation was fed values outside its domain."""


class ServiceError(ReproError):
    """A simulation-service request or server state is invalid.

    Raised by :mod:`repro.service` for malformed submissions, unknown
    job ids, and illegal lifecycle transitions (e.g. cancelling a job
    that already finished).  Transport-level concerns (rate limiting,
    backpressure) are expressed as HTTP statuses, not exceptions.
    """
