"""Command-line interface for single simulations and discovery.

Complements the figure harness (``python -m repro.harness.figures``)
with direct, single-run access:

    repro list-workloads [--category hpc]
    repro list-systems
    repro run --workload hpc-fft --system forward-walk --branches 20000
    repro compare --workload hpc-fft --branches 20000
"""

from __future__ import annotations

import argparse
import sys

from repro.harness.report import format_table
from repro.harness.runner import run_single
from repro.harness.systems import TABLE3_SYSTEMS, SystemConfig
from repro.workloads.categories import CATEGORIES
from repro.workloads.suite import build_suite, get_workload

__all__ = ["main"]


def _system_by_name(name: str) -> SystemConfig:
    for config in TABLE3_SYSTEMS:
        if config.name == name:
            return config
    known = ", ".join(cfg.name for cfg in TABLE3_SYSTEMS)
    raise SystemExit(f"unknown system {name!r}; choose from: {known}")


def _cmd_list_workloads(args: argparse.Namespace) -> int:
    rows = [
        (spec.name, spec.category, spec.seed)
        for spec in build_suite()
        if args.category is None or spec.category == args.category
    ]
    print(format_table(["workload", "category", "seed"], rows))
    print(f"\n{len(rows)} workloads")
    return 0


def _cmd_list_systems(_args: argparse.Namespace) -> int:
    rows = [
        (
            cfg.name,
            cfg.tage,
            cfg.local_entries if cfg.local_entries is not None else "-",
            cfg.scheme or "-",
            cfg.ports if cfg.scheme in ("backward", "snapshot", "forward", "multistage") else "-",
        )
        for cfg in TABLE3_SYSTEMS
    ]
    print(format_table(["system", "tage", "BHT entries", "scheme", "M-N-P"], rows))
    return 0


def _print_run(label: str, result) -> None:
    print(
        f"{label:24s} IPC {result.ipc:7.3f}   MPKI {result.mpki:7.2f}   "
        f"({result.instructions} instructions, {result.cycles} cycles)"
    )


def _cmd_run(args: argparse.Namespace) -> int:
    spec = get_workload(args.workload)
    system = _system_by_name(args.system)
    result = run_single(spec, system, args.branches)
    _print_run(system.name, result)
    repair = result.extra.get("repair")
    if repair:
        print(
            f"{'':24s} repair events {repair['events']}, "
            f"avg writes/event {repair['mean_writes_per_event']:.1f}, "
            f"busy cycles {repair['busy_cycles']}"
        )
    return 0


def _cmd_diagnose(args: argparse.Namespace) -> int:
    from repro.analysis import diagnose

    spec = get_workload(args.workload)
    system = _system_by_name(args.system)
    result = run_single(spec, system, args.branches)
    print(diagnose(result).render())
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    spec = get_workload(args.workload)
    print(f"workload {spec.name}, {args.branches} branches\n")
    base = None
    for system in TABLE3_SYSTEMS:
        result = run_single(spec, system, args.branches)
        if system.name == "baseline-tage":
            base = result
            _print_run(system.name, result)
            continue
        gain = result.ipc / base.ipc - 1 if base and base.ipc else 0.0
        red = (base.mpki - result.mpki) / base.mpki if base and base.mpki else 0.0
        print(
            f"{system.name:24s} IPC {result.ipc:7.3f} ({gain:+6.2%})   "
            f"MPKI {result.mpki:7.2f} ({red:+6.1%})"
        )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="Local branch predictor repair simulations."
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_lw = sub.add_parser("list-workloads", help="list the 202-workload suite")
    p_lw.add_argument("--category", choices=CATEGORIES, default=None)
    p_lw.set_defaults(func=_cmd_list_workloads)

    p_ls = sub.add_parser("list-systems", help="list Table 3 system configs")
    p_ls.set_defaults(func=_cmd_list_systems)

    p_run = sub.add_parser("run", help="simulate one (workload, system) pair")
    p_run.add_argument("--workload", required=True)
    p_run.add_argument("--system", default="forward-walk-coalesce")
    p_run.add_argument("--branches", type=int, default=20_000)
    p_run.set_defaults(func=_cmd_run)

    p_cmp = sub.add_parser("compare", help="all Table 3 systems on one workload")
    p_cmp.add_argument("--workload", required=True)
    p_cmp.add_argument("--branches", type=int, default=15_000)
    p_cmp.set_defaults(func=_cmd_compare)

    p_diag = sub.add_parser(
        "diagnose", help="explain one (workload, system) run's behaviour"
    )
    p_diag.add_argument("--workload", required=True)
    p_diag.add_argument("--system", default="forward-walk-coalesce")
    p_diag.add_argument("--branches", type=int, default=20_000)
    p_diag.set_defaults(func=_cmd_diagnose)

    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except BrokenPipeError:
        # Output piped into a pager/head that exited early: not an error.
        import os

        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0


if __name__ == "__main__":
    sys.exit(main())
