"""Command-line interface for single simulations and discovery.

Complements the figure harness (``python -m repro.harness.figures``)
with direct, single-run access:

    repro list-workloads [--category hpc]
    repro list-systems
    repro run --workload hpc-fft --system forward-walk --branches 20000
    repro run --workload hpc-fft --telemetry out.jsonl
    repro compare --workload hpc-fft --branches 20000 --workers 4
    repro telemetry out.jsonl
    repro serve --port 8321 --workers 2
"""

from __future__ import annotations

import argparse
import os
import sys
from collections.abc import Iterator
from contextlib import contextmanager

from repro.errors import ConfigError, ReproError
from repro.harness.report import format_table
from repro.harness.runner import RunResult, run_single
from repro.harness.sampling import SamplingConfig
from repro.harness.systems import TABLE3_SYSTEMS, SystemConfig, resolve_system
from repro.harness.tracestore import resolve_workload
from repro.workloads.categories import CATEGORIES
from repro.workloads.spec import WorkloadSpec
from repro.workloads.suite import build_suite

__all__ = ["main"]


@contextmanager
def _telemetry_session(path: str | None) -> Iterator[None]:
    """Enable telemetry + JSONL tracing for the wrapped commands."""
    if path is None:
        yield
        return
    from repro.telemetry import TELEMETRY, JsonlSink

    sink = JsonlSink(path)
    was_enabled = TELEMETRY.enabled
    TELEMETRY.attach_sink(sink)
    try:
        yield
    finally:
        TELEMETRY.detach_sink()
        sink.close()
        if not was_enabled:
            TELEMETRY.disable()
        note = f"telemetry: {sink.emitted} events -> {path}"
        if sink.truncated:
            note += f" ({sink.truncated} truncated)"
        if sink.error is not None:
            note += f" (write error: {sink.error})"
        print(note)


def _system_by_name(name: str) -> SystemConfig:
    """Table 3 name or table-predictor spec string → SystemConfig.

    Delegates to :func:`repro.harness.systems.resolve_system`, so every
    system-taking command also accepts ``bimodal:12``, ``gshare:14:12``,
    ``local2l:10:8:12`` spec strings; unknown names surface as
    ``error: ...`` with exit code 1 via main()'s ReproError handler.
    """
    return resolve_system(name)


def _cmd_list_workloads(args: argparse.Namespace) -> int:
    rows = [
        (spec.name, spec.category, spec.seed)
        for spec in build_suite()
        if args.category is None or spec.category == args.category
    ]
    print(format_table(["workload", "category", "seed"], rows))
    print(f"\n{len(rows)} workloads")
    return 0


def _cmd_list_systems(_args: argparse.Namespace) -> int:
    rows = [
        (
            cfg.name,
            cfg.tage,
            cfg.local_entries if cfg.local_entries is not None else "-",
            cfg.scheme or "-",
            cfg.ports if cfg.scheme in ("backward", "snapshot", "forward", "multistage") else "-",
        )
        for cfg in TABLE3_SYSTEMS
    ]
    print(format_table(["system", "tage", "BHT entries", "scheme", "M-N-P"], rows))
    return 0


def _print_run(label: str, result: RunResult) -> None:
    print(
        f"{label:24s} IPC {result.ipc:7.3f}   MPKI {result.mpki:7.2f}   "
        f"({result.instructions} instructions, {result.cycles} cycles)"
    )


def _cache_override(args: argparse.Namespace) -> bool | None:
    """--no-result-cache forces the cache off; otherwise env decides."""
    return False if getattr(args, "no_result_cache", False) else None


def _add_specialize_arg(parser: argparse.ArgumentParser) -> None:
    """The shared --specialize flag (run, compare, sweep)."""
    parser.add_argument(
        "--specialize",
        action="store_true",
        help="run exact simulations through the trace-guided codegen "
        "fast path (bit-identical; REPRO_SPECIALIZE=on/off overrides; "
        "sampling and --telemetry force the generic engine)",
    )


def _specialize_resolved(args: argparse.Namespace) -> bool:
    """The --specialize flag composed with REPRO_SPECIALIZE."""
    from repro.harness.specialize import specialize_enabled

    return specialize_enabled(True if getattr(args, "specialize", False) else None)


def _add_sampling_args(parser: argparse.ArgumentParser) -> None:
    """The shared --sample* flag group (run, compare, sweep)."""
    parser.add_argument(
        "--sample",
        action="store_true",
        help="sampled two-speed simulation (shortcut for "
        "--sample-mode periodic)",
    )
    parser.add_argument(
        "--sample-mode",
        choices=("off", "periodic", "simpoint"),
        default=None,
        help="interval selection: off (exact), periodic (SMARTS) or "
        "simpoint (phase clustering)",
    )
    parser.add_argument(
        "--sample-interval",
        type=int,
        default=4000,
        metavar="N",
        help="detailed-interval length in trace records (default 4000)",
    )
    parser.add_argument(
        "--sample-coverage",
        type=float,
        default=0.1,
        metavar="F",
        help="fraction of records simulated in detail (default 0.1)",
    )
    parser.add_argument(
        "--sample-warmup",
        type=int,
        default=6000,
        metavar="N",
        help="full-functional warmup records before each interval "
        "(default 6000)",
    )


def _sampling_config(args: argparse.Namespace) -> SamplingConfig | None:
    """SamplingConfig from the --sample* flags, or None when exact."""
    mode = args.sample_mode
    if mode is None:
        mode = "periodic" if args.sample else "off"
    if mode == "off":
        return None
    return SamplingConfig(
        mode=mode,
        interval=args.sample_interval,
        coverage=args.sample_coverage,
        warmup=args.sample_warmup,
    )


def _print_sampling_note(result: RunResult) -> None:
    info = result.extra.get("sampling")
    if not info:
        return
    ci_mpki = info.get("ci95_mpki")
    ci_ipc = info.get("ci95_ipc")
    note = (
        f"{'':24s} sampled: {info['mode']}, {info['intervals']} intervals, "
        f"{info['detailed_fraction']:.1%} detailed"
    )
    if ci_mpki is not None and ci_ipc is not None:
        note += f", 95% CI ±{ci_mpki:.2f} MPKI / ±{ci_ipc:.3f} IPC"
    print(note)


def _print_specialize_note(result: RunResult) -> None:
    manifest = result.manifest or {}
    info = manifest.get("specialize")
    if not info:
        return
    if info.get("engine") == "specialized":
        note = (
            f"{'':24s} specialized: {info['template']} template, "
            f"{info['specialized_branches']} of "
            f"{info['total_branches']} branches"
        )
        if info.get("aborted"):
            note += f", aborted on guard {info['guard']!r}"
    else:
        note = f"{'':24s} specialize declined: {info.get('reason', '?')}"
    print(note)


def _cmd_run(args: argparse.Namespace) -> int:
    spec = resolve_workload(args.workload)
    system = _system_by_name(args.system)
    with _telemetry_session(args.telemetry):
        result = run_single(
            spec,
            system,
            args.branches,
            use_result_cache=_cache_override(args),
            sampling=_sampling_config(args),
            specialize=_specialize_resolved(args),
        )
    _print_run(system.name, result)
    _print_sampling_note(result)
    _print_specialize_note(result)
    repair = result.extra.get("repair")
    if repair:
        print(
            f"{'':24s} repair events {repair['events']}, "
            f"avg writes/event {repair['mean_writes_per_event']:.1f}, "
            f"busy cycles {repair['busy_cycles']}"
        )
    return 0


def _cmd_diagnose(args: argparse.Namespace) -> int:
    from repro.analysis import diagnose

    spec = resolve_workload(args.workload)
    system = _system_by_name(args.system)
    result = run_single(spec, system, args.branches)
    print(diagnose(result).render())
    return 0


def _compare_results(
    args: argparse.Namespace, spec: WorkloadSpec
) -> list[RunResult]:
    """One run per Table 3 system, fanning out when --workers asks."""
    sampling = _sampling_config(args)
    specialize = _specialize_resolved(args)
    if args.workers is not None and args.workers > 1 and not args.telemetry:
        # Plumb the request through the runner's REPRO_WORKERS contract
        # so nested sweeps (and worker processes) see the same setting.
        os.environ["REPRO_WORKERS"] = str(args.workers)
        from repro.harness.runner import run_matrix
        from repro.harness.scale import Scale

        scale = Scale(
            name="cli",
            branches_per_workload=args.branches,
            workloads_per_category=1,
        )
        return run_matrix(
            [spec],
            TABLE3_SYSTEMS,
            scale,
            workers=args.workers,
            use_result_cache=_cache_override(args),
            sampling=sampling,
            specialize=specialize,
        )
    # Sequential: required for tracing (a sink lives in this process).
    return [
        run_single(
            spec,
            system,
            args.branches,
            use_result_cache=_cache_override(args),
            sampling=sampling,
            specialize=specialize,
        )
        for system in TABLE3_SYSTEMS
    ]


def _cmd_compare(args: argparse.Namespace) -> int:
    spec = resolve_workload(args.workload)
    print(f"workload {spec.name}, {args.branches} branches\n")
    with _telemetry_session(args.telemetry):
        results = _compare_results(args, spec)
    base = None
    for system, result in zip(TABLE3_SYSTEMS, results):
        if system.name == "baseline-tage":
            base = result
            _print_run(system.name, result)
            continue
        gain = result.ipc / base.ipc - 1 if base and base.ipc else 0.0
        red = (base.mpki - result.mpki) / base.mpki if base and base.mpki else 0.0
        print(
            f"{system.name:24s} IPC {result.ipc:7.3f} ({gain:+6.2%})   "
            f"MPKI {result.mpki:7.2f} ({red:+6.1%})"
        )
    return 0


def _parse_shard(text: str) -> tuple[int, int]:
    """``K/N`` → (k, n), validated before any trace work starts.

    Range checking happens here (via the runner's
    :func:`~repro.harness.runner.validate_shard`) rather than deep in
    the sweep, so ``K > N``, ``K < 1`` and ``N < 1`` fail immediately
    with a clear :class:`~repro.errors.ConfigError` instead of running
    an empty or wrong partition.
    """
    from repro.harness.runner import validate_shard

    parts = text.split("/")
    if len(parts) == 2 and all(p.strip().lstrip("-").isdigit() for p in parts):
        return validate_shard((int(parts[0]), int(parts[1])))
    raise SystemExit(f"--shard must be K/N (e.g. 2/8), got {text!r}")


def _cmd_sweep(args: argparse.Namespace) -> int:
    from repro.harness.runner import run_matrix, select_workloads
    from repro.harness.scale import Scale

    sampling = _sampling_config(args)
    if args.batch and sampling is not None:
        raise ConfigError(
            "--batch and --sample are mutually exclusive: the batch sweep "
            "kernel computes exact predictions over the full trace, while "
            "sampling simulates only selected intervals — pick one"
        )
    if args.workers is not None and args.workers > 1:
        os.environ["REPRO_WORKERS"] = str(args.workers)
    scale = Scale(
        name="cli-sweep",
        branches_per_workload=args.branches,
        workloads_per_category=args.per_category,
    )
    if args.workloads:
        workloads = [
            resolve_workload(name.strip())
            for name in args.workloads.split(",")
            if name.strip()
        ]
    else:
        workloads = select_workloads(scale)
    systems = (
        [_system_by_name(name.strip()) for name in args.systems.split(",")]
        if args.systems
        else list(TABLE3_SYSTEMS)
    )
    shard = _parse_shard(args.shard) if args.shard else None
    results = run_matrix(
        workloads,
        systems,
        scale,
        workers=args.workers,
        use_result_cache=_cache_override(args),
        sampling=sampling,
        shard=shard,
        batch=True if args.batch else None,
        specialize=True if args.specialize else None,
    )
    # Batch-kernel results are functional-only: no cycles, so no IPC.
    rows = [
        (
            r.workload,
            r.system,
            f"{r.ipc:.3f}" if r.cycles else "-",
            f"{r.mpki:.2f}",
        )
        for r in results
    ]
    print(format_table(["workload", "system", "IPC", "MPKI"], rows))
    label = f"shard {args.shard} of " if shard else ""
    print(f"\n{len(results)} runs ({label}{len(workloads)}x{len(systems)} matrix)")
    return 0


def _cmd_telemetry(args: argparse.Namespace) -> int:
    from repro.telemetry.export import json_summary, prometheus_text
    from repro.telemetry.summary import summarize_trace

    summary = summarize_trace(args.trace)
    if args.export == "json":
        print(json_summary(summary.metrics))
    elif args.export == "prom":
        print(prometheus_text(summary.metrics), end="")
    else:
        print(summary.render())
    return 0


def _cmd_perf(args: argparse.Namespace) -> int:
    from repro.harness.perf import (
        DEFAULT_SYSTEMS,
        profile_top,
        resolve_systems,
        run_perf,
    )
    from repro.workloads.suite import get_workload as _get

    systems = (
        [name.strip() for name in args.systems.split(",") if name.strip()]
        if args.systems
        else list(DEFAULT_SYSTEMS)
    )
    payload = run_perf(
        workload=args.workload,
        branches=args.branches,
        systems=systems,
        repeats=args.repeats,
        out=args.out,
        sampling_branches=None if args.no_sampling else args.sampling_branches,
        batch=not args.no_batch,
        specialize_branches=None if args.no_specialize else args.specialize_branches,
    )
    print(f"workload {args.workload}, {args.branches} branches, "
          f"best of {args.repeats}\n")
    for name, row in payload["throughput"].items():
        line = f"{name:24s} {row['branches_per_s']:>12,.0f} branches/s"
        if "speedup_vs_reference" in row:
            line += f"   ({row['speedup_vs_reference']:.2f}x vs reference)"
        print(line)
    warm = payload["warm_sweep"]
    print(
        f"\nwarm sweep: cold {warm['cold_wall_s']:.2f}s -> "
        f"warm {warm['warm_wall_s']:.2f}s ({warm['speedup']:.0f}x)"
    )
    sampling = payload.get("sampling")
    if sampling:
        print(f"\nsampling ({sampling['branches']} branches, "
              f"{sampling['config']['coverage']:.0%} detailed):")
        for name, row in sampling["systems"].items():
            print(
                f"{name:24s} {row['speedup']:.2f}x   "
                f"MPKI err {row['mpki_rel_err']:+.2%}   "
                f"IPC err {row['ipc_rel_err']:+.2%}"
            )
    batch = payload.get("batch")
    if batch:
        check = "identical MPKI" if batch["mpki_identical"] else "MPKI MISMATCH"
        print(
            f"\nbatch kernel ({batch['configs']} configs, "
            f"{batch['branches']} branches): scalar "
            f"{batch['scalar_wall_s']:.2f}s -> batch "
            f"{batch['batch_wall_s']:.2f}s ({batch['speedup']:.0f}x, {check})"
        )
    spec_section = payload.get("specialize")
    if spec_section:
        print(f"\nspecialized engine ({spec_section['branches']} branches):")
        for name, row in spec_section["systems"].items():
            check = (
                "identical stats" if row["stats_identical"] else "STATS MISMATCH"
            )
            print(
                f"{name:24s} {row['generic_branches_per_s']:>12,.0f} -> "
                f"{row['specialized_branches_per_s']:>12,.0f} branches/s "
                f"({row['speedup']:.2f}x, {check})"
            )
        probe = spec_section.get("abort_probe")
        if probe:
            check = (
                "identical stats" if probe["stats_identical"] else "STATS MISMATCH"
            )
            print(
                f"abort probe ({probe['system']}, guard at "
                f"{probe['forced_at']}): aborted={probe['aborted']}, {check}"
            )
    if args.out is not None:
        print(f"wrote {args.out}")
    if args.profile:
        spec = _get(args.workload)
        for config in resolve_systems(systems):
            print(f"\n--- cProfile: {config.name} ---")
            print(profile_top(spec, config, args.branches, top=args.profile))
    return 0


def _format_trace_info(info: dict[str, object]) -> str:
    """The pinned human-readable layout of ``repro trace info``."""
    kinds = info.get("kind_counts") or {}
    kinds_text = " ".join(f"{k}={v}" for k, v in kinds.items()) or "-"
    compression = info.get("compression") or "none"
    lines = [
        f"path:          {info['path']}",
        f"format:        {info['format']} (adapter v{info['adapter_version']})",
        f"compression:   {compression}",
        f"records:       {info['records']}",
        f"instructions:  {info['instructions']}",
        f"conditional:   {info['conditional_branches']}",
        f"static sites:  {info['static_sites']}",
        f"taken rate:    {info['taken_rate']:.4f}",
        f"pc range:      {info['pc_min']:#x}..{info['pc_max']:#x}",
        f"target range:  {info['target_min']:#x}..{info['target_max']:#x}",
        f"kinds:         {kinds_text}",
    ]
    return "\n".join(lines)


def _cmd_trace(args: argparse.Namespace) -> int:
    import json as _json

    from repro.harness import tracestore

    if args.trace_command == "info":
        info = tracestore.inspect_trace(args.path, fmt=args.format)
        if args.json:
            print(_json.dumps(info, indent=2, sort_keys=True))
        else:
            print(_format_trace_info(info))
        return 0
    if args.trace_command == "import":
        spec = tracestore.import_trace(
            args.path, name=args.name, fmt=args.format, store=args.store
        )
        print(
            f"imported {spec.name}: {spec.trace_records} records "
            f"({spec.source_format}, adapter v{spec.adapter_version})"
        )
        print(f"  store:   {spec.path}")
        print(f"  sha256:  {spec.content_hash}")
        print(f"  run it:  repro compare --workload {spec.name}")
        return 0
    if args.trace_command == "list":
        metas = tracestore.list_imported(args.store)
        if not metas:
            print(f"no imported traces in {tracestore.store_dir(args.store)}")
            return 0
        rows = [
            (
                meta["name"],
                meta["source_format"],
                meta["records"],
                meta["static_sites"],
                f"{meta['taken_rate']:.3f}",
                str(meta["content_hash"])[:12],
            )
            for meta in metas
        ]
        print(
            format_table(
                ["name", "format", "records", "sites", "taken", "sha256"], rows
            )
        )
        return 0
    # fetch
    spec = tracestore.fetch_trace(args.name, args.manifest, store=args.store)
    print(
        f"fetched {spec.name}: {spec.trace_records} records "
        f"({spec.source_format}, verified sha256)"
    )
    print(f"  store:   {spec.path}")
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    from repro.devtools.simlint.cli import run_lint

    return run_lint(args)


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.service import ServiceConfig, serve

    config = ServiceConfig(
        host=args.host,
        port=args.port,
        workers=args.workers,
        queue_limit=args.queue_limit,
        rate=args.rate,
        burst=args.burst,
        executor=args.executor,
        state_dir=args.state_dir,
        drain_timeout=args.drain_timeout,
        use_result_cache=not args.no_result_cache,
    )
    return serve(config)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="Local branch predictor repair simulations."
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_lw = sub.add_parser("list-workloads", help="list the 202-workload suite")
    p_lw.add_argument("--category", choices=CATEGORIES, default=None)
    p_lw.set_defaults(func=_cmd_list_workloads)

    p_ls = sub.add_parser("list-systems", help="list Table 3 system configs")
    p_ls.set_defaults(func=_cmd_list_systems)

    p_run = sub.add_parser("run", help="simulate one (workload, system) pair")
    p_run.add_argument("--workload", required=True)
    p_run.add_argument("--system", default="forward-walk-coalesce")
    p_run.add_argument("--branches", type=int, default=20_000)
    p_run.add_argument(
        "--telemetry",
        metavar="PATH",
        default=None,
        help="enable telemetry and stream a JSONL event trace to PATH",
    )
    p_run.add_argument(
        "--no-result-cache",
        action="store_true",
        help="force a real simulation even when REPRO_RESULT_CACHE is set",
    )
    _add_sampling_args(p_run)
    _add_specialize_arg(p_run)
    p_run.set_defaults(func=_cmd_run)

    p_cmp = sub.add_parser("compare", help="all Table 3 systems on one workload")
    p_cmp.add_argument("--workload", required=True)
    p_cmp.add_argument("--branches", type=int, default=15_000)
    p_cmp.add_argument(
        "--workers",
        type=int,
        default=None,
        help="process fan-out for the sweep (sets REPRO_WORKERS; "
        "1 = sequential)",
    )
    p_cmp.add_argument(
        "--telemetry",
        metavar="PATH",
        default=None,
        help="enable telemetry and stream a JSONL event trace to PATH "
        "(forces a sequential sweep)",
    )
    p_cmp.add_argument(
        "--no-result-cache",
        action="store_true",
        help="force real simulations even when REPRO_RESULT_CACHE is set",
    )
    _add_sampling_args(p_cmp)
    _add_specialize_arg(p_cmp)
    p_cmp.set_defaults(func=_cmd_compare)

    p_sweep = sub.add_parser(
        "sweep", help="run a (workload x system) matrix, optionally sharded"
    )
    p_sweep.add_argument("--branches", type=int, default=15_000)
    p_sweep.add_argument(
        "--per-category",
        type=int,
        default=1,
        metavar="N",
        help="workloads simulated per category (default 1)",
    )
    p_sweep.add_argument(
        "--systems",
        default=None,
        help="comma-separated system names (default: all Table 3 systems)",
    )
    p_sweep.add_argument(
        "--workloads",
        default=None,
        help="comma-separated workload names (synthetic or imported); "
        "overrides --per-category selection",
    )
    p_sweep.add_argument(
        "--shard",
        default=None,
        metavar="K/N",
        help="run only the K-th of N deterministic partitions of the "
        "job matrix; the N shards are disjoint and cover it exactly",
    )
    p_sweep.add_argument(
        "--workers",
        type=int,
        default=None,
        help="process fan-out for the sweep (sets REPRO_WORKERS; "
        "1 = sequential)",
    )
    p_sweep.add_argument(
        "--no-result-cache",
        action="store_true",
        help="force real simulations even when REPRO_RESULT_CACHE is set",
    )
    p_sweep.add_argument(
        "--batch",
        action="store_true",
        help="evaluate table-indexed predictor configs (bimodal:N, "
        "gshare:N:H, local2l:B:H:P) with the vectorised batch kernel "
        "when 4+ share a workload; exact MPKI, no pipeline timing "
        "(REPRO_BATCH=on/off overrides)",
    )
    _add_sampling_args(p_sweep)
    _add_specialize_arg(p_sweep)
    p_sweep.set_defaults(func=_cmd_sweep)

    p_trace = sub.add_parser(
        "trace", help="import, inspect, and fetch external branch traces"
    )
    trace_sub = p_trace.add_subparsers(dest="trace_command", required=True)

    p_timport = trace_sub.add_parser(
        "import",
        help="normalise a ChampSim/BT9/RPTR trace into the local store",
    )
    p_timport.add_argument("path", help="trace file (gzip/xz accepted)")
    p_timport.add_argument(
        "--name", default=None, help="workload name (default: from filename)"
    )
    p_timport.add_argument(
        "--format",
        choices=("auto", "champsim", "bt9", "rptr"),
        default=None,
        help="source format (default: auto-detect)",
    )
    p_timport.add_argument(
        "--store",
        default=None,
        metavar="DIR",
        help="trace store directory (default: REPRO_TRACE_STORE or "
        ".repro-traces)",
    )
    p_timport.set_defaults(func=_cmd_trace)

    p_tinfo = trace_sub.add_parser(
        "info", help="inspect a trace file without importing it"
    )
    p_tinfo.add_argument("path", help="trace file (gzip/xz accepted)")
    p_tinfo.add_argument(
        "--format",
        choices=("auto", "champsim", "bt9", "rptr"),
        default=None,
        help="source format (default: auto-detect)",
    )
    p_tinfo.add_argument(
        "--json", action="store_true", help="machine-readable output"
    )
    p_tinfo.set_defaults(func=_cmd_trace)

    p_tlist = trace_sub.add_parser("list", help="list imported traces")
    p_tlist.add_argument("--store", default=None, metavar="DIR")
    p_tlist.set_defaults(func=_cmd_trace)

    p_tfetch = trace_sub.add_parser(
        "fetch",
        help="download, checksum-verify, and import a manifest-listed trace",
    )
    p_tfetch.add_argument("name", help="trace name in the manifest")
    p_tfetch.add_argument(
        "--manifest",
        default="traces/public-traces.json",
        help="trace manifest path (default: traces/public-traces.json)",
    )
    p_tfetch.add_argument("--store", default=None, metavar="DIR")
    p_tfetch.set_defaults(func=_cmd_trace)

    p_perf = sub.add_parser(
        "perf", help="measure simulator throughput and write BENCH_perf.json"
    )
    p_perf.add_argument("--workload", default="hpc-fft")
    p_perf.add_argument("--branches", type=int, default=30_000)
    p_perf.add_argument(
        "--systems",
        default=None,
        help="comma-separated system names (default: baseline-tage,"
        "forward-walk-coalesce)",
    )
    p_perf.add_argument("--repeats", type=int, default=3)
    p_perf.add_argument(
        "--sampling-branches",
        type=int,
        default=200_000,
        metavar="N",
        help="trace length for the sampled-vs-exact section "
        "(default 200000)",
    )
    p_perf.add_argument(
        "--no-sampling",
        action="store_true",
        help="skip the sampled-vs-exact benchmark section",
    )
    p_perf.add_argument(
        "--no-batch",
        action="store_true",
        help="skip the batch-kernel-vs-scalar benchmark section",
    )
    p_perf.add_argument(
        "--specialize-branches",
        type=int,
        default=100_000,
        metavar="N",
        help="trace length for the specialized-vs-generic section "
        "(default 100000)",
    )
    p_perf.add_argument(
        "--no-specialize",
        action="store_true",
        help="skip the specialized-engine benchmark section",
    )
    p_perf.add_argument(
        "--out",
        default="BENCH_perf.json",
        help="output path for the perf report (default: BENCH_perf.json)",
    )
    p_perf.add_argument(
        "--profile",
        type=int,
        nargs="?",
        const=15,
        default=None,
        metavar="N",
        help="also print each system's top-N cProfile hotspots",
    )
    p_perf.set_defaults(func=_cmd_perf)

    p_tel = sub.add_parser(
        "telemetry", help="summarize a JSONL telemetry trace"
    )
    p_tel.add_argument("trace", help="trace written by --telemetry PATH")
    p_tel.add_argument(
        "--export",
        choices=("json", "prom"),
        default=None,
        help="dump the trace's final metrics snapshot instead of the "
        "drilldown table",
    )
    p_tel.set_defaults(func=_cmd_telemetry)

    p_lint = sub.add_parser(
        "lint",
        help="run the simlint invariant checker over source trees",
    )
    # Flag set mirrors simlint.cli.add_lint_arguments; kept inline so the
    # common repro commands never pay the simlint import.
    p_lint.add_argument("paths", nargs="*", metavar="PATH")
    p_lint.add_argument("--format", choices=("text", "json", "sarif"), default="text")
    p_lint.add_argument("--select", metavar="RULES", default=None)
    p_lint.add_argument("--no-suppress", action="store_true")
    p_lint.add_argument("--list-rules", action="store_true")
    p_lint.add_argument("--jobs", type=int, default=0, metavar="N")
    p_lint.add_argument("--fix", action="store_true")
    p_lint.add_argument("--cache-dir", metavar="DIR", default=".simlint-cache")
    p_lint.add_argument("--no-cache", action="store_true")
    p_lint.add_argument("--baseline", metavar="FILE", default=".simlint-baseline.json")
    p_lint.add_argument("--no-baseline", action="store_true")
    p_lint.add_argument("--update-baseline", action="store_true")
    p_lint.set_defaults(func=_cmd_lint)

    p_serve = sub.add_parser(
        "serve", help="run the simulation-as-a-service HTTP job server"
    )
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument(
        "--port",
        type=int,
        default=8321,
        help="listen port (0 picks an ephemeral port; default 8321)",
    )
    p_serve.add_argument(
        "--workers",
        type=int,
        default=2,
        help="worker threads executing queued jobs (default 2)",
    )
    p_serve.add_argument(
        "--queue-limit",
        type=int,
        default=64,
        help="queued-job cap before 429 backpressure (default 64)",
    )
    p_serve.add_argument(
        "--rate",
        type=float,
        default=20.0,
        help="per-client submissions/second refill rate (default 20)",
    )
    p_serve.add_argument(
        "--burst",
        type=int,
        default=40,
        help="per-client burst allowance (default 40)",
    )
    p_serve.add_argument(
        "--executor",
        choices=("inline", "pool", "sharded"),
        default="inline",
        help="execution strategy for fresh simulations (default inline)",
    )
    p_serve.add_argument(
        "--state-dir",
        default=".repro-cache/service",
        help="where SIGTERM persists the still-queued backlog "
        "(default .repro-cache/service)",
    )
    p_serve.add_argument(
        "--drain-timeout",
        type=float,
        default=30.0,
        help="seconds to wait for in-flight jobs on shutdown (default 30)",
    )
    p_serve.add_argument(
        "--no-result-cache",
        action="store_true",
        help="disable the persistent result cache (disables completed-"
        "request dedup)",
    )
    p_serve.set_defaults(func=_cmd_serve)

    p_diag = sub.add_parser(
        "diagnose", help="explain one (workload, system) run's behaviour"
    )
    p_diag.add_argument("--workload", required=True)
    p_diag.add_argument("--system", default="forward-walk-coalesce")
    p_diag.add_argument("--branches", type=int, default=20_000)
    p_diag.set_defaults(func=_cmd_diagnose)

    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except BrokenPipeError:
        # Output piped into a pager/head that exited early: not an error.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0
    except (ReproError, OSError) as exc:
        # Bad trace path, corrupt file, unwritable sink: a message, not
        # a traceback.
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
