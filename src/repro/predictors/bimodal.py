"""Bimodal predictor (Smith counters), the tagless TAGE base component."""

from __future__ import annotations

from repro.errors import ConfigError
from repro.predictors.base import GlobalPredictor, Prediction
from repro.predictors.counters import counter_taken, counter_update

__all__ = ["BimodalPredictor"]


class BimodalPredictor(GlobalPredictor):
    """PC-indexed table of n-bit saturating counters.

    Args:
        log_entries: log2 of the number of counters.
        counter_bits: Width of each counter (2 in the classic design).
    """

    name = "bimodal"

    def __init__(self, log_entries: int = 12, counter_bits: int = 2) -> None:
        super().__init__()
        if not 1 <= log_entries <= 24:
            raise ConfigError(f"log_entries out of range: {log_entries}")
        if counter_bits < 1:
            raise ConfigError(f"counter_bits must be >= 1, got {counter_bits}")
        self.log_entries = log_entries
        self.counter_bits = counter_bits
        self._mask = (1 << log_entries) - 1
        self._max = (1 << counter_bits) - 1
        weak_taken = 1 << (counter_bits - 1)
        self._table = [weak_taken] * (1 << log_entries)

    def _index(self, pc: int) -> int:
        # Drop the two low bits: x86 branch PCs are rarely 1-byte aligned
        # in a way that makes those bits useful for distribution.
        return (pc >> 2) & self._mask

    def lookup(self, pc: int) -> Prediction:
        index = self._index(pc)
        value = self._table[index]
        return Prediction(pc=pc, taken=counter_taken(value, self.counter_bits), meta=index)

    def train(self, prediction: Prediction, taken: bool) -> None:
        index = prediction.meta
        self._table[index] = counter_update(self._table[index], taken, self._max)

    def storage_bits(self) -> int:
        return len(self._table) * self.counter_bits
