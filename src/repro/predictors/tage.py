"""TAGE: TAgged GEometric-history-length branch predictor.

A from-scratch implementation of Seznec & Michaud's TAGE, the baseline
predictor of the paper.  It follows the CBP-2016 TAGE-SC-L structure at
the level the paper depends on: a tagless bimodal base, a set of
partially tagged tables indexed with geometrically increasing folded
global history, usefulness counters with periodic aging, weak-entry
``use_alt`` filtering, and allocation on mispredictions.

Three storage presets mirror the paper's setups:

* :func:`TageConfig.kb8` — the CBPw-8KB-category TAGE (~7.1 KB), the
  default baseline everywhere.
* :func:`TageConfig.kb9` — iso-storage scaled TAGE for Figure 14A.
* :func:`TageConfig.kb64` — the CBPw-64KB-category TAGE (~57 KB) for
  Figure 14B.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError
from repro.predictors.base import GlobalPredictor, Prediction
from repro.predictors.history import FoldedHistory, GlobalHistory

__all__ = ["TageTableConfig", "TageConfig", "TagePredictor", "TageLookup"]


@dataclass(frozen=True, slots=True)
class TageTableConfig:
    """Geometry of one tagged TAGE table."""

    history_length: int
    log_entries: int
    tag_bits: int

    def __post_init__(self) -> None:
        if self.history_length <= 0:
            raise ConfigError(f"history_length must be positive: {self.history_length}")
        if not 4 <= self.log_entries <= 20:
            raise ConfigError(f"log_entries out of range: {self.log_entries}")
        if not 4 <= self.tag_bits <= 16:
            raise ConfigError(f"tag_bits out of range: {self.tag_bits}")

    @property
    def entries(self) -> int:
        return 1 << self.log_entries

    @property
    def entry_bits(self) -> int:
        # 3-bit signed counter + 2-bit usefulness + tag.
        return 3 + 2 + self.tag_bits


def _geometric_lengths(minimum: int, maximum: int, count: int) -> tuple[int, ...]:
    """Seznec's geometric history-length series, deduplicated upward."""
    if count == 1:
        return (maximum,)
    ratio = (maximum / minimum) ** (1.0 / (count - 1))
    lengths: list[int] = []
    for i in range(count):
        value = int(minimum * ratio**i + 0.5)
        if lengths and value <= lengths[-1]:
            value = lengths[-1] + 1
        lengths.append(value)
    return tuple(lengths)


@dataclass(frozen=True)
class TageConfig:
    """Full TAGE geometry plus training hyper-parameters."""

    name: str
    bimodal_log: int
    tables: tuple[TageTableConfig, ...]
    counter_bits: int = 3
    useful_bits: int = 2
    use_alt_bits: int = 4
    u_reset_period: int = 1 << 18
    path_bits: int = 16

    def __post_init__(self) -> None:
        if not self.tables:
            raise ConfigError("TAGE needs at least one tagged table")
        lengths = [t.history_length for t in self.tables]
        if lengths != sorted(lengths) or len(set(lengths)) != len(lengths):
            raise ConfigError("table history lengths must strictly increase")
        if not 1 <= self.bimodal_log <= 24:
            raise ConfigError(f"bimodal_log out of range: {self.bimodal_log}")

    @property
    def max_history(self) -> int:
        return self.tables[-1].history_length

    def storage_bits(self) -> int:
        """Bimodal plus tagged-table storage, in bits."""
        bits = (1 << self.bimodal_log) * 2
        bits += sum(t.entries * t.entry_bits for t in self.tables)
        return bits

    def storage_kb(self) -> float:
        return self.storage_bits() / 8192.0

    @classmethod
    def kb8(cls) -> "TageConfig":
        """~7.1 KB TAGE matching the paper's CBPw-8KB baseline."""
        lengths = _geometric_lengths(4, 130, 7)
        tags = (7, 7, 8, 8, 9, 10, 11)
        tables = tuple(
            TageTableConfig(history_length=length, log_entries=9, tag_bits=tag)
            for length, tag in zip(lengths, tags)
        )
        return cls(name="tage-7.1kb", bimodal_log=12, tables=tables)

    @classmethod
    def kb9(cls) -> "TageConfig":
        """Iso-storage scaled TAGE (~9 KB) for the Figure 14A comparison.

        Spends the extra ~1.9 KB the local predictor + repair would cost
        on a bigger bimodal and an eighth tagged table.
        """
        lengths = _geometric_lengths(4, 170, 8)
        tags = (7, 7, 8, 8, 9, 10, 11, 12)
        tables = tuple(
            TageTableConfig(history_length=length, log_entries=9, tag_bits=tag)
            for length, tag in zip(lengths, tags)
        )
        return cls(name="tage-9kb", bimodal_log=13, tables=tables)

    @classmethod
    def kb64(cls) -> "TageConfig":
        """~57 KB TAGE from the CBPw-64KB category, for Figure 14B."""
        lengths = _geometric_lengths(4, 360, 12)
        tags = (8, 8, 9, 9, 10, 10, 11, 12, 12, 13, 14, 15)
        tables = tuple(
            TageTableConfig(history_length=length, log_entries=11, tag_bits=tag)
            for length, tag in zip(lengths, tags)
        )
        return cls(name="tage-57kb", bimodal_log=14, tables=tables)


@dataclass(slots=True)
class TageLookup:
    """Private lookup payload threaded from ``lookup`` to ``train``.

    ``indices``/``tags`` are the per-table values computed once at
    lookup time; ``train``/``_allocate`` reuse them instead of
    re-hashing (the history has moved on by train time, so re-hashing
    would also be *wrong*, not merely slow).
    """

    indices: list[int]
    tags: list[int]
    provider: int  # table index, or -1 for bimodal
    provider_pred: bool
    alt_pred: bool
    alt_table: int  # table of the alternate prediction, -1 for bimodal
    bimodal_index: int
    bimodal_pred: bool
    weak_provider: bool  # provider entry looked newly allocated


class TagePredictor(GlobalPredictor):
    """The TAGE predictor proper.

    The object owns its :class:`~repro.predictors.history.GlobalHistory`
    (with one index fold and two tag folds per table registered on it),
    so checkpoint/recover through the base-class API keeps folds
    consistent.
    """

    #: ``lookup`` only reads table/history state (see the provider scan)
    #: — the specialized engines depend on this to re-run it after a
    #: declined :meth:`spec_resolve_correct`.
    pure_lookup = True

    def __init__(self, config: TageConfig | None = None, seed: int = 0x5EED) -> None:
        self.config = config = config if config is not None else TageConfig.kb8()
        super().__init__(
            GlobalHistory(max_length=config.max_history, path_bits=config.path_bits)
        )
        self.name = config.name

        self._bim_mask = (1 << config.bimodal_log) - 1
        self._bimodal = [2] * (1 << config.bimodal_log)

        self._ctr: list[list[int]] = []
        self._tag: list[list[int]] = []
        self._u: list[list[int]] = []
        self._index_folds: list[FoldedHistory] = []
        self._tag_folds0: list[FoldedHistory] = []
        self._tag_folds1: list[FoldedHistory] = []
        self._index_masks: list[int] = []
        self._tag_masks: list[int] = []
        #: Flat per-table constants consumed by the lookup loop:
        #: (log, path_mask, pc_shift, index_slot, tag0_slot, tag1_slot,
        #: index_mask, tag_mask), where the slots index the history's
        #: ``fold_comps`` flat list.
        self._lookup_params: list[
            tuple[int, int, int, int, int, int, int, int]
        ] = []
        fold_comps = self.history.fold_comps
        for t, table in enumerate(config.tables):
            entries = table.entries
            self._ctr.append([0] * entries)  # signed: -4..3 (3-bit)
            self._tag.append([0] * entries)
            self._u.append([0] * entries)
            self._index_masks.append(entries - 1)
            self._tag_masks.append((1 << table.tag_bits) - 1)
            self._index_folds.append(
                self.history.register_fold(
                    FoldedHistory(table.history_length, table.log_entries)
                )
            )
            index_slot = len(fold_comps) - 1
            self._tag_folds0.append(
                self.history.register_fold(
                    FoldedHistory(table.history_length, table.tag_bits)
                )
            )
            self._tag_folds1.append(
                self.history.register_fold(
                    FoldedHistory(table.history_length, max(table.tag_bits - 1, 1))
                )
            )
            self._lookup_params.append(
                (
                    table.log_entries,
                    (1 << min(table.history_length, 16)) - 1,
                    table.log_entries - (t % 3) - 1,
                    index_slot,
                    index_slot + 1,
                    index_slot + 2,
                    entries - 1,
                    (1 << table.tag_bits) - 1,
                )
            )
        self._fold_comps = fold_comps

        self._ctr_max = (1 << (config.counter_bits - 1)) - 1
        self._ctr_min = -(1 << (config.counter_bits - 1))
        self._u_max = (1 << config.useful_bits) - 1
        self._use_alt = 1 << (config.use_alt_bits - 1)
        self._use_alt_max = (1 << config.use_alt_bits) - 1
        self._updates_since_reset = 0
        self._rng_state = seed & 0xFFFFFFFF
        self._n_tables = len(config.tables)

    # ----------------------------------------------------------------- #
    # hashing

    def _rand(self) -> int:
        """Small deterministic LCG for allocation tie-breaking."""
        self._rng_state = (self._rng_state * 1664525 + 1013904223) & 0xFFFFFFFF
        return self._rng_state >> 16

    def _table_index(self, pc: int, table: int) -> int:
        cfg = self.config.tables[table]
        log = cfg.log_entries
        folded = self._index_folds[table].comp
        path = self.history.phist & ((1 << min(cfg.history_length, 16)) - 1)
        path ^= path >> log
        pc_bits = pc >> 2
        index = pc_bits ^ (pc_bits >> (log - (table % 3) - 1)) ^ folded ^ path
        return index & self._index_masks[table]

    def _table_tag(self, pc: int, table: int) -> int:
        return (
            (pc >> 2)
            ^ self._tag_folds0[table].comp
            ^ (self._tag_folds1[table].comp << 1)
        ) & self._tag_masks[table]

    # ----------------------------------------------------------------- #
    # prediction

    def lookup(self, pc: int) -> Prediction:
        n = self._n_tables
        # Inlined _table_index/_table_tag fused with the provider scan:
        # one top-down pass over flat per-table constants, reading fold
        # state by slot from the history's flat list.  Hashing stops as
        # soon as the alternate provider is found — entries below it are
        # never consulted by prediction, training, or allocation, so
        # their slots legitimately stay zero.
        comps = self._fold_comps
        phist = self.history.phist
        pc_bits = pc >> 2
        indices = [0] * n
        tags = [0] * n
        table_tags = self._tag
        params = self._lookup_params
        provider = -1
        alt_table = -1
        for t in range(n - 1, -1, -1):
            log, path_mask, pc_shift, islot, s0, s1, imask, tmask = params[t]
            path = phist & path_mask
            path ^= path >> log
            index = (pc_bits ^ (pc_bits >> pc_shift) ^ comps[islot] ^ path) & imask
            tag = (pc_bits ^ comps[s0] ^ (comps[s1] << 1)) & tmask
            indices[t] = index
            tags[t] = tag
            if table_tags[t][index] == tag:
                if provider < 0:
                    provider = t
                else:
                    alt_table = t
                    break

        bim_index = pc_bits & self._bim_mask
        bim_pred = self._bimodal[bim_index] >= 2

        alt_pred = (
            self._ctr[alt_table][indices[alt_table]] >= 0
            if alt_table >= 0
            else bim_pred
        )
        if provider >= 0:
            ctr = self._ctr[provider][indices[provider]]
            provider_pred = ctr >= 0
            weak = ctr in (-1, 0) and self._u[provider][indices[provider]] == 0
            use_alt = weak and self._use_alt >= (self._use_alt_max + 1) // 2
            taken = alt_pred if use_alt else provider_pred
        else:
            provider_pred = bim_pred
            weak = False
            taken = bim_pred

        meta = TageLookup(
            indices=indices,
            tags=tags,
            provider=provider,
            provider_pred=provider_pred,
            alt_pred=alt_pred,
            alt_table=alt_table,
            bimodal_index=bim_index,
            bimodal_pred=bim_pred,
            weak_provider=weak,
        )
        return Prediction(pc=pc, taken=taken, meta=meta)

    # ----------------------------------------------------------------- #
    # training

    def _update_counter(self, table: int, index: int, taken: bool) -> None:
        ctr = self._ctr[table][index]
        if taken:
            if ctr < self._ctr_max:
                self._ctr[table][index] = ctr + 1
        elif ctr > self._ctr_min:
            self._ctr[table][index] = ctr - 1

    def _update_bimodal(self, index: int, taken: bool) -> None:
        value = self._bimodal[index]
        if taken:
            if value < 3:
                self._bimodal[index] = value + 1
        elif value > 0:
            self._bimodal[index] = value - 1

    def _allocate(self, meta: TageLookup, taken: bool) -> None:
        """On a misprediction, claim an entry with longer history."""
        start = meta.provider + 1
        if start >= self._n_tables:
            return
        # Random skew so allocation pressure spreads across tables.
        if self._n_tables - start > 1 and (self._rand() & 3) == 0:
            start += 1
            if start >= self._n_tables:
                return
        for t in range(start, self._n_tables):
            index = meta.indices[t]
            if self._u[t][index] == 0:
                self._ctr[t][index] = 0 if taken else -1
                self._tag[t][index] = meta.tags[t]
                return
        # No victim: age candidates so a future allocation succeeds.
        for t in range(start, self._n_tables):
            index = meta.indices[t]
            if self._u[t][index] > 0:
                self._u[t][index] -= 1

    def train(self, prediction: Prediction, taken: bool) -> None:
        meta: TageLookup = prediction.meta
        final_pred = prediction.taken

        self._updates_since_reset += 1
        if self._updates_since_reset >= self.config.u_reset_period:
            self._updates_since_reset = 0
            self._age_useful()

        if meta.provider >= 0:
            provider, index = meta.provider, meta.indices[meta.provider]
            # Track whether the alternate would have been the better call
            # for newly allocated entries.
            if meta.weak_provider and meta.provider_pred != meta.alt_pred:
                if meta.alt_pred == taken:
                    if self._use_alt < self._use_alt_max:
                        self._use_alt += 1
                elif self._use_alt > 0:
                    self._use_alt -= 1
            self._update_counter(provider, index, taken)
            if meta.alt_table < 0:
                # The bimodal was the alternate; keep it trained too so
                # entries can be recycled without losing the base case.
                self._update_bimodal(meta.bimodal_index, taken)
            if meta.provider_pred != meta.alt_pred:
                u = self._u[provider][index]
                if meta.provider_pred == taken:
                    if u < self._u_max:
                        self._u[provider][index] = u + 1
                elif u > 0:
                    self._u[provider][index] = u - 1
        else:
            self._update_bimodal(meta.bimodal_index, taken)

        if final_pred != taken:
            self._allocate(meta, taken)

    def warm_update(self, pc: int, taken: bool) -> None:
        """Fused warm-window update: lookup + push + train in one pass.

        Bit-identical in effect to ``train(lookup(pc), taken)`` with the
        actual outcome pushed into the history in between (the committed
        state any exact run converges to), but with the Prediction and
        TageLookup payloads elided — the fast-forward warm window calls
        this once per conditional branch, where the allocation traffic
        of the generic path costs more than the table work itself.
        """
        n = self._n_tables
        comps = self._fold_comps
        phist = self.history.phist
        pc_bits = pc >> 2
        indices = [0] * n
        tags = [0] * n
        table_tags = self._tag
        params = self._lookup_params
        provider = -1
        alt_table = -1
        for t in range(n - 1, -1, -1):
            log, path_mask, pc_shift, islot, s0, s1, imask, tmask = params[t]
            path = phist & path_mask
            path ^= path >> log
            index = (pc_bits ^ (pc_bits >> pc_shift) ^ comps[islot] ^ path) & imask
            tag = (pc_bits ^ comps[s0] ^ (comps[s1] << 1)) & tmask
            indices[t] = index
            tags[t] = tag
            if table_tags[t][index] == tag:
                if provider < 0:
                    provider = t
                else:
                    alt_table = t
                    break

        bim_index = pc_bits & self._bim_mask
        bim_pred = self._bimodal[bim_index] >= 2
        alt_pred = (
            self._ctr[alt_table][indices[alt_table]] >= 0
            if alt_table >= 0
            else bim_pred
        )
        if provider >= 0:
            ctr = self._ctr[provider][indices[provider]]
            provider_pred = ctr >= 0
            weak = ctr in (-1, 0) and self._u[provider][indices[provider]] == 0
            use_alt = weak and self._use_alt >= (self._use_alt_max + 1) // 2
            final_pred = alt_pred if use_alt else provider_pred
        else:
            provider_pred = bim_pred
            weak = False
            final_pred = bim_pred

        self.history.push(pc, taken)

        self._updates_since_reset += 1
        if self._updates_since_reset >= self.config.u_reset_period:
            self._updates_since_reset = 0
            self._age_useful()

        if provider >= 0:
            index = indices[provider]
            if weak and provider_pred != alt_pred:
                if alt_pred == taken:
                    if self._use_alt < self._use_alt_max:
                        self._use_alt += 1
                elif self._use_alt > 0:
                    self._use_alt -= 1
            ctr_row = self._ctr[provider]
            ctr = ctr_row[index]
            if taken:
                if ctr < self._ctr_max:
                    ctr_row[index] = ctr + 1
            elif ctr > self._ctr_min:
                ctr_row[index] = ctr - 1
            if alt_table < 0:
                self._update_bimodal(bim_index, taken)
            if provider_pred != alt_pred:
                u_row = self._u[provider]
                u = u_row[index]
                if provider_pred == taken:
                    if u < self._u_max:
                        u_row[index] = u + 1
                elif u > 0:
                    u_row[index] = u - 1
        else:
            self._update_bimodal(bim_index, taken)

        if final_pred != taken:
            start = provider + 1
            if start >= n:
                return
            if n - start > 1 and (self._rand() & 3) == 0:
                start += 1
                if start >= n:
                    return
            u_tables = self._u
            for t in range(start, n):
                index = indices[t]
                if u_tables[t][index] == 0:
                    self._ctr[t][index] = 0 if taken else -1
                    self._tag[t][index] = tags[t]
                    return
            for t in range(start, n):
                index = indices[t]
                if u_tables[t][index] > 0:
                    u_tables[t][index] -= 1

    def spec_resolve_correct(self, pc: int, taken: bool) -> bool:
        """Fused correct-path step: lookup, and if right, push + train.

        One provider scan serves both the prediction and the training
        updates, with the ``Prediction``/``TageLookup`` payloads elided —
        the same fusion as :meth:`warm_update`, but for the speculative
        committed path: the history push inserts the *predicted*
        direction, which on this path equals ``taken``.  Returns False
        with **no state changed** when the prediction is wrong (the scan
        is pure), so the caller can fall back to the generic
        lookup/checkpoint/push sequence and its misprediction episode;
        ``final_pred == taken`` on the True path means the allocation
        branch of :meth:`train` is unreachable and is dropped here.
        """
        n = self._n_tables
        comps = self._fold_comps
        phist = self.history.phist
        pc_bits = pc >> 2
        indices = [0] * n
        table_tags = self._tag
        params = self._lookup_params
        provider = -1
        alt_table = -1
        for t in range(n - 1, -1, -1):
            log, path_mask, pc_shift, islot, s0, s1, imask, tmask = params[t]
            path = phist & path_mask
            path ^= path >> log
            index = (pc_bits ^ (pc_bits >> pc_shift) ^ comps[islot] ^ path) & imask
            indices[t] = index
            if table_tags[t][index] == (
                (pc_bits ^ comps[s0] ^ (comps[s1] << 1)) & tmask
            ):
                if provider < 0:
                    provider = t
                else:
                    alt_table = t
                    break

        bim_index = pc_bits & self._bim_mask
        bim_pred = self._bimodal[bim_index] >= 2
        alt_pred = (
            self._ctr[alt_table][indices[alt_table]] >= 0
            if alt_table >= 0
            else bim_pred
        )
        if provider >= 0:
            ctr = self._ctr[provider][indices[provider]]
            provider_pred = ctr >= 0
            weak = ctr in (-1, 0) and self._u[provider][indices[provider]] == 0
            use_alt = weak and self._use_alt >= (self._use_alt_max + 1) // 2
            final_pred = alt_pred if use_alt else provider_pred
        else:
            provider_pred = bim_pred
            weak = False
            final_pred = bim_pred

        if final_pred != taken:
            return False

        self.history.push(pc, taken)

        self._updates_since_reset += 1
        if self._updates_since_reset >= self.config.u_reset_period:
            self._updates_since_reset = 0
            self._age_useful()

        if provider >= 0:
            index = indices[provider]
            if weak and provider_pred != alt_pred:
                if alt_pred == taken:
                    if self._use_alt < self._use_alt_max:
                        self._use_alt += 1
                elif self._use_alt > 0:
                    self._use_alt -= 1
            ctr_row = self._ctr[provider]
            ctr = ctr_row[index]
            if taken:
                if ctr < self._ctr_max:
                    ctr_row[index] = ctr + 1
            elif ctr > self._ctr_min:
                ctr_row[index] = ctr - 1
            if alt_table < 0:
                self._update_bimodal(bim_index, taken)
            if provider_pred != alt_pred:
                u_row = self._u[provider]
                u = u_row[index]
                if provider_pred == taken:
                    if u < self._u_max:
                        u_row[index] = u + 1
                elif u > 0:
                    u_row[index] = u - 1
        else:
            self._update_bimodal(bim_index, taken)
        return True

    def fast_update(self, pc: int, taken: bool) -> None:
        """Fast-forward touch: bimodal only, no tagged-table work.

        The tagged tables are indexed by folded history, which the
        fast-forward engine does not maintain per branch (it replays
        the history tail just before the next detailed interval), so
        training them here would write to wrong slots.  The bimodal
        base is history-free and cheap — one mask and one counter.
        """
        self._update_bimodal((pc >> 2) & self._bim_mask, taken)

    def _age_useful(self) -> None:
        """Periodic graceful reset: halve every usefulness counter."""
        for table in self._u:
            for i, value in enumerate(table):
                if value:
                    table[i] = value >> 1

    def storage_bits(self) -> int:
        return self.config.storage_bits()
