"""GShare predictor: global history XOR-hashed into a counter table.

Not used by the paper's evaluation, but a useful secondary baseline for
examples and for testing the pipeline/predictor interface with a second
independent implementation of :class:`~repro.predictors.base.GlobalPredictor`.
"""

from __future__ import annotations

from repro.errors import ConfigError
from repro.predictors.base import GlobalPredictor, Prediction
from repro.predictors.counters import counter_taken, counter_update
from repro.predictors.history import GlobalHistory

__all__ = ["GSharePredictor"]


class GSharePredictor(GlobalPredictor):
    """McFarling's gshare: index = pc ^ GHIST, 2-bit counters."""

    name = "gshare"

    def __init__(self, log_entries: int = 14, history_length: int | None = None) -> None:
        if not 1 <= log_entries <= 24:
            raise ConfigError(f"log_entries out of range: {log_entries}")
        history_length = history_length if history_length is not None else log_entries
        if history_length > log_entries:
            raise ConfigError(
                "history_length cannot exceed log_entries "
                f"({history_length} > {log_entries})"
            )
        super().__init__(GlobalHistory(max_length=max(history_length, 1)))
        self.log_entries = log_entries
        self.history_length = history_length
        self._mask = (1 << log_entries) - 1
        self._hist_mask = (1 << history_length) - 1
        self._table = [2] * (1 << log_entries)

    def _index(self, pc: int) -> int:
        return ((pc >> 2) ^ (self.history.ghist & self._hist_mask)) & self._mask

    def lookup(self, pc: int) -> Prediction:
        index = self._index(pc)
        return Prediction(pc=pc, taken=counter_taken(self._table[index], 2), meta=index)

    def train(self, prediction: Prediction, taken: bool) -> None:
        index = prediction.meta
        self._table[index] = counter_update(self._table[index], taken, 3)

    def storage_bits(self) -> int:
        return len(self._table) * 2
