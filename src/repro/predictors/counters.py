"""Saturating-counter primitives shared by all predictors.

Hot paths use the module-level functions on plain ints (attribute access
on wrapper objects is measurably slower in CPython); the
:class:`SaturatingCounter` class exists for non-hot bookkeeping and for
making tests and examples readable.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError

__all__ = [
    "saturating_inc",
    "saturating_dec",
    "counter_update",
    "counter_taken",
    "center_init",
    "SaturatingCounter",
]


def saturating_inc(value: int, max_value: int) -> int:
    """Increment ``value`` saturating at ``max_value``."""
    return value + 1 if value < max_value else max_value


def saturating_dec(value: int, min_value: int = 0) -> int:
    """Decrement ``value`` saturating at ``min_value``."""
    return value - 1 if value > min_value else min_value


def counter_update(value: int, taken: bool, max_value: int, min_value: int = 0) -> int:
    """Move an up/down counter toward ``taken`` (up) or not-taken (down)."""
    if taken:
        return value + 1 if value < max_value else max_value
    return value - 1 if value > min_value else min_value


def counter_taken(value: int, bits: int) -> bool:
    """Interpret an unsigned ``bits``-wide counter's MSB as taken."""
    return value >= (1 << (bits - 1))


def center_init(bits: int, taken: bool) -> int:
    """Weakly biased initial value for an unsigned counter of ``bits``."""
    mid = 1 << (bits - 1)
    return mid if taken else mid - 1


@dataclass(slots=True)
class SaturatingCounter:
    """An n-bit unsigned saturating up/down counter.

    >>> c = SaturatingCounter(bits=2)
    >>> c.update(True); c.update(True); c.taken
    True
    """

    bits: int = 2
    value: int = 0

    def __post_init__(self) -> None:
        if self.bits < 1:
            raise ConfigError(f"counter width must be >= 1, got {self.bits}")
        if not 0 <= self.value <= self.max_value:
            raise ConfigError(
                f"initial value {self.value} out of range for {self.bits} bits"
            )

    @property
    def max_value(self) -> int:
        return (1 << self.bits) - 1

    @property
    def taken(self) -> bool:
        """MSB interpretation: upper half of the range predicts taken."""
        return counter_taken(self.value, self.bits)

    @property
    def is_weak(self) -> bool:
        """True when the counter sits adjacent to the decision boundary."""
        mid = 1 << (self.bits - 1)
        return self.value in (mid - 1, mid)

    def update(self, taken: bool) -> None:
        self.value = counter_update(self.value, taken, self.max_value)

    def reset(self, taken: bool) -> None:
        """Re-initialise weakly in the given direction."""
        self.value = center_init(self.bits, taken)
