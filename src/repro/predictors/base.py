"""Abstract interface for baseline (global) direction predictors.

The pipeline drives a predictor through four calls per conditional
branch, mirroring the pipeline events of §2.4 of the paper:

1. ``lookup(pc)`` at fetch → a :class:`Prediction` carrying everything
   the predictor needs later (indices, provider table, ...).
2. ``checkpoint()`` + ``spec_push(pc, predicted)`` — speculative history
   update at prediction time; the checkpoint travels with the branch.
3. On a misprediction, ``recover(ckpt, pc, actual)`` rewinds the history
   and inserts the resolved outcome.
4. ``train(prediction, actual)`` at resolution updates the tables.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Any

from repro.predictors.history import GlobalHistory, HistoryCheckpoint

__all__ = ["Prediction", "GlobalPredictor"]


@dataclass(slots=True)
class Prediction:
    """A direction prediction plus predictor-private bookkeeping.

    Attributes:
        pc: Branch address the prediction is for.
        taken: Predicted direction.
        meta: Predictor-private payload threaded back into ``train``.
    """

    pc: int
    taken: bool
    meta: Any = None


class GlobalPredictor(abc.ABC):
    """Base class for global-history direction predictors."""

    #: Short identifier used in reports (e.g. ``"tage-8kb"``).
    name: str = "predictor"

    #: True when ``lookup`` has no side effects on predictor or history
    #: state, so calling it twice for the same pc (with no state change
    #: in between) returns an identical prediction.  The specialized
    #: engines (:mod:`repro.pipeline.specialize`) rely on this to retry
    #: the generic predict path after :meth:`spec_resolve_correct`
    #: declines; predictors that cannot promise it are simply never
    #: specialized.
    pure_lookup: bool = False

    def __init__(self, history: GlobalHistory | None = None) -> None:
        self.history = history if history is not None else GlobalHistory()

    @abc.abstractmethod
    def lookup(self, pc: int) -> Prediction:
        """Predict the direction of the conditional branch at ``pc``."""

    @abc.abstractmethod
    def train(self, prediction: Prediction, taken: bool) -> None:
        """Update tables given the resolved outcome of ``prediction``."""

    @abc.abstractmethod
    def storage_bits(self) -> int:
        """Total table storage in bits (excludes history registers)."""

    def checkpoint(self) -> HistoryCheckpoint:
        """Snapshot of the speculative history before this branch."""
        return self.history.checkpoint()

    def spec_push(self, pc: int, taken: bool) -> None:
        """Speculatively insert a predicted outcome into the history."""
        self.history.push(pc, taken)

    def fast_update(self, pc: int, taken: bool) -> None:
        """Cheap architectural table touch for functional fast-forward.

        Called once per committed conditional branch on non-sampled
        intervals (``repro.pipeline.fastforward``).  The default trains
        through a full lookup — exact but slow; predictors override
        with a cheaper approximation (TAGE updates only its bimodal
        base, leaving tagged tables to the detailed warmup window).
        This never feeds back into ``SimStats``; it only keeps state
        warm between detailed intervals.
        """
        self.train(self.lookup(pc), taken)

    def warm_update(self, pc: int, taken: bool) -> None:
        """Full functional update for the fast-forward warm window.

        Equivalent to the committed-stream sequence lookup → history
        push of the actual outcome → train, with no timing model in
        between.  Predictors may override with a fused implementation
        (TAGE does) — the semantics must stay identical, only the
        per-branch object traffic may go.
        """
        prediction = self.lookup(pc)
        self.history.push(pc, taken)
        self.train(prediction, taken)

    def spec_resolve_correct(self, pc: int, taken: bool) -> bool:
        """Fused correct-path step for the specialized engines.

        Equivalent to the committed-stream sequence ``lookup`` →
        ``checkpoint`` (dropped unused) → ``spec_push(pc, predicted)`` →
        ``train`` *when the prediction matches* ``taken`` — in that case
        the state updates are applied and True is returned.  When the
        prediction disagrees, **no state is touched** and False is
        returned: the caller re-runs the generic predict path (valid
        because :attr:`pure_lookup` predictors return the identical
        prediction) and takes its misprediction episode.

        Only meaningful for predictors with default ``checkpoint`` /
        ``spec_push`` behaviour and :attr:`pure_lookup` True; the
        specialization planner checks both before using it.
        """
        prediction = self.lookup(pc)
        if prediction.taken != taken:
            return False
        self.history.push(pc, taken)
        self.train(prediction, taken)
        return True

    def recover(self, ckpt: HistoryCheckpoint, pc: int, taken: bool) -> None:
        """Misprediction repair: rewind history, insert the truth.

        For global predictors this is the whole repair story — constant
        cost per event — which is precisely the asymmetry with local
        predictors the paper builds on.
        """
        self.history.restore_and_push(ckpt, pc, taken)

    def storage_kb(self) -> float:
        """Table storage in kilobytes (1 KB = 8192 bits)."""
        return self.storage_bits() / 8192.0
