"""Statistical corrector (SC): the "SC" of CBPw's TAGE-SC-L.

The CBP-2016 winner wraps TAGE with a statistical corrector — a
GEHL-style adder tree that sums signed counters from several
differently-indexed tables (bias, global-history components) and
*inverts* TAGE's prediction when the statistical evidence disagrees
strongly.  The paper's §2.3 notes the SC also hosts a generic local
component; here the SC is global-only (the repairable local predictors
live in :mod:`repro.core`), which keeps its state recovery as trivial
as TAGE's.

This implementation follows Seznec's scheme at the level that matters
for this repository: percepton-style summation, a dynamically adapted
use-threshold, and counters trained only when the decision was wrong or
weak.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError
from repro.predictors.base import GlobalPredictor, Prediction
from repro.predictors.history import FoldedHistory
from repro.predictors.tage import TageConfig, TagePredictor

__all__ = ["ScConfig", "ScTagePredictor"]


@dataclass(frozen=True)
class ScConfig:
    """Sizing of the statistical corrector."""

    #: log2 entries of each component table.
    log_entries: int = 10
    counter_bits: int = 6
    #: Global-history lengths of the GEHL components.
    history_lengths: tuple[int, ...] = (4, 10, 16, 27)
    #: Initial use-threshold; adapts at runtime.
    initial_threshold: int = 6

    def __post_init__(self) -> None:
        if not 4 <= self.log_entries <= 16:
            raise ConfigError(f"log_entries out of range: {self.log_entries}")
        if self.counter_bits < 3:
            raise ConfigError("counter_bits must be >= 3")
        if not self.history_lengths:
            raise ConfigError("need at least one GEHL component")
        if list(self.history_lengths) != sorted(set(self.history_lengths)):
            raise ConfigError("history_lengths must strictly increase")

    def storage_bits(self) -> int:
        # Bias table (x2: per TAGE direction) + GEHL tables + threshold.
        tables = 2 + len(self.history_lengths)
        return tables * (1 << self.log_entries) * self.counter_bits + 8


class ScTagePredictor(GlobalPredictor):
    """TAGE wrapped by a statistical corrector (TAGE-SC, no local part).

    Presents the combined design through the standard
    :class:`~repro.predictors.base.GlobalPredictor` interface, so it
    drops into the pipeline as a baseline — e.g. to check that the
    local predictor's gains survive a stronger global baseline.
    """

    name = "tage-sc"

    def __init__(
        self,
        tage_config: TageConfig | None = None,
        sc_config: ScConfig | None = None,
    ) -> None:
        self.tage = TagePredictor(tage_config)
        self.sc_config = sc_config = sc_config if sc_config is not None else ScConfig()
        if sc_config.history_lengths[-1] > self.tage.config.max_history:
            raise ConfigError(
                "SC history exceeds the TAGE history window "
                f"({sc_config.history_lengths[-1]} > {self.tage.config.max_history})"
            )
        super().__init__(self.tage.history)
        self.name = f"{self.tage.name}+sc"

        self._mask = (1 << sc_config.log_entries) - 1
        self._ctr_max = (1 << (sc_config.counter_bits - 1)) - 1
        self._ctr_min = -(1 << (sc_config.counter_bits - 1))
        entries = 1 << sc_config.log_entries
        # Two bias tables (one per TAGE direction) plus GEHL components.
        self._bias = [[0] * entries, [0] * entries]
        self._gehl = [[0] * entries for _ in sc_config.history_lengths]
        self._folds = [
            self.history.register_fold(FoldedHistory(length, sc_config.log_entries))
            for length in sc_config.history_lengths
        ]
        self._threshold = sc_config.initial_threshold
        self._threshold_ctr = 0
        self.inversions = 0

    # ------------------------------------------------------------- #

    def _indices(self, pc: int, tage_taken: bool) -> tuple[int, list[int]]:
        bits = pc >> 2
        bias_index = ((bits << 1) | (1 if tage_taken else 0)) & self._mask
        gehl_indices = [
            (bits ^ fold.comp ^ (bits >> 6)) & self._mask for fold in self._folds
        ]
        return bias_index, gehl_indices

    def _sum(self, pc: int, tage_taken: bool) -> tuple[int, int, list[int]]:
        bias_index, gehl_indices = self._indices(pc, tage_taken)
        centered = 1 if tage_taken else -1
        total = 2 * self._bias[1 if tage_taken else 0][bias_index] + centered
        for table, index in zip(self._gehl, gehl_indices):
            total += 2 * table[index] + centered
        return total, bias_index, gehl_indices

    def lookup(self, pc: int) -> Prediction:
        tage_pred = self.tage.lookup(pc)
        total, bias_index, gehl_indices = self._sum(pc, tage_pred.taken)
        sc_taken = total >= 0
        taken = tage_pred.taken
        inverted = False
        if sc_taken != tage_pred.taken and abs(total) >= self._threshold:
            taken = sc_taken
            inverted = True
            self.inversions += 1
        meta = (tage_pred, total, bias_index, gehl_indices, inverted)
        return Prediction(pc=pc, taken=taken, meta=meta)

    def train(self, prediction: Prediction, taken: bool) -> None:
        tage_pred, total, bias_index, gehl_indices, inverted = prediction.meta
        self.tage.train(tage_pred, taken)

        # Adapt the inversion threshold: inversions that were wrong
        # raise it, inversions that were right lower it (Seznec's
        # dynamic threshold fitting).
        if inverted:
            if prediction.taken == taken:
                self._threshold_ctr -= 1
                if self._threshold_ctr <= -8:
                    self._threshold_ctr = 0
                    if self._threshold > 4:
                        self._threshold -= 2
            else:
                self._threshold_ctr += 1
                if self._threshold_ctr >= 8:
                    self._threshold_ctr = 0
                    if self._threshold < 60:
                        self._threshold += 2

        # Train components on wrong or weak decisions only.
        final_sc = total >= 0
        if final_sc != taken or abs(total) < self._threshold * 2:
            delta = 1 if taken else -1
            bias_table = self._bias[1 if tage_pred.taken else 0]
            bias_table[bias_index] = self._clip(bias_table[bias_index] + delta)
            for table, index in zip(self._gehl, gehl_indices):
                table[index] = self._clip(table[index] + delta)

    def _clip(self, value: int) -> int:
        if value > self._ctr_max:
            return self._ctr_max
        if value < self._ctr_min:
            return self._ctr_min
        return value

    def storage_bits(self) -> int:
        return self.tage.storage_bits() + self.sc_config.storage_bits()
