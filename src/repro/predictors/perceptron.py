"""Perceptron branch predictor (Jiménez & Lin, HPCA 2001).

One of the global-history baselines the paper's related work cites
([24]); included so the repository can compare the local-repair story
against a structurally different global predictor family.

Each branch hashes to a weight vector; the prediction is the sign of
the dot product of the weights with the (bipolar) global history.
Training is threshold-gated and clips weights to signed 8-bit range.
"""

from __future__ import annotations

from repro.errors import ConfigError
from repro.predictors.base import GlobalPredictor, Prediction
from repro.predictors.history import GlobalHistory

__all__ = ["PerceptronPredictor"]


class PerceptronPredictor(GlobalPredictor):
    """Table of perceptrons over the global direction history."""

    name = "perceptron"

    def __init__(
        self,
        log_entries: int = 9,
        history_length: int = 24,
        weight_bits: int = 8,
        threshold: int | None = None,
    ) -> None:
        if not 1 <= log_entries <= 16:
            raise ConfigError(f"log_entries out of range: {log_entries}")
        if not 1 <= history_length <= 64:
            raise ConfigError(f"history_length out of range: {history_length}")
        if weight_bits < 2:
            raise ConfigError(f"weight_bits must be >= 2, got {weight_bits}")
        super().__init__(GlobalHistory(max_length=history_length))
        self.log_entries = log_entries
        self.history_length = history_length
        self.weight_bits = weight_bits
        # Jiménez's empirically optimal threshold: 1.93h + 14.
        self.threshold = (
            threshold if threshold is not None else int(1.93 * history_length + 14)
        )
        self._mask = (1 << log_entries) - 1
        self._weight_max = (1 << (weight_bits - 1)) - 1
        self._weight_min = -(1 << (weight_bits - 1))
        # weights[i][0] is the bias weight; [1..h] pair with history bits.
        self._weights: list[list[int]] = [
            [0] * (history_length + 1) for _ in range(1 << log_entries)
        ]

    def _index(self, pc: int) -> int:
        return ((pc >> 2) ^ (pc >> (2 + self.log_entries))) & self._mask

    def _dot(self, weights: list[int]) -> int:
        total = weights[0]
        ghist = self.history.ghist
        for i in range(1, self.history_length + 1):
            bit = (ghist >> (i - 1)) & 1
            total += weights[i] if bit else -weights[i]
        return total

    def lookup(self, pc: int) -> Prediction:
        index = self._index(pc)
        output = self._dot(self._weights[index])
        # Capture the history bits used, so training pairs each weight
        # with the inputs it actually saw.
        snapshot = self.history.ghist
        return Prediction(pc=pc, taken=output >= 0, meta=(index, output, snapshot))

    def train(self, prediction: Prediction, taken: bool) -> None:
        index, output, ghist = prediction.meta
        mispredicted = (output >= 0) != taken
        if not mispredicted and abs(output) > self.threshold:
            return
        weights = self._weights[index]
        target = 1 if taken else -1
        weights[0] = self._clip(weights[0] + target)
        for i in range(1, self.history_length + 1):
            bit = (ghist >> (i - 1)) & 1
            signal = 1 if bit else -1
            weights[i] = self._clip(weights[i] + target * signal)

    def _clip(self, value: int) -> int:
        if value > self._weight_max:
            return self._weight_max
        if value < self._weight_min:
            return self._weight_min
        return value

    def storage_bits(self) -> int:
        return (1 << self.log_entries) * (self.history_length + 1) * self.weight_bits
