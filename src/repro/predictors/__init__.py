"""Baseline (global-history) branch predictors and history machinery."""

from repro.predictors.base import GlobalPredictor, Prediction
from repro.predictors.bimodal import BimodalPredictor
from repro.predictors.counters import SaturatingCounter
from repro.predictors.gshare import GSharePredictor
from repro.predictors.history import FoldedHistory, GlobalHistory, HistoryCheckpoint
from repro.predictors.hybrid import HybridPredictor
from repro.predictors.perceptron import PerceptronPredictor
from repro.predictors.statistical_corrector import ScConfig, ScTagePredictor
from repro.predictors.tage import TageConfig, TagePredictor, TageTableConfig

__all__ = [
    "GlobalPredictor",
    "Prediction",
    "BimodalPredictor",
    "GSharePredictor",
    "HybridPredictor",
    "PerceptronPredictor",
    "ScTagePredictor",
    "ScConfig",
    "TagePredictor",
    "TageConfig",
    "TageTableConfig",
    "GlobalHistory",
    "FoldedHistory",
    "HistoryCheckpoint",
    "SaturatingCounter",
]
