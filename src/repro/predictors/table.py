"""Table-indexed predictor specs and the direct-mapped two-level local.

The batch sweep kernel (:mod:`repro.pipeline.batch`) evaluates *many*
predictor configurations over one trace at once, which only works for
predictors whose whole state is a handful of index-addressed counter
tables.  This module names exactly that family:

* :class:`TablePredictorSpec` — a parsed, hashable description of one
  table-indexed configuration.  Specs have a canonical string form
  (``bimodal:12:2``, ``gshare:14:12``, ``local2l:10:8:12:2``) so a
  sweep over sizings is a sweep over strings — the CLI accepts them
  anywhere a Table 3 system name is accepted.
* :class:`LocalTwoLevelPredictor` — a direct-mapped, untagged PAp-style
  two-level predictor (per-PC pattern history → shared counter table).
  It is the scalar twin of the batch kernel's ``local2l`` lane: simple
  enough to vectorise exactly, unlike the set-associative
  :class:`~repro.core.two_level_local.TwoLevelLocalPredictor` with its
  LRU and confidence machinery.

Every spec builds a plain :class:`~repro.predictors.base.GlobalPredictor`,
so spec-named systems run through the exact pipeline engine unchanged —
the batch kernel is an optimisation, never the only implementation.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError
from repro.predictors.base import GlobalPredictor, Prediction
from repro.predictors.bimodal import BimodalPredictor
from repro.predictors.counters import counter_taken, counter_update
from repro.predictors.gshare import GSharePredictor

__all__ = [
    "TABLE_PREDICTOR_KINDS",
    "TablePredictorSpec",
    "LocalTwoLevelPredictor",
    "parse_table_predictor",
    "maybe_table_predictor",
]

#: The predictor families the batch kernel supports, by spec prefix.
TABLE_PREDICTOR_KINDS: tuple[str, ...] = ("bimodal", "gshare", "local2l")

#: Widest counter the batch kernel's int16 state plane can hold.
_MAX_COUNTER_BITS = 8
_MAX_LOG_ENTRIES = 24


@dataclass(frozen=True)
class TablePredictorSpec:
    """One parsed table-indexed predictor configuration.

    Field meaning depends on ``kind``:

    * ``bimodal`` — ``log_entries`` counters of ``counter_bits`` bits,
      indexed by ``(pc >> 2)``.
    * ``gshare`` — ``log_entries`` 2-bit-equivalent counters of
      ``counter_bits`` bits indexed by ``(pc >> 2) ^ GHIST[:history_bits]``.
    * ``local2l`` — a ``1 << bht_log_entries`` per-PC pattern table of
      ``history_bits``-bit local histories selecting into
      ``log_entries`` counters via ``pattern ^ (pc >> 2)``.
    """

    kind: str
    log_entries: int
    counter_bits: int = 2
    history_bits: int = 0
    bht_log_entries: int = 0

    def __post_init__(self) -> None:
        if self.kind not in TABLE_PREDICTOR_KINDS:
            raise ConfigError(
                f"unknown table predictor kind {self.kind!r}; "
                f"choose from {', '.join(TABLE_PREDICTOR_KINDS)}"
            )
        if not 1 <= self.log_entries <= _MAX_LOG_ENTRIES:
            raise ConfigError(
                f"log_entries out of range [1, {_MAX_LOG_ENTRIES}]: "
                f"{self.log_entries}"
            )
        if not 1 <= self.counter_bits <= _MAX_COUNTER_BITS:
            raise ConfigError(
                f"counter_bits out of range [1, {_MAX_COUNTER_BITS}]: "
                f"{self.counter_bits}"
            )
        if self.kind == "gshare":
            if not 1 <= self.history_bits <= self.log_entries:
                raise ConfigError(
                    "gshare history_bits must be in [1, log_entries] "
                    f"({self.history_bits} vs {self.log_entries})"
                )
        if self.kind == "local2l":
            if not 1 <= self.bht_log_entries <= _MAX_LOG_ENTRIES:
                raise ConfigError(
                    f"bht_log_entries out of range [1, {_MAX_LOG_ENTRIES}]: "
                    f"{self.bht_log_entries}"
                )
            if not 1 <= self.history_bits <= 24:
                raise ConfigError(
                    f"local2l history_bits out of range [1, 24]: "
                    f"{self.history_bits}"
                )

    @property
    def spec_string(self) -> str:
        """The canonical colon form this spec parses back from."""
        if self.kind == "bimodal":
            return f"bimodal:{self.log_entries}:{self.counter_bits}"
        if self.kind == "gshare":
            return f"gshare:{self.log_entries}:{self.history_bits}"
        return (
            f"local2l:{self.bht_log_entries}:{self.history_bits}:"
            f"{self.log_entries}:{self.counter_bits}"
        )

    def build(self) -> GlobalPredictor:
        """Materialise the exact scalar predictor this spec describes."""
        if self.kind == "bimodal":
            return BimodalPredictor(
                log_entries=self.log_entries, counter_bits=self.counter_bits
            )
        if self.kind == "gshare":
            return GSharePredictor(
                log_entries=self.log_entries, history_length=self.history_bits
            )
        return LocalTwoLevelPredictor(
            bht_log_entries=self.bht_log_entries,
            history_bits=self.history_bits,
            pt_log_entries=self.log_entries,
            counter_bits=self.counter_bits,
        )


def _parse_fields(kind: str, fields: list[str], text: str) -> TablePredictorSpec:
    try:
        numbers = [int(field) for field in fields]
    except ValueError:
        raise ConfigError(
            f"non-integer field in predictor spec {text!r}"
        ) from None
    if kind == "bimodal":
        if len(numbers) > 2:
            raise ConfigError(
                f"bimodal spec takes LOG[:BITS], got {text!r}"
            )
        log = numbers[0] if numbers else 12
        bits = numbers[1] if len(numbers) > 1 else 2
        return TablePredictorSpec(kind="bimodal", log_entries=log, counter_bits=bits)
    if kind == "gshare":
        if len(numbers) > 2:
            raise ConfigError(
                f"gshare spec takes LOG[:HIST], got {text!r}"
            )
        log = numbers[0] if numbers else 14
        hist = numbers[1] if len(numbers) > 1 else log
        return TablePredictorSpec(
            kind="gshare", log_entries=log, counter_bits=2, history_bits=hist
        )
    if len(numbers) > 4:
        raise ConfigError(
            f"local2l spec takes BHTLOG[:HIST[:PTLOG[:BITS]]], got {text!r}"
        )
    bht_log = numbers[0] if numbers else 10
    hist = numbers[1] if len(numbers) > 1 else 8
    pt_log = numbers[2] if len(numbers) > 2 else 12
    bits = numbers[3] if len(numbers) > 3 else 2
    return TablePredictorSpec(
        kind="local2l",
        log_entries=pt_log,
        counter_bits=bits,
        history_bits=hist,
        bht_log_entries=bht_log,
    )


def parse_table_predictor(text: str) -> TablePredictorSpec:
    """Parse ``kind[:n[:n...]]`` into a spec (:class:`ConfigError` on bad)."""
    parts = [part.strip() for part in text.strip().split(":")]
    kind = parts[0]
    if kind not in TABLE_PREDICTOR_KINDS:
        raise ConfigError(
            f"unknown table predictor kind {kind!r} in {text!r}; "
            f"choose from {', '.join(TABLE_PREDICTOR_KINDS)}"
        )
    fields = [part for part in parts[1:] if part != ""]
    if len(fields) != len(parts[1:]):
        raise ConfigError(f"empty field in predictor spec {text!r}")
    return _parse_fields(kind, fields, text)


def maybe_table_predictor(text: str) -> TablePredictorSpec | None:
    """Parse a spec string, or None when ``text`` is not spec-shaped.

    Spec-shaped means the part before the first ``:`` names a known
    kind — a *malformed* spec of a known kind still raises, so typos in
    the numeric fields fail loudly instead of falling back to "unknown
    system".
    """
    kind = text.strip().split(":", 1)[0]
    if kind not in TABLE_PREDICTOR_KINDS:
        return None
    return parse_table_predictor(text)


class LocalTwoLevelPredictor(GlobalPredictor):
    """Direct-mapped two-level local predictor (PAp, untagged).

    First level: a per-PC branch-history table of ``history_bits``-bit
    local patterns, direct-mapped by ``(pc >> 2)``.  Second level: a
    shared counter table indexed by ``pattern ^ (pc >> 2)``.  Both
    levels update architecturally at train time (no speculative local
    history), which keeps the committed-stream behaviour a pure
    function of prior outcomes — the property the batch kernel relies
    on for bit-identical vectorisation.
    """

    name = "local2l"

    def __init__(
        self,
        bht_log_entries: int = 10,
        history_bits: int = 8,
        pt_log_entries: int = 12,
        counter_bits: int = 2,
    ) -> None:
        super().__init__()
        # Route range validation through the spec so the scalar
        # predictor and the batch kernel accept exactly the same space.
        spec = TablePredictorSpec(
            kind="local2l",
            log_entries=pt_log_entries,
            counter_bits=counter_bits,
            history_bits=history_bits,
            bht_log_entries=bht_log_entries,
        )
        self.spec = spec
        self.counter_bits = counter_bits
        self._bht_mask = (1 << bht_log_entries) - 1
        self._hist_mask = (1 << history_bits) - 1
        self._pt_mask = (1 << pt_log_entries) - 1
        self._max = (1 << counter_bits) - 1
        self._bht = [0] * (1 << bht_log_entries)
        weak_taken = 1 << (counter_bits - 1)
        self._pt = [weak_taken] * (1 << pt_log_entries)

    def _indices(self, pc: int) -> tuple[int, int]:
        bht_index = (pc >> 2) & self._bht_mask
        pattern = self._bht[bht_index]
        pt_index = (pattern ^ (pc >> 2)) & self._pt_mask
        return bht_index, pt_index

    def lookup(self, pc: int) -> Prediction:
        bht_index, pt_index = self._indices(pc)
        taken = counter_taken(self._pt[pt_index], self.counter_bits)
        return Prediction(pc=pc, taken=taken, meta=(bht_index, pt_index))

    def train(self, prediction: Prediction, taken: bool) -> None:
        bht_index, pt_index = prediction.meta
        self._pt[pt_index] = counter_update(self._pt[pt_index], taken, self._max)
        self._bht[bht_index] = (
            (self._bht[bht_index] << 1) | (1 if taken else 0)
        ) & self._hist_mask

    def storage_bits(self) -> int:
        bht_bits = len(self._bht) * self.spec.history_bits
        return bht_bits + len(self._pt) * self.counter_bits
