"""Global branch history registers and folded-history machinery.

Global predictors (gshare, TAGE) consult two speculative registers:

``GHIST``
    direction history, one bit per branch, newest bit at position 0.

``PHIST``
    path history, a few PC bits per branch.

Both are updated *speculatively at prediction time* and must be restored
when a branch turns out mispredicted.  Each in-flight branch therefore
carries a :class:`HistoryCheckpoint` taken before its own update — this
is the cheap, constant-cost repair the paper contrasts with the BHT
repair problem of local predictors (§2.3.1).

:class:`FoldedHistory` implements Seznec's incremental folding, which
compresses an ``original_length``-bit history into ``compressed_length``
bits in O(1) per branch instead of O(length).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError

__all__ = ["FoldedHistory", "GlobalHistory", "HistoryCheckpoint"]


class FoldedHistory:
    """Incrementally folded view of the most recent history bits.

    The fold is the XOR of consecutive ``compressed_length``-bit chunks of
    the youngest ``original_length`` bits of GHIST, maintained in O(1) per
    inserted bit.
    """

    __slots__ = ("comp", "compressed_length", "original_length", "_outpoint", "_mask")

    def __init__(self, original_length: int, compressed_length: int) -> None:
        if original_length <= 0 or compressed_length <= 0:
            raise ConfigError("history lengths must be positive")
        self.comp = 0
        self.compressed_length = compressed_length
        self.original_length = original_length
        self._outpoint = original_length % compressed_length
        self._mask = (1 << compressed_length) - 1

    def update(self, ghist_after_insert: int, new_bit: int) -> None:
        """Fold in ``new_bit`` and fold out the bit leaving the window.

        Args:
            ghist_after_insert: GHIST *after* the new bit was shifted in
                at position 0 (so the evicted bit sits at
                ``original_length``).
            new_bit: The bit just inserted (0 or 1).
        """
        comp = (self.comp << 1) | new_bit
        comp ^= ((ghist_after_insert >> self.original_length) & 1) << self._outpoint
        comp ^= comp >> self.compressed_length
        self.comp = comp & self._mask

    def rebuild(self, ghist: int) -> None:
        """Recompute the fold from scratch (used after restore)."""
        comp = 0
        for chunk_start in range(0, self.original_length, self.compressed_length):
            width = min(self.compressed_length, self.original_length - chunk_start)
            chunk = (ghist >> chunk_start) & ((1 << width) - 1)
            comp ^= chunk
        self.comp = comp & self._mask


@dataclass(frozen=True, slots=True)
class HistoryCheckpoint:
    """Pre-update snapshot carried by each in-flight branch."""

    ghist: int
    phist: int
    folds: tuple[int, ...]


class GlobalHistory:
    """Speculative GHIST/PHIST with per-branch checkpoint/restore.

    Folded histories are registered by predictors (one or more per TAGE
    table) and kept in sync on every push/restore.
    """

    __slots__ = (
        "ghist",
        "phist",
        "max_length",
        "path_bits",
        "_folds",
        "_ghist_mask",
        "_phist_mask",
    )

    def __init__(self, max_length: int = 256, path_bits: int = 16) -> None:
        if max_length <= 0:
            raise ConfigError(f"max_length must be positive, got {max_length}")
        self.ghist = 0
        self.phist = 0
        self.max_length = max_length
        self.path_bits = path_bits
        self._folds: list[FoldedHistory] = []
        # Keep one spare bit above max_length so folds can observe the
        # evicted bit before truncation.
        self._ghist_mask = (1 << (max_length + 1)) - 1
        self._phist_mask = (1 << path_bits) - 1

    def register_fold(self, fold: FoldedHistory) -> FoldedHistory:
        """Attach a folded history; it will track future pushes."""
        if fold.original_length > self.max_length:
            raise ConfigError(
                f"fold window {fold.original_length} exceeds max history "
                f"{self.max_length}"
            )
        self._folds.append(fold)
        fold.rebuild(self.ghist)
        return fold

    def checkpoint(self) -> HistoryCheckpoint:
        """Snapshot taken before this branch's speculative update."""
        return HistoryCheckpoint(
            ghist=self.ghist,
            phist=self.phist,
            folds=tuple(f.comp for f in self._folds),
        )

    def push(self, pc: int, taken: bool) -> None:
        """Speculatively insert one branch outcome."""
        self.ghist = ((self.ghist << 1) | (1 if taken else 0)) & self._ghist_mask
        self.phist = ((self.phist << 1) | (pc & 1)) & self._phist_mask
        ghist = self.ghist
        bit = ghist & 1
        for fold in self._folds:
            fold.update(ghist, bit)

    def restore(self, ckpt: HistoryCheckpoint) -> None:
        """Rewind to a carried checkpoint (misprediction recovery)."""
        self.ghist = ckpt.ghist
        self.phist = ckpt.phist
        for fold, comp in zip(self._folds, ckpt.folds):
            fold.comp = comp

    def restore_and_push(self, ckpt: HistoryCheckpoint, pc: int, taken: bool) -> None:
        """Standard misprediction repair: rewind then insert the truth."""
        self.restore(ckpt)
        self.push(pc, taken)
