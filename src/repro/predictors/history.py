"""Global branch history registers and folded-history machinery.

Global predictors (gshare, TAGE) consult two speculative registers:

``GHIST``
    direction history, one bit per branch, newest bit at position 0.

``PHIST``
    path history, a few PC bits per branch.

Both are updated *speculatively at prediction time* and must be restored
when a branch turns out mispredicted.  Each in-flight branch therefore
carries a :class:`HistoryCheckpoint` taken before its own update — this
is the cheap, constant-cost repair the paper contrasts with the BHT
repair problem of local predictors (§2.3.1).

:class:`FoldedHistory` implements Seznec's incremental folding, which
compresses an ``original_length``-bit history into ``compressed_length``
bits in O(1) per branch instead of O(length).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError

__all__ = ["FoldedHistory", "GlobalHistory", "HistoryCheckpoint"]


class FoldedHistory:
    """Incrementally folded view of the most recent history bits.

    The fold is the XOR of consecutive ``compressed_length``-bit chunks of
    the youngest ``original_length`` bits of GHIST, maintained in O(1) per
    inserted bit.

    A standalone fold stores its own value; once registered on a
    :class:`GlobalHistory` the value lives in the owner's flat
    ``fold_comps`` list (so push/checkpoint/restore touch one list
    instead of N objects) and :attr:`comp` becomes a view onto that
    slot.  Either way ``fold.comp`` reads and writes stay correct.
    """

    __slots__ = (
        "_comp",
        "compressed_length",
        "original_length",
        "_outpoint",
        "_mask",
        "_owner",
        "_slot",
    )

    def __init__(self, original_length: int, compressed_length: int) -> None:
        if original_length <= 0 or compressed_length <= 0:
            raise ConfigError("history lengths must be positive")
        self._comp = 0
        self.compressed_length = compressed_length
        self.original_length = original_length
        self._outpoint = original_length % compressed_length
        self._mask = (1 << compressed_length) - 1
        self._owner: list[int] | None = None
        self._slot = 0

    @property
    def comp(self) -> int:
        """Current folded value (live view once registered)."""
        owner = self._owner
        return self._comp if owner is None else owner[self._slot]

    @comp.setter
    def comp(self, value: int) -> None:
        owner = self._owner
        if owner is None:
            self._comp = value
        else:
            owner[self._slot] = value

    def update(self, ghist_after_insert: int, new_bit: int) -> None:
        """Fold in ``new_bit`` and fold out the bit leaving the window.

        Args:
            ghist_after_insert: GHIST *after* the new bit was shifted in
                at position 0 (so the evicted bit sits at
                ``original_length``).
            new_bit: The bit just inserted (0 or 1).
        """
        comp = (self.comp << 1) | new_bit
        comp ^= ((ghist_after_insert >> self.original_length) & 1) << self._outpoint
        comp ^= comp >> self.compressed_length
        self.comp = comp & self._mask

    def rebuild(self, ghist: int) -> None:
        """Recompute the fold from scratch (used after restore)."""
        comp = 0
        for chunk_start in range(0, self.original_length, self.compressed_length):
            width = min(self.compressed_length, self.original_length - chunk_start)
            chunk = (ghist >> chunk_start) & ((1 << width) - 1)
            comp ^= chunk
        self.comp = comp & self._mask


@dataclass(frozen=True, slots=True)
class HistoryCheckpoint:
    """Pre-update snapshot carried by each in-flight branch.

    ``folds`` is a flat list (one entry per registered fold, in
    registration order) copied straight from the owner's live fold
    state — a single C-level ``list.copy`` per branch instead of a
    per-fold generator walk.
    """

    ghist: int
    phist: int
    folds: list[int]


class GlobalHistory:
    """Speculative GHIST/PHIST with per-branch checkpoint/restore.

    Folded histories are registered by predictors (one or more per TAGE
    table) and kept in sync on every push/restore.  The live fold values
    are mirrored in :attr:`fold_comps`, a flat list indexed by
    registration order, so the per-branch checkpoint is one list copy
    and predictors can read fold state by slot without attribute chains.
    """

    __slots__ = (
        "ghist",
        "phist",
        "max_length",
        "path_bits",
        "fold_comps",
        "_folds",
        "_fold_params",
        "_ghist_mask",
        "_phist_mask",
    )

    def __init__(self, max_length: int = 256, path_bits: int = 16) -> None:
        if max_length <= 0:
            raise ConfigError(f"max_length must be positive, got {max_length}")
        self.ghist = 0
        self.phist = 0
        self.max_length = max_length
        self.path_bits = path_bits
        self._folds: list[FoldedHistory] = []
        #: Live fold values, one per registered fold in registration
        #: order (registered folds' ``comp`` views read this list).
        self.fold_comps: list[int] = []
        #: Per-fold constants (slot, original_length, outpoint,
        #: compressed_length, mask) unpacked in the push loop.
        self._fold_params: list[tuple[int, int, int, int, int]] = []
        # Keep one spare bit above max_length so folds can observe the
        # evicted bit before truncation.
        self._ghist_mask = (1 << (max_length + 1)) - 1
        self._phist_mask = (1 << path_bits) - 1

    def register_fold(self, fold: FoldedHistory) -> FoldedHistory:
        """Attach a folded history; it will track future pushes.

        Returns the fold; its slot in :attr:`fold_comps` is
        ``len(fold_comps) - 1`` at return time.
        """
        if fold.original_length > self.max_length:
            raise ConfigError(
                f"fold window {fold.original_length} exceeds max history "
                f"{self.max_length}"
            )
        self._folds.append(fold)
        fold.rebuild(self.ghist)
        comps = self.fold_comps
        slot = len(comps)
        comps.append(fold.comp)
        fold._owner = comps
        fold._slot = slot
        self._fold_params.append(
            (
                slot,
                fold.original_length,
                fold._outpoint,
                fold.compressed_length,
                fold._mask,
            )
        )
        return fold

    def checkpoint(self) -> HistoryCheckpoint:
        """Snapshot taken before this branch's speculative update."""
        return HistoryCheckpoint(
            ghist=self.ghist,
            phist=self.phist,
            folds=self.fold_comps.copy(),
        )

    def push(self, pc: int, taken: bool) -> None:
        """Speculatively insert one branch outcome.

        The per-fold update is inlined (same arithmetic as
        :meth:`FoldedHistory.update`) so the hottest loop in the whole
        simulator pays tuple unpacks and list stores instead of method
        calls and attribute chains.
        """
        ghist = ((self.ghist << 1) | (1 if taken else 0)) & self._ghist_mask
        self.ghist = ghist
        self.phist = ((self.phist << 1) | (pc & 1)) & self._phist_mask
        bit = ghist & 1
        comps = self.fold_comps
        for slot, olen, outpoint, clen, cmask in self._fold_params:
            comp = (comps[slot] << 1) | bit
            comp ^= ((ghist >> olen) & 1) << outpoint
            comp ^= comp >> clen
            comps[slot] = comp & cmask

    def restore(self, ckpt: HistoryCheckpoint) -> None:
        """Rewind to a carried checkpoint (misprediction recovery)."""
        self.ghist = ckpt.ghist
        self.phist = ckpt.phist
        self.fold_comps[:] = ckpt.folds

    def restore_and_push(self, ckpt: HistoryCheckpoint, pc: int, taken: bool) -> None:
        """Standard misprediction repair: rewind then insert the truth."""
        self.restore(ckpt)
        self.push(pc, taken)
