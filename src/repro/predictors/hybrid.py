"""McFarling-style hybrid (tournament) predictor.

Combines a bimodal and a gshare component with a chooser table trained
on which component was right — the classic pre-TAGE combining scheme
([26] in the paper's references).  A second independent baseline for
examples, tests, and sanity comparisons.
"""

from __future__ import annotations

from repro.errors import ConfigError
from repro.predictors.base import GlobalPredictor, Prediction
from repro.predictors.bimodal import BimodalPredictor
from repro.predictors.counters import counter_taken, counter_update
from repro.predictors.gshare import GSharePredictor

__all__ = ["HybridPredictor"]


class HybridPredictor(GlobalPredictor):
    """Tournament of bimodal and gshare with a 2-bit chooser table."""

    name = "hybrid"

    def __init__(
        self,
        chooser_log_entries: int = 12,
        bimodal_log_entries: int = 12,
        gshare_log_entries: int = 12,
        gshare_history: int | None = None,
    ) -> None:
        if not 1 <= chooser_log_entries <= 20:
            raise ConfigError(f"chooser_log_entries out of range: {chooser_log_entries}")
        self.bimodal = BimodalPredictor(log_entries=bimodal_log_entries)
        self.gshare = GSharePredictor(
            log_entries=gshare_log_entries, history_length=gshare_history
        )
        # The hybrid's speculative history is the gshare's.
        super().__init__(self.gshare.history)
        self._chooser_mask = (1 << chooser_log_entries) - 1
        # 2-bit chooser: >= 2 prefers gshare.
        self._chooser = [2] * (1 << chooser_log_entries)

    def _chooser_index(self, pc: int) -> int:
        return (pc >> 2) & self._chooser_mask

    def lookup(self, pc: int) -> Prediction:
        bim = self.bimodal.lookup(pc)
        gsh = self.gshare.lookup(pc)
        index = self._chooser_index(pc)
        use_gshare = counter_taken(self._chooser[index], 2)
        taken = gsh.taken if use_gshare else bim.taken
        return Prediction(pc=pc, taken=taken, meta=(bim, gsh, index))

    def train(self, prediction: Prediction, taken: bool) -> None:
        bim, gsh, index = prediction.meta
        self.bimodal.train(bim, taken)
        self.gshare.train(gsh, taken)
        bim_right = bim.taken == taken
        gsh_right = gsh.taken == taken
        if bim_right != gsh_right:
            # Move the chooser toward whichever component was right.
            self._chooser[index] = counter_update(
                self._chooser[index], gsh_right, 3
            )

    def storage_bits(self) -> int:
        return (
            self.bimodal.storage_bits()
            + self.gshare.storage_bits()
            + len(self._chooser) * 2
        )
