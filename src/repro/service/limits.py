"""Admission control: per-client token buckets and queue backpressure.

Two independent gates protect the service:

* :class:`RateLimiter` — one token bucket per client (``X-Client-Id``
  header, else peer address).  A client may burst up to ``burst``
  submissions, then is refilled at ``rate`` tokens/second.  Rejections
  carry the exact number of seconds until the next token, which the
  HTTP layer surfaces as ``Retry-After``.
* :class:`QueueGovernor` — a global cap on queued-but-not-started
  jobs.  When the backlog is full the server sheds load with a 429
  whose ``Retry-After`` estimates when a slot frees up from the
  observed mean job wall time — cheap, honest backpressure instead of
  unbounded queue growth.

Both are pure in-memory structures with a single lock each; at the
request rates a simulation service sees (jobs cost seconds, not
microseconds) contention is irrelevant.
"""

from __future__ import annotations

import math
import threading
import time
from dataclasses import dataclass

__all__ = ["Decision", "RateLimiter", "QueueGovernor"]


@dataclass(frozen=True)
class Decision:
    """Outcome of an admission check."""

    allowed: bool
    #: Seconds the client should wait before retrying (0 when allowed).
    retry_after: float = 0.0

    @property
    def retry_after_header(self) -> str:
        """``Retry-After`` is an integer header; always round up."""
        return str(max(1, math.ceil(self.retry_after)))


class _Bucket:
    __slots__ = ("tokens", "updated")

    def __init__(self, tokens: float, updated: float) -> None:
        self.tokens = tokens
        self.updated = updated


class RateLimiter:
    """Classic token bucket, one bucket per client id."""

    def __init__(self, rate: float, burst: int, max_clients: int = 4096) -> None:
        from repro.errors import ServiceError

        if rate <= 0 or burst < 1:
            raise ServiceError(
                f"rate limiter needs rate > 0 and burst >= 1, got {rate}/{burst}"
            )
        self.rate = rate
        self.burst = burst
        self._max_clients = max_clients
        self._buckets: dict[str, _Bucket] = {}
        self._lock = threading.Lock()

    def check(self, client: str, now: float | None = None) -> Decision:
        """Try to take one token for ``client``."""
        stamp = time.monotonic() if now is None else now
        with self._lock:
            bucket = self._buckets.get(client)
            if bucket is None:
                if len(self._buckets) >= self._max_clients:
                    self._buckets.clear()  # bounded memory beats per-client fairness
                bucket = _Bucket(tokens=float(self.burst), updated=stamp)
                self._buckets[client] = bucket
            refill = (stamp - bucket.updated) * self.rate
            bucket.tokens = min(float(self.burst), bucket.tokens + refill)
            bucket.updated = stamp
            if bucket.tokens >= 1.0:
                bucket.tokens -= 1.0
                return Decision(allowed=True)
            return Decision(
                allowed=False, retry_after=(1.0 - bucket.tokens) / self.rate
            )


class QueueGovernor:
    """Global backlog cap with a wall-time-informed retry hint."""

    def __init__(self, limit: int) -> None:
        from repro.errors import ServiceError

        if limit < 1:
            raise ServiceError(f"queue limit must be >= 1, got {limit}")
        self.limit = limit

    def check(
        self, queued: int, mean_job_wall_s: float, workers: int
    ) -> Decision:
        """Admit while the backlog is under the cap.

        The retry hint assumes the backlog drains at
        ``workers / mean_job_wall_s`` jobs per second; with no wall-time
        history yet it falls back to one second.
        """
        if queued < self.limit:
            return Decision(allowed=True)
        per_slot = mean_job_wall_s if mean_job_wall_s > 0 else 1.0
        drain = per_slot / max(1, workers)
        return Decision(allowed=False, retry_after=max(1.0, drain))
