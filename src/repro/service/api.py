"""Request model: JSON submissions validated into simulation jobs.

The service accepts the same three shapes the CLI exposes — ``run``
(one workload, one system), ``compare`` (one workload, every Table 3
system), and ``sweep`` (a workload x system matrix, optionally
sharded) — as JSON documents::

    {"kind": "run", "workload": "hpc-fft",
     "system": "forward-walk-coalesce", "branches": 20000}

    {"kind": "compare", "workload": "hpc-fft", "branches": 15000}

    {"kind": "sweep", "branches": 15000, "per_category": 1,
     "systems": ["baseline-tage", "no-repair"], "shard": "1/4"}

Validation happens entirely here, before anything is queued: unknown
fields, workloads, systems, out-of-range branch counts, and malformed
shards all raise :class:`~repro.errors.ServiceError` (or another
:class:`~repro.errors.ReproError`), which the HTTP layer maps to a 400.

A validated request carries its planned
:class:`~repro.harness.scheduler.SimJob` list and a **request key** —
a stable hash over the per-job manifest hashes plus the library's code
fingerprint, i.e. exactly the identity the persistent result cache
keys on.  Two submissions with the same key would simulate the same
thing, so the server dedups them: against in-flight jobs (both wait on
one execution) and against the result cache (answered with zero
re-simulation).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping, Sequence

from repro.errors import ServiceError
from repro.harness.result_cache import code_fingerprint
from repro.harness.runner import select_workloads, validate_shard
from repro.harness.sampling import SamplingConfig
from repro.harness.scale import Scale
from repro.harness.scheduler import SimJob
from repro.harness.systems import TABLE3_SYSTEMS, SystemConfig
from repro.telemetry.manifest import stable_hash
from repro.harness.tracestore import resolve_workload

__all__ = [
    "ServiceRequest",
    "parse_request",
    "MAX_BRANCHES",
    "MAX_JOBS_PER_REQUEST",
]

#: Hard ceiling on per-run trace length; protects the shared service
#: from a single request monopolising a worker for hours.
MAX_BRANCHES = 2_000_000

#: Hard ceiling on how many (workload, system) jobs one request may
#: expand to.
MAX_JOBS_PER_REQUEST = 1024

_KINDS = ("run", "compare", "sweep")
_DEFAULT_BRANCHES = {"run": 20_000, "compare": 15_000, "sweep": 15_000}

_ALLOWED_FIELDS: dict[str, frozenset[str]] = {
    "run": frozenset(
        {"kind", "workload", "system", "branches", "sampling", "specialize"}
    ),
    "compare": frozenset(
        {"kind", "workload", "systems", "branches", "sampling", "specialize"}
    ),
    "sweep": frozenset(
        {
            "kind",
            "branches",
            "per_category",
            "systems",
            "shard",
            "sampling",
            "specialize",
        }
    ),
}


@dataclass(frozen=True)
class ServiceRequest:
    """One validated submission, ready to schedule."""

    kind: str
    #: Canonical JSON-able echo of the validated request fields.
    payload: dict[str, Any]
    #: The planned simulation jobs, workload-major.
    jobs: tuple[SimJob, ...]
    #: Manifest-hash dedup key (see module docstring).
    key: str


def _require_str(payload: Mapping[str, Any], field: str) -> str:
    value = payload.get(field)
    if not isinstance(value, str) or not value:
        raise ServiceError(f"request field {field!r} must be a non-empty string")
    return value


def _branches(payload: Mapping[str, Any], kind: str) -> int:
    value = payload.get("branches", _DEFAULT_BRANCHES[kind])
    if not isinstance(value, int) or isinstance(value, bool):
        raise ServiceError(f"request field 'branches' must be an integer, got {value!r}")
    if not 1 <= value <= MAX_BRANCHES:
        raise ServiceError(
            f"'branches' must be between 1 and {MAX_BRANCHES}, got {value}"
        )
    return value


def _system_by_name(name: str) -> SystemConfig:
    for config in TABLE3_SYSTEMS:
        if config.name == name:
            return config
    known = ", ".join(cfg.name for cfg in TABLE3_SYSTEMS)
    raise ServiceError(f"unknown system {name!r}; choose from: {known}")


def _systems(payload: Mapping[str, Any]) -> list[SystemConfig]:
    value = payload.get("systems")
    if value is None:
        return list(TABLE3_SYSTEMS)
    if not isinstance(value, list) or not value or not all(
        isinstance(item, str) for item in value
    ):
        raise ServiceError("request field 'systems' must be a non-empty string list")
    return [_system_by_name(name) for name in value]


def _sampling(payload: Mapping[str, Any]) -> SamplingConfig | None:
    value = payload.get("sampling")
    if value is None:
        return None
    if not isinstance(value, dict):
        raise ServiceError("request field 'sampling' must be an object")
    allowed = {"mode", "interval", "coverage", "warmup"}
    unknown = set(value) - allowed
    if unknown:
        raise ServiceError(f"unknown sampling field(s): {sorted(unknown)}")
    mode = value.get("mode", "periodic")
    if mode not in ("off", "periodic", "simpoint"):
        raise ServiceError(f"sampling mode must be off/periodic/simpoint, got {mode!r}")
    if mode == "off":
        return None
    interval = value.get("interval", 4000)
    warmup = value.get("warmup", 6000)
    coverage = value.get("coverage", 0.1)
    for field, item in (("interval", interval), ("warmup", warmup)):
        if not isinstance(item, int) or isinstance(item, bool):
            raise ServiceError(f"sampling field {field!r} must be an integer")
    if not isinstance(coverage, (int, float)) or isinstance(coverage, bool):
        raise ServiceError("sampling field 'coverage' must be a number")
    return SamplingConfig(
        mode=mode, interval=interval, coverage=float(coverage), warmup=warmup
    )


def _specialize(payload: Mapping[str, Any]) -> bool:
    """The ``specialize`` request field composed with ``REPRO_SPECIALIZE``.

    A JSON boolean is an explicit choice; a missing field defers to the
    server's environment — the same tri-state contract as the CLI flag.
    """
    from repro.harness.specialize import specialize_enabled

    value = payload.get("specialize")
    if value is not None and not isinstance(value, bool):
        raise ServiceError(
            f"request field 'specialize' must be a boolean, got {value!r}"
        )
    return specialize_enabled(value)


def _shard(payload: Mapping[str, Any]) -> tuple[int, int] | None:
    value = payload.get("shard")
    if value is None:
        return None
    if not isinstance(value, str):
        raise ServiceError(f"'shard' must be a 'K/N' string, got {value!r}")
    parts = value.split("/")
    if len(parts) != 2 or not all(p.strip().lstrip("-").isdigit() for p in parts):
        raise ServiceError(f"'shard' must be K/N (e.g. 2/8), got {value!r}")
    return validate_shard((int(parts[0]), int(parts[1])))


def _per_category(payload: Mapping[str, Any]) -> int:
    value = payload.get("per_category", 1)
    if not isinstance(value, int) or isinstance(value, bool) or value < 1:
        raise ServiceError(f"'per_category' must be a positive integer, got {value!r}")
    return value


def request_key(jobs: Sequence[SimJob]) -> str:
    """Manifest-hash identity of a job list (order-sensitive)."""
    return stable_hash(
        {
            "jobs": [
                [m["config_hash"], m["workload_hash"]]
                for m in (job.manifest() for job in jobs)
            ],
            "code": code_fingerprint(),
        }
    )


def parse_request(payload: Any) -> ServiceRequest:
    """Validate one JSON submission into a :class:`ServiceRequest`."""
    if not isinstance(payload, dict):
        raise ServiceError("request body must be a JSON object")
    kind = payload.get("kind")
    if kind not in _KINDS:
        raise ServiceError(f"request 'kind' must be one of {list(_KINDS)}, got {kind!r}")
    unknown = set(payload) - _ALLOWED_FIELDS[kind]
    if unknown:
        raise ServiceError(
            f"unknown field(s) for kind {kind!r}: {sorted(unknown)}"
        )
    branches = _branches(payload, kind)
    sampling = _sampling(payload)
    specialize = _specialize(payload)
    echo: dict[str, Any] = {"kind": kind, "branches": branches}
    if sampling is not None:
        echo["sampling"] = sampling.to_payload()
    if specialize:
        echo["specialize"] = True

    if kind == "run":
        spec = resolve_workload(_require_str(payload, "workload"))
        system = _system_by_name(payload.get("system", "forward-walk-coalesce"))
        jobs = [
            SimJob(
                spec=spec,
                system=system,
                n_branches=branches,
                sampling=sampling,
                specialize=specialize,
            )
        ]
        echo.update(workload=spec.name, system=system.name)
    elif kind == "compare":
        spec = resolve_workload(_require_str(payload, "workload"))
        systems = _systems(payload)
        jobs = [
            SimJob(
                spec=spec,
                system=system,
                n_branches=branches,
                sampling=sampling,
                specialize=specialize,
            )
            for system in systems
        ]
        echo.update(workload=spec.name, systems=[s.name for s in systems])
    else:
        per_category = _per_category(payload)
        systems = _systems(payload)
        shard = _shard(payload)
        scale = Scale(
            name="service-sweep",
            branches_per_workload=branches,
            workloads_per_category=per_category,
        )
        workloads = select_workloads(scale)
        from repro.harness.scheduler import Scheduler

        jobs = Scheduler().plan(
            workloads,
            systems,
            branches,
            sampling=sampling,
            shard=shard,
            specialize=specialize,
        )
        echo.update(
            per_category=per_category,
            systems=[s.name for s in systems],
            shard=f"{shard[0]}/{shard[1]}" if shard else None,
        )

    if not jobs:
        raise ServiceError("request expands to zero simulation jobs")
    if len(jobs) > MAX_JOBS_PER_REQUEST:
        raise ServiceError(
            f"request expands to {len(jobs)} jobs, over the "
            f"{MAX_JOBS_PER_REQUEST}-job limit; shard it with 'shard': 'K/N'"
        )
    return ServiceRequest(
        kind=kind, payload=echo, jobs=tuple(jobs), key=request_key(jobs)
    )
