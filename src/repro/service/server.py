"""``repro serve``: the simulation-as-a-service HTTP server.

Architecture (all stdlib, no new dependencies)::

    client ──HTTP──▶ ThreadingHTTPServer ──▶ admission (rate limit,
                                              backpressure, dedup)
                                                  │ enqueue
                                                  ▼
                                           queue.Queue of job ids
                                                  │
                               worker threads ◀───┘
                                    │
                                    ▼
                 Scheduler.split_cached  ──▶ cache-answered results
                 Scheduler.run(executor) ──▶ fresh simulations

The HTTP layer is deliberately thin: every route resolves to a method
on :class:`ReproService`, which owns the job store, the worker pool,
the admission gates, and a private
:class:`~repro.telemetry.registry.MetricsRegistry` exported at
``/metrics`` in Prometheus text format.  The service keeps the global
:data:`~repro.telemetry.TELEMETRY` handle *disabled* on purpose: an
enabled telemetry pipeline turns off the persistent result cache (its
artifacts must come from real runs), and the cache is what lets the
service answer repeat queries with zero re-simulation.

Lifecycle: :meth:`ReproService.start` binds the socket (port 0 picks an
ephemeral port) and spawns workers; :meth:`ReproService.stop` drains —
submissions get 503, in-flight jobs finish, still-queued jobs are
persisted to ``<state_dir>/queue.json`` and resubmitted on the next
start, so a SIGTERM loses nothing.
"""

from __future__ import annotations

import json
import os
import signal
import sys
import threading
import traceback
from dataclasses import dataclass
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from queue import Empty, Queue
from typing import TYPE_CHECKING, Any

from repro.errors import ReproError, ServiceError
from repro.harness.executors import (
    Executor,
    InlineExecutor,
    ProcessPoolExecutorBackend,
    ShardedExecutor,
)
from repro.harness.scheduler import Scheduler
from repro.service.api import parse_request
from repro.service.jobs import JobState, JobStore, ServiceJob
from repro.service.limits import QueueGovernor, RateLimiter
from repro.telemetry.export import prometheus_text
from repro.telemetry.registry import MetricsRegistry

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.harness.runner import RunResult

__all__ = ["ServiceConfig", "ReproService", "serve"]

#: Largest accepted request body; simulation submissions are tiny.
_MAX_BODY = 1 << 20

#: Upper bound on ``?wait=`` long-polls and /events streams (seconds).
_MAX_WAIT = 60.0

_EXECUTORS = ("inline", "pool", "sharded")

_QUEUE_FILE = "queue.json"


@dataclass(frozen=True)
class ServiceConfig:
    """Tunables of one service instance (all have sane defaults)."""

    host: str = "127.0.0.1"
    port: int = 8321
    #: Worker threads pulling jobs off the queue.
    workers: int = 2
    #: Max queued-but-not-started jobs before 429 backpressure.
    queue_limit: int = 64
    #: Per-client submissions per second (token-bucket refill rate).
    rate: float = 20.0
    #: Per-client burst allowance.
    burst: int = 40
    #: Executor strategy for fresh simulations.
    executor: str = "inline"
    #: Process count for ``executor="pool"`` (None = auto).
    pool_workers: int | None = None
    #: Shard count for the ``executor="sharded"`` remote stub.
    shards: int = 2
    #: Tri-state persistent result cache override (True = on, the
    #: service default: dedup of completed work depends on it).
    use_result_cache: bool | None = True
    #: Where the shutdown path persists the still-queued backlog;
    #: None disables persistence.
    state_dir: str | None = ".repro-cache/service"
    #: Seconds :meth:`ReproService.stop` waits for in-flight work.
    drain_timeout: float = 30.0
    #: Terminal jobs retained in memory for status queries.
    max_completed: int = 512

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ServiceError(f"workers must be >= 1, got {self.workers}")
        if self.executor not in _EXECUTORS:
            raise ServiceError(
                f"executor must be one of {list(_EXECUTORS)}, got {self.executor!r}"
            )


class ReproService:
    """The service core: store + queue + workers + admission + metrics."""

    def __init__(self, config: ServiceConfig | None = None) -> None:
        self.config = config if config is not None else ServiceConfig()
        self.store = JobStore(max_completed=self.config.max_completed)
        self.scheduler = Scheduler(use_result_cache=self.config.use_result_cache)
        self.registry = MetricsRegistry()
        self.limiter = RateLimiter(rate=self.config.rate, burst=self.config.burst)
        self.governor = QueueGovernor(limit=self.config.queue_limit)
        self._queue: "Queue[str | None]" = Queue()
        self._workers: list[threading.Thread] = []
        self._httpd: _Server | None = None
        self._http_thread: threading.Thread | None = None
        self._draining = False
        self._halted = False
        self._stopped = False
        self.registry.gauge("service.workers").set(self.config.workers)

    # ------------------------------------------------------------- #
    # lifecycle

    @property
    def address(self) -> tuple[str, int]:
        """Bound (host, port); port is resolved after :meth:`start`."""
        if self._httpd is None:
            return (self.config.host, self.config.port)
        host, port = self._httpd.server_address[:2]
        return (str(host), int(port))

    def start(self) -> None:
        """Bind the socket, spawn workers, restore a persisted queue."""
        if self._httpd is not None:
            raise ServiceError("service already started")
        self._httpd = _Server((self.config.host, self.config.port), _Handler, self)
        self._http_thread = threading.Thread(
            target=self._httpd.serve_forever, name="repro-serve-http", daemon=True
        )
        self._http_thread.start()
        for index in range(self.config.workers):
            worker = threading.Thread(
                target=self._worker_loop, name=f"repro-serve-worker-{index}", daemon=True
            )
            worker.start()
            self._workers.append(worker)
        self._restore_queue()

    def stop(self, drain: bool = True, timeout: float | None = None) -> None:
        """Graceful shutdown: refuse new work, drain, persist leftovers."""
        if self._stopped:
            return
        self._draining = True
        self.registry.gauge("service.draining").set(1)
        limit = self.config.drain_timeout if timeout is None else timeout
        if drain:
            self._await_drain(limit)
        # Past this point workers must not start new jobs — anything
        # still queued belongs to the persisted backlog, not to a
        # worker racing the sentinel.
        self._halted = True
        for _ in self._workers:
            self._queue.put(None)
        for worker in self._workers:
            worker.join(timeout=5.0)
        # Workers are stopped: whatever is still QUEUED now is exactly
        # the backlog a restart must pick up.
        self._persist_queue()
        if self._httpd is not None:
            self._httpd.shutdown()
            self._httpd.server_close()
        self._stopped = True

    def _await_drain(self, timeout: float) -> None:
        with self.store.changed:
            deadline = _monotonic() + timeout
            while True:
                tally = {state.value: 0 for state in JobState}
                for job in self.store.list_jobs():
                    tally[job.state.value] += 1
                if tally["queued"] == 0 and tally["running"] == 0:
                    return
                remaining = deadline - _monotonic()
                if remaining <= 0:
                    return
                self.store.changed.wait(min(remaining, 0.25))

    # ------------------------------------------------------------- #
    # queue persistence

    def _state_path(self) -> Path | None:
        if self.config.state_dir is None:
            return None
        return Path(self.config.state_dir) / _QUEUE_FILE

    def _persist_queue(self) -> None:
        path = self._state_path()
        if path is None:
            return
        pending = [
            {"client": job.client, "payload": job.request.payload}
            for job in self.store.queued_jobs()
        ]
        if not pending:
            path.unlink(missing_ok=True)
            return
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_name(f"{path.name}.{os.getpid()}.tmp")
        tmp.write_text(json.dumps({"version": 1, "jobs": pending}, sort_keys=True))
        tmp.replace(path)
        self.registry.counter("service.queue_persisted").inc(len(pending))

    def _restore_queue(self) -> None:
        path = self._state_path()
        if path is None or not path.exists():
            return
        try:
            payload = json.loads(path.read_text())
            entries = payload.get("jobs", []) if isinstance(payload, dict) else []
        except (OSError, json.JSONDecodeError):
            entries = []
        path.unlink(missing_ok=True)
        for entry in entries:
            if not isinstance(entry, dict):
                continue
            try:
                request = parse_request(entry.get("payload"))
            except ReproError:
                continue  # stale schema or removed workload: drop it
            client = str(entry.get("client", "restored"))
            job, disposition = self.store.submit(request, client)
            if disposition == "new":
                self._enqueue(job)
                self.registry.counter("service.queue_restored").inc()

    # ------------------------------------------------------------- #
    # admission / submission

    def submit(
        self, body: bytes, client: str
    ) -> tuple[int, dict[str, Any], dict[str, str]]:
        """Process one POST /v1/jobs; returns (status, body, headers)."""
        self.registry.counter("service.requests").inc()
        if self._draining:
            return 503, {"error": "server is draining; resubmit later"}, {}
        decision = self.limiter.check(client)
        if not decision.allowed:
            self.registry.counter("service.rate_limited").inc()
            return (
                429,
                {"error": "rate limit exceeded", "retry_after": decision.retry_after},
                {"Retry-After": decision.retry_after_header},
            )
        backlog = self.store.counts()["queued"]
        wall = self.registry.timer("service.job_wall")
        decision = self.governor.check(backlog, wall.mean, self.config.workers)
        if not decision.allowed:
            self.registry.counter("service.backpressure").inc()
            return (
                429,
                {
                    "error": f"queue full ({backlog} jobs waiting)",
                    "retry_after": decision.retry_after,
                },
                {"Retry-After": decision.retry_after_header},
            )
        try:
            request = parse_request(json.loads(body.decode("utf-8")))
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            return 400, {"error": f"request body is not valid JSON: {exc}"}, {}
        except ReproError as exc:
            return 400, {"error": str(exc)}, {}
        job, disposition = self.store.submit(request, client)
        headers = {"Location": f"/v1/jobs/{job.job_id}"}
        if disposition == "inflight":
            self.registry.counter("service.dedup_inflight").inc()
            return 202, {"job": job.snapshot(), "deduplicated": True}, headers
        if disposition == "completed":
            self.registry.counter("service.dedup_completed").inc()
            return 200, {"job": job.snapshot(), "deduplicated": True}, headers
        self.registry.counter("service.submitted").inc()
        self._enqueue(job)
        return 202, {"job": job.snapshot(), "deduplicated": False}, headers

    def _enqueue(self, job: ServiceJob) -> None:
        self._queue.put(job.job_id)
        self._update_depth()

    def _update_depth(self) -> None:
        self.registry.gauge("service.queue_depth").set(
            self.store.counts()["queued"]
        )

    # ------------------------------------------------------------- #
    # execution

    def _build_executor(self) -> Executor:
        if self.config.executor == "pool":
            workers = self.config.pool_workers or max(1, (os.cpu_count() or 2) - 1)
            return ProcessPoolExecutorBackend(workers=workers)
        if self.config.executor == "sharded":
            return ShardedExecutor(shards=self.config.shards)
        return InlineExecutor()

    def _worker_loop(self) -> None:
        while True:
            try:
                job_id = self._queue.get(timeout=0.5)
            except Empty:
                continue
            if job_id is None:
                return
            if self._halted:
                continue  # leave the job QUEUED for queue persistence
            job = self.store.get(job_id)
            if job is None or job.state is not JobState.QUEUED:
                continue
            if job.cancel_requested:
                self._finish(job_id, JobState.CANCELLED, error="cancelled while queued")
                continue
            self.store.mark_running(job_id)
            self._update_depth()
            self.registry.gauge("service.running").set(
                self.store.counts()["running"]
            )
            if job.started_at is not None:
                self.registry.timer("service.queue_wait").observe(
                    max(0.0, job.started_at - job.submitted_at)
                )
            try:
                with self.registry.timer("service.job_wall"):
                    self._execute(job)
            except ReproError as exc:
                self._finish(job_id, JobState.FAILED, error=str(exc))
            except Exception as exc:  # simlint: ignore[ERR001] -- worker survives any job
                traceback.print_exc(file=sys.stderr)
                self._finish(
                    job_id, JobState.FAILED, error=f"internal error: {exc}"
                )

    def _execute(self, job: ServiceJob) -> None:
        """Run one accepted request: cache split, then fresh work."""
        sim_jobs = list(job.request.jobs)
        hits, misses = self.scheduler.split_cached(sim_jobs)
        job.cache_hits = len(hits)
        self.registry.counter("service.cache_hits").inc(len(hits))
        by_index: "dict[int, RunResult]" = dict(hits)
        miss_indices = [i for i in range(len(sim_jobs)) if i not in hits]
        executor = self._build_executor()
        if misses and isinstance(executor, InlineExecutor):
            # Per-job dispatch so a cancel lands between simulations.
            for index, sim_job in zip(miss_indices, misses):
                if job.cancel_requested:
                    self._finish(
                        job.job_id,
                        JobState.CANCELLED,
                        error="cancelled while running",
                    )
                    return
                by_index[index] = self.scheduler.run([sim_job], executor)[0]
                job.sim_runs += 1
                self.registry.counter("service.sim_runs").inc()
        elif misses:
            fresh = self.scheduler.run(misses, executor)
            for index, result in zip(miss_indices, fresh):
                by_index[index] = result
            job.sim_runs += len(misses)
            self.registry.counter("service.sim_runs").inc(len(misses))
        if job.cancel_requested:
            self._finish(
                job.job_id, JobState.CANCELLED, error="cancelled while running"
            )
            return
        results = [by_index[i] for i in range(len(sim_jobs))]
        self._finish(job.job_id, JobState.DONE, results=results)

    def _finish(
        self,
        job_id: str,
        state: JobState,
        results: "list[RunResult] | None" = None,
        error: str | None = None,
    ) -> None:
        self.store.finish(job_id, state, results=results, error=error)
        name = {
            JobState.DONE: "service.jobs_done",
            JobState.FAILED: "service.jobs_failed",
            JobState.CANCELLED: "service.jobs_cancelled",
        }[state]
        self.registry.counter(name).inc()
        self._update_depth()
        self.registry.gauge("service.running").set(self.store.counts()["running"])

    # ------------------------------------------------------------- #
    # read-side endpoints

    def metrics_text(self) -> str:
        """Prometheus exposition of the service registry."""
        return prometheus_text(self.registry)

    def health(self) -> dict[str, Any]:
        return {
            "status": "draining" if self._draining else "ok",
            "jobs": self.store.counts(),
            "workers": self.config.workers,
            "executor": self.config.executor,
        }


class _Server(ThreadingHTTPServer):
    """ThreadingHTTPServer carrying its owning service."""

    daemon_threads = True
    allow_reuse_address = True

    def __init__(
        self,
        address: tuple[str, int],
        handler: type[BaseHTTPRequestHandler],
        service: ReproService,
    ) -> None:
        super().__init__(address, handler)
        self.service = service


class _Handler(BaseHTTPRequestHandler):
    """Route table for the JSON API (see docs/service.md)."""

    server: _Server

    # ------------------------------------------------------------- #
    # plumbing

    def log_message(self, format: str, *args: Any) -> None:
        """Silence per-request stderr logging (metrics cover ops)."""

    def _client(self) -> str:
        return self.headers.get("X-Client-Id") or str(self.client_address[0])

    def _send_json(
        self, status: int, body: dict[str, Any], headers: dict[str, str] | None = None
    ) -> None:
        data = json.dumps(body).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(data)))
        for key, value in (headers or {}).items():
            self.send_header(key, value)
        self.end_headers()
        self.wfile.write(data)

    def _send_text(self, status: int, text: str, content_type: str) -> None:
        data = text.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(data)))
        self.end_headers()
        self.wfile.write(data)

    def _read_body(self) -> bytes | None:
        length = int(self.headers.get("Content-Length") or 0)
        if length > _MAX_BODY:
            self._send_json(413, {"error": f"body over {_MAX_BODY} bytes"})
            return None
        return self.rfile.read(length)

    def _wait_seconds(self, query: dict[str, list[str]]) -> float:
        values = query.get("wait")
        if not values:
            return 0.0
        try:
            return min(_MAX_WAIT, max(0.0, float(values[0])))
        except ValueError:
            return 0.0

    # ------------------------------------------------------------- #
    # routes

    def do_POST(self) -> None:
        path, _ = _split_path(self.path)
        if path == "/v1/jobs":
            body = self._read_body()
            if body is None:
                return
            status, payload, headers = self.server.service.submit(
                body, self._client()
            )
            self._send_json(status, payload, headers)
            return
        self._send_json(404, {"error": f"no such route: POST {path}"})

    def do_GET(self) -> None:
        service = self.server.service
        path, query = _split_path(self.path)
        if path == "/metrics":
            self._send_text(200, service.metrics_text(), "text/plain; version=0.0.4")
            return
        if path == "/healthz":
            self._send_json(200, service.health())
            return
        if path == "/v1/jobs":
            jobs = [job.snapshot() for job in service.store.list_jobs()]
            self._send_json(200, {"jobs": jobs})
            return
        parts = path.strip("/").split("/")
        if len(parts) == 3 and parts[:2] == ["v1", "jobs"]:
            self._get_job(parts[2], query)
            return
        if len(parts) == 4 and parts[:2] == ["v1", "jobs"] and parts[3] == "result":
            self._get_result(parts[2])
            return
        if len(parts) == 4 and parts[:2] == ["v1", "jobs"] and parts[3] == "events":
            self._stream_events(parts[2])
            return
        self._send_json(404, {"error": f"no such route: GET {path}"})

    def do_DELETE(self) -> None:
        service = self.server.service
        path, _ = _split_path(self.path)
        parts = path.strip("/").split("/")
        if len(parts) == 3 and parts[:2] == ["v1", "jobs"]:
            job = service.store.get(parts[2])
            if job is None:
                self._send_json(404, {"error": f"unknown job id {parts[2]!r}"})
                return
            try:
                job = service.store.request_cancel(parts[2])
            except ServiceError as exc:
                self._send_json(409, {"error": str(exc)})
                return
            self._send_json(200, {"job": job.snapshot()})
            return
        self._send_json(404, {"error": f"no such route: DELETE {path}"})

    # ------------------------------------------------------------- #
    # job views

    def _get_job(self, job_id: str, query: dict[str, list[str]]) -> None:
        service = self.server.service
        job = service.store.get(job_id)
        if job is None:
            self._send_json(404, {"error": f"unknown job id {job_id!r}"})
            return
        wait = self._wait_seconds(query)
        if wait > 0 and not job.state.terminal:
            job = service.store.wait(job_id, wait)
        include = query.get("results", ["0"])[0] in ("1", "true") and job.state.terminal
        self._send_json(200, {"job": job.snapshot(include_results=include)})

    def _get_result(self, job_id: str) -> None:
        service = self.server.service
        job = service.store.get(job_id)
        if job is None:
            self._send_json(404, {"error": f"unknown job id {job_id!r}"})
            return
        if job.state is not JobState.DONE:
            self._send_json(
                409,
                {
                    "error": f"job {job_id} is {job.state.value}, not done",
                    "state": job.state.value,
                    "job_error": job.error,
                },
            )
            return
        self._send_json(200, {"job": job.snapshot(include_results=True)})

    def _stream_events(self, job_id: str) -> None:
        """NDJSON stream of status snapshots until the job is terminal."""
        service = self.server.service
        job = service.store.get(job_id)
        if job is None:
            self._send_json(404, {"error": f"unknown job id {job_id!r}"})
            return
        self.send_response(200)
        self.send_header("Content-Type", "application/x-ndjson")
        self.send_header("Cache-Control", "no-cache")
        self.end_headers()
        deadline = _monotonic() + _MAX_WAIT
        last: dict[str, Any] | None = None
        try:
            while True:
                snapshot = job.snapshot()
                if snapshot != last:
                    self.wfile.write((json.dumps(snapshot) + "\n").encode("utf-8"))
                    self.wfile.flush()
                    last = snapshot
                if job.state.terminal or _monotonic() >= deadline:
                    return
                job = service.store.wait(job_id, 0.5)
        except OSError:
            return  # client went away mid-stream; nothing to clean up


def _split_path(raw: str) -> tuple[str, dict[str, list[str]]]:
    """Path + parsed query string (tiny urllib.parse wrapper)."""
    from urllib.parse import parse_qs, urlsplit

    parts = urlsplit(raw)
    return parts.path, parse_qs(parts.query)


def _monotonic() -> float:
    from time import monotonic

    return monotonic()


def serve(config: ServiceConfig | None = None) -> int:
    """Run a service until SIGTERM/SIGINT, then drain and exit.

    This is the blocking entry point behind ``repro serve``; tests
    drive :class:`ReproService` directly instead.
    """
    service = ReproService(config)
    stop = threading.Event()

    def _on_signal(signum: int, frame: Any) -> None:
        stop.set()

    previous = {
        signal.SIGTERM: signal.signal(signal.SIGTERM, _on_signal),
        signal.SIGINT: signal.signal(signal.SIGINT, _on_signal),
    }
    try:
        service.start()
        host, port = service.address
        print(f"repro serve listening on http://{host}:{port}")
        print("POST /v1/jobs, GET /v1/jobs/<id>, GET /metrics; SIGTERM drains")
        stop.wait()
        print("draining ...")
        service.stop(drain=True)
    finally:
        for signum, handler in previous.items():
            signal.signal(signum, handler)
    print("stopped")
    return 0
