"""Job lifecycle: states, records, and the thread-safe job store.

A *job* is one accepted :class:`~repro.service.api.ServiceRequest`
moving through ``queued → running → done`` (or ``failed`` /
``cancelled``).  The :class:`JobStore` is the single source of truth
the HTTP handlers, the worker pool, and the shutdown path all consult;
every mutation happens under one lock and signals a per-store
condition so long-polling clients wake immediately on state changes.

Dedup bookkeeping lives here too: the store indexes *active* (queued
or running) and *completed* jobs by their request key, so an identical
submission attaches to the in-flight execution or is answered from the
finished one instead of simulating again.
"""

from __future__ import annotations

import enum
import threading
import time
import uuid
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from repro.errors import ServiceError
from repro.service.api import ServiceRequest

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.harness.runner import RunResult

__all__ = ["JobState", "ServiceJob", "JobStore", "result_row"]


class JobState(enum.Enum):
    """Lifecycle states of a service job."""

    QUEUED = "queued"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    CANCELLED = "cancelled"

    @property
    def terminal(self) -> bool:
        return self in (JobState.DONE, JobState.FAILED, JobState.CANCELLED)


def result_row(result: "RunResult") -> dict[str, Any]:
    """The JSON row the API returns for one simulation result."""
    return {
        "workload": result.workload,
        "category": result.category,
        "system": result.system,
        "ipc": result.ipc,
        "mpki": result.mpki,
        "instructions": result.instructions,
        "cycles": result.cycles,
        "mispredictions": result.mispredictions,
    }


@dataclass
class ServiceJob:
    """One accepted request and everything that happened to it."""

    job_id: str
    request: ServiceRequest
    client: str
    state: JobState = JobState.QUEUED
    submitted_at: float = field(default_factory=time.time)
    started_at: float | None = None
    finished_at: float | None = None
    results: "list[RunResult] | None" = None
    error: str | None = None
    #: Set by cancel; the worker checks it between simulation jobs.
    cancel_requested: bool = False
    #: How many of the request's jobs the result cache answered.
    cache_hits: int = 0
    #: How many were actually dispatched to an executor.
    sim_runs: int = 0

    def snapshot(self, include_results: bool = False) -> dict[str, Any]:
        """JSON-able status view (optionally with result rows)."""
        body: dict[str, Any] = {
            "id": self.job_id,
            "kind": self.request.kind,
            "state": self.state.value,
            "request": self.request.payload,
            "jobs": len(self.request.jobs),
            "cache_hits": self.cache_hits,
            "sim_runs": self.sim_runs,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "error": self.error,
        }
        if include_results and self.results is not None:
            body["results"] = [result_row(r) for r in self.results]
        return body


class JobStore:
    """Thread-safe registry of every job the server has seen.

    ``max_completed`` bounds memory: terminal jobs beyond the limit are
    evicted oldest-first (their results live on in the persistent
    result cache, so an evicted-then-resubmitted query still costs zero
    simulations).
    """

    def __init__(self, max_completed: int = 512) -> None:
        # Reentrant: holders of ``changed`` may call query methods.
        self._lock = threading.RLock()
        #: Signalled on every state change; long-polls wait on it.
        self.changed = threading.Condition(self._lock)
        self._jobs: dict[str, ServiceJob] = {}
        self._active_by_key: dict[str, str] = {}
        self._completed_by_key: dict[str, str] = {}
        self._completed_order: list[str] = []
        self._max_completed = max_completed

    # ------------------------------------------------------------- #
    # intake / dedup

    def submit(self, request: ServiceRequest, client: str) -> tuple[ServiceJob, str]:
        """Register a request, deduplicating by request key.

        Returns ``(job, disposition)`` where disposition is ``"new"``
        (caller must enqueue the job), ``"inflight"`` (an identical job
        is already queued or running), or ``"completed"`` (an identical
        job already finished successfully).
        """
        with self._lock:
            active_id = self._active_by_key.get(request.key)
            if active_id is not None:
                return self._jobs[active_id], "inflight"
            done_id = self._completed_by_key.get(request.key)
            if done_id is not None:
                done = self._jobs[done_id]
                if done.state is JobState.DONE:
                    return done, "completed"
            job = ServiceJob(
                job_id=uuid.uuid4().hex[:16], request=request, client=client
            )
            self._jobs[job.job_id] = job
            self._active_by_key[request.key] = job.job_id
            self.changed.notify_all()
            return job, "new"

    # ------------------------------------------------------------- #
    # lookups

    def get(self, job_id: str) -> ServiceJob | None:
        with self._lock:
            return self._jobs.get(job_id)

    def require(self, job_id: str) -> ServiceJob:
        job = self.get(job_id)
        if job is None:
            raise ServiceError(f"unknown job id {job_id!r}")
        return job

    def list_jobs(self) -> list[ServiceJob]:
        """Jobs in submission order (oldest first)."""
        with self._lock:
            return sorted(self._jobs.values(), key=lambda j: j.submitted_at)

    def counts(self) -> dict[str, int]:
        """Jobs per state (for /healthz and the queue-depth gauge)."""
        with self._lock:
            tally = {state.value: 0 for state in JobState}
            for job in self._jobs.values():
                tally[job.state.value] += 1
            return tally

    def queued_jobs(self) -> list[ServiceJob]:
        with self._lock:
            return [
                job for job in self._jobs.values() if job.state is JobState.QUEUED
            ]

    # ------------------------------------------------------------- #
    # transitions (worker / cancel / shutdown paths)

    def mark_running(self, job_id: str) -> ServiceJob:
        with self._lock:
            job = self._jobs[job_id]
            job.state = JobState.RUNNING
            job.started_at = time.time()
            self.changed.notify_all()
            return job

    def finish(
        self,
        job_id: str,
        state: JobState,
        results: "list[RunResult] | None" = None,
        error: str | None = None,
    ) -> ServiceJob:
        """Move a job to a terminal state and reindex dedup maps."""
        if not state.terminal:
            raise ServiceError(f"finish() needs a terminal state, got {state.value}")
        with self._lock:
            job = self._jobs[job_id]
            job.state = state
            job.finished_at = time.time()
            job.results = results
            job.error = error
            key = job.request.key
            if self._active_by_key.get(key) == job_id:
                del self._active_by_key[key]
            if state is JobState.DONE:
                self._completed_by_key[key] = job_id
            self._completed_order.append(job_id)
            self._evict_locked()
            self.changed.notify_all()
            return job

    def request_cancel(self, job_id: str) -> ServiceJob:
        """Cancel a queued job now; flag a running one for the worker.

        Cancelling an already-terminal job is an error (409 upstream).
        """
        with self._lock:
            job = self._jobs.get(job_id)
            if job is None:
                raise ServiceError(f"unknown job id {job_id!r}")
            if job.state.terminal:
                raise ServiceError(
                    f"job {job_id} already {job.state.value}; cannot cancel"
                )
            job.cancel_requested = True
            self.changed.notify_all()
            return job

    # ------------------------------------------------------------- #
    # waiting

    def wait(self, job_id: str, timeout: float) -> ServiceJob:
        """Block until the job reaches a terminal state or timeout."""
        deadline = time.monotonic() + timeout
        with self._lock:
            while True:
                job = self._jobs.get(job_id)
                if job is None:
                    raise ServiceError(f"unknown job id {job_id!r}")
                remaining = deadline - time.monotonic()
                if job.state.terminal or remaining <= 0:
                    return job
                self.changed.wait(remaining)

    # ------------------------------------------------------------- #
    # internals

    def _evict_locked(self) -> None:
        while len(self._completed_order) > self._max_completed:
            victim_id = self._completed_order.pop(0)
            victim = self._jobs.pop(victim_id, None)
            if victim is not None:
                key = victim.request.key
                if self._completed_by_key.get(key) == victim_id:
                    del self._completed_by_key[key]
