"""Simulation-as-a-service: the ``repro serve`` HTTP job server.

Public surface:

* :func:`~repro.service.api.parse_request` /
  :class:`~repro.service.api.ServiceRequest` — JSON submissions
  validated into scheduled simulation jobs with manifest-hash dedup
  keys;
* :class:`~repro.service.jobs.JobStore` /
  :class:`~repro.service.jobs.JobState` — thread-safe job lifecycle;
* :class:`~repro.service.limits.RateLimiter` /
  :class:`~repro.service.limits.QueueGovernor` — admission control;
* :class:`~repro.service.server.ReproService` /
  :class:`~repro.service.server.ServiceConfig` /
  :func:`~repro.service.server.serve` — the server itself.

See ``docs/service.md`` for the HTTP API reference.
"""

from __future__ import annotations

from repro.service.api import (
    MAX_BRANCHES,
    MAX_JOBS_PER_REQUEST,
    ServiceRequest,
    parse_request,
)
from repro.service.jobs import JobState, JobStore, ServiceJob, result_row
from repro.service.limits import Decision, QueueGovernor, RateLimiter
from repro.service.server import ReproService, ServiceConfig, serve

__all__ = [
    "MAX_BRANCHES",
    "MAX_JOBS_PER_REQUEST",
    "ServiceRequest",
    "parse_request",
    "JobState",
    "JobStore",
    "ServiceJob",
    "result_row",
    "Decision",
    "QueueGovernor",
    "RateLimiter",
    "ReproService",
    "ServiceConfig",
    "serve",
]
