"""Run provenance: what exactly produced a persisted result.

A manifest answers "can I trust / reproduce this number?" without
re-running anything: stable content hashes of the system + pipeline
configuration and of the workload recipe, the trace length, the library
version, and the environment knobs that change behaviour (every
``REPRO_*`` variable).  Hashes are SHA-256 over canonical JSON
(sorted keys, no whitespace), so they are stable across processes,
platforms, and ``PYTHONHASHSEED``.
"""

from __future__ import annotations

import hashlib
import json
import os
import platform
import sys
from dataclasses import asdict, dataclass, field, fields, is_dataclass
from typing import TYPE_CHECKING, Any

import repro

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.harness.sampling import SamplingConfig
    from repro.harness.systems import SystemConfig
    from repro.pipeline.config import PipelineConfig
    from repro.workloads.spec import WorkloadSpec

__all__ = ["RunManifest", "build_manifest", "stable_hash"]

#: Bump when the hashed payload layout changes.
_MANIFEST_VERSION = 1


def _canonical(payload: Any) -> Any:
    """Reduce dataclasses to plain JSON-able structures."""
    if is_dataclass(payload) and not isinstance(payload, type):
        return asdict(payload)
    return payload


def stable_hash(payload: Any) -> str:
    """Short process-stable content hash (first 16 hex of SHA-256)."""
    canonical = json.dumps(
        _canonical(payload), sort_keys=True, separators=(",", ":"), default=str
    )
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]


@dataclass(frozen=True)
class RunManifest:
    """Provenance attached to every :class:`~repro.harness.runner.RunResult`."""

    config_hash: str
    workload_hash: str
    workload: str
    system: str
    branches: int
    repro_version: str
    manifest_version: int = _MANIFEST_VERSION
    scale: str | None = None
    python: str = ""
    platform: str = ""
    env: dict[str, str] = field(default_factory=dict)
    #: Sampled-simulation parameters, present only when sampling is
    #: enabled — exact runs keep their historical manifest shape (and
    #: therefore their result-cache keys).
    sampling: dict[str, Any] | None = None
    #: Evaluation engine, present only for non-default engines (the
    #: batch sweep kernel records ``"batch"``) — exact scalar runs keep
    #: their historical manifest shape and result-cache keys.
    engine: str | None = None
    #: Filled in by the runner after the simulation finishes.
    wall_s: float | None = None

    def as_dict(self) -> dict[str, Any]:
        payload = asdict(self)
        if payload.get("sampling") is None:
            del payload["sampling"]
        if payload.get("engine") is None:
            del payload["engine"]
        return payload

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "RunManifest":
        names = {f.name for f in fields(cls)}
        return cls(**{k: v for k, v in payload.items() if k in names})


def _captured_env() -> dict[str, str]:
    return {
        key: value
        for key, value in sorted(os.environ.items())
        if key.startswith("REPRO_")
    }


def build_manifest(
    spec: "WorkloadSpec",
    system: "SystemConfig",
    n_branches: int,
    pipeline: "PipelineConfig",
    scale: str | None = None,
    sampling: "SamplingConfig | None" = None,
    engine: str | None = None,
) -> RunManifest:
    """Assemble the provenance record for one (workload, system) run.

    An *enabled* sampling configuration is folded into ``config_hash``
    (a sampled estimate must never alias an exact result, or a cache
    hit could silently swap one for the other) and recorded verbatim in
    the ``sampling`` field.  Sampling off is indistinguishable from the
    pre-sampling manifest — same payload, same hash.  A non-default
    ``engine`` (the batch kernel's functional results carry no timing)
    is folded in the same way, for the same reason: a batch result must
    never be served from the cache for an exact-timing request.
    """
    config_payload: dict[str, Any] = {
        "system": asdict(system),
        "pipeline": asdict(pipeline),
    }
    sampling_payload: dict[str, Any] | None = None
    if sampling is not None and sampling.enabled:
        sampling_payload = sampling.to_payload()
        config_payload["sampling"] = sampling_payload
    if engine is not None:
        config_payload["engine"] = engine
    # Specs may carry a content-addressed identity hook (imported
    # traces hash their normalised payload, not their local path);
    # synthetic specs keep the historical asdict() payload and hashes.
    payload_fn = getattr(spec, "workload_hash_payload", None)
    spec_payload: Any = payload_fn() if callable(payload_fn) else asdict(spec)
    workload_payload = {
        "spec": spec_payload,
        "branches": n_branches,
    }
    return RunManifest(
        config_hash=stable_hash(config_payload),
        workload_hash=stable_hash(workload_payload),
        workload=spec.name,
        system=system.name,
        branches=n_branches,
        repro_version=repro.__version__,
        scale=scale,
        python=platform.python_version(),
        platform=f"{sys.platform}-{platform.machine()}",
        env=_captured_env(),
        sampling=sampling_payload,
        engine=engine,
    )
