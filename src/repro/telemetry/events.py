"""Typed trace records streamed to the JSONL sink.

Every record is a slotted dataclass with a class-level ``ev`` tag; the
wire format is one JSON object per line, ``{"ev": <tag>, ...fields}``.
Cycle fields are simulated cycles, not wall time — the trace is a
timeline of the simulated core.

The schema (documented in ``docs/observability.md``):

========= ===========================================================
``ev``     meaning
========= ===========================================================
run_start  one per simulated run; carries the run manifest
predict    one per fetched conditional branch (correct + wrong path)
episode    one per misprediction episode (resolve → flush → resteer)
repair     one per repair-scheme walk
retire     one per retired conditional branch
run_end    final stats + a full metrics-registry snapshot
========= ===========================================================
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, fields
from typing import Any

from repro.errors import TelemetryError

__all__ = [
    "TraceEvent",
    "RunStartEvent",
    "PredictEvent",
    "EpisodeEvent",
    "RepairWalkEvent",
    "RetireEvent",
    "RunEndEvent",
    "event_from_dict",
]


@dataclass(slots=True)
class TraceEvent:
    """Base class: serialization shared by every record type."""

    ev = "event"

    def as_dict(self) -> dict[str, Any]:
        payload = asdict(self)
        payload["ev"] = self.ev
        return payload


@dataclass(slots=True)
class RunStartEvent(TraceEvent):
    """Start-of-run marker carrying provenance."""

    ev = "run_start"
    workload: str
    system: str
    branches: int
    manifest: dict[str, Any]


@dataclass(slots=True)
class PredictEvent(TraceEvent):
    """One fetch-stage prediction of a conditional branch."""

    ev = "predict"
    cycle: int
    pc: int
    predicted: bool
    actual: bool
    wrong_path: bool


@dataclass(slots=True)
class EpisodeEvent(TraceEvent):
    """One misprediction episode: fetch → resolve → flush → resteer."""

    ev = "episode"
    pc: int
    fetch_cycle: int
    resolve_cycle: int
    wrong_path_branches: int
    wrong_path_mispredicts: int
    flushed: int


@dataclass(slots=True)
class RepairWalkEvent(TraceEvent):
    """One repair-scheme activation after a misprediction."""

    ev = "repair"
    cycle: int
    scheme: str
    entries: int
    writes: int
    busy: int


@dataclass(slots=True)
class RetireEvent(TraceEvent):
    """One conditional branch leaving the ROB."""

    ev = "retire"
    cycle: int
    pc: int


@dataclass(slots=True)
class RunEndEvent(TraceEvent):
    """End-of-run marker: headline stats + metrics snapshot."""

    ev = "run_end"
    cycles: int
    instructions: int
    mispredictions: int
    ipc: float
    mpki: float
    wall_s: float
    metrics: dict[str, Any]


_EVENT_TYPES: dict[str, type[TraceEvent]] = {
    cls.ev: cls
    for cls in (
        RunStartEvent,
        PredictEvent,
        EpisodeEvent,
        RepairWalkEvent,
        RetireEvent,
        RunEndEvent,
    )
}


def event_from_dict(payload: dict[str, Any]) -> TraceEvent:
    """Rebuild the typed record for one parsed JSONL line."""
    tag = payload.get("ev")
    cls = _EVENT_TYPES.get(tag)  # type: ignore[arg-type]
    if cls is None:
        raise TelemetryError(f"unknown trace event type {tag!r}")
    names = {f.name for f in fields(cls)}
    try:
        return cls(**{k: v for k, v in payload.items() if k in names})
    except TypeError as exc:
        raise TelemetryError(f"malformed {tag!r} event: {exc}") from exc
