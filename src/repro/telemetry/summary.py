"""Trace summarizer: turn a JSONL telemetry trace into a drilldown.

This is the consumer behind ``repro telemetry out.jsonl``: it reads a
trace produced with ``--telemetry``, aggregates the per-event records,
and renders episode counts, the repair-walk histogram, and the
per-stage cycle breakdown — the "where did the cycles go" table the
paper's figures are really about.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.harness.report import format_table
from repro.telemetry.registry import Histogram
from repro.telemetry.sink import read_events

__all__ = ["TraceSummary", "summarize_trace"]

_WALK_BUCKETS = (0, 1, 2, 4, 8, 16, 32, 64)

#: Counter → human label for the cycle breakdown, in display order.
_STAGE_COUNTERS = (
    ("pipeline.fetch_cycles", "fetch (incl. wrong path)"),
    ("pipeline.btb_bubble_cycles", "BTB-miss bubbles"),
    ("pipeline.rob_stall_cycles", "ROB-full stalls"),
    ("pipeline.wrong_path_cycles", "wrong-path episodes"),
    ("pipeline.resteer_cycles", "resteer redirects"),
)


@dataclass
class TraceSummary:
    """Aggregates of one JSONL trace (possibly several runs)."""

    path: str
    runs: list[dict[str, Any]] = field(default_factory=list)
    event_counts: dict[str, int] = field(default_factory=dict)
    episodes: int = 0
    episode_wp_branches: int = 0
    episode_wp_mispredicts: int = 0
    episode_flushed: int = 0
    episode_cycles: int = 0
    walk_entries: Histogram = field(
        default_factory=lambda: Histogram("repair.walk_entries", _WALK_BUCKETS)
    )
    repair_writes: int = 0
    repair_busy: int = 0
    repair_schemes: dict[str, int] = field(default_factory=dict)
    #: Metrics snapshot of the last completed run (from ``run_end``).
    metrics: dict[str, Any] = field(default_factory=dict)
    truncated: bool = False

    @property
    def mean_wp_branches(self) -> float:
        return self.episode_wp_branches / self.episodes if self.episodes else 0.0

    @property
    def mean_episode_cycles(self) -> float:
        return self.episode_cycles / self.episodes if self.episodes else 0.0

    # ------------------------------------------------------------- #

    def render(self) -> str:
        sections = [self._render_runs(), self._render_episodes()]
        if self.walk_entries.count:
            sections.append(self._render_walks())
        breakdown = self._render_stages()
        if breakdown:
            sections.append(breakdown)
        if self.truncated:
            sections.append(
                "note: trace ends mid-record (truncated write); "
                "aggregates cover the readable prefix"
            )
        return "\n\n".join(s for s in sections if s)

    def _render_runs(self) -> str:
        if not self.runs:
            return f"{self.path}: no complete runs recorded"
        rows = []
        for run in self.runs:
            end = run.get("end", {})
            rows.append(
                (
                    run.get("workload", "?"),
                    run.get("system", "?"),
                    run.get("branches", "?"),
                    f"{end.get('ipc', 0.0):.3f}" if end else "-",
                    f"{end.get('mpki', 0.0):.2f}" if end else "-",
                    f"{end.get('wall_s', 0.0):.2f}s" if end else "unfinished",
                )
            )
        counts = ", ".join(
            f"{n} {ev}" for ev, n in sorted(self.event_counts.items())
        )
        return (
            format_table(
                ["workload", "system", "branches", "IPC", "MPKI", "wall"],
                rows,
                title=f"trace {self.path}",
            )
            + f"\nevents: {counts}"
        )

    def _render_episodes(self) -> str:
        lines = [
            f"misprediction episodes: {self.episodes}",
            f"  wrong-path branches/episode: {self.mean_wp_branches:.1f} "
            f"(mispredicted on the wrong path: {self.episode_wp_mispredicts})",
            f"  flushed in-flight branches: {self.episode_flushed}",
            f"  mean fetch→resolve span: {self.mean_episode_cycles:.1f} cycles",
        ]
        return "\n".join(lines)

    def _render_walks(self) -> str:
        hist = self.walk_entries
        rows = [(f"<= {label}", count) for label, count in hist.bucket_pairs()]
        schemes = ", ".join(
            f"{name} x{n}" for name, n in sorted(self.repair_schemes.items())
        )
        return (
            format_table(
                ["walk entries", "repairs"],
                rows,
                title=f"repair walks ({schemes or 'none'})",
            )
            + f"\nmean entries/walk {hist.mean:.1f}, max {int(hist.max)}; "
            f"total BHT writes {self.repair_writes}, "
            f"busy cycles {self.repair_busy}"
        )

    def _render_stages(self) -> str:
        counters = self.metrics.get("counters", {})
        total = 0
        for run in self.runs:
            total = max(total, run.get("end", {}).get("cycles", 0))
        rows = []
        for key, label in _STAGE_COUNTERS:
            value = counters.get(key)
            if value is None:
                continue
            share = f"{value / total:.1%}" if total else "-"
            rows.append((label, value, share))
        if not rows:
            return ""
        title = "cycle breakdown — stages overlap, shares need not sum to 100%"
        if total:
            title += f" ({total} total cycles, last run)"
        return format_table(["stage", "cycles", "of total"], rows, title=title)


def summarize_trace(path: str | Path) -> TraceSummary:
    """Aggregate one JSONL trace into a :class:`TraceSummary`."""
    summary = TraceSummary(path=str(path))
    current: dict[str, Any] | None = None
    for payload in read_events(path):
        ev = payload.get("ev", "?")
        summary.event_counts[ev] = summary.event_counts.get(ev, 0) + 1
        if ev == "run_start":
            current = {
                "workload": payload.get("workload"),
                "system": payload.get("system"),
                "branches": payload.get("branches"),
                "manifest": payload.get("manifest", {}),
            }
            summary.runs.append(current)
        elif ev == "run_end":
            if current is None:
                current = {}
                summary.runs.append(current)
            current["end"] = payload
            summary.metrics = payload.get("metrics", {})
            current = None
        elif ev == "episode":
            summary.episodes += 1
            summary.episode_wp_branches += payload.get("wrong_path_branches", 0)
            summary.episode_wp_mispredicts += payload.get(
                "wrong_path_mispredicts", 0
            )
            summary.episode_flushed += payload.get("flushed", 0)
            summary.episode_cycles += max(
                0, payload.get("resolve_cycle", 0) - payload.get("fetch_cycle", 0)
            )
        elif ev == "repair":
            summary.walk_entries.observe(payload.get("entries", 0))
            summary.repair_writes += payload.get("writes", 0)
            summary.repair_busy += payload.get("busy", 0)
            scheme = payload.get("scheme", "?")
            summary.repair_schemes[scheme] = (
                summary.repair_schemes.get(scheme, 0) + 1
            )
    # read_events stops silently on a truncated tail; detect it by
    # comparing what we consumed against the raw line count.
    raw_lines = [
        line
        for line in Path(path).read_text(encoding="utf-8").splitlines()
        if line.strip()
    ]
    summary.truncated = sum(summary.event_counts.values()) < len(raw_lines)
    return summary
