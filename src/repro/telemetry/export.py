"""Metric exporters: JSON summary and Prometheus text exposition.

Both exporters accept either a live :class:`MetricsRegistry` or a
snapshot dict previously produced by ``registry.snapshot()`` (which is
what a trace's ``run_end`` record carries), so traces can be re-exported
without re-running anything.
"""

from __future__ import annotations

import json
from typing import Any

from repro.telemetry.registry import MetricsRegistry

__all__ = ["json_summary", "prometheus_text"]


def _as_snapshot(source: MetricsRegistry | dict[str, Any]) -> dict[str, Any]:
    if isinstance(source, MetricsRegistry):
        return source.snapshot()
    return source


def json_summary(
    source: MetricsRegistry | dict[str, Any], indent: int | None = 1
) -> str:
    """The snapshot as a stable, sorted JSON document."""
    return json.dumps(_as_snapshot(source), indent=indent, sort_keys=True)


def _prom_name(name: str, prefix: str) -> str:
    return prefix + name.replace(".", "_").replace("-", "_")


def prometheus_text(
    source: MetricsRegistry | dict[str, Any], prefix: str = "repro_"
) -> str:
    """Prometheus text exposition format (counters, gauges, histograms).

    Histogram buckets are emitted cumulatively with ``le`` labels, the
    convention every Prometheus scraper expects; timers become
    ``_seconds_sum`` / ``_seconds_count`` summaries.
    """
    snap = _as_snapshot(source)
    lines: list[str] = []
    for name, value in snap.get("counters", {}).items():
        metric = _prom_name(name, prefix)
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric}_total {value}")
    for name, value in snap.get("gauges", {}).items():
        metric = _prom_name(name, prefix)
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric} {value}")
    for name, hist in snap.get("histograms", {}).items():
        metric = _prom_name(name, prefix)
        lines.append(f"# TYPE {metric} histogram")
        cumulative = 0
        for bound, count in zip(hist["bounds"], hist["counts"]):
            cumulative += count
            label = int(bound) if float(bound).is_integer() else bound
            lines.append(f'{metric}_bucket{{le="{label}"}} {cumulative}')
        cumulative += hist["counts"][-1]
        lines.append(f'{metric}_bucket{{le="+Inf"}} {cumulative}')
        lines.append(f"{metric}_sum {hist['sum']}")
        lines.append(f"{metric}_count {hist['count']}")
    for name, timer in snap.get("timers", {}).items():
        metric = _prom_name(name, prefix) + "_seconds"
        lines.append(f"# TYPE {metric} summary")
        lines.append(f"{metric}_sum {timer['sum']}")
        lines.append(f"{metric}_count {timer['count']}")
    return "\n".join(lines) + ("\n" if lines else "")
