"""repro.telemetry: metrics, structured tracing, and run provenance.

The subsystem has one global handle, :data:`TELEMETRY`, shared by every
instrumentation site.  Hot paths pay a single attribute check when
telemetry is off (the default)::

    from repro.telemetry import TELEMETRY

    tel = TELEMETRY
    if tel.enabled:                       # one bool attribute read
        tel.registry.counter("obq.overflows").inc()
    if tel.tracing:                       # sink attached, too
        tel.emit(RepairWalkEvent(...))

Enablement comes from the ``REPRO_TELEMETRY`` environment variable
(``off`` by default; anything but ``off``/``0``/``false``/``none``
enables metrics) or programmatically via :meth:`Telemetry.enable` —
which is what ``repro run --telemetry out.jsonl`` does.  While
disabled, the handle's registry is a :class:`NullRegistry`, so even
un-guarded instrument calls are cheap no-ops and ``SimStats`` outputs
are bit-identical to an uninstrumented build.

Tracing (the JSONL event stream) is a second, opt-in level on top of
metrics: attach a sink with :meth:`Telemetry.attach_sink`.  Worker
processes spawned by the parallel runner inherit enablement through the
environment variable but not the parent's sink — traces are a
single-process feature (see docs/observability.md).
"""

from __future__ import annotations

import os
from time import perf_counter
from typing import TYPE_CHECKING

from repro.telemetry.events import (
    EpisodeEvent,
    PredictEvent,
    RepairWalkEvent,
    RetireEvent,
    RunEndEvent,
    RunStartEvent,
    TraceEvent,
)
from repro.telemetry.registry import MetricsRegistry, NullRegistry
from repro.telemetry.sink import EventSink, JsonlSink, NullSink

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.pipeline.stats import SimStats

__all__ = [
    "TELEMETRY",
    "Telemetry",
    "telemetry_enabled_by_env",
    "EventSink",
    "JsonlSink",
    "NullSink",
    "MetricsRegistry",
    "NullRegistry",
    "TraceEvent",
    "RunStartEvent",
    "PredictEvent",
    "EpisodeEvent",
    "RepairWalkEvent",
    "RetireEvent",
    "RunEndEvent",
]

_ENV_VAR = "REPRO_TELEMETRY"
_OFF_VALUES = ("", "off", "0", "false", "none")


def telemetry_enabled_by_env() -> bool:
    """Whether ``REPRO_TELEMETRY`` asks for metrics collection."""
    return os.environ.get(_ENV_VAR, "off").lower() not in _OFF_VALUES


class Telemetry:
    """Process-wide telemetry state: registry + optional event sink."""

    __slots__ = ("enabled", "tracing", "registry", "sink", "_run_t0")

    def __init__(self, enabled: bool = False) -> None:
        self.enabled = enabled
        self.tracing = False
        self.registry: MetricsRegistry = (
            MetricsRegistry() if enabled else NullRegistry()
        )
        self.sink: EventSink = NullSink()
        self._run_t0 = 0.0

    # ------------------------------------------------------------- #
    # state transitions

    def enable(self) -> None:
        """Turn metrics collection on (idempotent)."""
        if not self.enabled:
            self.enabled = True
            self.registry = MetricsRegistry()
            self.tracing = not isinstance(self.sink, NullSink)

    def disable(self) -> None:
        """Turn everything off and drop collected state."""
        self.enabled = False
        self.tracing = False
        self.registry = NullRegistry()

    def attach_sink(self, sink: EventSink) -> None:
        """Stream events to ``sink``; implies :meth:`enable`."""
        self.sink = sink
        self.enable()
        self.tracing = True

    def detach_sink(self) -> EventSink:
        """Stop tracing; returns the sink (caller closes it)."""
        sink, self.sink = self.sink, NullSink()
        self.tracing = False
        return sink

    # ------------------------------------------------------------- #
    # emission

    def emit(self, event: TraceEvent) -> None:
        """Send one typed record to the sink (call under ``tracing``)."""
        self.sink.emit(event)

    # ------------------------------------------------------------- #
    # run lifecycle (driven by harness.runner)

    def begin_run(
        self, workload: str, system: str, branches: int, manifest: dict
    ) -> None:
        """Reset per-run metrics and mark the trace's run boundary."""
        self.registry.reset()
        self._run_t0 = perf_counter()
        if self.tracing:
            self.emit(
                RunStartEvent(
                    workload=workload,
                    system=system,
                    branches=branches,
                    manifest=manifest,
                )
            )

    def end_run(self, stats: "SimStats") -> float:
        """Close the run: stamp wall time, snapshot metrics, flush.

        Returns the run's wall-clock duration in seconds.
        """
        wall = perf_counter() - self._run_t0
        self.registry.timer("run.wall").observe(wall)
        if self.tracing:
            self.emit(
                RunEndEvent(
                    cycles=stats.cycles,
                    instructions=stats.instructions,
                    mispredictions=stats.mispredictions,
                    ipc=stats.ipc,
                    mpki=stats.mpki,
                    wall_s=wall,
                    metrics=self.registry.snapshot(),
                )
            )
            self.sink.flush()
        return wall


#: The process-wide handle every instrumentation site imports.
TELEMETRY = Telemetry(enabled=telemetry_enabled_by_env())
