"""Metrics registry: counters, gauges, histograms, timers.

Instruments are looked up by dotted name (``"repair.walk_entries"``) and
created on first use, so instrumentation sites never need registration
boilerplate.  Two registry flavours exist:

* :class:`MetricsRegistry` — the real thing, installed while telemetry
  is enabled;
* :class:`NullRegistry` — returns shared no-op instruments, installed
  while telemetry is disabled so that un-guarded instrumentation costs a
  dictionary-free method call and nothing else.  Hot paths should still
  guard on ``TELEMETRY.enabled`` (one attribute check) and skip even
  that.

Histograms use *fixed* bucket boundaries chosen at the call site: the
value ``v`` lands in the first bucket whose upper bound satisfies
``v <= bound``, with one implicit overflow bucket past the last bound.
Fixed bounds keep observation O(log buckets), make snapshots mergeable
across runs, and map directly onto the Prometheus exposition format.
"""

from __future__ import annotations

from bisect import bisect_left
from time import perf_counter
from typing import Any, Sequence

from repro.errors import TelemetryError

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "Timer",
    "MetricsRegistry",
    "NullRegistry",
    "DEFAULT_BUCKETS",
]

#: Power-of-two bounds covering the structures this repo sizes (OBQ
#: capacities, walk lengths, repair busy windows).
DEFAULT_BUCKETS: tuple[float, ...] = (1, 2, 4, 8, 16, 32, 64, 128, 256)


class Counter:
    """Monotonically increasing count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, n: int = 1) -> None:
        self.value += n


class Gauge:
    """Last-written value (occupancy, level, ratio)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value


class Histogram:
    """Fixed-boundary histogram with sum/count/max sidecars."""

    __slots__ = ("name", "bounds", "counts", "sum", "count", "max")

    def __init__(self, name: str, bounds: Sequence[float] = DEFAULT_BUCKETS) -> None:
        if not bounds or list(bounds) != sorted(bounds):
            raise TelemetryError(
                f"histogram {name!r} needs ascending bucket bounds, got {bounds!r}"
            )
        self.name = name
        self.bounds = tuple(bounds)
        #: One slot per bound plus the overflow bucket.
        self.counts = [0] * (len(self.bounds) + 1)
        self.sum = 0.0
        self.count = 0
        self.max = 0.0

    def observe(self, value: float) -> None:
        self.counts[bisect_left(self.bounds, value)] += 1
        self.sum += value
        self.count += 1
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def bucket_pairs(self) -> list[tuple[str, int]]:
        """(upper-bound label, count) pairs, overflow labelled ``+Inf``."""
        labels = [_bound_label(b) for b in self.bounds] + ["+Inf"]
        return list(zip(labels, self.counts))


def _bound_label(bound: float) -> str:
    return str(int(bound)) if float(bound).is_integer() else str(bound)


class Timer:
    """Wall-clock accumulator; use as a context manager or observe()."""

    __slots__ = ("name", "sum", "count", "max", "_t0")

    def __init__(self, name: str) -> None:
        self.name = name
        self.sum = 0.0
        self.count = 0
        self.max = 0.0
        self._t0 = 0.0

    def observe(self, seconds: float) -> None:
        self.sum += seconds
        self.count += 1
        if seconds > self.max:
            self.max = seconds

    def __enter__(self) -> "Timer":
        self._t0 = perf_counter()
        return self

    def __exit__(self, *exc: object) -> None:
        self.observe(perf_counter() - self._t0)

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0


class MetricsRegistry:
    """Name → instrument map with get-or-create semantics."""

    def __init__(self) -> None:
        self._instruments: dict[str, Any] = {}

    def _get(self, name: str, kind: type, *args: Any) -> Any:
        instrument = self._instruments.get(name)
        if instrument is None:
            instrument = kind(name, *args)
            self._instruments[name] = instrument
        elif type(instrument) is not kind:
            raise TelemetryError(
                f"metric {name!r} already registered as "
                f"{type(instrument).__name__}, requested {kind.__name__}"
            )
        return instrument

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(
        self, name: str, bounds: Sequence[float] = DEFAULT_BUCKETS
    ) -> Histogram:
        return self._get(name, Histogram, bounds)

    def timer(self, name: str) -> Timer:
        return self._get(name, Timer)

    def reset(self) -> None:
        """Forget every instrument (run boundaries)."""
        self._instruments.clear()

    def __len__(self) -> int:
        return len(self._instruments)

    def snapshot(self) -> dict[str, Any]:
        """Serializable view of every instrument's current value."""
        counters: dict[str, int] = {}
        gauges: dict[str, float] = {}
        histograms: dict[str, Any] = {}
        timers: dict[str, Any] = {}
        for name in sorted(self._instruments):
            inst = self._instruments[name]
            if isinstance(inst, Counter):
                counters[name] = inst.value
            elif isinstance(inst, Gauge):
                gauges[name] = inst.value
            elif isinstance(inst, Histogram):
                histograms[name] = {
                    "bounds": list(inst.bounds),
                    "counts": list(inst.counts),
                    "sum": inst.sum,
                    "count": inst.count,
                    "max": inst.max,
                }
            elif isinstance(inst, Timer):
                timers[name] = {
                    "sum": inst.sum,
                    "count": inst.count,
                    "max": inst.max,
                }
        return {
            "counters": counters,
            "gauges": gauges,
            "histograms": histograms,
            "timers": timers,
        }


class _NullCounter(Counter):
    __slots__ = ()

    def inc(self, n: int = 1) -> None:
        pass


class _NullGauge(Gauge):
    __slots__ = ()

    def set(self, value: float) -> None:
        pass


class _NullHistogram(Histogram):
    __slots__ = ()

    def observe(self, value: float) -> None:
        pass


class _NullTimer(Timer):
    __slots__ = ()

    def observe(self, seconds: float) -> None:
        pass

    def __exit__(self, *exc: object) -> None:
        pass


_NULL_COUNTER = _NullCounter("null")
_NULL_GAUGE = _NullGauge("null")
_NULL_HISTOGRAM = _NullHistogram("null")
_NULL_TIMER = _NullTimer("null")


class NullRegistry(MetricsRegistry):
    """Disabled-mode registry: every lookup returns a shared no-op."""

    def counter(self, name: str) -> Counter:
        return _NULL_COUNTER

    def gauge(self, name: str) -> Gauge:
        return _NULL_GAUGE

    def histogram(
        self, name: str, bounds: Sequence[float] = DEFAULT_BUCKETS
    ) -> Histogram:
        return _NULL_HISTOGRAM

    def timer(self, name: str) -> Timer:
        return _NULL_TIMER
