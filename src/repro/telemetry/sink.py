"""Event sinks: where trace records go.

The JSONL sink buffers serialized lines and writes them in batches so
tracing a multi-million-event run does one syscall per
``buffer_size`` events, not per event.  Failure policy: a sink must
*never* abort a simulation — on a write error it marks itself broken,
keeps counting what it drops, and surfaces the error on ``close()``
via :attr:`JsonlSink.error` rather than by raising mid-run.

``max_events`` bounds trace size for long runs: once reached, further
records are counted as ``truncated`` and dropped (the ``run_end``
record is exempt so summaries still see the final stats).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Iterator

from repro.errors import TelemetryError
from repro.telemetry.events import TraceEvent

__all__ = ["EventSink", "NullSink", "JsonlSink", "read_events"]


class EventSink:
    """Interface: emit typed events, flush buffers, close."""

    def emit(self, event: TraceEvent) -> None:
        raise NotImplementedError

    def flush(self) -> None:
        pass

    def close(self) -> None:
        pass

    def __enter__(self) -> "EventSink":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


class NullSink(EventSink):
    """Swallows everything (used when tracing is off)."""

    def emit(self, event: TraceEvent) -> None:
        pass


class JsonlSink(EventSink):
    """Append-only JSON-lines sink with bounded buffering."""

    def __init__(
        self,
        path: str | Path,
        buffer_size: int = 256,
        max_events: int | None = None,
    ) -> None:
        if buffer_size < 1:
            raise TelemetryError(f"buffer_size must be >= 1, got {buffer_size}")
        self.path = Path(path)
        self.buffer_size = buffer_size
        self.max_events = max_events
        self.emitted = 0
        self.truncated = 0
        self.dropped = 0
        self.error: Exception | None = None
        self._buffer: list[str] = []
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._file = self.path.open("w", encoding="utf-8")
        self._closed = False

    @property
    def broken(self) -> bool:
        return self.error is not None

    def emit(self, event: TraceEvent) -> None:
        if self._closed or self.error is not None:
            self.dropped += 1
            return
        if (
            self.max_events is not None
            and self.emitted >= self.max_events
            and event.ev != "run_end"
        ):
            self.truncated += 1
            return
        self._buffer.append(json.dumps(event.as_dict(), separators=(",", ":")))
        self.emitted += 1
        if len(self._buffer) >= self.buffer_size:
            self.flush()

    def flush(self) -> None:
        if not self._buffer or self._closed or self.error is not None:
            return
        data = "\n".join(self._buffer) + "\n"
        self._buffer.clear()
        try:
            self._file.write(data)
            self._file.flush()
        except (OSError, ValueError) as exc:
            # OSError is the disk failing; ValueError is the file object
            # already closed under us.  Either way: keep the simulation
            # alive and remember what happened.
            self.error = exc
            self.dropped += data.count("\n")
            self.emitted -= data.count("\n")
            try:
                self._file.close()
            except OSError:
                pass

    def close(self) -> None:
        if self._closed:
            return
        self.flush()
        self._closed = True
        if self.error is None:
            try:
                self._file.close()
            except OSError as exc:
                self.error = exc


def read_events(path: str | Path) -> Iterator[dict[str, Any]]:
    """Yield raw event dicts from a JSONL trace.

    A truncated *final* line (killed run, full disk) is tolerated and
    simply ends the stream; malformed content followed by more records
    is real corruption and raises :class:`TelemetryError`.
    """
    try:
        text = Path(path).read_text(encoding="utf-8")
    except OSError as exc:
        raise TelemetryError(f"cannot read trace {path}: {exc}") from exc
    lines = text.splitlines()
    for i, line in enumerate(lines):
        if not line.strip():
            continue
        try:
            payload = json.loads(line)
        except json.JSONDecodeError as exc:
            if any(rest.strip() for rest in lines[i + 1 :]):
                raise TelemetryError(
                    f"corrupt trace {path} at line {i + 1}: {exc}"
                ) from exc
            return  # truncated tail — everything before it is good
        if not isinstance(payload, dict):
            raise TelemetryError(
                f"corrupt trace {path} at line {i + 1}: not an object"
            )
        yield payload
