"""Experiment scaling: smoke / small / full.

The paper simulates 200+ proprietary traces on a compute cluster; a
pure-Python reproduction needs an explicit knob for how much of that to
run.  The scale controls trace length and how many workloads per
category are simulated; it is read from the ``REPRO_SCALE`` environment
variable (default ``small``).

* ``smoke`` — seconds; CI-sized sanity runs.
* ``small`` — minutes; enough statistics for every figure's shape.
* ``full``  — hours; the whole 202-workload suite at long traces.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

from repro.errors import ExperimentError

__all__ = ["Scale", "SCALES", "current_scale", "resolve_scale"]

_ENV_VAR = "REPRO_SCALE"


@dataclass(frozen=True, slots=True)
class Scale:
    """One experiment sizing preset."""

    name: str
    branches_per_workload: int
    #: Workloads simulated per category; None = the full category.
    workloads_per_category: int | None

    def workload_count(self, category_size: int) -> int:
        if self.workloads_per_category is None:
            return category_size
        return min(self.workloads_per_category, category_size)


SCALES: dict[str, Scale] = {
    "smoke": Scale(name="smoke", branches_per_workload=4_000, workloads_per_category=1),
    "small": Scale(name="small", branches_per_workload=15_000, workloads_per_category=2),
    "medium": Scale(name="medium", branches_per_workload=25_000, workloads_per_category=5),
    "full": Scale(name="full", branches_per_workload=100_000, workloads_per_category=None),
}


def resolve_scale(name: str) -> Scale:
    """Look up a scale by name."""
    try:
        return SCALES[name]
    except KeyError:
        raise ExperimentError(
            f"unknown scale {name!r}; choose from {sorted(SCALES)}"
        ) from None


def current_scale(default: str = "small") -> Scale:
    """The scale selected by ``REPRO_SCALE`` (or ``default``)."""
    return resolve_scale(os.environ.get(_ENV_VAR, default))
