"""Persistence of experiment results.

Sweeps at ``full`` scale take hours; persisting their raw per-run
measurements lets analyses (and EXPERIMENTS.md updates) re-aggregate
without re-simulating.  Plain JSON, one document per sweep, with enough
metadata to detect staleness.
"""

from __future__ import annotations

import json
from dataclasses import asdict
from pathlib import Path
from typing import Sequence

import repro
from repro.errors import ExperimentError
from repro.harness.runner import RunResult
from repro.harness.scale import Scale

__all__ = ["save_results", "load_results"]

_FORMAT_VERSION = 1


def save_results(
    path: str | Path,
    results: Sequence[RunResult],
    scale: Scale | None = None,
    label: str = "",
) -> None:
    """Write a sweep's results (plus metadata) as JSON."""
    payload = {
        "format_version": _FORMAT_VERSION,
        "repro_version": repro.__version__,
        "label": label,
        "scale": asdict(scale) if scale is not None else None,
        "results": [
            {
                "workload": r.workload,
                "category": r.category,
                "system": r.system,
                "ipc": r.ipc,
                "mpki": r.mpki,
                "instructions": r.instructions,
                "cycles": r.cycles,
                "mispredictions": r.mispredictions,
                "extra": r.extra,
                "manifest": r.manifest,
            }
            for r in results
        ],
    }
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    tmp = target.with_suffix(target.suffix + ".tmp")
    tmp.write_text(json.dumps(payload, indent=1, sort_keys=True))
    tmp.replace(target)


def load_results(path: str | Path) -> list[RunResult]:
    """Read a sweep previously written by :func:`save_results`.

    Rows come back as :class:`RunResult` dataclasses, never raw dicts.
    Files written before manifests existed load with ``manifest=None``
    (the backward-compatible default); an unknown ``format_version``
    raises :class:`ExperimentError` naming the offending file.
    """
    try:
        payload = json.loads(Path(path).read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise ExperimentError(f"cannot load results from {path}: {exc}") from exc
    version = payload.get("format_version")
    if version != _FORMAT_VERSION:
        raise ExperimentError(
            f"results file {path} has format version {version}, "
            f"expected {_FORMAT_VERSION}"
        )
    try:
        return [
            RunResult(
                workload=row["workload"],
                category=row["category"],
                system=row["system"],
                ipc=row["ipc"],
                mpki=row["mpki"],
                instructions=row["instructions"],
                cycles=row["cycles"],
                mispredictions=row["mispredictions"],
                extra=row.get("extra", {}),
                manifest=row.get("manifest"),
            )
            for row in payload["results"]
        ]
    except (KeyError, TypeError) as exc:
        raise ExperimentError(
            f"results file {path} has a malformed row: {exc!r}"
        ) from exc
