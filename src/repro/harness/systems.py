"""Named predictor-system configurations.

A *system* is everything above the pipeline: the TAGE baseline, the
local predictor sizing, and the repair scheme with its port budget.
Table 3's eleven rows, Figure 10/11's port sweeps, and Figure 14's
sensitivity variants are all expressed as :class:`SystemConfig` values
and materialised by :func:`build_system`.

Configs are declarative and picklable so the parallel runner can ship
them to worker processes; construction happens inside the worker.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.loop_predictor import LoopPredictor, LoopPredictorConfig
from repro.core.ports import RepairPortConfig
from repro.core.repair import (
    BackwardWalkRepair,
    ForwardWalkRepair,
    LimitedPcRepair,
    MultiStageConfig,
    MultiStageUnit,
    NoRepair,
    PerfectRepair,
    RetireUpdate,
    SnapshotRepair,
)
from repro.core.two_level_local import TwoLevelLocalConfig, TwoLevelLocalPredictor
from repro.core.unit import LocalBranchUnit, StandardLocalUnit
from repro.errors import ConfigError
from repro.predictors.base import GlobalPredictor
from repro.predictors.table import (
    TablePredictorSpec,
    maybe_table_predictor,
    parse_table_predictor,
)
from repro.predictors.tage import TageConfig, TagePredictor

__all__ = [
    "SystemConfig",
    "build_system",
    "resolve_system",
    "table_predictor_spec",
    "TABLE3_SYSTEMS",
    "table3_rows",
]

_TAGE_PRESETS = {
    "kb8": TageConfig.kb8,
    "kb9": TageConfig.kb9,
    "kb64": TageConfig.kb64,
}


@dataclass(frozen=True)
class SystemConfig:
    """Declarative description of one predictor system."""

    name: str
    tage: str = "kb8"
    #: BHT/PT entry count of the local predictor; None = baseline only.
    local_entries: int | None = 128
    #: Use the generic two-level local predictor instead of CBPw-Loop.
    generic_local: bool = False
    #: Repair scheme id; None = baseline only.
    scheme: str | None = None
    #: M-N-P checkpoint/port budget for walk/snapshot schemes.
    ports: str = "32-4-2"
    #: OBQ coalescing (forward walk only).
    coalesce: bool = False
    #: Disable forward-walk repair bits (ablation: duplicate writes).
    use_repair_bits: bool = True
    #: M for limited-PC repair.
    repair_count: int = 2
    #: BHT write ports for limited-PC repair.
    limited_write_ports: int = 2
    #: SQ entries for the limited-PC SQ variant; None = carried state.
    limited_sq_entries: int | None = None
    #: Invalidate non-repaired PCs (limited-PC ablation).
    invalidate_others: bool = False
    #: Candidate selection policy (limited-PC ablation).
    policy: str = "utility"
    #: Split the PT between stages (multi-stage variant).
    split_pt: bool = False
    #: Table-indexed predictor spec string (``bimodal:12:2``,
    #: ``gshare:14:12``, ``local2l:10:8:12``).  When set, the system is
    #: this predictor alone — no TAGE, no local unit, no repair scheme —
    #: and becomes eligible for the batch sweep kernel
    #: (:mod:`repro.pipeline.batch`).
    predictor: str | None = None

    @property
    def is_baseline(self) -> bool:
        return self.local_entries is None or self.scheme is None


def _build_scheme(config: SystemConfig) -> RepairScheme:
    ports = RepairPortConfig.parse(config.ports)
    scheme_id = config.scheme
    if scheme_id == "perfect":
        return PerfectRepair()
    if scheme_id == "none":
        return NoRepair()
    if scheme_id == "retire":
        return RetireUpdate()
    if scheme_id == "backward":
        return BackwardWalkRepair(ports)
    if scheme_id == "snapshot":
        return SnapshotRepair(ports)
    if scheme_id == "forward":
        return ForwardWalkRepair(
            ports, coalesce=config.coalesce, use_repair_bits=config.use_repair_bits
        )
    if scheme_id == "limited":
        return LimitedPcRepair(
            repair_count=config.repair_count,
            write_ports=config.limited_write_ports,
            invalidate_others=config.invalidate_others,
            policy=config.policy,  # type: ignore[arg-type]
            sq_entries=config.limited_sq_entries,
        )
    raise ConfigError(f"unknown repair scheme {scheme_id!r}")


def table_predictor_spec(config: SystemConfig) -> TablePredictorSpec | None:
    """The parsed table-predictor spec of a spec-named system, or None.

    This is the batch-eligibility predicate: a system is batchable
    exactly when it is a bare table-indexed predictor (TAGE baselines
    and repair-scheme systems return None and always take the exact
    scalar engine).
    """
    if config.predictor is None:
        return None
    return parse_table_predictor(config.predictor)


def resolve_system(name: str) -> SystemConfig:
    """A system config by Table 3 name or table-predictor spec string.

    Spec strings are canonicalised (``gshare:14`` names the same system
    as ``gshare:14:14``) so equivalent sweeps share manifest hashes and
    result-cache entries.  Raises :class:`ConfigError` for unknown
    names and for malformed specs of a known predictor kind.
    """
    for config in TABLE3_SYSTEMS:
        if config.name == name:
            return config
    spec = maybe_table_predictor(name)
    if spec is not None:
        return SystemConfig(
            name=spec.spec_string,
            predictor=spec.spec_string,
            local_entries=None,
            scheme=None,
        )
    known = ", ".join(cfg.name for cfg in TABLE3_SYSTEMS)
    raise ConfigError(
        f"unknown system {name!r}; choose a Table 3 name ({known}) or a "
        "table-predictor spec like bimodal:12, gshare:14:12, local2l:10:8:12"
    )


def build_system(config: SystemConfig) -> tuple[GlobalPredictor, LocalBranchUnit | None]:
    """Materialise (baseline predictor, local unit) from a config."""
    if config.predictor is not None:
        if config.scheme is not None:
            raise ConfigError(
                "predictor-spec systems are baseline-only; "
                f"scheme must be None, got {config.scheme!r}"
            )
        return parse_table_predictor(config.predictor).build(), None
    try:
        tage_config = _TAGE_PRESETS[config.tage]()
    except KeyError:
        raise ConfigError(
            f"unknown TAGE preset {config.tage!r}; choose from {sorted(_TAGE_PRESETS)}"
        ) from None
    baseline = TagePredictor(tage_config)
    if config.is_baseline:
        return baseline, None

    if config.scheme == "imli":
        from repro.core.imli import ImliUnit

        return baseline, ImliUnit()

    if config.scheme == "multistage":
        assert config.local_entries is not None
        unit: LocalBranchUnit = MultiStageUnit(
            MultiStageConfig(
                entries_per_stage=config.local_entries // 2,
                split_pt=config.split_pt,
                pt_entries=config.local_entries,
                obq_ports=RepairPortConfig.parse(config.ports),
            )
        )
        return baseline, unit

    if config.generic_local:
        local = TwoLevelLocalPredictor(
            TwoLevelLocalConfig(bht_entries=config.local_entries or 128)
        )
    else:
        local = LoopPredictor(LoopPredictorConfig.entries(config.local_entries or 128))
    return baseline, StandardLocalUnit(local, _build_scheme(config))


#: Table 3, in the paper's row order (increasing IPC gain).
TABLE3_SYSTEMS: tuple[SystemConfig, ...] = (
    SystemConfig(name="baseline-tage", local_entries=None, scheme=None),
    SystemConfig(name="no-repair", scheme="none"),
    SystemConfig(name="snapshot", scheme="snapshot", ports="32-8-8"),
    SystemConfig(name="retire-update", scheme="retire"),
    SystemConfig(name="backward-walk", scheme="backward", ports="32-4-4"),
    SystemConfig(name="limited-2pc", scheme="limited", repair_count=2, limited_write_ports=2),
    SystemConfig(name="split-bht", scheme="multistage", ports="32-4-4"),
    SystemConfig(name="limited-4pc", scheme="limited", repair_count=4, limited_write_ports=4),
    SystemConfig(name="forward-walk", scheme="forward", ports="32-4-2"),
    SystemConfig(name="forward-walk-coalesce", scheme="forward", ports="32-4-2", coalesce=True),
    SystemConfig(name="perfect-repair", scheme="perfect"),
)

#: Paper Table 3 reference values: (MPKI reduction %, IPC gain %,
#: % of perfect-repair gains retained).
PAPER_TABLE3: dict[str, tuple[float, float, float]] = {
    "baseline-tage": (0.0, 0.0, 0.0),
    "no-repair": (0.0, 0.0, 0.0),
    "snapshot": (9.1, 1.14, 30.0),
    "retire-update": (9.6, 1.56, 41.0),
    "backward-walk": (16.5, 1.98, 52.0),
    "limited-2pc": (21.0, 2.13, 56.0),
    "split-bht": (21.5, 2.17, 57.0),
    "limited-4pc": (22.0, 2.32, 61.0),
    "forward-walk": (26.0, 2.92, 77.0),
    "forward-walk-coalesce": (27.0, 3.0, 79.0),
    "perfect-repair": (31.0, 3.8, 100.0),
}


def table3_rows() -> list[SystemConfig]:
    """The non-baseline Table 3 systems (baseline runs implicitly)."""
    return [cfg for cfg in TABLE3_SYSTEMS if not cfg.is_baseline]
