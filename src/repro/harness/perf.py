"""Simulator throughput measurement: the repo's tracked perf baseline.

Model fidelity is checked by the test suite; *throughput* — simulated
branches per second, and how fast a repeated sweep returns — is what
bounds the workload coverage every figure can afford.  This module
measures both on fixed workloads and writes ``BENCH_perf.json`` so each
PR leaves a perf trajectory the next one can be compared against:

* :func:`measure_throughput` — cold single-run branches/sec per system
  (trace pre-decoded, result cache off: pure simulation speed);
* :func:`measure_warm_sweep` — wall-clock of an identical repeated
  :func:`~repro.harness.runner.run_matrix` sweep with the persistent
  result cache enabled (cold fill vs warm reuse);
* :func:`measure_batch` — the columnar batch sweep kernel
  (:mod:`repro.pipeline.batch`) vs the exact scalar engine on a
  16-config table-predictor sizing grid sharing one workload trace;
* :func:`measure_specialize` — the trace-guided specialized engine
  (:mod:`repro.pipeline.specialize`) vs the generic exact engine,
  with a bit-identity check and a forced guard-abort probe;
* :func:`profile_top` — cProfile hotspots of one run, for digging into
  a regression the numbers surface.

Entry points: ``repro perf`` (CLI) and ``benchmarks/bench_perf.py``.
"""

from __future__ import annotations

import cProfile
import io
import json
import os
import platform
import pstats
import sys
import tempfile
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path
from time import perf_counter
from typing import Any, Iterator, Sequence

import repro
from repro.errors import ExperimentError
from repro.harness.result_cache import code_fingerprint
from repro.harness.runner import load_trace, run_matrix, run_single
from repro.harness.sampling import SamplingConfig
from repro.harness.scale import Scale
from repro.harness.systems import TABLE3_SYSTEMS, SystemConfig
from repro.workloads.spec import WorkloadSpec
from repro.workloads.suite import get_workload

__all__ = [
    "ThroughputSample",
    "BATCH_SWEEP_SPECS",
    "DEFAULT_SYSTEMS",
    "REFERENCE_BRANCHES_PER_S",
    "SAMPLING_BRANCHES",
    "SPECIALIZE_BRANCHES",
    "resolve_systems",
    "measure_throughput",
    "measure_warm_sweep",
    "measure_sampling",
    "measure_batch",
    "measure_specialize",
    "profile_top",
    "run_perf",
]

_RESULT_CACHE_ENV = "REPRO_RESULT_CACHE"
_SCHEMA_VERSION = 4

#: Systems the default perf run covers: the pure-TAGE hot loop, and the
#: paper's headline local-unit configuration (TAGE + loop predictor +
#: forward-walk-coalesce repair), whose per-branch work is the largest.
DEFAULT_SYSTEMS: tuple[str, ...] = ("baseline-tage", "forward-walk-coalesce")

#: Pre-overhaul throughput (branches/sec) measured on the development
#: container (hpc-fft, 30k branches, CPython 3.12) before the hot-loop
#: optimization pass — time zero of the perf trajectory.  Ratios
#: against these are only meaningful on comparable hardware; absolute
#: numbers in ``BENCH_perf.json`` are what CI trends.
REFERENCE_BRANCHES_PER_S: dict[str, float] = {
    "baseline-tage": 23_526.0,
    "forward-walk-coalesce": 16_628.0,
}

_PERF_WORKLOAD = "hpc-fft"


@dataclass(frozen=True)
class ThroughputSample:
    """Best-of-N cold single-run measurement for one system."""

    system: str
    workload: str
    branches: int
    wall_s: float
    branches_per_s: float


def resolve_systems(names: Sequence[str]) -> list[SystemConfig]:
    """Map system names to their Table 3 configs (ExperimentError on unknown)."""
    by_name = {cfg.name: cfg for cfg in TABLE3_SYSTEMS}
    configs: list[SystemConfig] = []
    for name in names:
        if name not in by_name:
            known = ", ".join(sorted(by_name))
            raise ExperimentError(f"unknown system {name!r}; choose from: {known}")
        configs.append(by_name[name])
    return configs


@contextmanager
def _result_cache_env(value: str) -> Iterator[None]:
    """Temporarily point ``REPRO_RESULT_CACHE`` at ``value``."""
    old = os.environ.get(_RESULT_CACHE_ENV)
    os.environ[_RESULT_CACHE_ENV] = value
    try:
        yield
    finally:
        if old is None:
            os.environ.pop(_RESULT_CACHE_ENV, None)
        else:
            os.environ[_RESULT_CACHE_ENV] = old


def measure_throughput(
    spec: WorkloadSpec,
    systems: Sequence[SystemConfig],
    n_branches: int,
    repeats: int = 3,
) -> list[ThroughputSample]:
    """Cold single-run branches/sec per system (best of ``repeats``).

    "Cold" means no persistent result cache — every repeat simulates
    for real.  The trace is decoded once up front so the number
    isolates the simulation loop, which is what the hot-loop work
    targets.
    """
    load_trace(spec, n_branches)
    samples: list[ThroughputSample] = []
    for system in systems:
        best = float("inf")
        for _ in range(max(1, repeats)):
            t0 = perf_counter()
            run_single(spec, system, n_branches, use_result_cache=False)
            best = min(best, perf_counter() - t0)
        samples.append(
            ThroughputSample(
                system=system.name,
                workload=spec.name,
                branches=n_branches,
                wall_s=best,
                branches_per_s=n_branches / best if best else 0.0,
            )
        )
    return samples


def measure_warm_sweep(
    spec: WorkloadSpec,
    systems: Sequence[SystemConfig],
    n_branches: int,
    cache_dir: str | Path | None = None,
) -> dict[str, float]:
    """Cold-fill vs warm-reuse wall-clock of one repeated sweep.

    Runs the same sequential :func:`run_matrix` twice against a fresh
    result-cache directory: the first pass simulates and fills the
    cache, the second is served from it.  Returns ``cold_wall_s``,
    ``warm_wall_s`` and their ratio ``speedup``.
    """
    scale = Scale(
        name="perf", branches_per_workload=n_branches, workloads_per_category=1
    )
    with tempfile.TemporaryDirectory(prefix="repro-perf-") as tmp:
        root = Path(cache_dir) if cache_dir is not None else Path(tmp) / "results"
        with _result_cache_env(str(root)):
            t0 = perf_counter()
            run_matrix([spec], systems, scale, workers=1)
            cold = perf_counter() - t0
            t0 = perf_counter()
            run_matrix([spec], systems, scale, workers=1)
            warm = perf_counter() - t0
    return {
        "cold_wall_s": cold,
        "warm_wall_s": warm,
        "speedup": cold / warm if warm else 0.0,
    }


#: Trace length for the sampling benchmark.  Long enough that the
#: sampled engine's fixed costs (proxy pass, warmup windows) amortise
#: to their steady-state share, matching how sampling is used in
#: practice; the acceptance bar (≥5x at 10% coverage, MPKI within 2%,
#: IPC within 1%) is measured at this length.
SAMPLING_BRANCHES = 200_000


def measure_sampling(
    spec: WorkloadSpec,
    systems: Sequence[SystemConfig],
    n_branches: int = SAMPLING_BRANCHES,
    repeats: int = 3,
    config: SamplingConfig | None = None,
) -> dict[str, Any]:
    """Exact vs sampled wall-clock and accuracy per system.

    Runs each system both ways (cold, best of ``repeats``) and reports
    the speedup alongside the sampled estimate's relative MPKI/IPC
    error against the exact run — speed claims about sampling are
    meaningless without the accuracy they were bought at.
    """
    sampling = config if config is not None else SamplingConfig(mode="periodic")
    load_trace(spec, n_branches)
    rows: dict[str, Any] = {}
    for system in systems:
        exact_wall = sampled_wall = float("inf")
        exact = sampled = None
        for _ in range(max(1, repeats)):
            t0 = perf_counter()
            exact = run_single(spec, system, n_branches, use_result_cache=False)
            exact_wall = min(exact_wall, perf_counter() - t0)
            t0 = perf_counter()
            sampled = run_single(
                spec, system, n_branches, use_result_cache=False, sampling=sampling
            )
            sampled_wall = min(sampled_wall, perf_counter() - t0)
        assert exact is not None and sampled is not None
        info = sampled.extra.get("sampling", {})
        rows[system.name] = {
            "exact_wall_s": round(exact_wall, 6),
            "sampled_wall_s": round(sampled_wall, 6),
            "speedup": round(exact_wall / sampled_wall, 3) if sampled_wall else 0.0,
            "exact_branches_per_s": round(n_branches / exact_wall, 1),
            "sampled_branches_per_s": round(n_branches / sampled_wall, 1),
            "mpki_exact": round(exact.mpki, 6),
            "mpki_sampled": round(sampled.mpki, 6),
            "mpki_rel_err": round(sampled.mpki / exact.mpki - 1.0, 6)
            if exact.mpki
            else 0.0,
            "ipc_exact": round(exact.ipc, 6),
            "ipc_sampled": round(sampled.ipc, 6),
            "ipc_rel_err": round(sampled.ipc / exact.ipc - 1.0, 6)
            if exact.ipc
            else 0.0,
            "detailed_fraction": info.get("detailed_fraction"),
            "ci95_mpki": info.get("ci95_mpki"),
            "ci95_ipc": info.get("ci95_ipc"),
        }
    return {
        "workload": spec.name,
        "branches": n_branches,
        "config": dict(sampling.to_payload()),
        "systems": rows,
    }


#: The 16-config grid the batch perf section sweeps: a sizing curve per
#: table-indexed predictor kind (the paper's capacity-sweep shape) plus
#: a few off-grid points so the kernel's per-config state planes are not
#: all the same size.  Every spec shares one workload trace, which is
#: exactly the shape the batch kernel amortises.
BATCH_SWEEP_SPECS: tuple[str, ...] = (
    "bimodal:8",
    "bimodal:10",
    "bimodal:12",
    "bimodal:14",
    "gshare:10:8",
    "gshare:12:10",
    "gshare:14:12",
    "gshare:14:14",
    "local2l:8:6:10",
    "local2l:10:8:12",
    "local2l:12:10:14",
    "local2l:10:12:14",
    "bimodal:13:3",
    "gshare:13:9",
    "local2l:9:7:11",
    "bimodal:9:2",
)


def measure_batch(
    spec: WorkloadSpec,
    n_branches: int,
    config_specs: Sequence[str] = BATCH_SWEEP_SPECS,
    repeats: int = 3,
) -> dict[str, Any]:
    """Batch kernel vs exact scalar engine on one shared-trace sweep.

    Runs the same (1 workload x ``config_specs``) matrix twice — once
    with ``batch=False`` (the exact scalar engine, measured once: it is
    the slow side) and once with ``batch=True`` (best of ``repeats``) —
    and reports the wall-clock ratio together with ``mpki_identical``,
    which asserts the kernel's whole point: identical MPKI and
    misprediction counts, only faster.  Speedup honours the
    ``REPRO_BATCH`` gate, so a forced-off environment reports ~1x.
    """
    from repro.harness.systems import resolve_system

    systems = [resolve_system(name) for name in config_specs]
    scale = Scale(
        name="perf-batch", branches_per_workload=n_branches, workloads_per_category=1
    )
    load_trace(spec, n_branches)
    t0 = perf_counter()
    scalar = run_matrix(
        [spec], systems, scale, workers=1, use_result_cache=False, batch=False
    )
    scalar_wall = perf_counter() - t0
    batch_wall = float("inf")
    batch = scalar
    for _ in range(max(1, repeats)):
        t0 = perf_counter()
        batch = run_matrix(
            [spec], systems, scale, workers=1, use_result_cache=False, batch=True
        )
        batch_wall = min(batch_wall, perf_counter() - t0)
    identical = all(
        s.mpki == b.mpki and s.mispredictions == b.mispredictions
        for s, b in zip(scalar, batch)
    )
    return {
        "workload": spec.name,
        "branches": n_branches,
        "configs": len(config_specs),
        "specs": list(config_specs),
        "scalar_wall_s": round(scalar_wall, 6),
        "batch_wall_s": round(batch_wall, 6),
        "speedup": round(scalar_wall / batch_wall, 3) if batch_wall else 0.0,
        "scalar_configs_per_s": round(len(config_specs) / scalar_wall, 3)
        if scalar_wall
        else 0.0,
        "batch_configs_per_s": round(len(config_specs) / batch_wall, 3)
        if batch_wall
        else 0.0,
        "mpki_identical": identical,
    }


#: Trace length for the specialization benchmark.  Long enough that the
#: fixed costs of the specialized path (profile prefix, planning,
#: codegen + compile) amortise to their steady-state share; the
#: acceptance bar (>=2x exact-path branches/sec on ``baseline-tage``,
#: bit-identical stats) is measured at this length.
SPECIALIZE_BRANCHES = 100_000


def _stats_identical(a: Any, b: Any) -> bool:
    """Bit-identity of the stats two exact runs report."""
    return bool(
        a.ipc == b.ipc
        and a.mpki == b.mpki
        and a.instructions == b.instructions
        and a.cycles == b.cycles
        and a.mispredictions == b.mispredictions
    )


def measure_specialize(
    spec: WorkloadSpec,
    systems: Sequence[SystemConfig],
    n_branches: int = SPECIALIZE_BRANCHES,
    repeats: int = 3,
) -> dict[str, Any]:
    """Generic vs specialized exact engine: wall-clock and bit-identity.

    Runs each system both ways (cold, best of ``repeats``) and reports
    the speedup together with ``stats_identical`` — the specialized
    engine's whole contract is *identical stats, only faster*, so a
    speedup with non-identical stats is a bug, not a win.  A final
    forced guard-abort probe (``REPRO_SPECIALIZE_FORCE_ABORT`` midway
    through the trace) checks that the abort path — restore from the
    last checkpoint, finish on the generic engine — is bit-identical
    too, and that the abort counters surfaced in the manifest.
    """
    from repro.harness.specialize import SPECIALIZE_FORCE_ABORT_ENV

    load_trace(spec, n_branches)
    rows: dict[str, Any] = {}
    for system in systems:
        generic_wall = special_wall = float("inf")
        generic = special = None
        for _ in range(max(1, repeats)):
            t0 = perf_counter()
            generic = run_single(spec, system, n_branches, use_result_cache=False)
            generic_wall = min(generic_wall, perf_counter() - t0)
            t0 = perf_counter()
            special = run_single(
                spec, system, n_branches, use_result_cache=False, specialize=True
            )
            special_wall = min(special_wall, perf_counter() - t0)
        assert generic is not None and special is not None
        assert special.manifest is not None
        info = dict(special.manifest.get("specialize", {}))
        rows[system.name] = {
            "generic_wall_s": round(generic_wall, 6),
            "specialized_wall_s": round(special_wall, 6),
            "speedup": round(generic_wall / special_wall, 3) if special_wall else 0.0,
            "generic_branches_per_s": round(n_branches / generic_wall, 1),
            "specialized_branches_per_s": round(n_branches / special_wall, 1),
            "stats_identical": _stats_identical(generic, special),
            "engine": info.get("engine"),
            "template": info.get("template"),
            "specialized_branches": info.get("specialized_branches"),
            "checkpoints": info.get("checkpoints"),
        }
    # Abort probe on the first system: trip a guard midway and confirm
    # the generic-finish path reproduces the generic stats exactly.
    abort: dict[str, Any] | None = None
    if systems:
        system = systems[0]
        generic = run_single(spec, system, n_branches, use_result_cache=False)
        old = os.environ.get(SPECIALIZE_FORCE_ABORT_ENV)
        os.environ[SPECIALIZE_FORCE_ABORT_ENV] = str(n_branches // 2)
        try:
            aborted = run_single(
                spec, system, n_branches, use_result_cache=False, specialize=True
            )
        finally:
            if old is None:
                os.environ.pop(SPECIALIZE_FORCE_ABORT_ENV, None)
            else:
                os.environ[SPECIALIZE_FORCE_ABORT_ENV] = old
        assert aborted.manifest is not None
        info = dict(aborted.manifest.get("specialize", {}))
        abort = {
            "system": system.name,
            "forced_at": n_branches // 2,
            "aborted": info.get("aborted"),
            "guard": info.get("guard"),
            "guards_failed": info.get("guards_failed"),
            "aborts": info.get("aborts"),
            "stats_identical": _stats_identical(generic, aborted),
        }
    return {
        "workload": spec.name,
        "branches": n_branches,
        "systems": rows,
        "abort_probe": abort,
    }


def profile_top(
    spec: WorkloadSpec,
    system: SystemConfig,
    n_branches: int,
    top: int = 15,
) -> str:
    """cProfile one cold run; return the top functions by total time."""
    load_trace(spec, n_branches)
    profiler = cProfile.Profile()
    profiler.enable()
    run_single(spec, system, n_branches, use_result_cache=False)
    profiler.disable()
    out = io.StringIO()
    stats = pstats.Stats(profiler, stream=out)
    stats.sort_stats("tottime").print_stats(top)
    return out.getvalue()


def run_perf(
    workload: str = _PERF_WORKLOAD,
    branches: int = 30_000,
    systems: Sequence[str] = DEFAULT_SYSTEMS,
    repeats: int = 3,
    out: str | Path | None = "BENCH_perf.json",
    sampling_branches: int | None = SAMPLING_BRANCHES,
    batch: bool = True,
    specialize_branches: int | None = SPECIALIZE_BRANCHES,
) -> dict[str, Any]:
    """Measure throughput + warm-sweep reuse and write ``BENCH_perf.json``.

    Returns the written payload.  ``out=None`` skips the file write
    (used by the CI smoke path's dry invocations and by tests);
    ``sampling_branches=None`` skips the (comparatively slow) sampled
    vs exact section; ``batch=False`` skips the batch-kernel section;
    ``specialize_branches=None`` skips the specialized-engine section.
    """
    spec = get_workload(workload)
    configs = resolve_systems(systems)
    samples = measure_throughput(spec, configs, branches, repeats=repeats)
    warm = measure_warm_sweep(spec, configs, branches)
    sampling = (
        measure_sampling(spec, configs, sampling_branches, repeats=repeats)
        if sampling_branches is not None
        else None
    )
    batch_section = measure_batch(spec, branches, repeats=repeats) if batch else None
    specialize_section = (
        measure_specialize(spec, configs, specialize_branches, repeats=repeats)
        if specialize_branches is not None
        else None
    )
    throughput: dict[str, Any] = {}
    for sample in samples:
        row: dict[str, Any] = {
            "wall_s": round(sample.wall_s, 6),
            "branches_per_s": round(sample.branches_per_s, 1),
        }
        reference = REFERENCE_BRANCHES_PER_S.get(sample.system)
        if reference:
            row["reference_branches_per_s"] = reference
            row["speedup_vs_reference"] = round(sample.branches_per_s / reference, 3)
        throughput[sample.system] = row
    payload: dict[str, Any] = {
        "bench": "perf",
        "schema_version": _SCHEMA_VERSION,
        "workload": workload,
        "branches": branches,
        "repeats": repeats,
        "throughput": throughput,
        "warm_sweep": {key: round(value, 6) for key, value in warm.items()},
        "sampling": sampling,
        "batch": batch_section,
        "specialize": specialize_section,
        "env": {
            "python": platform.python_version(),
            "platform": f"{sys.platform}-{platform.machine()}",
            "repro_version": repro.__version__,
            "code_fingerprint": code_fingerprint(),
        },
    }
    if out is not None:
        target = Path(out)
        tmp = target.with_name(f"{target.name}.{os.getpid()}.tmp")
        tmp.write_text(json.dumps(payload, indent=1, sort_keys=True) + "\n")
        tmp.replace(target)
    return payload
