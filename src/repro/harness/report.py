"""Plain-text report rendering for experiment outputs.

The harness reproduces the paper's tables and figures as aligned text
tables plus simple horizontal bar charts, so every experiment's output
is readable straight from a terminal or CI log.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.errors import ConfigError

__all__ = ["format_table", "format_bars", "pct", "Figure"]


def pct(value: float, digits: int = 1) -> str:
    """Render a fraction as a signed percentage string."""
    return f"{value * 100:+.{digits}f}%"


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]], title: str | None = None
) -> str:
    """Render an aligned ASCII table."""
    cells = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        for i, cell in enumerate(row):
            if i < len(widths):
                widths[i] = max(widths[i], len(cell))
    lines: list[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append(
            "  ".join(cell.ljust(w) for cell, w in zip(row, widths))
        )
    return "\n".join(lines)


def format_bars(
    labels: Sequence[str],
    values: Sequence[float],
    title: str | None = None,
    width: int = 40,
    unit: str = "%",
    scale: float = 100.0,
) -> str:
    """Render a horizontal bar chart of (possibly negative) values."""
    if len(labels) != len(values):
        raise ConfigError("labels and values must have equal length")
    lines: list[str] = []
    if title:
        lines.append(title)
    if not values:
        return "\n".join(lines + ["(no data)"])
    peak = max(abs(v) for v in values) or 1.0
    label_width = max(len(label) for label in labels)
    for label, value in zip(labels, values):
        bar_len = int(round(abs(value) / peak * width))
        bar = ("#" if value >= 0 else "-") * bar_len
        lines.append(
            f"{label.ljust(label_width)} | {bar} {value * scale:+.2f}{unit}"
        )
    return "\n".join(lines)


class Figure:
    """One reproduced artifact: structured data plus rendered text."""

    def __init__(self, figure_id: str, title: str) -> None:
        self.figure_id = figure_id
        self.title = title
        self.sections: list[str] = []
        self.data: dict[str, object] = {}

    def add_section(self, text: str) -> None:
        self.sections.append(text)

    def add_table(
        self, headers: Sequence[str], rows: Sequence[Sequence[object]], title: str | None = None
    ) -> None:
        self.add_section(format_table(headers, rows, title))

    def add_bars(
        self,
        labels: Sequence[str],
        values: Sequence[float],
        title: str | None = None,
    ) -> None:
        self.add_section(format_bars(labels, values, title))

    def render(self) -> str:
        header = f"=== {self.figure_id}: {self.title} ==="
        return "\n\n".join([header, *self.sections])
