"""Batch-sweep policy and executor: when and how the kernel engages.

The kernel itself (:mod:`repro.pipeline.batch`) is pure — it takes a
columnar trace and predictor specs and returns predictions.  Everything
environmental lives here:

* :func:`batch_enabled` — the ``REPRO_BATCH`` gate composed with the
  explicit ``--batch`` flag (env ``off`` always wins, env ``on``
  auto-enables sweeps that never passed the flag);
* :func:`mark_batch_jobs` — plan-time grouping: jobs the kernel
  supports (table-indexed predictor, no sampling) are marked when at
  least :data:`BATCH_MIN_CONFIGS` of them share one workload, so the
  fixed cost of building index streams amortises;
* :class:`BatchExecutor` — an :class:`~repro.harness.executors.Executor`
  wrapper that runs each marked group through the kernel once (one
  trace materialisation, one pass) and forwards every unmarked job to
  its inner executor unchanged, preserving result order.

Batch results are *functional*: exact predictions, mispredictions and
MPKI, but no pipeline timing — ``ipc`` is 0.0 and ``cycles`` 0, and the
manifest (and therefore the result-cache key) carries ``engine:
"batch"`` so they can never masquerade as exact-timing results.
"""

from __future__ import annotations

import os
from collections import OrderedDict
from dataclasses import replace
from time import perf_counter
from typing import TYPE_CHECKING, Any, Sequence

from repro.harness.executors import Executor, InlineExecutor
from repro.harness.result_cache import active_cache
from repro.harness.systems import table_predictor_spec
from repro.pipeline.batch import DEFAULT_INTERVAL, BatchResult, run_batch
from repro.telemetry import TELEMETRY
from repro.trace.columns import ColumnarTrace, SharedTrace, load_columnar

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.harness.runner import RunResult
    from repro.harness.scheduler import SimJob

__all__ = [
    "BATCH_ENV",
    "BATCH_MIN_CONFIGS",
    "batch_enabled",
    "mark_batch_jobs",
    "BatchExecutor",
]

#: Gate for the batch sweep kernel: ``on``/``1`` auto-enables batching
#: for every eligible sweep, ``off``/``0`` forces it off even when
#: ``--batch`` was passed, unset defers to the explicit flag.
BATCH_ENV = "REPRO_BATCH"

_OFF_VALUES = ("off", "0", "none", "false")
_ON_VALUES = ("on", "1", "true", "yes")

#: Minimum table-indexed configs sharing a workload before the batch
#: kernel engages; below this the per-sweep fixed costs (index-stream
#: builds, sort buffers) are not reliably worth it.
BATCH_MIN_CONFIGS = 4


def batch_enabled(explicit: bool | None = None) -> bool:
    """Resolve the batch gate from the flag and ``REPRO_BATCH``.

    ``explicit`` is the tri-state flag value: True (``--batch``), False
    (caller forcing off), None (not specified).  The environment can
    veto (``off``) or volunteer (``on``); it never overrides an
    explicit False.
    """
    value = os.environ.get(BATCH_ENV)
    normalized = value.strip().lower() if value is not None else None
    if normalized in _OFF_VALUES:
        return False
    if explicit is not None:
        return explicit
    return normalized in _ON_VALUES


def mark_batch_jobs(jobs: "Sequence[SimJob]") -> "list[SimJob]":
    """Mark kernel-supported jobs that group well, leave the rest alone.

    A job is *eligible* when its system is a bare table-indexed
    predictor (see :func:`~repro.harness.systems.table_predictor_spec`)
    and it is not sampled — the kernel is exact-functional, and a
    sampled estimate is neither.  Eligible jobs are grouped per
    workload trace and marked only when the group reaches
    :data:`BATCH_MIN_CONFIGS`; everything else (TAGE, repair schemes,
    sampled runs, small groups) keeps ``batch=False`` and runs on the
    exact engine.
    """
    groups: dict[tuple[str, int, int], list[int]] = {}
    for index, job in enumerate(jobs):
        if job.sampling is not None and job.sampling.enabled:
            continue
        if table_predictor_spec(job.system) is None:
            continue
        key = (job.spec.name, job.spec.seed, job.n_branches)
        groups.setdefault(key, []).append(index)
    marked = list(jobs)
    for indices in groups.values():
        if len(indices) < BATCH_MIN_CONFIGS:
            continue
        for index in indices:
            marked[index] = replace(marked[index], batch=True)
    return marked


class BatchExecutor(Executor):
    """Routes batch-marked jobs through the kernel, the rest inward.

    Marked jobs are grouped by workload trace; each group pays one
    trace materialisation and one kernel pass for *all* its configs,
    with per-job result-cache load/store exactly like the scalar path
    (cached jobs are answered without touching the trace at all).
    Unmarked jobs go to ``inner`` — so one sweep can batch its
    table-predictor sizings while its TAGE rows fan out over the
    process pool, composing with shared-memory traces and sharding.
    """

    name = "batch"

    def __init__(
        self, inner: Executor | None = None, interval: int = DEFAULT_INTERVAL
    ) -> None:
        self.inner = inner if inner is not None else InlineExecutor()
        self.interval = interval
        # Delegate the scheduler's shm pre-generation decision to the
        # inner executor: batch groups run in this process and read the
        # published segments directly when present.
        self.wants_shared_traces = self.inner.wants_shared_traces

    def execute(self, jobs: "Sequence[SimJob]") -> "list[RunResult]":
        results: "list[RunResult | None]" = [None] * len(jobs)
        groups: "OrderedDict[tuple[str, int, int], list[tuple[int, SimJob]]]" = (
            OrderedDict()
        )
        forwarded: "list[tuple[int, SimJob]]" = []
        for index, job in enumerate(jobs):
            if job.batch and table_predictor_spec(job.system) is not None:
                key = (job.spec.name, job.spec.seed, job.n_branches)
                groups.setdefault(key, []).append((index, job))
            else:
                forwarded.append((index, job))
        for group in groups.values():
            group_results = self._run_group([job for _, job in group])
            for (index, _), result in zip(group, group_results):
                results[index] = result
        if forwarded:
            inner_results = self.inner.execute([job for _, job in forwarded])
            for (index, _), result in zip(forwarded, inner_results):
                results[index] = result
        return [result for result in results if result is not None]

    # ------------------------------------------------------------- #
    # one workload group

    def _materialise_trace(self, job: "SimJob") -> ColumnarTrace:
        """The group's trace as columns, cheapest available source.

        Preference order: the scheduler's shared-memory segment (zero
        decode — the kernel copies the two columns it needs before the
        handle closes), the on-disk trace cache via the memoized
        columnar loader, and finally record generation.
        """
        from repro.harness.runner import load_trace, trace_cache_path

        if job.shm_ref is not None:
            name, count = job.shm_ref
            shared = SharedTrace.attach(name, count)
            try:
                # Copy out of the segment: the scheduler unlinks it
                # when execute() returns, results must not dangle.
                return ColumnarTrace(shared.trace().array.copy())
            finally:
                shared.close()
        path = trace_cache_path(job.spec, job.n_branches)
        if path is not None and path.exists():
            return load_columnar(path)
        return ColumnarTrace.from_records(load_trace(job.spec, job.n_branches))

    def _run_group(self, jobs: "list[SimJob]") -> "list[RunResult]":
        """Kernel-evaluate one workload's batch jobs, cache-aware."""
        manifests = [job.manifest() for job in jobs]
        cache = active_cache(jobs[0].use_result_cache)
        results: "dict[int, RunResult]" = {}
        misses: "list[int]" = []
        for index, manifest in enumerate(manifests):
            cached = cache.load(manifest) if cache is not None else None
            if cached is not None:
                results[index] = cached
            else:
                misses.append(index)
        if misses:
            trace = self._materialise_trace(jobs[misses[0]])
            specs = [table_predictor_spec(jobs[i].system) for i in misses]
            assert all(spec is not None for spec in specs)
            t0 = perf_counter()
            batch = run_batch(
                trace, [spec for spec in specs if spec is not None], self.interval
            )
            wall = perf_counter() - t0
            registry = TELEMETRY.registry
            registry.counter("sched.batch_groups").inc()
            registry.counter("sched.batch_configs").inc(len(misses))
            for lane, index in enumerate(misses):
                result = self._lane_result(jobs[index], manifests[index], batch, lane, wall)
                results[index] = result
                if cache is not None:
                    cache.store(result)
        return [results[index] for index in range(len(jobs))]

    def _lane_result(
        self,
        job: "SimJob",
        manifest: dict[str, Any],
        batch: BatchResult,
        lane: int,
        wall: float,
    ) -> "RunResult":
        """One config's :class:`RunResult` from the group evaluation."""
        from repro.harness.runner import RunResult

        manifest["wall_s"] = wall / len(batch.specs)
        return RunResult(
            workload=job.spec.name,
            category=job.spec.category,
            system=job.system.name,
            ipc=0.0,
            mpki=batch.mpki(lane),
            instructions=batch.instructions,
            cycles=0,
            mispredictions=batch.mispredictions(lane),
            extra={
                "batch": {
                    "engine": "columnar",
                    "configs": len(batch.specs),
                    "interval": self.interval,
                    "cond_branches": batch.cond_branches,
                    "taken_branches": batch.taken_branches,
                    "accuracy": batch.accuracy(lane),
                }
            },
            manifest=manifest,
        )
