"""The imported-trace store: import, inspect, resolve, fetch.

Policy layer over the pure adapters in :mod:`repro.trace.adapters`:
where imported traces live (``REPRO_TRACE_STORE``, default
``.repro-traces/``), how they are named, what provenance sits next to
them, and how workload names resolve against both the synthetic suite
and the store.  The store layout is one pair of files per trace::

    <store>/<name>.trace       normalised RPTR payload
    <store>/<name>.meta.json   provenance + summary statistics

``fetch`` downloads manifest-listed traces with mandatory SHA-256
verification of the raw payload before conversion.  ``REPRO_OFFLINE``
(any non-empty value) turns every network fetch into an immediate
error — local ``file:``/path sources stay allowed, which is what lets
the CI adapters job exercise the full fetch path against committed
fixtures with no network.
"""

from __future__ import annotations

import hashlib
import json
import os
import urllib.request
from pathlib import Path
from typing import Any
from urllib.parse import urlparse

from repro.errors import TraceError, WorkloadError
from repro.trace.adapters import convert_bytes
from repro.trace.io import dumps_trace
from repro.trace.stats import collect_stats
from repro.workloads.public import PUBLIC_CATEGORY, ImportedTraceSpec
from repro.workloads.spec import WorkloadSpec
from repro.workloads.suite import get_workload

__all__ = [
    "STORE_ENV",
    "OFFLINE_ENV",
    "store_dir",
    "import_trace",
    "inspect_trace",
    "load_spec",
    "list_imported",
    "resolve_workload",
    "fetch_trace",
]

STORE_ENV = "REPRO_TRACE_STORE"
OFFLINE_ENV = "REPRO_OFFLINE"

#: Extensions stripped when deriving a trace name from its filename.
_STRIP_SUFFIXES = (".gz", ".xz", ".trace", ".bt9", ".champsim", ".champsimtrace", ".bin")


def store_dir(override: str | Path | None = None) -> Path:
    """The imported-trace store directory (not created until needed)."""
    if override is not None:
        return Path(override)
    return Path(os.environ.get(STORE_ENV) or ".repro-traces")


def offline() -> bool:
    """Whether network access is forbidden (``REPRO_OFFLINE`` set)."""
    return bool(os.environ.get(OFFLINE_ENV))


def default_name(source: str | Path) -> str:
    """Derive a store name from a source filename."""
    name = Path(source).name
    changed = True
    while changed:
        changed = False
        for suffix in _STRIP_SUFFIXES:
            if name.lower().endswith(suffix):
                name = name[: -len(suffix)]
                changed = True
    if not name:
        raise WorkloadError(f"cannot derive a trace name from {str(source)!r}")
    return name


def _trace_path(store: Path, name: str) -> Path:
    return store / f"{name}.trace"


def _meta_path(store: Path, name: str) -> Path:
    return store / f"{name}.meta.json"


def _describe(records: list[Any]) -> dict[str, Any]:
    """Summary statistics recorded in metadata and ``trace info``."""
    stats = collect_stats(records)
    pcs = [rec.pc for rec in records]
    targets = [rec.target for rec in records if rec.target]
    return {
        "records": stats.total_branches,
        "instructions": stats.total_instructions,
        "conditional_branches": stats.conditional_branches,
        "static_sites": stats.static_sites,
        "taken_rate": round(stats.taken_rate, 6),
        "kind_counts": {
            kind.name: count for kind, count in sorted(stats.kind_counts.items())
        },
        "pc_min": min(pcs) if pcs else 0,
        "pc_max": max(pcs) if pcs else 0,
        "target_min": min(targets) if targets else 0,
        "target_max": max(targets) if targets else 0,
    }


def inspect_trace(
    source: str | Path, fmt: str | None = None
) -> dict[str, Any]:
    """Convert a trace payload and describe it, without importing it."""
    path = Path(source)
    if not path.exists():
        raise TraceError(f"trace file not found: {path}")
    converted = convert_bytes(path.read_bytes(), fmt=fmt, filename=path.name)
    info: dict[str, Any] = {
        "path": str(path),
        "format": converted.format,
        "adapter_version": converted.adapter_version,
        "compression": converted.compression,
    }
    info.update(_describe(converted.records))
    return info


def import_trace(
    source: str | Path,
    name: str | None = None,
    fmt: str | None = None,
    store: str | Path | None = None,
) -> ImportedTraceSpec:
    """Normalise an external trace into the store.

    Converts ``source`` through the adapter layer, writes the RPTR
    payload and a metadata sidecar atomically, and returns the workload
    spec under which the trace is now runnable.  Re-importing the same
    content under the same name is idempotent.
    """
    path = Path(source)
    if not path.exists():
        raise TraceError(f"trace file not found: {path}")
    return _import_payload(
        path.read_bytes(), path.name, name=name, fmt=fmt, store=store
    )


def _import_payload(
    payload: bytes,
    source_name: str,
    name: str | None = None,
    fmt: str | None = None,
    store: str | Path | None = None,
) -> ImportedTraceSpec:
    converted = convert_bytes(payload, fmt=fmt, filename=source_name)
    if not converted.records:
        raise TraceError(f"trace {source_name!r} contains no branch records")
    trace_name = name if name else default_name(source_name)
    normalised = dumps_trace(converted.records)
    content_hash = hashlib.sha256(normalised).hexdigest()
    store_path = store_dir(store)
    store_path.mkdir(parents=True, exist_ok=True)
    trace_path = _trace_path(store_path, trace_name)
    tmp = trace_path.with_name(f"{trace_path.name}.{os.getpid()}.tmp")
    tmp.write_bytes(normalised)
    tmp.replace(trace_path)
    meta: dict[str, Any] = {
        "name": trace_name,
        "category": PUBLIC_CATEGORY,
        "source": source_name,
        "source_format": converted.format,
        "compression": converted.compression,
        "adapter_version": converted.adapter_version,
        "content_hash": content_hash,
    }
    meta.update(_describe(converted.records))
    meta_path = _meta_path(store_path, trace_name)
    tmp_meta = meta_path.with_name(f"{meta_path.name}.{os.getpid()}.tmp")
    tmp_meta.write_text(json.dumps(meta, indent=2, sort_keys=True) + "\n")
    tmp_meta.replace(meta_path)
    return _spec_from_meta(meta, trace_path)


def _spec_from_meta(meta: dict[str, Any], trace_path: Path) -> ImportedTraceSpec:
    return ImportedTraceSpec(
        name=str(meta["name"]),
        category=PUBLIC_CATEGORY,
        seed=0,
        path=str(trace_path.resolve()),
        content_hash=str(meta["content_hash"]),
        source_format=str(meta["source_format"]),
        adapter_version=int(meta["adapter_version"]),
        trace_records=int(meta["records"]),
    )


def load_spec(
    name: str, store: str | Path | None = None
) -> ImportedTraceSpec | None:
    """The stored spec for ``name``, or None when not imported."""
    store_path = store_dir(store)
    meta_path = _meta_path(store_path, name)
    trace_path = _trace_path(store_path, name)
    if not meta_path.exists() or not trace_path.exists():
        return None
    try:
        meta = json.loads(meta_path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise TraceError(f"corrupt trace metadata {meta_path}: {exc}") from exc
    return _spec_from_meta(meta, trace_path)


def list_imported(store: str | Path | None = None) -> list[dict[str, Any]]:
    """Metadata of every imported trace, sorted by name."""
    store_path = store_dir(store)
    if not store_path.is_dir():
        return []
    metas: list[dict[str, Any]] = []
    for meta_path in sorted(store_path.glob("*.meta.json")):
        try:
            meta = json.loads(meta_path.read_text())
        except (OSError, json.JSONDecodeError):
            continue
        if _trace_path(store_path, str(meta.get("name", ""))).exists():
            metas.append(meta)
    return metas


def resolve_workload(
    name: str, store: str | Path | None = None
) -> WorkloadSpec:
    """Resolve a workload name: synthetic suite first, then the store.

    This is the single lookup the CLI and service use, so imported
    traces are accepted everywhere a synthetic workload name is.
    """
    try:
        return get_workload(name)
    except WorkloadError:
        pass
    spec = load_spec(name, store)
    if spec is not None:
        return spec
    raise WorkloadError(
        f"unknown workload {name!r}: not in the synthetic suite and not "
        f"imported into the trace store ({store_dir(store)}); see "
        "'repro trace import' / 'repro trace fetch'"
    )


# ------------------------------------------------------------------- #
# fetch: manifest-driven, checksum-verified downloads


def _read_manifest(manifest_path: Path) -> dict[str, Any]:
    if not manifest_path.exists():
        raise WorkloadError(f"trace manifest not found: {manifest_path}")
    try:
        manifest = json.loads(manifest_path.read_text())
    except json.JSONDecodeError as exc:
        raise WorkloadError(
            f"trace manifest {manifest_path} is not valid JSON: {exc}"
        ) from exc
    traces = manifest.get("traces")
    if not isinstance(traces, dict):
        raise WorkloadError(
            f"trace manifest {manifest_path} has no 'traces' table"
        )
    return manifest


def _fetch_payload(url: str, manifest_dir: Path) -> bytes:
    """Fetch a manifest URL: local paths directly, networks guarded."""
    parsed = urlparse(url)
    if parsed.scheme in ("", "file"):
        local = Path(parsed.path if parsed.scheme == "file" else url)
        if not local.is_absolute():
            local = manifest_dir / local
        if not local.exists():
            raise WorkloadError(f"manifest source file not found: {local}")
        return local.read_bytes()
    if parsed.scheme not in ("http", "https"):
        raise WorkloadError(f"unsupported manifest URL scheme: {url!r}")
    if offline():
        raise WorkloadError(
            f"network fetch of {url!r} refused: {OFFLINE_ENV} is set"
        )
    with urllib.request.urlopen(url) as response:  # noqa: S310 - scheme checked
        return bytes(response.read())


def fetch_trace(
    name: str,
    manifest_path: str | Path,
    store: str | Path | None = None,
) -> ImportedTraceSpec:
    """Fetch, verify, and import one manifest-listed trace.

    The raw payload's SHA-256 must match the manifest *before* any
    conversion runs — a tampered or truncated download never reaches
    the parsers.  Already-imported traces whose stored content hash
    still matches are returned without re-downloading.
    """
    manifest_file = Path(manifest_path)
    manifest = _read_manifest(manifest_file)
    entry = manifest["traces"].get(name)
    if entry is None:
        known = ", ".join(sorted(manifest["traces"])) or "<none>"
        raise WorkloadError(
            f"trace {name!r} not in manifest {manifest_file} (has: {known})"
        )
    url = entry.get("url")
    expected = entry.get("sha256")
    if not url or not expected:
        raise WorkloadError(
            f"manifest entry for {name!r} must have 'url' and 'sha256'"
        )
    payload = _fetch_payload(str(url), manifest_file.resolve().parent)
    digest = hashlib.sha256(payload).hexdigest()
    if digest != expected:
        raise TraceError(
            f"checksum mismatch for {name!r}: manifest says {expected}, "
            f"payload is {digest}"
        )
    return _import_payload(
        payload,
        Path(str(url)).name,
        name=name,
        fmt=entry.get("format"),
        store=store,
    )
