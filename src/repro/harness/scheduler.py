"""Sweep scheduling: one planning/dispatch path for CLI and service.

Historically :func:`repro.harness.runner.run_matrix` mixed four
concerns — enumerating the (workload x system) job list, consulting the
persistent result cache, pre-generating traces into shared memory, and
driving a process pool.  The simulation service needs the same
behaviour behind a concurrent API, so those concerns now live here:

* :class:`SimJob` — one declarative, picklable (workload, system)
  simulation unit, with its provenance manifest available *before* the
  run (that manifest is the result-cache key and the service's dedup
  key);
* :class:`Scheduler` — plans job lists (including ``--shard K/N``
  slicing), splits off jobs answerable from the persistent result
  cache, prepares shared-memory traces for pool executors, and
  dispatches the rest to a pluggable
  :class:`~repro.harness.executors.Executor`.

``run_matrix`` is now a thin wrapper over this module and is
bit-identical to its pre-refactor behaviour; the service submits the
same :class:`SimJob` lists through the same :meth:`Scheduler.run`.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, replace
from typing import Any, Sequence

from repro.harness.executors import (
    Executor,
    InlineExecutor,
    ProcessPoolExecutorBackend,
)
from repro.harness.result_cache import ResultCache, active_cache
from repro.harness.sampling import SamplingConfig
from repro.harness.systems import SystemConfig
from repro.pipeline.config import PipelineConfig
from repro.telemetry.manifest import build_manifest
from repro.trace.columns import ColumnarTrace, SharedTrace
from repro.workloads.spec import WorkloadSpec

__all__ = ["SimJob", "Scheduler", "execute_job", "default_executor"]


@dataclass(frozen=True)
class SimJob:
    """One schedulable (workload, system) simulation.

    Frozen and picklable so any executor — inline, process pool, or a
    future remote transport — can carry it unchanged.  ``shm_ref`` is
    ``(segment name, record count)`` when the scheduler published the
    workload's trace to shared memory, else None.
    """

    spec: WorkloadSpec
    system: SystemConfig
    n_branches: int
    pipeline: PipelineConfig | None = None
    use_result_cache: bool | None = None
    sampling: SamplingConfig | None = None
    shm_ref: tuple[str, int] | None = None
    #: Planned for the batch sweep kernel.  Set at *plan* time (not
    #: execute time) so the manifest hash and the engine that actually
    #: runs can never diverge — a batch job's cache entry is keyed with
    #: ``engine: "batch"`` and is invisible to exact-timing requests.
    batch: bool = False
    #: Requests the trace-guided specialized engine (bit-identical to
    #: exact; see :mod:`repro.pipeline.specialize`).  Like ``batch``,
    #: set at plan time so the manifest's ``engine`` tag — which folds
    #: ``SPECIALIZE_VERSION`` into ``config_hash`` — matches what
    #: :func:`~repro.harness.runner.run_single` actually does.  Sampled
    #: jobs ignore it (and drop the tag), mirroring run_single.
    specialize: bool = False

    def manifest(self) -> dict[str, Any]:
        """The provenance manifest this job's run would carry."""
        pipeline_cfg = self.pipeline if self.pipeline is not None else PipelineConfig()
        engine = None
        if self.batch:
            engine = "batch"
        elif self.specialize and not (
            self.sampling is not None and self.sampling.enabled
        ):
            from repro.harness.specialize import specialize_engine_tag

            engine = specialize_engine_tag()
        return build_manifest(
            self.spec,
            self.system,
            self.n_branches,
            pipeline_cfg,
            sampling=self.sampling,
            engine=engine,
        ).as_dict()


def execute_job(job: SimJob) -> Any:
    """Run one job in the current process (the executor entry point).

    Module-level (not a method) so :class:`ProcessPoolExecutorBackend`
    can pickle it to workers.  Seeds the worker-local trace memo from
    the job's shared-memory ref when present, then defers to
    :func:`repro.harness.runner.run_single` — the single simulation
    path every frontend shares.
    """
    from repro.harness.runner import _seed_memo_from_shm, run_single

    if job.shm_ref is not None:
        _seed_memo_from_shm(job.spec, job.n_branches, job.shm_ref)
    return run_single(
        job.spec,
        job.system,
        job.n_branches,
        job.pipeline,
        job.use_result_cache,
        job.sampling,
        specialize=job.specialize,
    )


def default_executor(
    n_jobs: int,
    n_systems: int,
    parallel: bool | None = None,
    workers: int | None = None,
) -> Executor:
    """The executor ``run_matrix`` historically picked.

    ``workers`` pins the process count (1 forces inline), ``parallel``
    is the explicit toggle, and ``None`` auto-enables fan-out at 8+
    jobs — exactly the pre-refactor thresholds.
    """
    from repro.harness.runner import _worker_count

    if workers is not None:
        parallel = workers > 1
    elif parallel is None:
        parallel = n_jobs >= 8
    if not parallel or n_jobs <= 1:
        return InlineExecutor()
    n_workers = _worker_count(n_jobs, override=workers)
    # Chunk so one worker handles all systems of a workload in
    # sequence: its worker-local trace memo then materialises each
    # trace exactly once.
    chunksize = max(1, min(n_systems, -(-n_jobs // n_workers)))
    return ProcessPoolExecutorBackend(workers=n_workers, chunksize=chunksize)


class Scheduler:
    """Plans and dispatches simulation jobs against an executor."""

    def __init__(self, use_result_cache: bool | None = None) -> None:
        #: Tri-state persistent-cache override applied to every job
        #: this scheduler plans (None = defer to ``REPRO_RESULT_CACHE``).
        self.use_result_cache = use_result_cache

    # ------------------------------------------------------------- #
    # planning

    def plan(
        self,
        workloads: Sequence[WorkloadSpec],
        systems: Sequence[SystemConfig],
        n_branches: int,
        pipeline: PipelineConfig | None = None,
        sampling: SamplingConfig | None = None,
        shard: tuple[int, int] | None = None,
        batch: bool = False,
        specialize: bool = False,
    ) -> list[SimJob]:
        """The workload-major job list, optionally shard-sliced.

        With ``batch=True``, jobs that the batch sweep kernel supports
        are marked ``batch=True`` whenever enough of them share one
        workload (see :func:`mark_batch_jobs`); marking happens *after*
        shard slicing so each shard makes its own grouping decision
        from the jobs it will actually run.  ``specialize=True``
        requests the trace-guided codegen engine on every exact job
        (batch-marked jobs keep their ``batch`` engine — the kernel is
        already vectorised).
        """
        from repro.harness.runner import shard_bounds

        jobs = [
            SimJob(
                spec=spec,
                system=system,
                n_branches=n_branches,
                pipeline=pipeline,
                use_result_cache=self.use_result_cache,
                sampling=sampling,
                specialize=specialize,
            )
            for spec in workloads
            for system in systems
        ]
        if shard is not None:
            start, end = shard_bounds(len(jobs), shard)
            jobs = jobs[start:end]
        if batch:
            from repro.harness.batch import mark_batch_jobs

            jobs = mark_batch_jobs(jobs)
        return jobs

    # ------------------------------------------------------------- #
    # cache interaction

    def cache(self) -> ResultCache | None:
        """The persistent result cache in effect, or None."""
        return active_cache(self.use_result_cache)

    def split_cached(
        self, jobs: Sequence[SimJob]
    ) -> tuple[dict[int, Any], list[SimJob]]:
        """Partition jobs into cache-answered results and work to run.

        Returns ``(hits, misses)`` where ``hits`` maps each job's index
        in ``jobs`` to its cached
        :class:`~repro.harness.runner.RunResult` and ``misses`` is the
        remaining jobs in order.  With no active cache every job is a
        miss.  This is how the service answers repeat queries without
        re-simulation while still counting exactly what it skipped.
        """
        cache = self.cache()
        hits: dict[int, Any] = {}
        misses: list[SimJob] = []
        if cache is None:
            return hits, list(jobs)
        for index, job in enumerate(jobs):
            cached = cache.load(job.manifest())
            if cached is not None:
                hits[index] = cached
            else:
                misses.append(job)
        return hits, misses

    # ------------------------------------------------------------- #
    # dispatch

    def run(
        self,
        jobs: Sequence[SimJob],
        executor: Executor | None = None,
        shm: bool = True,
    ) -> list[Any]:
        """Execute ``jobs`` on ``executor`` (default inline), in order.

        For executors that want shared traces (the local process pool),
        each workload's trace is generated once in this process and
        published to a shared-memory segment that workers attach
        instead of decoding; workloads whose every job will be answered
        by the persistent result cache skip generation entirely.
        Segments are unlinked on the way out even when a worker dies.
        """
        if executor is None:
            executor = InlineExecutor()
        if not jobs:
            return []
        if not (shm and executor.wants_shared_traces):
            return executor.execute(list(jobs))
        prepared, segments = self._prepare_shared_traces(jobs)
        try:
            return executor.execute(prepared)
        finally:
            for shared in segments:
                shared.unlink()

    def _prepare_shared_traces(
        self, jobs: Sequence[SimJob]
    ) -> tuple[list[SimJob], list[SharedTrace]]:
        """Pre-generate traces serially and publish them to shm.

        Serial generation means workers never race on producing the
        same trace (they would all write identical files, but the work
        would be duplicated).  Returns the jobs with ``shm_ref`` filled
        in plus the live segments the caller must unlink.
        """
        from repro.harness.runner import _shm_enabled, load_trace

        cache = self.cache()
        by_spec: OrderedDict[str, tuple[WorkloadSpec, list[SimJob]]] = OrderedDict()
        for job in jobs:
            by_spec.setdefault(job.spec.name, (job.spec, []))[1].append(job)
        shm_refs: dict[str, tuple[str, int]] = {}
        segments: list[SharedTrace] = []
        use_shm = _shm_enabled()
        try:
            for spec, spec_jobs in by_spec.values():
                if cache is not None and all(
                    cache.has(job.manifest()) for job in spec_jobs
                ):
                    continue
                records = load_trace(spec, spec_jobs[0].n_branches)
                if use_shm:
                    shared = ColumnarTrace.from_records(records).publish()
                    segments.append(shared)
                    shm_refs[spec.name] = (shared.name, len(records))
        except BaseException:
            for shared in segments:
                shared.unlink()
            raise
        prepared = [
            replace(job, shm_ref=shm_refs.get(job.spec.name)) for job in jobs
        ]
        return prepared, segments
