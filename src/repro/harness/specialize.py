"""Specialization policy: when the codegen fast path engages.

The engine itself (:mod:`repro.pipeline.specialize`) is pure — it
profiles, generates, guards, and aborts, with every knob passed in
explicitly.  Everything environmental lives here:

* :func:`specialize_enabled` — the ``REPRO_SPECIALIZE`` gate composed
  with the explicit ``--specialize`` flag (env ``off`` always wins,
  env ``on`` auto-enables runs that never passed the flag);
* :func:`specialize_engine_tag` — the manifest ``engine`` tag carrying
  :data:`~repro.pipeline.specialize.SPECIALIZE_VERSION`, folded into
  ``config_hash`` so specialized results get their own result-cache
  keys and a codegen change invalidates them;
* the ``REPRO_SPECIALIZE_PROFILE`` / ``REPRO_SPECIALIZE_CHECKPOINT``
  readers for the profile-prefix length and checkpoint interval, and
  ``REPRO_SPECIALIZE_FORCE_ABORT`` for exercising the guard-abort path
  end to end (testing/CI only).

Specialized runs are bit-identical to generic runs by construction, so
the engine tag is conservative rather than necessary — it keeps the
provenance story simple: a manifest says exactly which engine produced
its numbers.
"""

from __future__ import annotations

import os

from repro.errors import ConfigError
from repro.pipeline.specialize import (
    DEFAULT_CHECKPOINT_INTERVAL,
    DEFAULT_PROFILE_BRANCHES,
    SPECIALIZE_VERSION,
)

__all__ = [
    "SPECIALIZE_ENV",
    "SPECIALIZE_PROFILE_ENV",
    "SPECIALIZE_CHECKPOINT_ENV",
    "SPECIALIZE_FORCE_ABORT_ENV",
    "specialize_enabled",
    "specialize_engine_tag",
    "specialize_profile_branches",
    "specialize_checkpoint_interval",
    "specialize_force_abort",
]

#: Gate for the specialized engines: ``on``/``1`` auto-enables
#: specialization for every eligible exact run, ``off``/``0`` forces it
#: off even when ``--specialize`` was passed, unset defers to the flag.
SPECIALIZE_ENV = "REPRO_SPECIALIZE"

#: Override for the generic profile-prefix length (branches).
SPECIALIZE_PROFILE_ENV = "REPRO_SPECIALIZE_PROFILE"

#: Override for the checkpoint interval inside specialized spans.
SPECIALIZE_CHECKPOINT_ENV = "REPRO_SPECIALIZE_CHECKPOINT"

#: Force a guard abort after N specialized branches (testing/CI): the
#: run takes the full abort path — restore the last checkpoint, finish
#: generic — and must still be bit-identical.
SPECIALIZE_FORCE_ABORT_ENV = "REPRO_SPECIALIZE_FORCE_ABORT"

_OFF_VALUES = ("off", "0", "none", "false")
_ON_VALUES = ("on", "1", "true", "yes")


def specialize_enabled(explicit: bool | None = None) -> bool:
    """Resolve the gate from the flag and ``REPRO_SPECIALIZE``.

    ``explicit`` is the tri-state flag value: True (``--specialize``),
    False (caller forcing off), None (not specified).  The environment
    can veto (``off``) or volunteer (``on``); it never overrides an
    explicit False.
    """
    value = os.environ.get(SPECIALIZE_ENV)
    normalized = value.strip().lower() if value is not None else None
    if normalized in _OFF_VALUES:
        return False
    if explicit is not None:
        return explicit
    return normalized in _ON_VALUES


def specialize_engine_tag() -> str:
    """The manifest ``engine`` tag for specialization-requested runs.

    Carries the codegen version so a
    :data:`~repro.pipeline.specialize.SPECIALIZE_VERSION` bump changes
    ``config_hash`` and cached results from older codegen miss.
    """
    return f"specialize-v{SPECIALIZE_VERSION}"


def _positive_int_env(name: str, default: int) -> int:
    value = os.environ.get(name)
    if value is None:
        return default
    try:
        parsed = int(value)
    except ValueError:
        raise ConfigError(
            f"{name} must be a positive integer, got {value!r}"
        ) from None
    if parsed <= 0:
        raise ConfigError(f"{name} must be a positive integer, got {value!r}")
    return parsed


def specialize_profile_branches() -> int:
    """Profile-prefix length: ``REPRO_SPECIALIZE_PROFILE`` or default."""
    return _positive_int_env(SPECIALIZE_PROFILE_ENV, DEFAULT_PROFILE_BRANCHES)


def specialize_checkpoint_interval() -> int:
    """Checkpoint interval: ``REPRO_SPECIALIZE_CHECKPOINT`` or default."""
    return _positive_int_env(
        SPECIALIZE_CHECKPOINT_ENV, DEFAULT_CHECKPOINT_INTERVAL
    )


def specialize_force_abort() -> int | None:
    """Forced-abort position from the environment, or None.

    Returns the committed-branch index at which the driver must raise a
    guard trip (``REPRO_SPECIALIZE_FORCE_ABORT``); unset means never.
    Zero is valid — it aborts before the first specialized span, so the
    whole run executes generically through the abort machinery.
    """
    value = os.environ.get(SPECIALIZE_FORCE_ABORT_ENV)
    if value is None:
        return None
    try:
        parsed = int(value)
    except ValueError:
        raise ConfigError(
            f"{SPECIALIZE_FORCE_ABORT_ENV} must be a branch index, "
            f"got {value!r}"
        ) from None
    if parsed < 0:
        raise ConfigError(
            f"{SPECIALIZE_FORCE_ABORT_ENV} must be >= 0, got {value!r}"
        )
    return parsed
