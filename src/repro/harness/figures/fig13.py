"""Figure 13: limited-PC repair, scaling the repaired-PC count M.

Paper result: repairing even 2 well-chosen PCs beats port-limited
backward walk; gains scale with M; an 8-PC/32-entry snapshot-queue
variant retains 57% at 0.33KB.
"""

from __future__ import annotations

from repro.harness.figures.common import (
    PERFECT_SYSTEM,
    ensure_scale,
    retained_fraction,
    sweep,
)
from repro.harness.report import Figure
from repro.harness.scale import Scale
from repro.harness.systems import SystemConfig

__all__ = ["run", "PC_COUNTS"]

PC_COUNTS = (2, 4, 8, 16)


def _systems() -> list[SystemConfig]:
    systems = [
        SystemConfig(
            name=f"limited-{m}pc",
            scheme="limited",
            repair_count=m,
            limited_write_ports=min(m, 4),
        )
        for m in PC_COUNTS
    ]
    systems.append(
        SystemConfig(
            name="limited-8pc-sq32",
            scheme="limited",
            repair_count=8,
            limited_write_ports=4,
            limited_sq_entries=32,
        )
    )
    systems.append(
        SystemConfig(name="backward-walk", scheme="backward", ports="32-4-4")
    )
    systems.append(PERFECT_SYSTEM)
    return systems


def run(scale: Scale | None = None) -> Figure:
    scale = ensure_scale(scale)
    _, paired = sweep(_systems(), scale)

    figure = Figure("fig13", "Limited-PC repair: scaling the repaired set")
    labels = [f"limited-{m}pc" for m in PC_COUNTS] + [
        "limited-8pc-sq32",
        "backward-walk",
    ]
    retained = {label: retained_fraction(paired, label) for label in labels}
    figure.add_table(
        ["scheme", "retained"],
        [(label, f"{value * 100:.0f}%") for label, value in retained.items()],
    )
    figure.add_bars(list(retained), list(retained.values()))
    scaling = [retained[f"limited-{m}pc"] for m in PC_COUNTS]
    monotone = all(a <= b + 0.02 for a, b in zip(scaling, scaling[1:]))
    figure.add_section(
        f"scaling with M is {'monotone' if monotone else 'NOT monotone'}: "
        + ", ".join(f"{m}pc={v * 100:.0f}%" for m, v in zip(PC_COUNTS, scaling))
    )
    figure.data = {"retained": retained, "monotone": monotone}
    return figure
