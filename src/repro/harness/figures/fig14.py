"""Figure 14: sensitivity studies.

(A) Iso-storage: growing TAGE to ~9KB buys ~1% IPC, far less than
spending the same budget on CBPw-Loop plus forward-walk repair on top
of the 7.1KB TAGE (paper: ~3x more gain).

(B) A much larger 57KB TAGE baseline: the local predictor still adds
IPC (paper: +2.7% with perfect repair), and every repair technique
keeps working.
"""

from __future__ import annotations

from repro.harness.figures.common import ensure_scale, overall_row, sweep
from repro.harness.report import Figure
from repro.harness.runner import pair_results, run_matrix, select_workloads
from repro.harness.scale import Scale
from repro.harness.systems import SystemConfig

__all__ = ["run"]

_PART_A = [
    SystemConfig(name="tage-9kb", tage="kb9", local_entries=None, scheme=None),
    SystemConfig(name="tage8+forward-walk", scheme="forward", ports="32-4-2", coalesce=True),
    SystemConfig(name="tage8+perfect", scheme="perfect"),
]

_PART_B_BASE = SystemConfig(name="tage-57kb", tage="kb64", local_entries=None, scheme=None)
_PART_B = [
    SystemConfig(name="tage57+perfect", tage="kb64", scheme="perfect"),
    SystemConfig(name="tage57+forward-walk", tage="kb64", scheme="forward", ports="32-4-2", coalesce=True),
    SystemConfig(name="tage57+limited-4pc", tage="kb64", scheme="limited", repair_count=4, limited_write_ports=4),
    SystemConfig(name="tage57+split-bht", tage="kb64", scheme="multistage", ports="32-4-4"),
]


def run(scale: Scale | None = None) -> Figure:
    scale = ensure_scale(scale)
    figure = Figure("fig14", "Sensitivity: iso-storage TAGE and a 57KB baseline")

    # ---- part A: against the 7.1KB TAGE baseline -------------------
    _, paired_a = sweep(_PART_A, scale)
    gains_a = {name: overall_row(paired_a.get(name, []), "ipc") for name in (
        "tage-9kb", "tage8+forward-walk", "tage8+perfect")}
    figure.add_table(
        ["system", "IPC gain over TAGE-7.1KB"],
        [(name, f"{gain * 100:+.2f}%") for name, gain in gains_a.items()],
        title="(A) Iso-storage comparison",
    )
    if gains_a["tage-9kb"] > 0:
        ratio = gains_a["tage8+forward-walk"] / gains_a["tage-9kb"]
        figure.add_section(
            f"local predictor + forward walk gains {ratio:.1f}x the iso-storage "
            "TAGE scaling (paper: ~3x)"
        )

    # ---- part B: against the 57KB TAGE baseline --------------------
    workloads = select_workloads(scale)
    results_b = run_matrix(workloads, [_PART_B_BASE, *_PART_B], scale)
    paired_b = pair_results(results_b, _PART_B_BASE.name)
    gains_b = {cfg.name: overall_row(paired_b.get(cfg.name, []), "ipc") for cfg in _PART_B}
    figure.add_table(
        ["system", "IPC gain over TAGE-57KB"],
        [(name, f"{gain * 100:+.2f}%") for name, gain in gains_b.items()],
        title="(B) Large-baseline sensitivity",
    )
    figure.data = {"iso_storage": gains_a, "large_baseline": gains_b}
    return figure
