"""Figure 10: backward-walk HF and snapshot repair across M-N-P configs.

Config label M-N-P = checkpoint entries, checkpoint read ports, BHT
write ports.  Paper result: with lavish resources (64-64-64) both prior
techniques retain most of the perfect gains; at realistic port counts
backward walk drops to ~50% and the snapshot queue below that.
"""

from __future__ import annotations

from repro.harness.figures.common import (
    PERFECT_SYSTEM,
    ensure_scale,
    retained_fraction,
    sweep,
)
from repro.harness.report import Figure
from repro.harness.scale import Scale
from repro.harness.systems import SystemConfig

__all__ = ["run", "CONFIGS"]

CONFIGS = ("64-64-64", "64-8-8", "32-8-8", "32-4-4", "16-4-4")


def _systems() -> list[SystemConfig]:
    systems = []
    for ports in CONFIGS:
        systems.append(
            SystemConfig(name=f"backward-{ports}", scheme="backward", ports=ports)
        )
        systems.append(
            SystemConfig(name=f"snapshot-{ports}", scheme="snapshot", ports=ports)
        )
    systems.append(PERFECT_SYSTEM)
    return systems


def run(scale: Scale | None = None) -> Figure:
    scale = ensure_scale(scale)
    _, paired = sweep(_systems(), scale)

    figure = Figure("fig10", "Backward-walk and snapshot repair vs. M-N-P resources")
    rows = []
    retained: dict[str, float] = {}
    for ports in CONFIGS:
        backward = retained_fraction(paired, f"backward-{ports}")
        snapshot = retained_fraction(paired, f"snapshot-{ports}")
        retained[f"backward-{ports}"] = backward
        retained[f"snapshot-{ports}"] = snapshot
        rows.append((ports, f"{backward * 100:.0f}%", f"{snapshot * 100:.0f}%"))
    figure.add_table(
        ["config (M-N-P)", "backward-walk retained", "snapshot retained"], rows
    )
    figure.add_bars(
        [f"bwd {p}" for p in CONFIGS] + [f"snap {p}" for p in CONFIGS],
        [retained[f"backward-{p}"] for p in CONFIGS]
        + [retained[f"snapshot-{p}"] for p in CONFIGS],
        title="Fraction of perfect-repair IPC gains retained",
    )
    figure.data = {"retained": retained}
    return figure
