"""Table 3: summary of every repair technique.

For each of the paper's eleven rows: MPKI reduction, IPC gain, fraction
of the perfect-repair gains retained, total storage (TAGE + local
predictor + repair structures), and the repair port budget.
"""

from __future__ import annotations

from repro.core.storage import system_storage
from repro.harness.figures.common import ensure_scale, overall_row, retained_fraction, sweep
from repro.harness.report import Figure
from repro.harness.scale import Scale
from repro.harness.systems import (
    PAPER_TABLE3,
    TABLE3_SYSTEMS,
    SystemConfig,
    build_system,
)

__all__ = ["run"]


def _storage_and_ports(config: SystemConfig) -> tuple[float, str]:
    baseline, unit = build_system(config)
    breakdown = system_storage(baseline, unit)
    if unit is None:
        return breakdown.total_kb, "-"
    scheme = getattr(unit, "scheme", None)
    if scheme is None:
        return breakdown.total_kb, "-"
    reads, writes = scheme.repair_ports
    return breakdown.total_kb, f"{reads}R/{writes}W"


def run(scale: Scale | None = None) -> Figure:
    scale = ensure_scale(scale)
    systems = [cfg for cfg in TABLE3_SYSTEMS if not cfg.is_baseline]
    _, paired = sweep(systems, scale)

    figure = Figure("tab3", "Summary of repair techniques")
    rows = []
    data: dict[str, dict[str, float]] = {}
    for config in TABLE3_SYSTEMS:
        storage_kb, ports = _storage_and_ports(config)
        paper = PAPER_TABLE3.get(config.name, (0.0, 0.0, 0.0))
        if config.is_baseline:
            rows.append(
                (config.name, "-", "-", "-", f"{storage_kb:.1f}", ports,
                 f"{paper[0]:.1f}/{paper[1]:.2f}/{paper[2]:.0f}")
            )
            continue
        results = paired.get(config.name, [])
        mpki_red = overall_row(results, "mpki")
        ipc_gain = overall_row(results, "ipc")
        retained = retained_fraction(paired, config.name)
        data[config.name] = {
            "mpki_reduction": mpki_red,
            "ipc_gain": ipc_gain,
            "retained": retained,
            "storage_kb": storage_kb,
        }
        rows.append(
            (
                config.name,
                f"{mpki_red * 100:+.1f}%",
                f"{ipc_gain * 100:+.2f}%",
                f"{retained * 100:.0f}%",
                f"{storage_kb:.1f}",
                ports,
                f"{paper[0]:.1f}/{paper[1]:.2f}/{paper[2]:.0f}",
            )
        )
    figure.add_table(
        [
            "technique",
            "MPKI redn",
            "IPC gain",
            "retained",
            "storage KB",
            "repair ports",
            "paper (redn/gain/ret)",
        ],
        rows,
    )
    figure.data = {"rows": data}
    return figure
