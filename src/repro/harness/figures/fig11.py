"""Figure 11: forward-walk HF repair across configs, plus coalescing.

Paper result: FWD-32-4-2 retains 76% of the perfect-repair gains; OBQ
entry coalescing adds ~3.5 points (79.5%), because consecutive same-PC
instances (tight loops) stop exhausting OBQ entries.
"""

from __future__ import annotations

from repro.harness.figures.common import (
    PERFECT_SYSTEM,
    ensure_scale,
    retained_fraction,
    sweep,
)
from repro.harness.report import Figure
from repro.harness.scale import Scale
from repro.harness.systems import SystemConfig

__all__ = ["run", "CONFIGS"]

CONFIGS = ("64-4-4", "64-4-2", "32-4-4", "32-4-2")


def _systems() -> list[SystemConfig]:
    systems = [
        SystemConfig(name=f"forward-{ports}", scheme="forward", ports=ports)
        for ports in CONFIGS
    ]
    systems.append(
        SystemConfig(
            name="forward-32-4-2-coalesce", scheme="forward", ports="32-4-2", coalesce=True
        )
    )
    systems.append(PERFECT_SYSTEM)
    return systems


def run(scale: Scale | None = None) -> Figure:
    scale = ensure_scale(scale)
    _, paired = sweep(_systems(), scale)

    figure = Figure("fig11", "Forward-walk repair vs. resources, with OBQ coalescing")
    labels = [f"forward-{p}" for p in CONFIGS] + ["forward-32-4-2-coalesce"]
    retained = {label: retained_fraction(paired, label) for label in labels}
    figure.add_table(
        ["config", "retained"],
        [(label, f"{value * 100:.0f}%") for label, value in retained.items()],
    )
    figure.add_bars(
        list(retained),
        list(retained.values()),
        title="Fraction of perfect-repair IPC gains retained",
    )
    coalesce_delta = (
        retained["forward-32-4-2-coalesce"] - retained["forward-32-4-2"]
    )
    figure.add_section(
        f"coalescing adds {coalesce_delta * 100:+.1f} points on FWD-32-4-2 "
        "(paper: +3.5)"
    )
    figure.data = {"retained": retained, "coalesce_delta": coalesce_delta}
    return figure
