"""CLI: regenerate any paper figure or table.

Usage::

    python -m repro.harness.figures fig11 --scale small
    python -m repro.harness.figures all --scale smoke
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.harness.figures import EXPERIMENTS, run_experiment
from repro.harness.scale import SCALES, resolve_scale

__all__ = ["main"]


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-figures",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument(
        "experiment",
        help="experiment id (e.g. fig11, tab3) or 'all' / 'list'",
    )
    parser.add_argument(
        "--scale",
        default=None,
        choices=sorted(SCALES),
        help="run size (default: REPRO_SCALE env var or 'small')",
    )
    args = parser.parse_args(argv)

    if args.experiment == "list":
        for experiment_id, (_, description) in EXPERIMENTS.items():
            print(f"{experiment_id:8s} {description}")
        return 0

    scale = resolve_scale(args.scale) if args.scale else None
    ids = list(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    for experiment_id in ids:
        start = time.time()
        figure = run_experiment(experiment_id, scale)
        print(figure.render())
        print(f"\n[{experiment_id} completed in {time.time() - start:.1f}s]\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
