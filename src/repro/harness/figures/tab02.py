"""Table 2: simulator parameters.

Prints the core, predictor, and memory configuration actually used by
every experiment, next to the paper's Table 2 values — a one-look check
that the modelled machine is the paper's machine.
"""

from __future__ import annotations

from repro.core.loop_predictor import LoopPredictorConfig
from repro.harness.figures.common import ensure_scale
from repro.harness.report import Figure
from repro.harness.scale import Scale
from repro.memory.hierarchy import HierarchyConfig
from repro.pipeline.config import PipelineConfig
from repro.predictors.tage import TageConfig

__all__ = ["run"]


def run(scale: Scale | None = None) -> Figure:
    ensure_scale(scale)
    figure = Figure("tab2", "Simulator parameters (Table 2)")

    core = PipelineConfig.skylake()
    figure.add_table(
        ["parameter", "model", "paper"],
        [
            ("core width", f"{core.fetch_width}-wide OOO", "4-wide OOO"),
            ("ROB", f"{core.rob_entries} entries", "224 entries"),
            ("allocation queue", f"{core.alloc_queue_entries} entries", "64 entries"),
            ("load buffer", f"{core.load_buffer_entries} entries", "72 entries"),
            ("store buffer", f"{core.store_buffer_entries} entries", "56 entries"),
            ("BTB", f"{core.btb_entries} entries", "2K entries"),
            (
                "mispredict penalty",
                f"~{core.mispredict_penalty_estimate()} cycles",
                "(not stated)",
            ),
        ],
        title="Core",
    )

    tage = TageConfig.kb8()
    rows = [
        ("baseline TAGE", f"{tage.storage_kb():.1f} KB", "7.1 KB"),
        ("TAGE (iso-storage)", f"{TageConfig.kb9().storage_kb():.1f} KB", "~9 KB"),
        ("TAGE (64KB category)", f"{TageConfig.kb64().storage_kb():.1f} KB", "~57 KB"),
    ]
    for entries, paper_pt in ((256, "1.5 KB"), (128, "0.75 KB"), (64, "0.38 KB")):
        config = LoopPredictorConfig.entries(entries)
        rows.append(
            (
                f"CBPw-Loop{entries}",
                f"{entries}e 8-way BHT, PT {config.pt.storage_bits() / 8192:.2f} KB",
                f"{entries} entries, 8-way BHT, PT {paper_pt}",
            )
        )
    figure.add_table(["predictor", "model", "paper"], rows, title="Predictors")

    mem = HierarchyConfig.skylake()
    figure.add_table(
        ["level", "model", "paper"],
        [
            (
                "L1",
                f"{mem.l1.size_bytes // 1024}KB {mem.l1.ways}-way, {mem.l1.latency} cyc",
                "32KB 8-way, 5 cycles",
            ),
            (
                "L2",
                f"{mem.l2.size_bytes // 1024}KB {mem.l2.ways}-way, {mem.l2.latency} cyc",
                "256KB 8-way, 15 cycles",
            ),
            (
                "LLC",
                f"{mem.llc.size_bytes // (1024 * 1024)}MB {mem.llc.ways}-way, "
                f"{mem.llc.latency} cyc",
                "8MB 16-way, 40 cycles",
            ),
            ("DRAM", f"{mem.dram_latency} cycles", "dual-channel DDR4-2133"),
        ],
        title="Memory",
    )
    figure.data = {
        "rob_entries": core.rob_entries,
        "tage_kb": tage.storage_kb(),
        "l1_latency": mem.l1.latency,
    }
    return figure
