"""Figure 12: multi-stage prediction with a split BHT.

Paper result: the split-BHT design (shared or split PT) lands below
forward walk — the alloc-stage resteer penalty and the half-size tables
cost some gains — but needs no extra BHT ports for repair.
"""

from __future__ import annotations

from repro.harness.figures.common import (
    PERFECT_SYSTEM,
    ensure_scale,
    retained_fraction,
    sweep,
)
from repro.harness.report import Figure
from repro.harness.scale import Scale
from repro.harness.systems import SystemConfig

__all__ = ["run"]

_SYSTEMS = [
    SystemConfig(name="forward-walk", scheme="forward", ports="32-4-2"),
    SystemConfig(name="split-bht-shared-pt", scheme="multistage", ports="32-4-4"),
    SystemConfig(
        name="split-bht-split-pt", scheme="multistage", ports="32-4-4", split_pt=True
    ),
    PERFECT_SYSTEM,
]


def run(scale: Scale | None = None) -> Figure:
    scale = ensure_scale(scale)
    _, paired = sweep(_SYSTEMS, scale)

    figure = Figure("fig12", "Multi-stage prediction with split BHT")
    labels = ["forward-walk", "split-bht-shared-pt", "split-bht-split-pt"]
    retained = {label: retained_fraction(paired, label) for label in labels}
    figure.add_table(
        ["design", "retained", "note"],
        [
            ("forward-walk", f"{retained['forward-walk'] * 100:.0f}%", "reference (needs repair ports)"),
            (
                "split-bht-shared-pt",
                f"{retained['split-bht-shared-pt'] * 100:.0f}%",
                "no extra BHT ports",
            ),
            (
                "split-bht-split-pt",
                f"{retained['split-bht-split-pt'] * 100:.0f}%",
                "PT split per stage",
            ),
        ],
    )
    figure.add_bars(list(retained), list(retained.values()))
    figure.data = {"retained": retained}
    return figure
