"""Shared machinery for the per-figure reproduction modules."""

from __future__ import annotations

from collections.abc import Sequence

from repro.errors import ExperimentError
from repro.harness.runner import RunResult, pair_results, run_matrix, select_workloads
from repro.harness.scale import Scale, current_scale
from repro.harness.systems import SystemConfig
from repro.metrics.aggregate import CategorySummary, WorkloadResult, overall, summarize
from repro.metrics.basic import normalized_gain
from repro.pipeline.config import PipelineConfig
from repro.workloads.categories import CATEGORIES

__all__ = [
    "BASELINE_SYSTEM",
    "PERFECT_SYSTEM",
    "sweep",
    "category_rows",
    "overall_row",
    "retained_fraction",
    "ensure_scale",
]

BASELINE_SYSTEM = SystemConfig(name="baseline-tage", local_entries=None, scheme=None)
PERFECT_SYSTEM = SystemConfig(name="perfect-repair", scheme="perfect")


def ensure_scale(scale: Scale | None) -> Scale:
    """Default to the environment-selected scale."""
    return scale if scale is not None else current_scale()


def sweep(
    systems: Sequence[SystemConfig],
    scale: Scale,
    include_baseline: bool = True,
    pipeline: PipelineConfig | None = None,
) -> tuple[list[RunResult], dict[str, list[WorkloadResult]]]:
    """Run systems (plus the baseline) over the scale's workloads.

    Returns the raw results and the baseline-paired per-system results.
    """
    all_systems = list(systems)
    if include_baseline and all(
        s.name != BASELINE_SYSTEM.name for s in all_systems
    ):
        all_systems.insert(0, BASELINE_SYSTEM)
    workloads = select_workloads(scale)
    results = run_matrix(workloads, all_systems, scale, pipeline=pipeline)
    return results, pair_results(results, BASELINE_SYSTEM.name)


def category_rows(
    paired: Sequence[WorkloadResult], metric: str = "mpki"
) -> list[tuple[str, float]]:
    """Per-category aggregate of one system, in paper category order.

    ``metric`` is ``"mpki"`` (mean MPKI reduction) or ``"ipc"``
    (geomean IPC gain).  An ``overall`` row is appended.
    """
    grouped = summarize(list(paired))
    rows: list[tuple[str, float]] = []
    for category in CATEGORIES:
        summary = grouped.get(category)
        if summary is None:
            continue
        rows.append((category, _metric(summary, metric)))
    rows.append(("overall", _metric(overall(list(paired)), metric)))
    return rows


def _metric(summary: CategorySummary, metric: str) -> float:
    if metric == "mpki":
        return summary.mean_mpki_reduction
    if metric == "ipc":
        return summary.mean_ipc_gain
    raise ExperimentError(f"unknown metric {metric!r}")


def overall_row(paired: Sequence[WorkloadResult], metric: str = "ipc") -> float:
    """The overall aggregate of one system."""
    return _metric(overall(list(paired)), metric)


def retained_fraction(
    paired: dict[str, list[WorkloadResult]], system: str, perfect: str = "perfect-repair"
) -> float:
    """Fraction of the perfect-repair IPC gain a system retains."""
    if system not in paired or perfect not in paired:
        return 0.0
    return normalized_gain(
        overall_row(paired[system], "ipc"), overall_row(paired[perfect], "ipc")
    )
