"""Figure 4: the MPKI opportunity of local prediction, and how much of
it survives without repair.

Paper result: an ideal local predictor cuts MPKI ~44% across the
suite; with no BHT repair almost all of that opportunity is lost, and
the MM / BP categories actually *lose* versus the baseline.
"""

from __future__ import annotations

from repro.harness.figures.common import category_rows, ensure_scale, sweep
from repro.harness.report import Figure
from repro.harness.scale import Scale
from repro.harness.systems import SystemConfig

__all__ = ["run"]

#: The "highly accurate local predictor with no misprediction" proxy:
#: the largest CBPw-Loop with oracle repair.
_IDEAL = SystemConfig(name="ideal-local", local_entries=256, scheme="perfect")
_NO_REPAIR = SystemConfig(name="no-repair", local_entries=256, scheme="none")


def run(scale: Scale | None = None) -> Figure:
    scale = ensure_scale(scale)
    _, paired = sweep([_IDEAL, _NO_REPAIR], scale)

    ideal_rows = category_rows(paired.get("ideal-local", []), "mpki")
    none_rows = dict(category_rows(paired.get("no-repair", []), "mpki"))

    figure = Figure("fig4", "MPKI opportunity of local prediction vs. no repair")
    figure.add_table(
        ["category", "ideal local MPKI redn", "no-repair MPKI redn"],
        [
            (cat, f"{ideal * 100:+.1f}%", f"{none_rows.get(cat, 0.0) * 100:+.1f}%")
            for cat, ideal in ideal_rows
        ],
    )
    figure.add_bars(
        [cat for cat, _ in ideal_rows],
        [v for _, v in ideal_rows],
        title="Ideal local predictor MPKI reduction by category",
    )
    figure.add_bars(
        [cat for cat, _ in ideal_rows],
        [none_rows.get(cat, 0.0) for cat, _ in ideal_rows],
        title="No-repair MPKI reduction by category (paper: ~0, negative for MM/BP)",
    )
    figure.data = {
        "ideal": dict(ideal_rows),
        "no_repair": dict(none_rows),
    }
    return figure
