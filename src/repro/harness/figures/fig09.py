"""Figure 9: IPC impact of update-at-retire and no-repair.

Paper result: updating the BHT only at retirement keeps ~41% of the
perfect-repair gains (staleness costs the rest, and worsens with
pipeline depth); doing no repair at all keeps none.
"""

from __future__ import annotations

from repro.harness.figures.common import (
    PERFECT_SYSTEM,
    category_rows,
    ensure_scale,
    retained_fraction,
    sweep,
)
from repro.harness.report import Figure
from repro.harness.scale import Scale
from repro.harness.systems import SystemConfig

__all__ = ["run"]

_SYSTEMS = [
    SystemConfig(name="retire-update", scheme="retire"),
    SystemConfig(name="no-repair", scheme="none"),
    PERFECT_SYSTEM,
]


def run(scale: Scale | None = None) -> Figure:
    scale = ensure_scale(scale)
    _, paired = sweep(_SYSTEMS, scale)

    figure = Figure("fig9", "IPC impact of update-at-retire and no repair")
    retire_rows = category_rows(paired.get("retire-update", []), "ipc")
    none_rows = dict(category_rows(paired.get("no-repair", []), "ipc"))
    perfect_rows = dict(category_rows(paired.get("perfect-repair", []), "ipc"))

    figure.add_table(
        ["category", "retire-update IPC", "no-repair IPC", "perfect IPC"],
        [
            (
                cat,
                f"{gain * 100:+.2f}%",
                f"{none_rows.get(cat, 0.0) * 100:+.2f}%",
                f"{perfect_rows.get(cat, 0.0) * 100:+.2f}%",
            )
            for cat, gain in retire_rows
        ],
    )
    retire_retained = retained_fraction(paired, "retire-update")
    none_retained = retained_fraction(paired, "no-repair")
    figure.add_section(
        f"retained fraction of perfect gains: retire-update "
        f"{retire_retained * 100:.0f}% (paper 41%), no-repair "
        f"{none_retained * 100:.0f}% (paper ~0%)"
    )
    figure.data = {
        "retire": dict(retire_rows),
        "no_repair": none_rows,
        "perfect": perfect_rows,
        "retained": {"retire-update": retire_retained, "no-repair": none_retained},
    }
    return figure
