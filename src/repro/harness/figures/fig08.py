"""Figure 8: BHT repairs required per misprediction.

Measured with oracle repair, which restores exactly the state a real
scheme would have to: the per-event distinct-PC write count is the
repair demand.  Paper result: average ~5 (up to ~16 for some
workloads), worst case as high as 61 writes — why repair bandwidth is
a first-order design constraint.
"""

from __future__ import annotations

from repro.harness.figures.common import PERFECT_SYSTEM, ensure_scale, sweep
from repro.harness.report import Figure
from repro.harness.scale import Scale

__all__ = ["run"]


def run(scale: Scale | None = None) -> Figure:
    scale = ensure_scale(scale)
    results, _ = sweep([PERFECT_SYSTEM], scale, include_baseline=False)

    rows = []
    for result in results:
        repair = result.extra.get("repair", {})
        rows.append(
            (
                result.workload,
                result.category,
                f"{repair.get('mean_writes_per_event', 0.0):.1f}",
                repair.get("max_writes_per_event", 0),
            )
        )
    rows.sort(key=lambda r: float(r[2]), reverse=True)

    figure = Figure("fig8", "BHT repairs required per misprediction (perfect repair)")
    figure.add_table(["workload", "category", "avg repairs", "max repairs"], rows)
    means = [float(r[2]) for r in rows]
    maxes = [int(r[3]) for r in rows]
    if means:
        figure.add_section(
            f"suite: avg-of-avgs {sum(means) / len(means):.1f}, "
            f"highest workload avg {max(means):.1f}, worst case {max(maxes)} writes"
        )
    figure.data = {
        "per_workload": {r[0]: (float(r[2]), int(r[3])) for r in rows},
        "suite_mean": sum(means) / len(means) if means else 0.0,
        "suite_max": max(maxes) if maxes else 0,
    }
    return figure
