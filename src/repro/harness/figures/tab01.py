"""Table 1: the evaluated workload suite.

Reproduces the category composition (Server 29, HPC 8, ISPEC 34,
FSPEC 64, MM 15, BP 16, Personal 36 — 202 workloads) and characterises
a sample trace per category so the suite's branch behaviour is visible.
"""

from __future__ import annotations

from repro.harness.figures.common import ensure_scale
from repro.harness.report import Figure
from repro.harness.scale import Scale
from repro.trace.stats import collect_stats
from repro.workloads.categories import CATEGORY_COUNTS
from repro.workloads.generators.engine import generate_trace
from repro.workloads.suite import build_suite, suite_by_category

__all__ = ["run"]


def run(scale: Scale | None = None) -> Figure:
    scale = ensure_scale(scale)
    figure = Figure("tab1", "Evaluated workload suite (202 synthetic workloads)")

    grouped = suite_by_category()
    rows = []
    for category, specs in grouped.items():
        sample = specs[0]
        trace = generate_trace(sample, min(scale.branches_per_workload, 10_000))
        stats = collect_stats(trace)
        rows.append(
            (
                category,
                len(specs),
                sample.name,
                stats.static_sites,
                f"{stats.branch_density:.3f}",
                f"{stats.taken_rate:.2f}",
                f"{stats.mean_run_length():.1f}",
            )
        )
    figure.add_table(
        [
            "category",
            "count",
            "sample workload",
            "static sites",
            "br/inst",
            "taken rate",
            "mean run len",
        ],
        rows,
    )
    total = len(build_suite())
    figure.add_section(
        f"total workloads: {total} (paper: {sum(CATEGORY_COUNTS.values())})"
    )
    figure.data = {
        "counts": {cat: len(specs) for cat, specs in grouped.items()},
        "total": total,
    }
    return figure
