"""Figure 7: perfect-repair potential of CBPw-Loop{64,128,256}.

(a) MPKI reduction per category, (b) IPC gain per category, (c) the
per-workload IPC-gain S-curve for the default CBPw-Loop128.

Paper result: 28.3% / 30.5% / 31.2% MPKI reduction and 3.6% / 3.8% /
3.95% IPC gain for 64 / 128 / 256 entries; the S-curve spans from a
slight loss (eembc-dither, table thrash) to > 15% (cloud-compression,
tabletmark-email).
"""

from __future__ import annotations

from repro.harness.figures.common import category_rows, ensure_scale, overall_row, sweep
from repro.harness.report import Figure
from repro.harness.scale import Scale
from repro.harness.systems import SystemConfig
from repro.metrics.scurve import scurve

__all__ = ["run"]

_SIZES = (64, 128, 256)


def _system(entries: int) -> SystemConfig:
    return SystemConfig(name=f"loop{entries}-perfect", local_entries=entries, scheme="perfect")


def run(scale: Scale | None = None) -> Figure:
    scale = ensure_scale(scale)
    systems = [_system(entries) for entries in _SIZES]
    _, paired = sweep(systems, scale)

    figure = Figure("fig7", "Perfect-repair CBPw-Loop potential (MPKI, IPC, S-curve)")

    per_size = {
        entries: paired.get(f"loop{entries}-perfect", []) for entries in _SIZES
    }

    mpki_rows = {e: dict(category_rows(r, "mpki")) for e, r in per_size.items()}
    categories = list(mpki_rows[_SIZES[0]].keys())
    figure.add_table(
        ["category", *[f"loop{e} MPKI redn" for e in _SIZES]],
        [
            (cat, *[f"{mpki_rows[e].get(cat, 0.0) * 100:+.1f}%" for e in _SIZES])
            for cat in categories
        ],
        title="(a) MPKI reduction over TAGE",
    )

    ipc_rows = {e: dict(category_rows(r, "ipc")) for e, r in per_size.items()}
    figure.add_table(
        ["category", *[f"loop{e} IPC gain" for e in _SIZES]],
        [
            (cat, *[f"{ipc_rows[e].get(cat, 0.0) * 100:+.2f}%" for e in _SIZES])
            for cat in categories
        ],
        title="(b) IPC gain over TAGE",
    )

    curve = scurve(per_size[128])
    figure.add_table(
        ["rank", "workload", "category", "ipc gain"],
        [
            (p.rank, p.workload, p.category, f"{p.ipc_gain * 100:+.2f}%")
            for p in curve
        ],
        title="(c) IPC S-curve, CBPw-Loop128 with perfect repair",
    )

    figure.data = {
        "mpki": mpki_rows,
        "ipc": ipc_rows,
        "scurve": [(p.workload, p.ipc_gain) for p in curve],
        "overall_ipc": {e: overall_row(per_size[e], "ipc") for e in _SIZES},
        "overall_mpki": {e: overall_row(per_size[e], "mpki") for e in _SIZES},
    }
    return figure
