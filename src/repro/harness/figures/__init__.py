"""Per-figure/table reproduction entry points.

Each module exposes ``run(scale) -> Figure``.  The registry maps
experiment ids (as used in DESIGN.md and the benchmark files) to their
runners.
"""

from __future__ import annotations

from typing import Callable

from repro.errors import ExperimentError
from repro.harness.figures import (
    fig04,
    fig07,
    fig08,
    fig09,
    fig10,
    fig11,
    fig12,
    fig13,
    fig14,
    tab01,
    tab02,
    tab03,
)
from repro.harness.report import Figure
from repro.harness.scale import Scale

__all__ = ["EXPERIMENTS", "run_experiment"]

EXPERIMENTS: dict[str, tuple[Callable[[Scale | None], Figure], str]] = {
    "fig4": (fig04.run, "MPKI opportunity vs. no repair, per category"),
    "fig7": (fig07.run, "Perfect-repair potential: MPKI, IPC, S-curve"),
    "fig8": (fig08.run, "Repairs required per misprediction"),
    "fig9": (fig09.run, "Update-at-retire and no-repair IPC"),
    "fig10": (fig10.run, "Backward-walk and snapshot repair vs. resources"),
    "fig11": (fig11.run, "Forward-walk repair vs. resources + coalescing"),
    "fig12": (fig12.run, "Multi-stage prediction with split BHT"),
    "fig13": (fig13.run, "Limited-PC repair scaling"),
    "fig14": (fig14.run, "Sensitivity: iso-storage and 57KB TAGE"),
    "tab1": (tab01.run, "Workload suite composition"),
    "tab2": (tab02.run, "Simulator parameters"),
    "tab3": (tab03.run, "Summary of all repair techniques"),
}


def run_experiment(experiment_id: str, scale: Scale | None = None) -> Figure:
    """Run one experiment by id."""
    try:
        runner, _ = EXPERIMENTS[experiment_id]
    except KeyError:
        raise ExperimentError(
            f"unknown experiment {experiment_id!r}; choose from {sorted(EXPERIMENTS)}"
        ) from None
    return runner(scale)
