"""Experiment runner: (workload x system) sweeps with caching.

The runner generates each workload's trace once (disk-cached under
``.repro-cache/``), simulates every requested system against it, and
returns per-run measurements.  Sweeps fan out across processes when
more than a handful of runs are requested.
"""

from __future__ import annotations

import os
from collections import OrderedDict
from dataclasses import dataclass, field
from pathlib import Path
from time import perf_counter
from typing import Any, Sequence

from repro.errors import ConfigError, TraceError
from repro.harness.result_cache import active_cache
from repro.harness.sampling import SamplingConfig, run_sampled
from repro.harness.scale import Scale
from repro.harness.systems import SystemConfig, build_system
from repro.memory.hierarchy import CacheHierarchy
from repro.metrics.aggregate import WorkloadResult
from repro.pipeline.config import PipelineConfig
from repro.pipeline.core import PipelineModel
from repro.telemetry import TELEMETRY
from repro.telemetry.manifest import build_manifest
from repro.trace.columns import SharedTrace
from repro.trace.io import read_trace, write_trace
from repro.trace.records import BranchRecord
from repro.workloads.generators.engine import generate_trace
from repro.workloads.public import ImportedTraceSpec
from repro.workloads.spec import WorkloadSpec
from repro.workloads.suite import suite_by_category

__all__ = [
    "RunResult",
    "run_single",
    "run_matrix",
    "select_workloads",
    "shard_bounds",
    "trace_cache_path",
    "validate_shard",
    "pair_results",
]

_CACHE_ENV = "REPRO_TRACE_CACHE"
_WORKERS_ENV = "REPRO_WORKERS"
#: Gate for the shared-memory trace transport used by parallel sweeps.
#: Any of ``off``/``0``/``none``/``false`` disables it; default is on.
_SHM_ENV = "REPRO_TRACE_SHM"


@dataclass(frozen=True)
class RunResult:
    """One (workload, system) measurement."""

    workload: str
    category: str
    system: str
    ipc: float
    mpki: float
    instructions: int
    cycles: int
    mispredictions: int
    extra: dict[str, Any]
    #: Provenance record (config/workload hashes, versions, env, wall
    #: time) — see :mod:`repro.telemetry.manifest`.  None only for
    #: results loaded from pre-manifest files.
    manifest: dict[str, Any] | None = field(default=None, compare=False)


def _cache_dir() -> Path | None:
    """Trace cache directory, or None when caching is disabled."""
    value = os.environ.get(_CACHE_ENV, ".repro-cache")
    if value in ("", "off", "none"):
        return None
    return Path(value)


def _shm_enabled() -> bool:
    """Whether parallel sweeps ship traces over shared memory."""
    value = os.environ.get(_SHM_ENV, "on").lower()
    return value not in ("", "off", "0", "none", "false")


def _pid_alive(pid: int) -> bool:
    """Best-effort liveness probe for a writer PID on this host."""
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:  # pragma: no cover - other-user process
        return True
    except OSError:  # pragma: no cover - pid out of range etc.
        return False
    return True


def _sweep_stale_tmp(cache: Path) -> None:
    """Remove ``*.<pid>.tmp`` files whose writer process is gone.

    Crashed or killed sweeps leave their PID-unique temp files behind;
    because the PID is embedded in the name, any tmp file whose writer
    no longer exists is garbage by construction and safe to delete.
    Files of live writers (including our own) are left alone.
    """
    for tmp in cache.glob("*.tmp"):
        parts = tmp.name.split(".")
        if len(parts) < 3 or not parts[-2].isdigit():
            continue
        pid = int(parts[-2])
        if pid == os.getpid() or _pid_alive(pid):
            continue
        try:
            tmp.unlink()
        except OSError:  # pragma: no cover - already gone / perms
            pass


#: Worker-local memo of decoded traces.  A sweep hands each worker all
#: systems of one workload back to back (see the ``chunksize`` grouping
#: in :func:`run_matrix`), so a tiny LRU means each process decodes a
#: given trace once instead of once per system.  Entries are shared
#: lists of frozen records — callers must treat them as immutable.
_TRACE_MEMO: OrderedDict[tuple[str, int, int], list[BranchRecord]] = OrderedDict()
_TRACE_MEMO_MAX = 8


def _memo_put(key: tuple[str, int, int], records: list[BranchRecord]) -> None:
    _TRACE_MEMO[key] = records
    if len(_TRACE_MEMO) > _TRACE_MEMO_MAX:
        _TRACE_MEMO.popitem(last=False)


def trace_cache_path(spec: WorkloadSpec, n_branches: int) -> Path | None:
    """The on-disk cache file for a workload's trace, or None when off.

    The file is not guaranteed to exist — this is the *name* contract
    shared by :func:`load_trace` (which writes it) and the batch
    executor (which decodes it columnar-ly, skipping record objects).

    Imported traces (:class:`~repro.workloads.public.ImportedTraceSpec`)
    are their own cache: the store file is the whole trace, so it is
    usable whenever the run replays the full trace.  A truncating run
    (``n_branches`` below the stored length) returns None — whole-file
    columnar decoding would silently simulate too many records.
    """
    if isinstance(spec, ImportedTraceSpec):
        path = Path(spec.path)
        if n_branches >= spec.trace_records and path.exists():
            return path
        return None
    cache = _cache_dir()
    if cache is None:
        return None
    return cache / f"{spec.name}-{spec.seed}-{n_branches}.trace"


def _load_imported(spec: ImportedTraceSpec, n_branches: int) -> list[BranchRecord]:
    """Read an imported trace from the store, truncated to the run length.

    The store file is the source of truth — nothing is regenerated and
    nothing is written back.  Memoized under the same key scheme as
    synthetic traces so sweeps decode each imported trace once per
    process.
    """
    key = (spec.name, spec.seed, n_branches)
    records = _TRACE_MEMO.get(key)
    if records is not None:
        _TRACE_MEMO.move_to_end(key)
        return records
    TELEMETRY.registry.counter("trace.decodes").inc()
    path = Path(spec.path)
    if not path.exists():
        raise TraceError(
            f"imported trace {spec.name!r} is missing its store file {path}; "
            "re-run 'repro trace import' or 'repro trace fetch'"
        )
    records = read_trace(path)
    if n_branches < len(records):
        records = records[:n_branches]
    _memo_put(key, records)
    return records


def load_trace(spec: WorkloadSpec, n_branches: int) -> list[BranchRecord]:
    """Generate (or load from cache) the trace for ``spec``.

    Returns a memoized list shared across calls in this process — do
    not mutate it.  The disk cache is still populated on memo hits, so
    enabling ``REPRO_TRACE_CACHE`` mid-process behaves as if the memo
    did not exist.

    Imported traces skip the generator/cache machinery entirely and
    read their store file (see :func:`_load_imported`).
    """
    if isinstance(spec, ImportedTraceSpec):
        return _load_imported(spec, n_branches)
    key = (spec.name, spec.seed, n_branches)
    records = _TRACE_MEMO.get(key)
    if records is not None:
        _TRACE_MEMO.move_to_end(key)
    cache = _cache_dir()
    path = trace_cache_path(spec, n_branches)
    if cache is None or path is None:
        if records is None:
            TELEMETRY.registry.counter("trace.decodes").inc()
            records = generate_trace(spec, n_branches)
            _memo_put(key, records)
        return records
    if records is None:
        TELEMETRY.registry.counter("trace.decodes").inc()
        if path.exists():
            try:
                records = read_trace(path)
            except TraceError:
                # A truncated or corrupt cache file (interrupted writer,
                # disk trouble) is a cache miss, not a fatal error: drop
                # it and regenerate below.
                path.unlink(missing_ok=True)
            else:
                _memo_put(key, records)
                return records
        records = generate_trace(spec, n_branches)
        _memo_put(key, records)
    if not path.exists():
        cache.mkdir(parents=True, exist_ok=True)
        _sweep_stale_tmp(cache)
        # PID-unique tmp name: two uncoordinated processes generating
        # the same workload must not interleave writes into one tmp
        # file; the final rename stays atomic and the contents are
        # identical either way.
        tmp = path.with_name(f"{path.name}.{os.getpid()}.tmp")
        write_trace(tmp, records)
        tmp.replace(path)
    return records


def run_single(
    spec: WorkloadSpec,
    system: SystemConfig,
    n_branches: int,
    pipeline: PipelineConfig | None = None,
    use_result_cache: bool | None = None,
    sampling: SamplingConfig | None = None,
    specialize: bool = False,
) -> RunResult:
    """Simulate one system on one workload.

    When the persistent result cache is active (``REPRO_RESULT_CACHE``,
    or ``use_result_cache=True``) and holds a result for this exact
    (system, pipeline, workload recipe, trace length, code version,
    sampling configuration), that result is returned without loading
    the trace or simulating.

    ``sampling`` selects the sampled two-speed engine
    (:func:`repro.harness.sampling.run_sampled`); ``None`` or a config
    with ``mode="off"`` runs the exact simulation, bit-identically to
    runs made before sampling existed.

    ``specialize`` requests the trace-guided codegen fast path
    (:func:`repro.pipeline.specialize.run_specialized`) — bit-identical
    to the generic exact engine by construction.  Sampling and active
    telemetry force the generic engine: a sampled estimate is not an
    exact run, and specialized code elides the telemetry hooks.  A
    specialization-requested exact run carries an ``engine`` manifest
    tag (folded into ``config_hash``), and the decision the planner
    actually took is attached under ``manifest["specialize"]`` after
    hashing.
    """
    pipeline_cfg = pipeline if pipeline is not None else PipelineConfig()
    tel = TELEMETRY
    use_specialize = (
        specialize
        and not (sampling is not None and sampling.enabled)
        and not tel.enabled
    )
    engine_tag = None
    if use_specialize:
        from repro.harness.specialize import specialize_engine_tag

        engine_tag = specialize_engine_tag()
    manifest = build_manifest(
        spec, system, n_branches, pipeline_cfg, sampling=sampling,
        engine=engine_tag,
    ).as_dict()
    result_cache = active_cache(use_result_cache)
    if result_cache is not None:
        cached = result_cache.load(manifest)
        if cached is not None:
            return cached
    records = load_trace(spec, n_branches)
    baseline, unit = build_system(system)
    model = PipelineModel(
        baseline,
        unit=unit,
        config=pipeline_cfg,
        hierarchy=CacheHierarchy(),
    )
    if tel.enabled:
        tel.begin_run(spec.name, system.name, n_branches, manifest)
    t0 = perf_counter()
    if sampling is not None and sampling.enabled:
        stats = run_sampled(model, records, sampling)
    elif use_specialize:
        from repro.harness.specialize import (
            specialize_checkpoint_interval,
            specialize_force_abort,
            specialize_profile_branches,
        )
        from repro.pipeline.specialize import run_specialized

        stats, spec_info = run_specialized(
            model,
            records,
            config_hash=manifest["config_hash"],
            profile_branches=specialize_profile_branches(),
            checkpoint_interval=specialize_checkpoint_interval(),
            force_abort_at=specialize_force_abort(),
        )
        # Attached after build_manifest computed config_hash: the
        # decision describes the run, it must not shape the cache key.
        manifest["specialize"] = spec_info
    else:
        stats = model.run(records)
    manifest["wall_s"] = perf_counter() - t0
    if tel.enabled:
        tel.end_run(stats)
    result = RunResult(
        workload=spec.name,
        category=spec.category,
        system=system.name,
        ipc=stats.ipc,
        mpki=stats.mpki,
        instructions=stats.instructions,
        cycles=stats.cycles,
        mispredictions=stats.mispredictions,
        extra=stats.extra,
        manifest=manifest,
    )
    if result_cache is not None:
        result_cache.store(result)
    return result


def _seed_memo_from_shm(
    spec: WorkloadSpec, n_branches: int, ref: tuple[str, int]
) -> None:
    """Materialise a worker's trace from the parent's shared segment.

    Attaches at most once per (workload, length) per process — the
    worker-local memo serves every later system of the same workload —
    and never touches the trace file or generator, so workers do zero
    trace decodes (counted by the ``trace.decodes`` /
    ``trace.shm_attaches`` telemetry counters).
    """
    key = (spec.name, spec.seed, n_branches)
    if key in _TRACE_MEMO:
        _TRACE_MEMO.move_to_end(key)
        return
    name, count = ref
    shared = SharedTrace.attach(name, count)
    try:
        records = shared.to_records()
    finally:
        shared.close()
    TELEMETRY.registry.counter("trace.shm_attaches").inc()
    _memo_put(key, records)


def _worker_count(n_jobs: int, override: int | None = None) -> int:
    """Worker processes to use: explicit arg > REPRO_WORKERS env > CPUs."""
    if override is not None:
        return max(1, override)
    env = os.environ.get(_WORKERS_ENV)
    if env is not None:
        try:
            return max(1, int(env))
        except ValueError:
            raise ConfigError(
                f"{_WORKERS_ENV} must be an integer worker count, got {env!r}"
            ) from None
    cpus = os.cpu_count() or 1
    return max(1, min(cpus, n_jobs, 16))


def select_workloads(scale: Scale) -> list[WorkloadSpec]:
    """The workloads a scale simulates: first N of every category."""
    selected: list[WorkloadSpec] = []
    for specs in suite_by_category().values():
        selected.extend(specs[: scale.workload_count(len(specs))])
    return selected


def validate_shard(shard: tuple[int, int]) -> tuple[int, int]:
    """Check ``(k, n)`` shard coordinates, rejecting out-of-range pairs.

    Every consumer of ``--shard K/N`` — the CLI parser, the matrix
    runner, the sharded (remote-stub) executor, and the service's sweep
    requests — funnels through this check, so ``K > N``, ``K < 1`` and
    ``N < 1`` all fail loudly with a :class:`ConfigError` instead of
    silently selecting an empty or wrong partition.
    """
    k, n = shard
    if n < 1 or not 1 <= k <= n:
        raise ConfigError(f"shard must be K/N with 1 <= K <= N, got {k}/{n}")
    return k, n


def shard_bounds(count: int, shard: tuple[int, int]) -> tuple[int, int]:
    """[start, end) of 1-based shard ``(k, n)`` over ``count`` items.

    Contiguous balanced partition: sizes differ by at most one, every
    item lands in exactly one shard, and the split depends only on
    ``count`` and ``(k, n)`` — so N uncoordinated processes running
    ``--shard 1/N .. N/N`` cover the matrix exactly once.  Contiguity
    preserves the workload-major job order, keeping each workload's
    systems (and therefore its trace) on as few shards as possible.
    """
    k, n = validate_shard(shard)
    base, rem = divmod(count, n)
    start = (k - 1) * base + min(k - 1, rem)
    return start, start + base + (1 if k - 1 < rem else 0)


def run_matrix(
    workloads: Sequence[WorkloadSpec],
    systems: Sequence[SystemConfig],
    scale: Scale,
    pipeline: PipelineConfig | None = None,
    parallel: bool | None = None,
    workers: int | None = None,
    use_result_cache: bool | None = None,
    sampling: SamplingConfig | None = None,
    shard: tuple[int, int] | None = None,
    batch: bool | None = None,
    specialize: bool | None = None,
) -> list[RunResult]:
    """Run every system against every workload.

    Results come back grouped by workload then system, in input order.
    ``parallel=None`` auto-enables process fan-out for larger sweeps;
    ``workers`` pins the process count (overriding ``REPRO_WORKERS``),
    with ``workers=1`` forcing a sequential in-process sweep.
    ``use_result_cache`` is the tri-state persistent-cache override and
    ``sampling`` the interval-sampling configuration, both passed
    through to every :func:`run_single`.  ``shard=(k, n)`` runs only
    the k-th of n contiguous balanced partitions of the job list (see
    :func:`shard_bounds`).

    Parallel sweeps ship each workload's trace to the workers through
    one shared-memory segment (columnar layout, see
    :mod:`repro.trace.columns`) instead of having every worker re-read
    and decode the trace file; set ``REPRO_TRACE_SHM=off`` to fall back
    to per-worker decoding.  Segments are unlinked on the way out even
    when a worker dies mid-sweep.

    ``batch`` is the tri-state gate for the columnar batch sweep kernel
    (:mod:`repro.pipeline.batch`): ``True`` enables it, ``False``
    forces it off, and ``None`` defers to the ``REPRO_BATCH``
    environment variable.  When enabled, groups of table-indexed
    predictor configs sharing a workload are evaluated in one
    vectorised pass (exact predictions and MPKI, no pipeline timing);
    everything the kernel cannot express runs on the exact engine
    unchanged.  Telemetry capture forces the exact engine — batch
    results carry no per-run event streams.

    ``specialize`` is the tri-state gate for the trace-guided codegen
    fast path (:mod:`repro.pipeline.specialize`): ``True`` enables it,
    ``False`` forces it off, ``None`` defers to ``REPRO_SPECIALIZE``.
    Specialized runs are bit-identical to exact runs; sampling and
    telemetry force the generic engine per job (see
    :func:`run_single`).

    This is a thin wrapper over :class:`repro.harness.scheduler.Scheduler`
    — the same planning/dispatch path the ``repro serve`` service uses —
    and is bit-identical to the pre-scheduler implementation.
    """
    from repro.harness.batch import BatchExecutor, batch_enabled
    from repro.harness.scheduler import Scheduler, default_executor
    from repro.harness.specialize import specialize_enabled

    use_batch = batch_enabled(batch)
    use_specialize = specialize_enabled(specialize)
    if TELEMETRY.enabled:
        use_batch = False
        use_specialize = False
    scheduler = Scheduler(use_result_cache=use_result_cache)
    jobs = scheduler.plan(
        workloads,
        systems,
        scale.branches_per_workload,
        pipeline=pipeline,
        sampling=sampling,
        shard=shard,
        batch=use_batch,
        specialize=use_specialize,
    )
    executor = default_executor(
        len(jobs), len(systems), parallel=parallel, workers=workers
    )
    if use_batch and any(job.batch for job in jobs):
        executor = BatchExecutor(inner=executor)
    return scheduler.run(jobs, executor)


def pair_results(
    results: Sequence[RunResult], baseline_system: str
) -> dict[str, list[WorkloadResult]]:
    """Pair each system's runs with the baseline runs per workload.

    Returns {system name: [WorkloadResult...]} for every non-baseline
    system present in ``results``.
    """
    baselines = {r.workload: r for r in results if r.system == baseline_system}
    paired: dict[str, list[WorkloadResult]] = {}
    for result in results:
        if result.system == baseline_system:
            continue
        base = baselines.get(result.workload)
        if base is None:
            continue
        paired.setdefault(result.system, []).append(
            WorkloadResult(
                workload=result.workload,
                category=result.category,
                baseline_mpki=base.mpki,
                system_mpki=result.mpki,
                baseline_ipc=base.ipc,
                system_ipc=result.ipc,
            )
        )
    return paired
