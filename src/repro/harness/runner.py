"""Experiment runner: (workload x system) sweeps with caching.

The runner generates each workload's trace once (disk-cached under
``.repro-cache/``), simulates every requested system against it, and
returns per-run measurements.  Sweeps fan out across processes when
more than a handful of runs are requested.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from time import perf_counter
from typing import Any, Sequence

from repro.harness.scale import Scale
from repro.harness.systems import SystemConfig, build_system
from repro.memory.hierarchy import CacheHierarchy
from repro.metrics.aggregate import WorkloadResult
from repro.pipeline.config import PipelineConfig
from repro.pipeline.core import PipelineModel
from repro.telemetry import TELEMETRY
from repro.telemetry.manifest import build_manifest
from repro.trace.io import read_trace, write_trace
from repro.trace.records import BranchRecord
from repro.workloads.generators.engine import generate_trace
from repro.workloads.spec import WorkloadSpec
from repro.workloads.suite import suite_by_category

__all__ = ["RunResult", "run_single", "run_matrix", "select_workloads", "pair_results"]

_CACHE_ENV = "REPRO_TRACE_CACHE"
_WORKERS_ENV = "REPRO_WORKERS"


@dataclass(frozen=True)
class RunResult:
    """One (workload, system) measurement."""

    workload: str
    category: str
    system: str
    ipc: float
    mpki: float
    instructions: int
    cycles: int
    mispredictions: int
    extra: dict[str, Any]
    #: Provenance record (config/workload hashes, versions, env, wall
    #: time) — see :mod:`repro.telemetry.manifest`.  None only for
    #: results loaded from pre-manifest files.
    manifest: dict[str, Any] | None = field(default=None, compare=False)


def _cache_dir() -> Path | None:
    """Trace cache directory, or None when caching is disabled."""
    value = os.environ.get(_CACHE_ENV, ".repro-cache")
    if value in ("", "off", "none"):
        return None
    return Path(value)


def load_trace(spec: WorkloadSpec, n_branches: int) -> list[BranchRecord]:
    """Generate (or load from cache) the trace for ``spec``."""
    cache = _cache_dir()
    if cache is None:
        return generate_trace(spec, n_branches)
    path = cache / f"{spec.name}-{spec.seed}-{n_branches}.trace"
    if path.exists():
        return read_trace(path)
    records = generate_trace(spec, n_branches)
    cache.mkdir(parents=True, exist_ok=True)
    tmp = path.with_suffix(".tmp")
    write_trace(tmp, records)
    tmp.replace(path)
    return records


def run_single(
    spec: WorkloadSpec,
    system: SystemConfig,
    n_branches: int,
    pipeline: PipelineConfig | None = None,
) -> RunResult:
    """Simulate one system on one workload."""
    records = load_trace(spec, n_branches)
    baseline, unit = build_system(system)
    pipeline_cfg = pipeline if pipeline is not None else PipelineConfig()
    model = PipelineModel(
        baseline,
        unit=unit,
        config=pipeline_cfg,
        hierarchy=CacheHierarchy(),
    )
    manifest = build_manifest(spec, system, n_branches, pipeline_cfg).as_dict()
    tel = TELEMETRY
    if tel.enabled:
        tel.begin_run(spec.name, system.name, n_branches, manifest)
    t0 = perf_counter()
    stats = model.run(records)
    manifest["wall_s"] = perf_counter() - t0
    if tel.enabled:
        tel.end_run(stats)
    return RunResult(
        workload=spec.name,
        category=spec.category,
        system=system.name,
        ipc=stats.ipc,
        mpki=stats.mpki,
        instructions=stats.instructions,
        cycles=stats.cycles,
        mispredictions=stats.mispredictions,
        extra=stats.extra,
        manifest=manifest,
    )


def _run_job(
    job: tuple[WorkloadSpec, SystemConfig, int, PipelineConfig | None],
) -> RunResult:
    return run_single(*job)


def _worker_count(n_jobs: int, override: int | None = None) -> int:
    """Worker processes to use: explicit arg > REPRO_WORKERS env > CPUs."""
    if override is not None:
        return max(1, override)
    env = os.environ.get(_WORKERS_ENV)
    if env is not None:
        return max(1, int(env))
    cpus = os.cpu_count() or 1
    return max(1, min(cpus, n_jobs, 16))


def select_workloads(scale: Scale) -> list[WorkloadSpec]:
    """The workloads a scale simulates: first N of every category."""
    selected: list[WorkloadSpec] = []
    for specs in suite_by_category().values():
        selected.extend(specs[: scale.workload_count(len(specs))])
    return selected


def run_matrix(
    workloads: Sequence[WorkloadSpec],
    systems: Sequence[SystemConfig],
    scale: Scale,
    pipeline: PipelineConfig | None = None,
    parallel: bool | None = None,
    workers: int | None = None,
) -> list[RunResult]:
    """Run every system against every workload.

    Results come back grouped by workload then system, in input order.
    ``parallel=None`` auto-enables process fan-out for larger sweeps;
    ``workers`` pins the process count (overriding ``REPRO_WORKERS``),
    with ``workers=1`` forcing a sequential in-process sweep.
    """
    jobs = [
        (spec, system, scale.branches_per_workload, pipeline)
        for spec in workloads
        for system in systems
    ]
    if workers is not None:
        parallel = workers > 1
    elif parallel is None:
        parallel = len(jobs) >= 8
    if not parallel or len(jobs) <= 1:
        return [_run_job(job) for job in jobs]
    # Pre-populate the trace cache serially so workers don't race on
    # generation (they would all produce identical files, but the work
    # would be duplicated).
    for spec in workloads:
        load_trace(spec, scale.branches_per_workload)
    n_workers = _worker_count(len(jobs), override=workers)
    with ProcessPoolExecutor(max_workers=n_workers) as pool:
        return list(pool.map(_run_job, jobs, chunksize=1))


def pair_results(
    results: Sequence[RunResult], baseline_system: str
) -> dict[str, list[WorkloadResult]]:
    """Pair each system's runs with the baseline runs per workload.

    Returns {system name: [WorkloadResult...]} for every non-baseline
    system present in ``results``.
    """
    baselines = {r.workload: r for r in results if r.system == baseline_system}
    paired: dict[str, list[WorkloadResult]] = {}
    for result in results:
        if result.system == baseline_system:
            continue
        base = baselines.get(result.workload)
        if base is None:
            continue
        paired.setdefault(result.system, []).append(
            WorkloadResult(
                workload=result.workload,
                category=result.category,
                baseline_mpki=base.mpki,
                system_mpki=result.mpki,
                baseline_ipc=base.ipc,
                system_ipc=result.ipc,
            )
        )
    return paired
