"""Pluggable sweep executors: where scheduled jobs actually run.

The :class:`~repro.harness.scheduler.Scheduler` plans *what* to
simulate (a list of :class:`~repro.harness.scheduler.SimJob`); an
executor decides *where*.  Three strategies ship:

* :class:`InlineExecutor` — sequential, in this process.  Identical to
  a hand-written ``run_single`` loop: same trace memoization, same
  result-cache behaviour, bit-identical outputs.  The CLI's small runs
  and the service's default worker path use this.
* :class:`ProcessPoolExecutorBackend` — fan-out across local worker
  processes.  Jobs carry optional shared-memory trace refs published by
  the scheduler so workers do zero trace decodes (see
  :mod:`repro.trace.columns`).
* :class:`ShardedExecutor` — a *stub* remote executor: partitions the
  job list into N deterministic shards with
  :func:`~repro.harness.runner.shard_bounds` — exactly the contract of
  ``repro sweep --shard K/N`` — and dispatches each shard to an inner
  executor standing in for one remote host.  Replacing that inner
  executor with an SSH/HTTP transport is the multi-host growth path;
  the partitioning, ordering, and merge semantics are already final.

Executors are deliberately dumb: no cache checks, no trace
pre-generation, no telemetry policy — the scheduler owns all of that.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from concurrent.futures import ProcessPoolExecutor
from typing import TYPE_CHECKING, Sequence

from repro.telemetry import TELEMETRY

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.harness.runner import RunResult
    from repro.harness.scheduler import SimJob

__all__ = [
    "Executor",
    "InlineExecutor",
    "ProcessPoolExecutorBackend",
    "ShardedExecutor",
]


class Executor(ABC):
    """One strategy for executing a planned list of jobs, in order."""

    #: Short identifier used in logs, telemetry, and the service API.
    name: str = "abstract"

    #: Whether the scheduler should pre-generate traces and publish
    #: them to shared memory before calling :meth:`execute`.  Only the
    #: local process pool benefits; inline runs memoize in-process and
    #: remote hosts cannot attach another host's segments.
    wants_shared_traces: bool = False

    @abstractmethod
    def execute(self, jobs: "Sequence[SimJob]") -> "list[RunResult]":
        """Run every job, returning results in job order."""


class InlineExecutor(Executor):
    """Sequential execution in the calling process."""

    name = "inline"

    def execute(self, jobs: "Sequence[SimJob]") -> "list[RunResult]":
        from repro.harness.scheduler import execute_job

        return [execute_job(job) for job in jobs]


class ProcessPoolExecutorBackend(Executor):
    """Local multi-process fan-out over a :class:`ProcessPoolExecutor`.

    ``chunksize`` groups consecutive jobs onto one worker; the
    scheduler sizes it so a single worker handles all systems of a
    workload back to back and its trace memo pays one decode per trace.
    """

    name = "pool"
    wants_shared_traces = True

    def __init__(self, workers: int, chunksize: int = 1) -> None:
        self.workers = max(1, workers)
        self.chunksize = max(1, chunksize)

    def execute(self, jobs: "Sequence[SimJob]") -> "list[RunResult]":
        from repro.harness.scheduler import execute_job

        with ProcessPoolExecutor(max_workers=self.workers) as pool:
            return list(pool.map(execute_job, jobs, chunksize=self.chunksize))


class ShardedExecutor(Executor):
    """Stub remote executor: deterministic shards, one "host" each.

    Each shard is the contiguous balanced partition ``--shard K/N``
    would select, so a real remote deployment can swap the inner
    executor for a transport that runs ``repro sweep --shard K/N`` on
    host K and ship the results back — ordering and coverage are
    already guaranteed by :func:`~repro.harness.runner.shard_bounds`.
    """

    name = "sharded"

    def __init__(self, shards: int, inner: Executor | None = None) -> None:
        from repro.errors import ConfigError

        if shards < 1:
            raise ConfigError(f"ShardedExecutor needs shards >= 1, got {shards}")
        self.shards = shards
        self.inner = inner if inner is not None else InlineExecutor()

    def execute(self, jobs: "Sequence[SimJob]") -> "list[RunResult]":
        from repro.harness.runner import shard_bounds

        results: "list[RunResult]" = []
        for k in range(1, self.shards + 1):
            start, end = shard_bounds(len(jobs), (k, self.shards))
            if start == end:
                continue
            TELEMETRY.registry.counter("sched.shards_dispatched").inc()
            results.extend(self.inner.execute(jobs[start:end]))
        return results
