"""Sampled simulation: detailed intervals + functional fast-forward.

The full pipeline model costs tens of microseconds per branch; traces
long enough to show steady-state MPKI cost minutes per system.  This
module implements SMARTS/SimPoint-style interval sampling on top of the
two-speed engine:

* the trace is partitioned into **detailed intervals** (measured with
  the full :class:`~repro.pipeline.core.PipelineModel`) and
  **fast-forwarded spans** (streamed through predictor/BHT/PT state
  updates only, via
  :class:`~repro.pipeline.fastforward.FastForwardEngine`);
* immediately before each detailed interval a **warmup window** runs
  the full functional predictor (history-correct TAGE lookups, BTB and
  cache touches) so the measured interval starts with warm
  history-indexed state;
* whole-trace statistics are reconstructed with estimators matched to
  each counter class (see below), and the dispersion of the
  per-interval rates yields a CLT confidence band reported alongside
  the estimate.

Counter reconstruction uses three estimators, in decreasing order of
exactness:

* **trace-exact** — instructions, branches, conditional branches and
  taken conditionals are pure functions of the trace, so they are
  counted exactly in a single cheap pass (no sampling error at all);
* **ratio** — mispredictions are estimated as
  ``detailed_misp / detailed_proxy × total_proxy`` where the proxy is
  a tiny 2-bit bimodal predictor streamed over the *whole* trace in
  the same cheap pass.  The proxy absorbs the positional variance of
  systematic sampling (which interval positions happen to be hard) and
  leaves only the state-bias component, which warmup controls;
* **regression** — cycles are fit per run as
  ``cycles ≈ a·instructions + b·mispredictions`` over the detailed
  intervals (ordinary least squares through the origin), then applied
  to the trace-exact instruction count and the ratio-estimated
  misprediction count.  This transfers the positional-variance
  cancellation from the ratio estimator to IPC; when the fit is
  degenerate (one interval, or unphysical coefficients) it falls back
  to mean CPI × exact instructions;
* everything else (BTB misses, resteers, wrong-path counters, ROB
  stalls) uses plain Horvitz–Thompson scaling of per-interval deltas.

Two interval-selection modes:

``periodic``
    Systematic sampling (SMARTS): one detailed interval of ``interval``
    records per block of ``interval / coverage`` records, positioned at
    the *end* of its block so fast-forward has warmed state by
    measurement time.  Robust, assumption-free, and the mode the
    acceptance benchmark uses.

``simpoint``
    Phase sampling: :func:`repro.workloads.simpoint.select_phases`
    clusters interval branch-PC vectors and simulates one
    representative per phase, weighted by cluster population.  Far
    fewer detailed records on phase-stable traces, but inherits
    SimPoint's assumption that the clustering captures behaviour.

The estimate is exact in the limit ``coverage → 1`` and the default
configuration stays well inside the paper's reporting precision (see
``docs/performance.md`` for the error model and when *not* to sample).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from repro.errors import ConfigError
from repro.pipeline.core import PipelineModel
from repro.pipeline.fastforward import FastForwardEngine
from repro.pipeline.stats import SimStats
from repro.trace.records import BranchKind, BranchRecord

__all__ = [
    "SamplingConfig",
    "DetailedInterval",
    "plan_intervals",
    "run_sampled",
]

_MODES = ("off", "periodic", "simpoint")

#: SimStats integer counters extrapolated per interval.  ``cycles`` is
#: handled separately through :meth:`PipelineModel.current_cycle`.
_COUNTERS = (
    "instructions",
    "branches",
    "cond_branches",
    "taken_branches",
    "mispredictions",
    "base_wrong",
    "btb_misses",
    "early_resteers",
    "wrong_path_branches",
    "wrong_path_mispredicts",
    "rob_stall_cycles",
)


@dataclass(frozen=True, slots=True)
class SamplingConfig:
    """Interval-sampling parameters; hashed into the result-cache key."""

    #: ``off`` (exact simulation), ``periodic`` (SMARTS) or ``simpoint``.
    mode: str = "off"
    #: Detailed-interval length in trace records.  Longer intervals
    #: amortise the interval-start transient (cold tagged-table bias)
    #: at the cost of fewer sample positions.
    interval: int = 4000
    #: Target fraction of records simulated in detail (periodic mode).
    coverage: float = 0.1
    #: Records of full functional warmup before each detailed interval.
    #: Sized so history-indexed TAGE tables are hot by measurement time.
    warmup: int = 6000
    #: Cluster budget for simpoint mode.
    max_phases: int = 8
    #: Clustering seed for simpoint mode.
    seed: int = 42

    def __post_init__(self) -> None:
        if self.mode not in _MODES:
            raise ConfigError(f"unknown sampling mode: {self.mode!r}")
        if self.interval <= 0:
            raise ConfigError(f"interval must be positive: {self.interval}")
        if not 0.0 < self.coverage <= 1.0:
            raise ConfigError(f"coverage must be in (0, 1]: {self.coverage}")
        if self.warmup < 0:
            raise ConfigError(f"warmup must be non-negative: {self.warmup}")
        if self.max_phases <= 0:
            raise ConfigError(f"max_phases must be positive: {self.max_phases}")

    @property
    def enabled(self) -> bool:
        return self.mode != "off"

    def to_payload(self) -> dict[str, object]:
        """Stable mapping for manifests and cache keys."""
        return {
            "mode": self.mode,
            "interval": self.interval,
            "coverage": self.coverage,
            "warmup": self.warmup,
            "max_phases": self.max_phases,
            "seed": self.seed,
        }


@dataclass(frozen=True, slots=True)
class DetailedInterval:
    """One span measured in detail, representing ``scale``× its records."""

    #: First record index simulated in detail.
    start: int
    #: One-past-last record index.
    end: int
    #: Whole-trace records represented per detailed record.
    scale: float


def _plan_periodic(n_records: int, config: SamplingConfig) -> list[DetailedInterval]:
    """Systematic plan: last ``interval`` records of each block."""
    stride = max(1, round(1.0 / config.coverage))
    block = config.interval * stride
    plan: list[DetailedInterval] = []
    for block_start in range(0, n_records, block):
        block_end = min(block_start + block, n_records)
        start = max(block_start, block_end - config.interval)
        plan.append(
            DetailedInterval(
                start=start,
                end=block_end,
                scale=(block_end - block_start) / (block_end - start),
            )
        )
    return plan


def _plan_simpoint(
    records: Sequence[BranchRecord], config: SamplingConfig
) -> list[DetailedInterval]:
    """Phase plan: one representative interval per cluster."""
    from repro.workloads.simpoint import select_phases

    phases = select_phases(
        list(records),
        interval_size=config.interval,
        max_phases=config.max_phases,
        seed=config.seed,
    )
    n = len(records)
    plan = [
        DetailedInterval(
            start=phase.start,
            end=phase.end,
            scale=phase.weight * n / (phase.end - phase.start),
        )
        for phase in phases
    ]
    plan.sort(key=lambda iv: iv.start)
    return plan


def plan_intervals(
    records: Sequence[BranchRecord], config: SamplingConfig
) -> list[DetailedInterval]:
    """Detailed-interval plan for ``records``, sorted by position.

    The plan is non-overlapping, and the scales weight each interval by
    the fraction of the trace it represents (so the scaled detailed
    record counts sum to the trace length).
    """
    if not config.enabled:
        raise ConfigError("plan_intervals called with sampling off")
    if not records:
        return []
    if config.mode == "periodic":
        return _plan_periodic(len(records), config)
    return _plan_simpoint(records, config)


#: Size of the 2-bit bimodal proxy predictor (entries).
_PROXY_ENTRIES = 4096


def _proxy_pass(
    records: Sequence[BranchRecord], plan: Sequence[DetailedInterval]
) -> tuple[list[int], int, dict[str, int]]:
    """One cheap stream over the whole trace: proxy + exact counters.

    Runs a 4096-entry 2-bit bimodal predictor over every conditional
    branch, returning its misprediction count inside each planned
    interval and over the full trace (the ratio-estimator inputs), plus
    the trace-exact totals for the counters that need no sampling at
    all.  Costs ~0.15 µs per record — noise next to one detailed
    interval.
    """
    mask = _PROXY_ENTRIES - 1
    table = [2] * _PROXY_ENTRIES
    per_interval = [0] * len(plan)
    bounds = [(iv.start, iv.end) for iv in plan]
    bi = 0
    n_bounds = len(bounds)
    total = 0
    instructions = 0
    cond_n = 0
    taken_n = 0
    cond = BranchKind.COND
    for i, record in enumerate(records):
        instructions += record.inst_gap + 1
        if record.kind is not cond:
            continue
        cond_n += 1
        taken = record.taken
        if taken:
            taken_n += 1
        idx = (record.pc >> 2) & mask
        ctr = table[idx]
        if (ctr >= 2) != taken:
            total += 1
            while bi < n_bounds and i >= bounds[bi][1]:
                bi += 1
            if bi < n_bounds and bounds[bi][0] <= i:
                per_interval[bi] += 1
        if taken:
            if ctr < 3:
                table[idx] = ctr + 1
        elif ctr > 0:
            table[idx] = ctr - 1
    exact = {
        "instructions": instructions,
        "branches": len(records),
        "cond_branches": cond_n,
        # The pipeline counts taken *conditionals* here.
        "taken_branches": taken_n,
    }
    return per_interval, total, exact


def _fit_cycles(rows: Sequence[tuple[int, int, int]]) -> tuple[float, float]:
    """Least-squares ``cycles ≈ a·inst + b·misp`` over sampled intervals.

    Through-the-origin normal equations; falls back to mean CPI
    (``b = 0``) when the system is degenerate or the fit is unphysical
    (negative misprediction penalty or non-positive CPI).
    """
    s_ii = s_im = s_mm = s_ic = s_mc = 0.0
    for inst, misp, cyc in rows:
        s_ii += float(inst) * inst
        s_im += float(inst) * misp
        s_mm += float(misp) * misp
        s_ic += float(inst) * cyc
        s_mc += float(misp) * cyc
    det = s_ii * s_mm - s_im * s_im
    a = b = 0.0
    if det > 1e-12 * max(s_ii * s_mm, 1.0):
        a = (s_mm * s_ic - s_im * s_mc) / det
        b = (s_ii * s_mc - s_im * s_ic) / det
    if a <= 0.0 or b < 0.0:
        total_inst = sum(r[0] for r in rows)
        total_cyc = sum(r[2] for r in rows)
        a = total_cyc / total_inst if total_inst > 0 else 1.0
        b = 0.0
    return a, b


def _weighted_ci95(samples: list[tuple[float, float]]) -> float | None:
    """1.96 × the weighted standard error, or None under two samples."""
    if len(samples) < 2:
        return None
    total = sum(w for _, w in samples)
    if total <= 0.0:
        return None
    mean = sum(x * w for x, w in samples) / total
    var = sum(w * (x - mean) ** 2 for x, w in samples) / total
    return 1.96 * math.sqrt(var / len(samples))


def run_sampled(
    model: PipelineModel,
    records: Sequence[BranchRecord],
    config: SamplingConfig,
) -> SimStats:
    """Sampled simulation of ``records`` on a freshly built ``model``.

    Runs the plan's detailed intervals through the full pipeline with
    functional fast-forward (plus a ``config.warmup`` full-functional
    window) between them, then reconstructs whole-trace counters with
    the estimators described in the module docstring: trace-exact
    occupancy counts, ratio-estimated mispredictions, regression-fit
    cycles, and Horvitz–Thompson scaling for the rest.
    ``stats.extra["sampling"]`` carries the plan summary and the CLT
    95% confidence half-widths for MPKI and IPC.

    With sampling off the model simply runs exactly.
    """
    if not config.enabled:
        return model.run(records)
    plan = plan_intervals(records, config)
    if not plan:
        return model.run(records)

    proxy_per_iv, proxy_total, exact_totals = _proxy_pass(records, plan)

    ff = FastForwardEngine(
        model.baseline, model.unit, model.btb, model.hierarchy
    )
    stats = model.stats
    totals = {name: 0.0 for name in _COUNTERS}
    detailed_records = 0
    misp_detail = 0.0
    proxy_detail = 0.0
    cycle_rows: list[tuple[int, int, int]] = []
    mpki_samples: list[tuple[float, float]] = []
    ipc_samples: list[tuple[float, float]] = []
    last = len(plan) - 1
    cursor = 0
    final: SimStats | None = None

    for index, iv in enumerate(plan):
        warm_start = max(cursor, iv.start - config.warmup)
        ff.skip(records, cursor, warm_start)
        ff.warm(records, warm_start, iv.start)

        before = [getattr(stats, name) for name in _COUNTERS]
        cycle_before = model.current_cycle()
        model.run_segment(records[iv.start : iv.end])
        if index == last:
            # finalize() drains the ROB, so the closing cycle count
            # credits the last interval with its in-flight tail.
            final = model.finalize()
            cycle_after = final.cycles
        else:
            cycle_after = model.current_cycle()

        span = iv.end - iv.start
        detailed_records += span
        weight = iv.scale * span
        deltas = {
            name: getattr(stats, name) - prev
            for name, prev in zip(_COUNTERS, before)
        }
        cycle_delta = cycle_after - cycle_before
        for name, delta in deltas.items():
            totals[name] += delta * iv.scale
        misp_detail += deltas["mispredictions"] * iv.scale
        proxy_detail += proxy_per_iv[index] * iv.scale
        cycle_rows.append(
            (deltas["instructions"], deltas["mispredictions"], cycle_delta)
        )
        if deltas["instructions"] > 0:
            mpki_samples.append(
                (deltas["mispredictions"] * 1000.0 / deltas["instructions"], weight)
            )
            if cycle_delta > 0:
                ipc_samples.append(
                    (deltas["instructions"] / cycle_delta, weight)
                )
        cursor = iv.end

    if final is None:  # pragma: no cover - plan is non-empty here
        final = model.finalize()

    # Mispredictions: ratio against the whole-trace proxy when the
    # detailed spans saw any proxy misses; Horvitz–Thompson otherwise.
    if proxy_detail > 0.0 and proxy_total > 0:
        misp_est = misp_detail / proxy_detail * proxy_total
    else:
        misp_est = totals["mispredictions"]

    # Cycles: per-run linear model applied to the exact instruction
    # count and the estimated misprediction count.
    coef_inst, coef_misp = _fit_cycles(cycle_rows)
    cycles_est = coef_inst * exact_totals["instructions"] + coef_misp * misp_est

    result = SimStats()
    for name, value in totals.items():
        setattr(result, name, int(round(value)))
    for name, exact_value in exact_totals.items():
        setattr(result, name, exact_value)
    result.mispredictions = int(round(misp_est))
    result.cycles = max(int(round(cycles_est)), 1)
    # Component extras (BTB rate, memory, unit, repair) describe the
    # detailed + warmed stream, not the whole trace — still useful for
    # qualitative comparisons, labelled by the sampling block below.
    result.extra = dict(final.extra)
    result.extra["sampling"] = {
        "mode": config.mode,
        "interval": config.interval,
        "coverage": config.coverage,
        "warmup": config.warmup,
        "intervals": len(plan),
        "detailed_records": detailed_records,
        "detailed_fraction": detailed_records / len(records),
        "proxy_mispredictions": proxy_total,
        "cycle_fit": {"per_instruction": coef_inst, "per_misprediction": coef_misp},
        "ci95_mpki": _weighted_ci95(mpki_samples),
        "ci95_ipc": _weighted_ci95(ipc_samples),
    }
    return result
