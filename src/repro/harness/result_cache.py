"""Persistent result cache: simulate each (config, workload) pair once.

Figure sweeps share work heavily — every figure re-runs the same TAGE
baseline on the same workloads, and a re-invoked sweep repeats all of
its runs verbatim.  This module caches finished
:class:`~repro.harness.runner.RunResult` rows on disk, keyed by the
telemetry manifest's ``config_hash`` and ``workload_hash`` plus a
fingerprint of the library's own source code, so a result is reused
only when the exact configuration, workload recipe, trace length *and*
simulator code that produced it are all unchanged.

The cache is opt-in via ``REPRO_RESULT_CACHE``:

* unset / ``""`` / ``0`` / ``off`` / ``none`` / ``false`` — disabled;
* ``1`` / ``on`` / ``true`` — enabled at ``.repro-cache/results``;
* any other value — enabled at that directory.

Telemetry overrides the cache: while :data:`~repro.telemetry.TELEMETRY`
is enabled, runs always simulate for real, because metric registries
and event traces must come from an actual execution, not a disk read.
"""

from __future__ import annotations

import hashlib
import itertools
import json
import os
import threading
import time
from pathlib import Path
from typing import TYPE_CHECKING, Any

import repro
from repro.telemetry import TELEMETRY
from repro.telemetry.manifest import stable_hash

if TYPE_CHECKING:  # pragma: no cover - avoids a runner <-> cache cycle
    from repro.harness.runner import RunResult

__all__ = ["ResultCache", "active_cache", "cache_dir_from_env", "code_fingerprint"]

_RESULT_CACHE_ENV = "REPRO_RESULT_CACHE"
_DEFAULT_DIR = Path(".repro-cache") / "results"
_OFF_VALUES = frozenset({"", "0", "off", "none", "false"})
_ON_VALUES = frozenset({"1", "on", "true"})
_FORMAT_VERSION = 1

_FINGERPRINT: str | None = None

#: Per-process sequence for temp-file names.  Concurrent *processes*
#: are already distinguished by PID, and concurrent *threads* (the
#: ``repro serve`` worker pool) by thread id — the counter closes the
#: remaining hole where one thread writes the same entry twice before
#: the first rename lands.
_TMP_SEQ = itertools.count()

#: Atomic-replace retry schedule (seconds).  POSIX renames don't fail
#: transiently, but network filesystems and Windows can; retrying a
#: few times beats surfacing a spurious error for a cache write.
_REPLACE_RETRIES = (0.01, 0.05, 0.2)


def code_fingerprint() -> str:
    """Content hash of every ``repro`` source file (cached per process).

    Any edit to the simulator invalidates every cached result — the
    cache must never survive a model change, however small.
    """
    global _FINGERPRINT
    if _FINGERPRINT is None:
        root = Path(repro.__file__).resolve().parent
        digest = hashlib.sha256()
        for path in sorted(root.rglob("*.py")):
            digest.update(str(path.relative_to(root)).encode("utf-8"))
            digest.update(b"\0")
            digest.update(path.read_bytes())
            digest.update(b"\0")
        _FINGERPRINT = digest.hexdigest()[:16]
    return _FINGERPRINT


class ResultCache:
    """Directory of cached runs, one JSON document per (key) entry."""

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)

    def entry_path(self, manifest: dict[str, Any]) -> Path:
        """Cache file for the run a manifest describes."""
        key = stable_hash(
            {
                "config": manifest["config_hash"],
                "workload": manifest["workload_hash"],
                "code": code_fingerprint(),
            }
        )
        return self.root / f"{key}.json"

    def has(self, manifest: dict[str, Any]) -> bool:
        """Whether a (possibly stale-formatted) entry exists on disk."""
        return self.entry_path(manifest).exists()

    def load(self, manifest: dict[str, Any]) -> "RunResult | None":
        """Cached result for ``manifest``'s run, or None on a miss.

        Unreadable, truncated, or outdated-format entries are treated
        as misses — the caller re-simulates and overwrites them.
        """
        from repro.harness.runner import RunResult

        try:
            payload = json.loads(self.entry_path(manifest).read_text())
        except (OSError, json.JSONDecodeError):
            return None
        if payload.get("format_version") != _FORMAT_VERSION:
            return None
        row = payload.get("result")
        if not isinstance(row, dict):
            return None
        try:
            return RunResult(
                workload=row["workload"],
                category=row["category"],
                system=row["system"],
                ipc=row["ipc"],
                mpki=row["mpki"],
                instructions=row["instructions"],
                cycles=row["cycles"],
                mispredictions=row["mispredictions"],
                extra=row.get("extra", {}),
                manifest=row.get("manifest"),
            )
        except (KeyError, TypeError):
            return None

    def store(self, result: "RunResult") -> None:
        """Persist a freshly simulated result (atomic, race-safe).

        Writers never touch the final path directly: each writes a
        uniquely named temp file (PID + thread id + per-process
        sequence number, so concurrent CLI processes *and* the
        server's worker threads never collide) and atomically renames
        it into place with a short retry schedule.  Readers therefore
        only ever see absent or complete entries — partial writes
        cannot be interleaved — and concurrent writers of the same key
        are last-writer-wins over identical content.
        """
        manifest = result.manifest
        if manifest is None:
            return
        path = self.entry_path(manifest)
        payload = {
            "format_version": _FORMAT_VERSION,
            "repro_version": repro.__version__,
            "result": {
                "workload": result.workload,
                "category": result.category,
                "system": result.system,
                "ipc": result.ipc,
                "mpki": result.mpki,
                "instructions": result.instructions,
                "cycles": result.cycles,
                "mispredictions": result.mispredictions,
                "extra": result.extra,
                "manifest": manifest,
            },
        }
        self.root.mkdir(parents=True, exist_ok=True)
        tmp = path.with_name(
            f"{path.name}.{os.getpid()}.{threading.get_ident()}.{next(_TMP_SEQ)}.tmp"
        )
        try:
            tmp.write_text(json.dumps(payload, sort_keys=True))
            for delay in _REPLACE_RETRIES:
                try:
                    tmp.replace(path)
                    return
                except OSError:
                    time.sleep(delay)
            tmp.replace(path)
        finally:
            tmp.unlink(missing_ok=True)


def cache_dir_from_env() -> Path | None:
    """Result-cache directory selected by ``REPRO_RESULT_CACHE``."""
    value = os.environ.get(_RESULT_CACHE_ENV, "")
    lowered = value.strip().lower()
    if lowered in _OFF_VALUES:
        return None
    if lowered in _ON_VALUES:
        return _DEFAULT_DIR
    return Path(value)


def active_cache(use_result_cache: bool | None = None) -> ResultCache | None:
    """The cache the runner should consult, or None when disabled.

    Args:
        use_result_cache: Tri-state caller override — False forces the
            cache off (the ``--no-result-cache`` CLI flag), True forces
            it on (at the env-selected or default directory), and None
            defers entirely to ``REPRO_RESULT_CACHE``.

    Telemetry wins over everything: an enabled telemetry pipeline
    (metrics or tracing) disables the cache so its artifacts always
    reflect a real simulation.
    """
    if use_result_cache is False:
        return None
    if TELEMETRY.enabled:
        return None
    root = cache_dir_from_env()
    if root is None:
        if not use_result_cache:
            return None
        root = _DEFAULT_DIR
    return ResultCache(root)
