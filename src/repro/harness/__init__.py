"""Experiment harness: systems, runner, scaling, figure reproduction."""

from repro.harness.runner import RunResult, run_matrix, run_single, select_workloads
from repro.harness.scale import SCALES, Scale, current_scale, resolve_scale
from repro.harness.systems import (
    PAPER_TABLE3,
    TABLE3_SYSTEMS,
    SystemConfig,
    build_system,
)

__all__ = [
    "SystemConfig",
    "build_system",
    "TABLE3_SYSTEMS",
    "PAPER_TABLE3",
    "RunResult",
    "run_single",
    "run_matrix",
    "select_workloads",
    "Scale",
    "SCALES",
    "current_scale",
    "resolve_scale",
]
