"""Generic two-level local predictor (Yeh & Patt style).

The paper's repair techniques are demonstrated on the loop predictor but
claimed to extend to any local predictor: "the difference ... is only in
the state saved and restored" (§1).  This predictor substantiates that
claim inside this repository — it plugs into every repair scheme through
the same :class:`~repro.core.local_base.LocalPredictorCore` interface,
with BHT state holding an h-bit direction pattern instead of a counter.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.bht import BhtConfig, BranchHistoryTable
from repro.core.local_base import LocalPrediction, LocalPredictorCore, SpecUpdate
from repro.errors import ConfigError

__all__ = ["TwoLevelLocalConfig", "TwoLevelLocalPredictor"]


@dataclass(frozen=True)
class TwoLevelLocalConfig:
    """Sizing for the generic local predictor."""

    bht_entries: int = 128
    bht_ways: int = 8
    history_bits: int = 10
    pt_log_entries: int = 11
    counter_bits: int = 3
    #: Counter distance from the decision boundary required to override.
    confidence_margin: int = 3
    #: Per-entry consecutive-correct streak required before overriding —
    #: filters biased-noise branches whose shared counters saturate
    #: without being reliably predictable.
    entry_confidence: int = 3
    entry_confidence_max: int = 7

    def __post_init__(self) -> None:
        if not 1 <= self.history_bits <= 20:
            raise ConfigError(f"history_bits out of range: {self.history_bits}")
        if self.counter_bits < 2:
            raise ConfigError("counter_bits must be >= 2 for a confidence margin")
        half = 1 << (self.counter_bits - 1)
        if not 1 <= self.confidence_margin <= half:
            raise ConfigError(
                f"confidence_margin {self.confidence_margin} out of range 1..{half}"
            )

    def storage_bits(self) -> int:
        bht = BhtConfig(
            entries=self.bht_entries,
            ways=self.bht_ways,
            state_bits=self.history_bits,
        ).storage_bits()
        conf_bits = self.entry_confidence_max.bit_length() * self.bht_entries
        return bht + (1 << self.pt_log_entries) * self.counter_bits + conf_bits


class TwoLevelLocalPredictor(LocalPredictorCore):
    """BHT of per-PC direction patterns + shared counter pattern table."""

    name = "two-level-local"

    def __init__(self, config: TwoLevelLocalConfig | None = None) -> None:
        self.config = config = config if config is not None else TwoLevelLocalConfig()
        self.bht = BranchHistoryTable(
            BhtConfig(
                entries=config.bht_entries,
                ways=config.bht_ways,
                state_bits=config.history_bits,
            )
        )
        self._state_mask = (1 << config.history_bits) - 1
        self._pt_mask = (1 << config.pt_log_entries) - 1
        mid = 1 << (config.counter_bits - 1)
        self._pt = [mid] * (1 << config.pt_log_entries)
        self._ctr_max = (1 << config.counter_bits) - 1
        self._mid = mid
        self._margin = config.confidence_margin
        #: Per-PC consecutive-correct streak (conceptually a few bits in
        #: each BHT entry; kept separate so BHT state stays opaque).
        self._entry_conf: dict[int, int] = {}

    def _pt_index(self, pc: int, state: int) -> int:
        return (state ^ (pc >> 2) ^ (pc >> 12)) & self._pt_mask

    def _counter_prediction(self, pc: int, state: int) -> bool | None:
        """Counter-table direction, or None below the margin."""
        ctr = self._pt[self._pt_index(pc, state)]
        # Distance from the weakly-taken boundary acts as confidence.
        if ctr >= self._mid:
            if ctr - self._mid + 1 < self._margin:
                return None
            return True
        if self._mid - ctr < self._margin:
            return None
        return False

    def lookup(self, pc: int) -> LocalPrediction | None:
        slot = self.bht.find(pc)
        if slot < 0 or not self.bht.is_valid(slot):
            return None
        state = self.bht.state_at(slot)
        taken = self._counter_prediction(pc, state)
        if taken is None:
            return None
        if self._entry_conf.get(pc, 0) < self.config.entry_confidence:
            return None
        self.bht.touch(slot)
        return LocalPrediction(pc=pc, taken=taken, count=state)

    def next_state(self, state: int, taken: bool) -> int:
        return ((state << 1) | (1 if taken else 0)) & self._state_mask

    def initial_state(self, taken: bool) -> int:
        return 1 if taken else 0

    def spec_update(self, pc: int, taken: bool) -> SpecUpdate:
        slot = self.bht.find(pc)
        if slot < 0:
            state = 1 if taken else 0
            slot = self.bht.allocate(pc, state)
            return SpecUpdate(
                pc=pc, slot=slot, pre_state=None, pre_valid=False, post_state=state
            )
        pre_state = self.bht.state_at(slot)
        pre_valid = self.bht.is_valid(slot)
        post_state = self.next_state(pre_state, taken)
        self.bht.set_state(slot, post_state)
        self.bht.touch(slot)
        # For a pattern predictor, corrupt bits shift out after
        # history_bits updates; we model the "recovers naturally" effect
        # by re-validating unconditionally (the PT confidence margin
        # already guards early predictions).
        self.bht.set_valid(slot, True)
        return SpecUpdate(
            pc=pc,
            slot=slot,
            pre_state=pre_state,
            pre_valid=pre_valid,
            post_state=post_state,
        )

    def spec_advance(self, pc: int, taken: bool) -> int | None:
        # Fused fast-forward advance: the same writes as spec_update
        # without building the SpecUpdate receipt (nothing undoes a
        # fast-forwarded span).
        bht = self.bht
        slot = bht.find(pc)
        if slot < 0:
            bht.allocate(pc, 1 if taken else 0)
            return None
        pre_state = bht.state_at(slot)
        bht.set_state(slot, ((pre_state << 1) | (1 if taken else 0)) & self._state_mask)
        bht.touch(slot)
        bht.set_valid(slot, True)
        return pre_state

    def train(
        self,
        pc: int,
        pre_state: int | None,
        taken: bool,
        predicted: bool | None = None,
    ) -> None:
        if pre_state is None:
            pre_state = 0
        # Per-entry confidence trains on what the tables *would* have
        # said for this instance, whether or not a prediction was issued
        # — streaks build while the entry is still quarantined.
        virtual = self._counter_prediction(pc, pre_state)
        if virtual is not None:
            if virtual == taken:
                conf = self._entry_conf.get(pc, 0)
                if conf < self.config.entry_confidence_max:
                    self._entry_conf[pc] = conf + 1
            else:
                self._entry_conf[pc] = 0
        index = self._pt_index(pc, pre_state)
        ctr = self._pt[index]
        if taken:
            if ctr < self._ctr_max:
                self._pt[index] = ctr + 1
        elif ctr > 0:
            self._pt[index] = ctr - 1

    def storage_bits(self) -> int:
        return self.config.storage_bits()
