"""Local branch unit: local predictor + repair scheme, as the pipeline
sees them.

The unit implements the per-branch event sequence of Figure 3A:

1. ``predict`` (fetch): BHT/PT lookup, override decision against the
   baseline prediction, then the speculative BHT update and checkpoint;
2. ``at_alloc`` (allocation stage): a hook for multi-stage designs —
   the standard unit does nothing here;
3. ``resolve`` (execution): PT/confidence training and, on a
   misprediction, the repair scheme's walk;
4. ``retire``: checkpoint release (and, for update-at-retire, the
   architectural BHT update).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

from repro.core.inflight import InflightBranch
from repro.core.local_base import LocalPredictorCore

if TYPE_CHECKING:  # pragma: no cover - avoids a unit <-> repair cycle
    from repro.core.repair.base import RepairScheme
    from repro.trace.records import BranchRecord

__all__ = ["UnitStats", "LocalBranchUnit", "StandardLocalUnit"]


@dataclass(slots=True)
class UnitStats:
    """Prediction-path counters for one local branch unit."""

    lookups: int = 0
    #: Lookups that produced a confident local prediction.
    local_predictions: int = 0
    #: Local predictions whose direction differed from the baseline.
    overrides: int = 0
    #: Overrides where the local direction was right and TAGE was wrong.
    saves: int = 0
    #: Overrides where the local direction was wrong and TAGE was right.
    damages: int = 0
    #: Lookups denied because the BHT was busy repairing (§2.5a).
    denied_busy: int = 0
    #: Speculative updates dropped during repair windows (§2.5b).
    blocked_updates: int = 0
    #: Deferred-stage overrides that re-steered the pipeline (§3.2).
    early_resteers: int = 0


class LocalBranchUnit(abc.ABC):
    """Pipeline-facing interface of a repairable local predictor."""

    #: Chooser range and use-threshold (CBPw ``WITHLOOP`` mechanism):
    #: local overrides are only applied while past overrides have been
    #: net-winning.  This is what keeps a local predictor from dragging
    #: the machine below baseline when its state is mismanaged — without
    #: it, no-repair configurations lose far more than the paper shows.
    _CHOOSER_MAX = 15
    _CHOOSER_USE = 8

    def __init__(self) -> None:
        self.stats = UnitStats()
        self._chooser = self._CHOOSER_USE + 1

    @property
    def override_enabled(self) -> bool:
        """Whether differing local predictions are currently applied."""
        return self._chooser >= self._CHOOSER_USE

    def _train_chooser(self, branch: InflightBranch) -> None:
        """Adapt the chooser on every resolved differing prediction."""
        lp = branch.local_pred
        tage = branch.tage_pred
        if lp is None or tage is None or lp.taken == tage.taken:
            return
        if lp.taken == branch.actual_taken:
            if self._chooser < self._CHOOSER_MAX:
                self._chooser += 1
        elif self._chooser > 0:
            self._chooser -= 1

    @abc.abstractmethod
    def predict(self, branch: InflightBranch, base_taken: bool, cycle: int) -> bool:
        """Fetch-stage prediction; returns the final direction."""

    def warm(self, record: "BranchRecord") -> None:
        """Architectural warmup with one committed conditional outcome.

        Functional fast-forward (``repro.pipeline.fastforward``) calls
        this instead of the predict/resolve/retire sequence: advance
        the BHT state and train the PT with the *actual* direction,
        bypassing timing, checkpoints, override bookkeeping, and
        repair (no mispredictions exist when every outcome is known).
        The default is a no-op — a unit that does not override simply
        enters detailed intervals colder, which the detailed warmup
        window then compensates for.
        """

    def at_alloc(self, branch: InflightBranch, cycle: int) -> bool:
        """Allocation-stage hook; may revise the direction (multi-stage)."""
        return branch.predicted_taken

    @abc.abstractmethod
    def resolve(
        self, branch: InflightBranch, flushed: Sequence[InflightBranch], cycle: int
    ) -> None:
        """Execution-stage resolution: train, and repair on mispredicts."""

    @abc.abstractmethod
    def retire(self, branch: InflightBranch, cycle: int) -> None:
        """In-order retirement."""

    @abc.abstractmethod
    def storage_bits(self) -> int:
        """Local predictor + repair storage."""

    def _note_override_outcome(self, branch: InflightBranch) -> None:
        """Classify a resolved local-used prediction for the stats."""
        lp = branch.local_pred
        if lp is None or not branch.local_used:
            return
        actual = branch.actual_taken
        tage = branch.tage_pred
        tage_taken = tage.taken if tage is not None else actual
        if lp.taken != tage_taken:
            if lp.taken == actual:
                self.stats.saves += 1
            else:
                self.stats.damages += 1


class StandardLocalUnit(LocalBranchUnit):
    """Single-stage local predictor at the branch prediction stage."""

    def __init__(self, local: LocalPredictorCore, scheme: "RepairScheme") -> None:
        super().__init__()
        self.local = local
        self.scheme = scheme
        scheme.attach(local)
        self.name = f"{local.name}+{scheme.name}"

    # ------------------------------------------------------------- #

    def predict(self, branch: InflightBranch, base_taken: bool, cycle: int) -> bool:
        pc = branch.pc
        stats = self.stats
        scheme = self.scheme
        stats.lookups += 1

        local_pred = None
        if scheme.can_predict(pc, cycle):
            local_pred = self.local.lookup(pc)
        else:
            stats.denied_busy += 1

        final = base_taken
        branch.local_pred = local_pred
        if local_pred is not None:
            stats.local_predictions += 1
            if local_pred.taken == base_taken:
                branch.local_used = True
            elif self.override_enabled:
                branch.local_used = True
                final = local_pred.taken
                stats.overrides += 1
        branch.predicted_taken = final

        if scheme.speculative_updates:
            if scheme.can_update(pc, cycle):
                scheme.before_update(branch, cycle)
                branch.spec = self.local.spec_update(pc, final)
                scheme.on_spec_update(branch, cycle)
            else:
                # §2.5(b): the entry cannot take a trustworthy update
                # mid-repair; invalidate it rather than let a desynced
                # count keep issuing overrides.  The valid bit returns
                # when the branch flips direction and the state resets.
                stats.blocked_updates += 1
                self.local.bht.invalidate_pc(pc)
                branch.spec = None
                branch.checkpointed = False
        return final

    def warm(self, record: "BranchRecord") -> None:
        """One architectural BHT advance + PT train with the outcome."""
        self.local.warm(record.pc, record.taken)

    def resolve(
        self, branch: InflightBranch, flushed: Sequence[InflightBranch], cycle: int
    ) -> None:
        if not branch.wrong_path and branch.record.kind.is_conditional:
            if self.scheme.speculative_updates:
                pre = branch.spec.pre_state if branch.spec is not None else None
                # Confidence is penalized only for predictions that
                # were actually issued to the pipeline: hardware sees a
                # "loop predictor misprediction" only when the loop
                # predictor provided the final direction.
                own = branch.local_pred.taken if branch.local_used else None
                self.local.train(branch.pc, pre, branch.actual_taken, own)
            self.scheme.note_resolution(branch, cycle)
            self._train_chooser(branch)
            self._note_override_outcome(branch)
        if branch.mispredicted:
            self.scheme.on_mispredict(branch, flushed, cycle)

    def retire(self, branch: InflightBranch, cycle: int) -> None:
        if (
            not self.scheme.speculative_updates
            and branch.record.kind.is_conditional
        ):
            # Update-at-retire: the only BHT write happens here, with
            # the architectural outcome.
            spec = self.local.spec_update(branch.pc, branch.actual_taken)
            own = branch.local_pred.taken if branch.local_used else None
            self.local.train(branch.pc, spec.pre_state, branch.actual_taken, own)
        self.scheme.on_retire(branch, cycle)

    def storage_bits(self) -> int:
        return self.local.storage_bits() + self.scheme.storage_bits()
