"""Port models and repair-timing arithmetic.

The paper's realistic evaluations are parameterised as ``M-N-P``
configurations: M checkpoint-structure entries, N checkpoint read ports,
P BHT write ports (Figures 10, 11).  Repair duration is bandwidth-bound
on whichever side is narrower.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError
from repro.telemetry import TELEMETRY

__all__ = ["RepairPortConfig", "repair_duration"]


@dataclass(frozen=True, slots=True)
class RepairPortConfig:
    """An M-N-P repair resource configuration."""

    entries: int
    read_ports: int
    write_ports: int

    def __post_init__(self) -> None:
        if self.entries <= 0:
            raise ConfigError(f"checkpoint entries must be positive: {self.entries}")
        if self.read_ports <= 0 or self.write_ports <= 0:
            raise ConfigError("repair port counts must be positive")

    @property
    def label(self) -> str:
        """The paper's ``M-N-P`` naming."""
        return f"{self.entries}-{self.read_ports}-{self.write_ports}"

    @classmethod
    def parse(cls, label: str) -> "RepairPortConfig":
        """Parse an ``M-N-P`` string (e.g. ``"32-4-2"``)."""
        parts = label.split("-")
        if len(parts) != 3:
            raise ConfigError(f"bad port config label {label!r}, expected M-N-P")
        try:
            entries, reads, writes = (int(p) for p in parts)
        except ValueError as exc:
            raise ConfigError(f"bad port config label {label!r}") from exc
        return cls(entries=entries, read_ports=reads, write_ports=writes)


def repair_duration(reads: int, writes: int, read_ports: int, write_ports: int) -> int:
    """Cycles to stream ``reads`` checkpoint reads and ``writes`` BHT writes.

    Reads and writes pipeline against each other, so the duration is the
    max of the two bandwidth terms, with a one-cycle floor for any
    non-empty repair.
    """
    if reads <= 0 and writes <= 0:
        return 0
    read_cycles = -(-reads // read_ports) if reads > 0 else 0
    write_cycles = -(-writes // write_ports) if writes > 0 else 0
    tel = TELEMETRY
    if tel.enabled:
        # Which side of the M-N-P budget bounds this repair?  The
        # counters feed the port-conflict drilldown (Figures 10/11).
        reg = tel.registry
        reg.counter("ports.repairs").inc()
        if read_cycles > write_cycles:
            reg.counter("ports.read_bound").inc()
        elif write_cycles > read_cycles:
            reg.counter("ports.write_bound").inc()
        else:
            reg.counter("ports.balanced").inc()
    return max(read_cycles, write_cycles, 1)
