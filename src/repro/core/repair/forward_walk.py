"""Forward-walk history-file repair — the paper's main proposal (§3.1).

Repair starts **at the mispredicting branch's OBQ entry and walks toward
younger entries**.  A per-BHT-entry *repair bit* (set across the table
when repair begins) ensures each PC is written at most once: the first —
oldest — walked instance of a PC carries exactly the state the BHT must
return to, and later instances are skipped.  Twin benefits:

* fewer BHT writes → shorter repair window;
* PCs closest to the resteer point (the ones about to be fetched again)
  are repaired *first*, so the local predictor resumes overriding for
  them while the rest of the walk is still in flight.  This scheme's
  ``can_predict``/``can_update`` are therefore per-PC, not global.

The optional *coalescing* optimisation (§3.1, Figure 5b) merges
consecutive same-PC OBQ entries; intermediates are recovered from the
11-bit pre-update state each instruction carries through the pipeline.

Multiple mispredictions: a younger event's repair can be superseded by
an older branch resolving mispredicted — repair restarts and the repair
bits are set again (§3.1 last paragraph).
"""

from __future__ import annotations

from typing import Sequence

from repro.core.inflight import InflightBranch
from repro.core.obq import OutstandingBranchQueue
from repro.core.ports import RepairPortConfig, repair_duration
from repro.core.repair.base import RepairScheme

__all__ = ["ForwardWalkRepair"]


class ForwardWalkRepair(RepairScheme):
    """History-file repair walking old → young with repair bits."""

    def __init__(
        self,
        ports: RepairPortConfig | None = None,
        coalesce: bool = False,
        rob_entries: int = 224,
        use_repair_bits: bool = True,
    ) -> None:
        """Args:
        ports: M-N-P resource budget.
        coalesce: Enable OBQ same-PC run coalescing (§3.1).
        rob_entries: ROB size, for the carried-bits storage charge.
        use_repair_bits: Ablation knob — False re-writes every walked
            entry (the duplicate-write waste forward walk eliminates).
        """
        super().__init__()
        self.ports = ports if ports is not None else RepairPortConfig(32, 4, 2)
        self.coalesce = coalesce
        self.rob_entries = rob_entries
        self.use_repair_bits = use_repair_bits
        self.obq = OutstandingBranchQueue(capacity=self.ports.entries, coalesce=coalesce)
        suffix = "-coalesce" if coalesce else ""
        self.name = f"forward-walk-{self.ports.label}{suffix}"
        #: pc -> cycle at which its repaired state becomes usable.
        self._ready: dict[int, int] = {}
        #: PCs written by the most recent repair (consumed by the
        #: multi-stage design to resync its fetch-stage BHT, §3.2.1).
        self.last_repaired: set[int] = set()

    # ------------------------------------------------------------- #
    # availability: per-PC during the repair window

    def can_predict(self, pc: int, cycle: int) -> bool:
        if cycle >= self._busy_until:
            return True
        ready = self._ready.get(pc)
        # PCs outside the repair set were never corrupted; PCs inside it
        # become available as soon as their (single) repair write lands.
        return ready is None or cycle >= ready

    def can_update(self, pc: int, cycle: int) -> bool:
        return self.can_predict(pc, cycle)

    # ------------------------------------------------------------- #
    # checkpointing

    def on_spec_update(self, branch: InflightBranch, cycle: int) -> None:
        assert branch.spec is not None
        entry_id = self.obq.push(branch.uid, branch.spec)
        branch.obq_id = entry_id
        branch.checkpointed = entry_id is not None
        if entry_id is None:
            self.stats.uncheckpointed += 1

    # ------------------------------------------------------------- #
    # repair

    def on_mispredict(
        self, branch: InflightBranch, flushed: Sequence[InflightBranch], cycle: int
    ) -> int:
        assert self.local is not None
        local = self.local
        bht = local.bht
        if cycle < self._busy_until:
            # An older branch superseded an in-flight repair: restart.
            self.stats.restarts += 1
        self._ready = {}
        self.stats.unrepaired += self._count_unrepaired(flushed)

        if branch.obq_id is None or self.obq.find(branch.obq_id) is None:
            # Not checkpointed.  With coalescing the instruction still
            # carries its own pre-update counter, so at least the
            # mispredicting PC recovers; otherwise nothing does.
            if self.coalesce and branch.spec is not None:
                self._apply_own_correction(branch, branch.carried_pre_state)
                busy = repair_duration(0, 1, 1, self.ports.write_ports)
                self._busy_until = cycle + busy
                self.obq.flush_younger(branch.uid, branch.carried_pre_state)
                self.stats.record_event(
                    writes=1, reads=0, busy=busy, cycle=cycle, scheme=self.name
                )
                self.last_repaired = {branch.pc}
                return self._busy_until
            self.obq.flush_younger(branch.uid)
            self.stats.skipped_events += 1
            self.stats.record_event(
                writes=0, reads=0, busy=0, cycle=cycle, scheme=self.name
            )
            self.last_repaired = set()
            return cycle

        bht.set_all_repair_bits()
        walk = self.obq.forward_from(branch.obq_id)
        write_ports = self.ports.write_ports
        writes = 0
        repaired: set[int] = set()

        # The mispredicting branch repairs first (and with its carried
        # state when it is a merged intermediate), then is advanced with
        # the resolved outcome — one write, immediately usable.
        own_pre = branch.carried_pre_state if branch.spec is not None else walk[0].pre_state
        self._apply_own_correction(branch, own_pre)
        writes += 1
        repaired.add(branch.pc)
        self._ready[branch.pc] = cycle + 1
        own_slot = bht.find(branch.pc)
        if own_slot >= 0:
            bht.clear_repair_bit(own_slot)

        for entry in walk:
            if self.use_repair_bits:
                if entry.pc in repaired:
                    continue
                slot = bht.find(entry.pc)
                if slot >= 0 and not bht.repair_bit(slot):
                    continue
            elif entry.pc in repaired:
                # Without repair bits every instance rewrites the BHT;
                # the walk order still means the *last* write (youngest
                # instance) would win, which is wrong — so the ablation
                # keeps correctness by skipping state-wise but charges
                # the write bandwidth anyway.
                writes += 1
                self._ready[entry.pc] = cycle + -(-writes // write_ports)
                continue
            if entry.pre_state is None:
                local.repair_remove(entry.pc)
            else:
                local.repair_write(entry.pc, entry.pre_state, entry.pre_valid)
            slot = bht.find(entry.pc)
            if slot >= 0:
                bht.clear_repair_bit(slot)
            repaired.add(entry.pc)
            writes += 1
            # The i-th write completes ceil(i / ports) cycles in.
            self._ready[entry.pc] = cycle + -(-writes // write_ports)

        busy = repair_duration(
            reads=len(walk),
            writes=writes,
            read_ports=self.ports.read_ports,
            write_ports=write_ports,
        )
        self._busy_until = cycle + busy
        self.obq.flush_younger(branch.uid, branch.carried_pre_state)
        self.stats.record_event(
            writes=writes, reads=len(walk), busy=busy, cycle=cycle, scheme=self.name
        )
        self.last_repaired = repaired
        return self._busy_until

    def on_retire(self, branch: InflightBranch, cycle: int) -> None:
        self.obq.retire(branch.uid)

    # ------------------------------------------------------------- #
    # reporting

    def storage_bits(self) -> int:
        assert self.local is not None or True
        # OBQ entries + 1 repair bit per BHT entry + ROB-carried bits
        # (5-bit OBQ entry id + 11-bit pre-update counter), per Table 3.
        bht_entries = self.local.bht.config.entries if self.local is not None else 128
        obq_id_bits = max(self.ports.entries - 1, 1).bit_length()
        carried_bits = obq_id_bits + 11
        return (
            self.obq.storage_bits()
            + bht_entries
            + self.rob_entries * carried_bits
        )

    @property
    def repair_ports(self) -> tuple[int, int]:
        return (self.ports.read_ports, self.ports.write_ports)
