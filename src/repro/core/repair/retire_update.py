"""Update-at-retire: sidestep repair by never speculating (§6.2).

The BHT is updated only when branches retire, with their architectural
outcome.  There is no speculative state, hence nothing to repair — but
the state every prediction reads lags the front end by the full pipeline
depth, so tight loops with several iterations in flight read stale
counts.  The paper measures this at ~41% of the perfect-repair gains and
notes it will only get worse as pipelines deepen.

The scheme sets :attr:`speculative_updates` to False; the local unit
applies the BHT update (and PT training) in ``retire`` instead of at
prediction time.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.inflight import InflightBranch
from repro.core.repair.base import RepairScheme

__all__ = ["RetireUpdate"]


class RetireUpdate(RepairScheme):
    """Non-speculative BHT: architectural updates at retirement only."""

    name = "retire-update"
    speculative_updates = False

    def on_mispredict(
        self, branch: InflightBranch, flushed: Sequence[InflightBranch], cycle: int
    ) -> int:
        # Nothing speculative exists; the event is recorded for parity.
        self.stats.record_event(
            writes=0, reads=0, busy=0, cycle=cycle, scheme=self.name
        )
        return cycle

    def storage_bits(self) -> int:
        return 0
