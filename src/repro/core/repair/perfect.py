"""Perfect instantaneous repair — the paper's oracle (§6.1).

Unbounded checkpointing and zero-cycle restore: on a misprediction,
every flushed speculative update is undone exactly (each flushed branch
conceptually carries its own pre-update state, and there is no limit on
how many can be walked) and the mispredicting branch's entry is updated
with the resolved outcome.  The BHT is never unavailable.

This scheme also provides the Figure 8 instrumentation: the number of
distinct PCs that *had* to be repaired per misprediction.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.inflight import InflightBranch
from repro.core.repair.base import RepairScheme

__all__ = ["PerfectRepair"]


class PerfectRepair(RepairScheme):
    """Oracle: exact, instantaneous BHT restore on every misprediction."""

    name = "perfect"

    def on_mispredict(
        self, branch: InflightBranch, flushed: Sequence[InflightBranch], cycle: int
    ) -> int:
        assert self.local is not None
        local = self.local
        restored: set[int] = set()
        # Oldest-first: the first flushed instance of a PC carries the
        # state the BHT held before any flushed update touched it.
        for fb in flushed:
            spec = fb.spec
            if spec is None or spec.pc in restored:
                continue
            restored.add(spec.pc)
            if spec.pre_state is None:
                local.repair_remove(spec.pc)
            else:
                local.repair_write(spec.pc, spec.pre_state, spec.pre_valid)
        self._apply_own_correction(branch, branch.carried_pre_state)
        writes = len(restored) + 1
        self.stats.record_event(
            writes=writes, reads=len(flushed), busy=0, cycle=cycle, scheme=self.name
        )
        return cycle

    def storage_bits(self) -> int:
        return 0
