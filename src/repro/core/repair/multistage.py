"""Multi-stage prediction with a split BHT (paper §3.2).

The BHT is split into two half-size tables:

* **BHT-TAGE** sits at the branch-prediction stage next to TAGE and
  overrides with zero penalty.  Its entries are *not* checkpointed; it
  is resynchronised from BHT-Defer after a repair.
* **BHT-Defer** sits at the allocation stage.  Its entries are OBQ
  checkpointed and forward-walk repaired.  A deferred override re-steers
  the pipeline early (the instruction is already deep in the front end),
  so a wrong deferred override costs an early resteer *plus* the full
  misprediction penalty.

Repair is two-stage (§3.2.1): BHT-Defer recovers from the OBQ first,
then BHT-TAGE is repaired *from BHT-Defer* using the repair bits to
identify which PCs changed.  BHT-TAGE gives no predictions during the
whole window and therefore needs **no extra ports** — the prediction
ports double as repair ports.  Instructions that arrive mid-window have
their BHT-TAGE entries invalidated instead of updated; the valid bits
return when those branches flip direction and their counters reset.

The PT is either shared between the two stages or split in half
(``split_pt``), matching the two variants of Figure 12.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

from repro.core.bht import BhtConfig
from repro.core.inflight import InflightBranch
from repro.core.loop_predictor import LoopPredictor, LoopPredictorConfig
from repro.core.pattern_table import LoopPatternTable, PatternTableConfig
from repro.core.ports import RepairPortConfig
from repro.core.repair.forward_walk import ForwardWalkRepair
from repro.core.unit import LocalBranchUnit

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.trace.records import BranchRecord

__all__ = ["MultiStageConfig", "MultiStageUnit"]


@dataclass(frozen=True)
class MultiStageConfig:
    """Sizing for the split-BHT design.

    Each stage gets half the entries of the single-stage design (the
    paper splits CBPw-Loop128 into 2 x 64).
    """

    entries_per_stage: int = 64
    ways: int = 8
    split_pt: bool = False
    pt_entries: int = 128
    confidence_threshold: int = 3
    obq_ports: RepairPortConfig = RepairPortConfig(32, 4, 4)
    #: Write bandwidth of the prediction ports reused for the
    #: BHT-TAGE resync (a 4-wide core has 4 BHT write ports, Table 2).
    prediction_write_ports: int = 4


class MultiStageUnit(LocalBranchUnit):
    """Two-stage CBPw-Loop: immediate BHT-TAGE + checkpointed BHT-Defer."""

    def __init__(self, config: MultiStageConfig | None = None) -> None:
        super().__init__()
        self.config = config = config if config is not None else MultiStageConfig()

        stage_cfg = LoopPredictorConfig(
            bht=BhtConfig(entries=config.entries_per_stage, ways=config.ways),
            pt=PatternTableConfig(
                entries=(
                    config.pt_entries // 2 if config.split_pt else config.pt_entries
                ),
                ways=config.ways,
                confidence_threshold=config.confidence_threshold,
            ),
        )
        if config.split_pt:
            self.front = LoopPredictor(stage_cfg)
            self.defer = LoopPredictor(stage_cfg)
        else:
            shared_pt = LoopPatternTable(stage_cfg.pt)
            self.front = LoopPredictor(stage_cfg, pt=shared_pt)
            self.defer = LoopPredictor(stage_cfg)
            # The defer stage owns the shared PT for storage accounting.
            self.defer.pt = shared_pt
        self.scheme = ForwardWalkRepair(ports=config.obq_ports)
        self.scheme.attach(self.defer)
        self._front_busy_until = 0
        pt_tag = "split-pt" if config.split_pt else "shared-pt"
        self.name = f"multistage-{config.entries_per_stage}x2-{pt_tag}"

    # ------------------------------------------------------------- #
    # fetch stage: BHT-TAGE

    def predict(self, branch: InflightBranch, base_taken: bool, cycle: int) -> bool:
        pc = branch.pc
        self.stats.lookups += 1
        front_pred = None
        if cycle >= self._front_busy_until:
            front_pred = self.front.lookup(pc)
        else:
            self.stats.denied_busy += 1

        final = base_taken
        if front_pred is not None:
            self.stats.local_predictions += 1
            branch.local_pred = front_pred
            if front_pred.taken == base_taken:
                branch.local_used = True
            elif self.override_enabled:
                branch.local_used = True
                final = front_pred.taken
                self.stats.overrides += 1
        branch.predicted_taken = final

        if cycle >= self._front_busy_until:
            branch.front_spec = self.front.spec_update(pc, final)
        else:
            # §3.2.1: entries touched while BHT-TAGE repairs are marked
            # invalid rather than updated with un-repairable state.
            self.front.bht.invalidate_pc(pc)
            self.stats.blocked_updates += 1
        return final

    # ------------------------------------------------------------- #
    # alloc stage: BHT-Defer

    def at_alloc(self, branch: InflightBranch, cycle: int) -> bool:
        pc = branch.pc
        scheme = self.scheme
        defer_pred = None
        if scheme.can_predict(pc, cycle):
            defer_pred = self.defer.lookup(pc)
        else:
            # Instruction reached BHT-Defer mid-repair: no prediction,
            # state marked invalid (paper calls this very rare).
            self.defer.bht.invalidate_pc(pc)

        final = branch.predicted_taken
        if (
            defer_pred is not None
            and defer_pred.taken != final
            and self.override_enabled
        ):
            final = defer_pred.taken
            branch.predicted_taken = final
            branch.local_pred = defer_pred
            branch.local_used = True
            branch.early_resteer = True
            self.stats.early_resteers += 1
            self.stats.overrides += 1

        if scheme.can_update(pc, cycle):
            scheme.before_update(branch, cycle)
            branch.spec = self.defer.spec_update(pc, final)
            scheme.on_spec_update(branch, cycle)
        else:
            self.stats.blocked_updates += 1
            branch.spec = None
            branch.checkpointed = False
        return final

    # ------------------------------------------------------------- #
    # resolution

    def resolve(
        self, branch: InflightBranch, flushed: Sequence[InflightBranch], cycle: int
    ) -> None:
        if not branch.wrong_path and branch.record.kind.is_conditional:
            actual = branch.actual_taken
            own = branch.local_pred.taken if branch.local_used else None
            defer_pre = branch.spec.pre_state if branch.spec is not None else None
            self._train_chooser(branch)
            self.defer.train(branch.pc, defer_pre, actual, own)
            if self.config.split_pt:
                front_pre = (
                    branch.front_spec.pre_state
                    if branch.front_spec is not None
                    else None
                )
                self.front.train(branch.pc, front_pre, actual, own)
            self._note_override_outcome(branch)
        if branch.mispredicted:
            defer_done = self.scheme.on_mispredict(branch, flushed, cycle)
            self._resync_front(defer_done)

    def _resync_front(self, defer_done: int) -> None:
        """Second repair stage: copy repaired PCs from defer to front.

        Uses the prediction write ports, so BHT-TAGE is simply
        unavailable until the copy drains — no extra ports (Table 3:
        repair ports 4\\0 for this design).
        """
        repaired = self.scheme.last_repaired
        writes = 0
        for pc in repaired:
            slot = self.defer.bht.find(pc)
            if slot < 0:
                self.front.bht.remove_pc(pc)
                continue
            self.front.repair_write(
                pc, self.defer.bht.state_at(slot), self.defer.bht.is_valid(slot)
            )
            writes += 1
        copy_cycles = -(-writes // self.config.prediction_write_ports) if writes else 0
        self._front_busy_until = defer_done + copy_cycles

    def warm(self, record: "BranchRecord") -> None:
        """Advance both stage BHTs and train the PT(s) architecturally."""
        pc = record.pc
        taken = record.taken
        self.front.spec_advance(pc, taken)
        # warm() returns the defer stage's pre-update state — the same
        # value both PT trains used historically (the front PT learns
        # from the deferred, repaired view of the pattern).
        pre_state = self.defer.warm(pc, taken)
        if self.config.split_pt:
            self.front.train(pc, pre_state, taken, None)

    def retire(self, branch: InflightBranch, cycle: int) -> None:
        self.scheme.on_retire(branch, cycle)

    # ------------------------------------------------------------- #

    def storage_bits(self) -> int:
        return (
            self.front.storage_bits()
            + self.defer.storage_bits()
            + self.scheme.storage_bits()
        )
