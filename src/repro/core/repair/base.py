"""Repair scheme interface and shared bookkeeping.

A repair scheme owns everything about saving and restoring speculative
BHT state: the checkpointing structure (OBQ or snapshot queue, if any),
the repair walk on a misprediction, the timing window during which the
BHT cannot serve predictions, and the per-PC availability rules that
distinguish forward from backward walks.

The :class:`~repro.core.unit.StandardLocalUnit` drives a scheme through
the following per-branch hooks, in order:

* ``can_predict(pc, cycle)`` — may the BHT serve a prediction now?
* ``can_update(pc, cycle)`` — may the BHT take a speculative update now?
* ``before_update(branch, cycle)`` — about to apply the speculative
  update (snapshot-style schemes checkpoint *before* the write);
* ``on_spec_update(branch, cycle)`` — the update was applied;
  ``branch.spec`` carries the pre-state (history-file schemes push it);
* ``note_resolution(branch, cycle)`` — every correct-path resolution
  (utility tracking for limited-PC);
* ``on_mispredict(branch, flushed, cycle)`` — perform the repair;
* ``on_retire(branch, cycle)`` — release checkpoint entries.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Sequence

from repro.core.inflight import InflightBranch
from repro.core.local_base import LocalPredictorCore
from repro.telemetry import TELEMETRY, RepairWalkEvent

__all__ = ["RepairStats", "RepairScheme"]

#: Bucket bounds sized to the paper's checkpoint structures (OBQ/SQ
#: capacities of 16-64 entries).
_WALK_BUCKETS = (0, 1, 2, 4, 8, 16, 32, 64)
_BUSY_BUCKETS = (0, 1, 2, 4, 8, 16, 32, 64, 128)


@dataclass(slots=True)
class RepairStats:
    """Counters every repair scheme maintains."""

    #: Misprediction events that triggered (or skipped) a repair.
    events: int = 0
    #: Events that arrived while a previous repair was still in flight
    #: (§2.5c / §3.1 multi-misprediction handling).
    restarts: int = 0
    #: Checkpoint-structure entries read across all repairs.
    entries_walked: int = 0
    #: BHT writes performed across all repairs.
    bht_writes: int = 0
    #: Total cycles the BHT spent (fully or partially) busy repairing.
    busy_cycles: int = 0
    #: Branches whose speculative update could not be checkpointed
    #: (structure full, or arrived during a repair window).
    uncheckpointed: int = 0
    #: Flushed speculative updates that no repair restored.
    unrepaired: int = 0
    #: Mispredictions for which no repair was possible at all.
    skipped_events: int = 0
    #: Per-event distinct-PC repair demand (drives Figure 8).
    writes_per_event_sum: int = 0
    writes_per_event_max: int = 0

    def record_event(
        self,
        writes: int,
        reads: int,
        busy: int,
        cycle: int = 0,
        scheme: str = "",
    ) -> None:
        self.events += 1
        self.entries_walked += reads
        self.bht_writes += writes
        self.busy_cycles += busy
        self.writes_per_event_sum += writes
        if writes > self.writes_per_event_max:
            self.writes_per_event_max = writes
        tel = TELEMETRY
        if tel.enabled:
            reg = tel.registry
            reg.histogram("repair.walk_entries", _WALK_BUCKETS).observe(reads)
            reg.histogram("repair.walk_writes", _WALK_BUCKETS).observe(writes)
            reg.histogram("repair.busy_cycles", _BUSY_BUCKETS).observe(busy)
            if tel.tracing:
                tel.emit(
                    RepairWalkEvent(
                        cycle=cycle,
                        scheme=scheme,
                        entries=reads,
                        writes=writes,
                        busy=busy,
                    )
                )

    @property
    def mean_writes_per_event(self) -> float:
        return self.writes_per_event_sum / self.events if self.events else 0.0


class RepairScheme(abc.ABC):
    """Base class for BHT repair schemes."""

    #: Identifier used in reports and Table 3 rows.
    name: str = "repair"
    #: False for update-at-retire: the BHT is never speculatively
    #: updated, so there is nothing to repair.
    speculative_updates: bool = True

    def __init__(self) -> None:
        self.stats = RepairStats()
        self.local: LocalPredictorCore | None = None
        self._busy_until = 0

    def attach(self, local: LocalPredictorCore) -> None:
        """Bind the scheme to the predictor whose BHT it repairs."""
        self.local = local

    # --------------------------------------------------------------- #
    # availability (issues (a) and (b) of §2.5)

    def can_predict(self, pc: int, cycle: int) -> bool:
        """May the BHT provide a prediction for ``pc`` this cycle?"""
        return cycle >= self._busy_until

    def can_update(self, pc: int, cycle: int) -> bool:
        """May ``pc``'s BHT entry take a speculative update this cycle?"""
        return cycle >= self._busy_until

    @property
    def busy_until(self) -> int:
        """First cycle at which the current repair is fully complete."""
        return self._busy_until

    # --------------------------------------------------------------- #
    # per-branch hooks (default: nothing to do)

    def before_update(self, branch: InflightBranch, cycle: int) -> None:
        """About to apply ``branch``'s speculative BHT update."""

    def on_spec_update(self, branch: InflightBranch, cycle: int) -> None:
        """``branch``'s speculative update was applied (spec attached)."""

    def note_resolution(self, branch: InflightBranch, cycle: int) -> None:
        """A correct-path branch resolved (independent of direction)."""

    @abc.abstractmethod
    def on_mispredict(
        self, branch: InflightBranch, flushed: Sequence[InflightBranch], cycle: int
    ) -> int:
        """Repair the BHT after ``branch`` mispredicted.

        Args:
            branch: The mispredicting branch (survives the flush).
            flushed: Every younger in-flight branch, oldest first,
                including wrong-path branches.
            cycle: Resolution cycle of the misprediction.

        Returns:
            The cycle at which the repair completes (>= ``cycle``).
        """

    def on_retire(self, branch: InflightBranch, cycle: int) -> None:
        """``branch`` retired; release its checkpoint resources."""

    # --------------------------------------------------------------- #
    # reporting

    @abc.abstractmethod
    def storage_bits(self) -> int:
        """Repair-only storage cost (checkpoints, repair bits, ROB bits)."""

    @property
    def repair_ports(self) -> tuple[int, int]:
        """(checkpoint read ports, BHT write ports) used for repair."""
        return (0, 0)

    def storage_kb(self) -> float:
        return self.storage_bits() / 8192.0

    # --------------------------------------------------------------- #
    # shared helpers

    def _apply_own_correction(self, branch: InflightBranch, pre_state: int | None) -> None:
        """Write the mispredicting branch's entry with its true outcome.

        Paper §2.4 step 7: the BHT is recovered to the pre-branch state
        *and then updated with what execution provides*.
        """
        assert self.local is not None
        local = self.local
        actual = branch.actual_taken
        if pre_state is None:
            local.repair_write(branch.pc, local.initial_state(actual), True)
        else:
            local.repair_write(branch.pc, local.next_state(pre_state, actual), True)

    def _count_unrepaired(self, flushed: Sequence[InflightBranch]) -> int:
        """Flushed speculative updates with no checkpoint to restore from."""
        return sum(
            1 for fb in flushed if fb.spec is not None and not fb.checkpointed
        )
