"""Backward-walk history-file repair (Skadron et al.; paper §2.6, §6.2).

The OBQ records each branch's pre-update BHT state.  On a misprediction
the queue is walked **from the youngest entry back to the mispredicting
branch's entry**, restoring every recorded state along the way.  Two
consequences the paper highlights:

* the same PC is rewritten once per flushed instance — wasted BHT write
  bandwidth that stretches the repair window;
* no PC is guaranteed correct until the whole walk finishes, so the BHT
  cannot serve *any* prediction until repair completes.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.inflight import InflightBranch
from repro.core.obq import OutstandingBranchQueue
from repro.core.ports import RepairPortConfig, repair_duration
from repro.core.repair.base import RepairScheme

__all__ = ["BackwardWalkRepair"]


class BackwardWalkRepair(RepairScheme):
    """History-file repair walking young → old."""

    def __init__(self, ports: RepairPortConfig | None = None) -> None:
        super().__init__()
        self.ports = ports if ports is not None else RepairPortConfig(32, 4, 4)
        self.obq = OutstandingBranchQueue(capacity=self.ports.entries, coalesce=False)
        self.name = f"backward-walk-{self.ports.label}"

    # ------------------------------------------------------------- #
    # checkpointing

    def on_spec_update(self, branch: InflightBranch, cycle: int) -> None:
        assert branch.spec is not None
        entry_id = self.obq.push(branch.uid, branch.spec)
        branch.obq_id = entry_id
        branch.checkpointed = entry_id is not None
        if entry_id is None:
            self.stats.uncheckpointed += 1

    # ------------------------------------------------------------- #
    # repair

    def on_mispredict(
        self, branch: InflightBranch, flushed: Sequence[InflightBranch], cycle: int
    ) -> int:
        assert self.local is not None
        local = self.local
        if cycle < self._busy_until:
            self.stats.restarts += 1

        self.stats.unrepaired += self._count_unrepaired(flushed)
        if branch.obq_id is None or self.obq.find(branch.obq_id) is None:
            # The mispredicting branch was never checkpointed: the OBQ
            # state is not recovered (paper §3.1).  Squashed entries are
            # still released.
            self.obq.flush_younger(branch.uid)
            self.stats.skipped_events += 1
            self.stats.record_event(
                writes=0, reads=0, busy=0, cycle=cycle, scheme=self.name
            )
            return cycle

        walk = self.obq.backward_to(branch.obq_id)
        writes = 0
        for entry in walk:
            if entry.pre_state is None:
                local.repair_remove(entry.pc)
            else:
                local.repair_write(entry.pc, entry.pre_state, entry.pre_valid)
            writes += 1
        # The oldest walked entry is the mispredicting branch's own; its
        # state is then advanced with the resolved outcome.
        self._apply_own_correction(branch, walk[-1].pre_state)
        writes += 1

        busy = repair_duration(
            reads=len(walk),
            writes=writes,
            read_ports=self.ports.read_ports,
            write_ports=self.ports.write_ports,
        )
        self._busy_until = cycle + busy
        self.obq.flush_younger(branch.uid)
        self.stats.record_event(
            writes=writes, reads=len(walk), busy=busy, cycle=cycle, scheme=self.name
        )
        return self._busy_until

    def on_retire(self, branch: InflightBranch, cycle: int) -> None:
        self.obq.retire(branch.uid)

    # ------------------------------------------------------------- #
    # reporting

    def storage_bits(self) -> int:
        return self.obq.storage_bits()

    @property
    def repair_ports(self) -> tuple[int, int]:
        return (self.ports.read_ports, self.ports.write_ports)
