"""No repair: speculative BHT updates are never undone (§2.7, §6.2).

The degenerate baseline the paper uses to show why repair matters —
wrong-path and squashed updates permanently corrupt the per-PC state,
and the local predictor's gains collapse (going negative for workload
classes with tight exit-sensitive loops).
"""

from __future__ import annotations

from typing import Sequence

from repro.core.inflight import InflightBranch
from repro.core.repair.base import RepairScheme

__all__ = ["NoRepair"]


class NoRepair(RepairScheme):
    """Leave all speculative state in place after a flush."""

    name = "no-repair"

    def on_mispredict(
        self, branch: InflightBranch, flushed: Sequence[InflightBranch], cycle: int
    ) -> int:
        unrepaired = sum(1 for fb in flushed if fb.spec is not None)
        self.stats.unrepaired += unrepaired
        self.stats.skipped_events += 1
        self.stats.record_event(
            writes=0, reads=0, busy=0, cycle=cycle, scheme=self.name
        )
        return cycle

    def storage_bits(self) -> int:
        return 0
