"""BHT repair schemes: the paper's contribution surface.

Prior techniques (§2.6): :class:`NoRepair`, :class:`RetireUpdate`,
:class:`BackwardWalkRepair`, :class:`SnapshotRepair`.

Proposed techniques (§3): :class:`ForwardWalkRepair` (with optional OBQ
coalescing), :class:`MultiStageUnit` (split BHT), :class:`LimitedPcRepair`.

Oracle: :class:`PerfectRepair`.
"""

from repro.core.repair.backward_walk import BackwardWalkRepair
from repro.core.repair.base import RepairScheme, RepairStats
from repro.core.repair.forward_walk import ForwardWalkRepair
from repro.core.repair.limited_pc import LimitedPcRepair
from repro.core.repair.multistage import MultiStageConfig, MultiStageUnit
from repro.core.repair.no_repair import NoRepair
from repro.core.repair.perfect import PerfectRepair
from repro.core.repair.retire_update import RetireUpdate
from repro.core.repair.snapshot_repair import SnapshotRepair

__all__ = [
    "RepairScheme",
    "RepairStats",
    "PerfectRepair",
    "NoRepair",
    "RetireUpdate",
    "BackwardWalkRepair",
    "SnapshotRepair",
    "ForwardWalkRepair",
    "LimitedPcRepair",
    "MultiStageConfig",
    "MultiStageUnit",
]
