"""Limited-PC repair — repair only the M PCs that matter (§3.3).

Key observation: not all PCs are equally important to repair — a PC that
never overrides, or whose wrong state misses in the PT, or whose
counter will reinitialise at the next direction flip anyway, costs
nothing when left corrupt.  So each instruction carries the pre-update
BHT state of M selected PCs (24 bits each: set + tag + pattern), and a
misprediction restores exactly those — in a *deterministic* number of
cycles, with no OBQ.

Selection heuristic (utility + recency, §3.3):

1. the instruction itself (always repaired);
2. the most recent PCs whose local prediction *correctly overrode* TAGE
   (LRU-managed set);
3. backfill with the most recently updated BHT PCs.

Non-repaired PCs are left as-is by default — marking them invalid loses
override opportunities for PCs outside the misprediction's scope, which
the paper found to be the worse policy.  Both policies are implemented
(``invalidate_others``) for the ablation benchmark.

The SQ variant checkpoints the M PCs into a small snapshot queue at
prediction time instead of carrying them with the instruction; the
instruction then carries only the queue entry id (§6.5).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Literal, Sequence

from repro.core.inflight import CarriedRepair, InflightBranch
from repro.core.ports import repair_duration
from repro.core.repair.base import RepairScheme
from repro.core.snapshot import SnapshotQueue
from repro.errors import ConfigError

__all__ = ["LimitedPcRepair"]

SelectionPolicy = Literal["utility", "recency", "random"]


class LimitedPcRepair(RepairScheme):
    """Deterministic-latency repair of M heuristically chosen PCs."""

    def __init__(
        self,
        repair_count: int = 2,
        write_ports: int = 2,
        invalidate_others: bool = False,
        policy: SelectionPolicy = "utility",
        sq_entries: int | None = None,
        recency_window: int = 64,
        rob_entries: int = 224,
    ) -> None:
        super().__init__()
        if repair_count < 1:
            raise ConfigError(f"repair_count must be >= 1, got {repair_count}")
        if write_ports < 1:
            raise ConfigError(f"write_ports must be >= 1, got {write_ports}")
        self.repair_count = repair_count
        self.write_ports = write_ports
        self.invalidate_others = invalidate_others
        self.policy: SelectionPolicy = policy
        self.rob_entries = rob_entries
        self.queue = SnapshotQueue(capacity=sq_entries) if sq_entries else None
        self._useful: OrderedDict[int, None] = OrderedDict()
        self._recent: OrderedDict[int, None] = OrderedDict()
        #: pc -> cycle its repair write lands.  Repair uses *dedicated*
        #: write ports (Table 3 lists 0R/2W etc.), so the BHT keeps
        #: serving predictions throughout — only the PCs being written
        #: are unready, briefly.
        self._ready: dict[int, int] = {}
        self._recency_window = recency_window
        self._rng_state = 0xC0FFEE
        variant = f"-sq{sq_entries}" if sq_entries else ""
        suffix = "-inv" if invalidate_others else ""
        policy_tag = "" if policy == "utility" else f"-{policy}"
        self.name = f"limited-{repair_count}pc{variant}{suffix}{policy_tag}"

    # ------------------------------------------------------------- #
    # availability: per-PC, never global

    def can_predict(self, pc: int, cycle: int) -> bool:
        if cycle >= self._busy_until:
            return True
        ready = self._ready.get(pc)
        return ready is None or cycle >= ready

    def can_update(self, pc: int, cycle: int) -> bool:
        return self.can_predict(pc, cycle)

    # ------------------------------------------------------------- #
    # candidate tracking

    def _rand(self) -> int:
        self._rng_state = (self._rng_state * 1103515245 + 12345) & 0x7FFFFFFF
        return self._rng_state >> 8

    def note_resolution(self, branch: InflightBranch, cycle: int) -> None:
        """Track PCs whose local prediction correctly overrode TAGE."""
        if branch.local_pred is None or not branch.local_used:
            return
        tage = branch.tage_pred
        correct_override = (
            branch.local_pred.taken == branch.actual_taken
            and tage is not None
            and tage.taken != branch.actual_taken
        )
        if not correct_override:
            return
        self._useful.pop(branch.pc, None)
        self._useful[branch.pc] = None
        while len(self._useful) > self.repair_count:
            self._useful.popitem(last=False)  # LRU replacement

    def _select(self, own_pc: int) -> list[int]:
        """Choose the M PCs to carry, own PC first."""
        picks: list[int] = [own_pc]
        budget = self.repair_count - 1
        if budget <= 0:
            return picks
        if self.policy == "utility":
            for pc in reversed(self._useful):
                if pc != own_pc:
                    picks.append(pc)
                    if len(picks) - 1 >= budget:
                        return picks
        if self.policy == "random":
            pool = [pc for pc in self._recent if pc != own_pc and pc not in picks]
            while pool and len(picks) - 1 < budget:
                picks.append(pool.pop(self._rand() % len(pool)))
            return picks
        for pc in reversed(self._recent):
            if pc != own_pc and pc not in picks:
                picks.append(pc)
                if len(picks) - 1 >= budget:
                    break
        return picks

    # ------------------------------------------------------------- #
    # checkpointing

    def before_update(self, branch: InflightBranch, cycle: int) -> None:
        assert self.local is not None
        bht = self.local.bht
        carried: list[CarriedRepair] = []
        for pc in self._select(branch.pc):
            slot = bht.find(pc)
            if slot < 0:
                carried.append(CarriedRepair(pc=pc, state=None, valid=False))
            else:
                carried.append(
                    CarriedRepair(
                        pc=pc, state=bht.state_at(slot), valid=bht.is_valid(slot)
                    )
                )
        if self.queue is not None:
            snap_id = self.queue.take(branch.uid, carried)
            branch.snapshot_id = snap_id
            branch.checkpointed = snap_id is not None
            if snap_id is None:
                self.stats.uncheckpointed += 1
        else:
            branch.carried = carried
            branch.checkpointed = True

    def on_spec_update(self, branch: InflightBranch, cycle: int) -> None:
        self._recent.pop(branch.pc, None)
        self._recent[branch.pc] = None
        while len(self._recent) > self._recency_window:
            self._recent.popitem(last=False)

    # ------------------------------------------------------------- #
    # repair

    def _carried_for(self, branch: InflightBranch) -> list[CarriedRepair] | None:
        if self.queue is not None:
            if branch.snapshot_id is None:
                return None
            snap = self.queue.find(branch.snapshot_id)
            return snap.payload if snap is not None else None
        return branch.carried

    def on_mispredict(
        self, branch: InflightBranch, flushed: Sequence[InflightBranch], cycle: int
    ) -> int:
        assert self.local is not None
        local = self.local
        if cycle < self._busy_until:
            self.stats.restarts += 1

        carried = self._carried_for(branch)
        if carried is None:
            if self.queue is not None:
                self.queue.flush_younger(branch.uid)
            self.stats.skipped_events += 1
            self.stats.record_event(
                writes=0, reads=0, busy=0, cycle=cycle, scheme=self.name
            )
            return cycle

        repaired_pcs = {entry.pc for entry in carried}
        self._ready = {}
        ports = self.write_ports
        # Own correction first (carried[0] is always the branch itself).
        self._apply_own_correction(branch, carried[0].state)
        self._ready[carried[0].pc] = cycle + 1
        for index, entry in enumerate(carried[1:], start=2):
            if entry.state is None:
                local.repair_remove(entry.pc)
            else:
                local.repair_write(entry.pc, entry.state, entry.valid)
            self._ready[entry.pc] = cycle + -(-index // ports)

        self.stats.unrepaired += sum(
            1 for fb in flushed if fb.spec is not None and fb.spec.pc not in repaired_pcs
        )
        if self.invalidate_others:
            # Without an OBQ there is no record of *which* entries the
            # flushed instructions touched, so the conservative policy
            # must invalidate every non-repaired entry — this is why the
            # paper found leave-as-is the better policy (§3.3).
            for pc in local.bht.resident_pcs():
                if pc not in repaired_pcs:
                    local.bht.invalidate_pc(pc)

        writes = len(carried)
        busy = repair_duration(0, writes, 1, self.write_ports)
        self._busy_until = cycle + busy
        if self.queue is not None:
            self.queue.flush_younger(branch.uid)
        self.stats.record_event(
            writes=writes, reads=0, busy=busy, cycle=cycle, scheme=self.name
        )
        return self._busy_until

    def on_retire(self, branch: InflightBranch, cycle: int) -> None:
        if self.queue is not None:
            self.queue.retire(branch.uid)

    # ------------------------------------------------------------- #
    # reporting

    def storage_bits(self) -> int:
        # 24 bits per carried PC: 5-bit set + 8-bit tag + 11-bit pattern.
        per_pc = 24
        if self.queue is not None:
            id_bits = max(self.queue.capacity - 1, 1).bit_length()
            return (
                self.queue.capacity * self.repair_count * per_pc
                + self.rob_entries * id_bits
            )
        return self.rob_entries * self.repair_count * per_pc

    @property
    def repair_ports(self) -> tuple[int, int]:
        return (0, self.write_ports)
