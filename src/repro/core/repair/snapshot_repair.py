"""Snapshot-queue repair (RAT-checkpoint style; paper §2.6, §6.2).

Before every speculative BHT update the entire table is checkpointed
into a bounded snapshot queue.  Repair restores the mispredicting
branch's snapshot wholesale.  Conceptually simple, but:

* storage scales with (snapshots × BHT size) — Table 3 charges 18.2 KB;
* every dirty BHT slot is one repair write, so realistic write-port
  counts stretch the repair window;
* when the queue is full, branches go un-checkpointed and their
  mispredictions cannot be repaired at all.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.inflight import InflightBranch
from repro.core.ports import RepairPortConfig, repair_duration
from repro.core.repair.base import RepairScheme
from repro.core.snapshot import SnapshotQueue

__all__ = ["SnapshotRepair"]


class SnapshotRepair(RepairScheme):
    """Whole-BHT checkpoint per prediction, wholesale restore on repair."""

    def __init__(self, ports: RepairPortConfig | None = None) -> None:
        super().__init__()
        self.ports = ports if ports is not None else RepairPortConfig(32, 8, 8)
        self.queue = SnapshotQueue(capacity=self.ports.entries)
        self.name = f"snapshot-{self.ports.label}"

    # ------------------------------------------------------------- #
    # checkpointing (before the update: the snapshot must hold pre-state)

    def before_update(self, branch: InflightBranch, cycle: int) -> None:
        assert self.local is not None
        snap_id = self.queue.take_bht(branch.uid, self.local.bht)
        branch.snapshot_id = snap_id
        branch.checkpointed = snap_id is not None
        if snap_id is None:
            self.stats.uncheckpointed += 1

    # ------------------------------------------------------------- #
    # repair

    def on_mispredict(
        self, branch: InflightBranch, flushed: Sequence[InflightBranch], cycle: int
    ) -> int:
        assert self.local is not None
        if cycle < self._busy_until:
            self.stats.restarts += 1
        self.stats.unrepaired += self._count_unrepaired(flushed)

        snap = (
            self.queue.find(branch.snapshot_id)
            if branch.snapshot_id is not None
            else None
        )
        if snap is None:
            self.queue.flush_younger(branch.uid)
            self.stats.skipped_events += 1
            self.stats.record_event(
                writes=0, reads=0, busy=0, cycle=cycle, scheme=self.name
            )
            return cycle

        dirty = self.local.bht.restore_snapshot(snap.payload)
        self._apply_own_correction(branch, branch.carried_pre_state)
        # A hardware snapshot restore rewrites the whole table — the
        # restore path has no way to know which slots differ — so the
        # repair window is sized by the full BHT, not the dirty subset.
        # This is the "more time to repair" cost Table 3 charges.
        writes = self.local.bht.config.entries
        busy = repair_duration(
            reads=writes,
            writes=writes,
            read_ports=self.ports.read_ports,
            write_ports=self.ports.write_ports,
        )
        self._busy_until = cycle + busy
        self.queue.flush_younger(branch.uid)
        self.stats.record_event(
            writes=writes, reads=dirty, busy=busy, cycle=cycle, scheme=self.name
        )
        return self._busy_until

    def on_retire(self, branch: InflightBranch, cycle: int) -> None:
        self.queue.retire(branch.uid)

    # ------------------------------------------------------------- #
    # reporting

    def storage_bits(self) -> int:
        if self.local is None:
            return 0
        cfg = self.local.bht.config
        per_snapshot = cfg.entries * (cfg.tag_bits + cfg.state_bits + 1)
        return self.queue.storage_bits(per_snapshot)

    @property
    def repair_ports(self) -> tuple[int, int]:
        return (self.ports.read_ports, self.ports.write_ports)
