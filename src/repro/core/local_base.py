"""Common interface for repairable local predictors.

The repair schemes (``repro.core.repair``) operate on *any* local
predictor exposing this interface — the paper's claim that its
techniques "can be directly extended to any local predictor design"
(§1) is realised here: the schemes only save, restore and advance the
opaque per-PC BHT state; what the state means (loop counter, direction
pattern) stays inside the predictor.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

from repro.core.bht import BranchHistoryTable

__all__ = ["LocalPrediction", "SpecUpdate", "LocalPredictorCore"]


@dataclass(slots=True)
class LocalPrediction:
    """A confident local prediction able to override the baseline.

    Attributes:
        pc: Branch address.
        taken: Predicted direction.
        trip: Learned trip count from the PT (predictor-specific).
        count: Current BHT iteration count used for the prediction.
    """

    pc: int
    taken: bool
    trip: int = 0
    count: int = 0


@dataclass(slots=True)
class SpecUpdate:
    """Result of one speculative BHT update at prediction time.

    Everything a checkpointing structure (OBQ / snapshot queue) or a
    carried-state scheme needs to undo the update later.

    Attributes:
        pc: Branch address.
        slot: BHT slot written.
        pre_state: State before the update, or None when the entry was
            freshly allocated by this branch (undo = deallocate).
        pre_valid: Valid bit before the update.
        post_state: State after the update.
    """

    pc: int
    slot: int
    pre_state: int | None
    pre_valid: bool
    post_state: int


class LocalPredictorCore(abc.ABC):
    """A two-level local predictor with externally repairable BHT state."""

    #: Short identifier used in reports.
    name: str = "local"
    #: The first-level table holding the repairable per-PC state.
    bht: BranchHistoryTable

    @abc.abstractmethod
    def lookup(self, pc: int) -> LocalPrediction | None:
        """Confident prediction for ``pc``, or None (miss / low confidence)."""

    @abc.abstractmethod
    def spec_update(self, pc: int, taken: bool) -> SpecUpdate:
        """Advance ``pc``'s BHT state with a *predicted* outcome.

        Allocates an entry when absent.  This is the speculative update
        that repair schemes must be able to undo.
        """

    @abc.abstractmethod
    def next_state(self, state: int, taken: bool) -> int:
        """Pure state-transition function (used to replay repairs)."""

    @abc.abstractmethod
    def initial_state(self, taken: bool) -> int:
        """State a freshly allocated entry gets after one outcome."""

    @abc.abstractmethod
    def train(
        self,
        pc: int,
        pre_state: int | None,
        taken: bool,
        predicted: bool | None = None,
    ) -> None:
        """Second-level (PT) training with the resolved outcome.

        ``pre_state`` is the pre-update BHT state the instruction carried
        through the pipeline — possibly stale or corrupt, which is
        faithful to how an unrepaired design would learn.  ``predicted``
        is the direction this predictor itself issued for the instance
        (None when it gave no prediction) so confidence can be punished
        for its own mistakes.
        """

    @abc.abstractmethod
    def storage_bits(self) -> int:
        """BHT + PT storage in bits."""

    def spec_advance(self, pc: int, taken: bool) -> int | None:
        """Architectural BHT advance for functional fast-forward.

        Semantically :meth:`spec_update` minus the repair receipt: the
        same table writes, but nothing to undo — fast-forwarded spans
        never roll back.  Returns the pre-update state (None for a
        fresh allocation) so the caller can train with it.  Predictors
        override with fused implementations that skip the
        :class:`SpecUpdate` allocation entirely.
        """
        return self.spec_update(pc, taken).pre_state

    def warm(self, pc: int, taken: bool) -> int | None:
        """Fused BHT advance + PT train with a known committed outcome.

        The per-branch unit of work in fast-forwarded spans (see
        :meth:`repro.core.unit.LocalBranchUnit.warm`).  Returns the
        pre-update BHT state, which multi-stage wrappers reuse to train
        a second pattern table without re-reading the BHT.
        """
        pre_state = self.spec_advance(pc, taken)
        self.train(pc, pre_state, taken, None)
        return pre_state

    def repair_write(self, pc: int, state: int, valid: bool = True) -> bool:
        """One repair write: restore ``pc``'s BHT state.

        Re-allocates the entry if it was evicted while in flight.
        Returns False when the write could not be applied (set conflict
        made re-allocation evict live state is still counted as applied;
        False is reserved for predictors that refuse the PC entirely).
        """
        slot = self.bht.find(pc)
        if slot < 0:
            slot = self.bht.allocate(pc, state)
            self.bht.set_valid(slot, valid)
            return True
        self.bht.set_state(slot, state)
        self.bht.set_valid(slot, valid)
        return True

    def repair_remove(self, pc: int) -> bool:
        """Undo a speculative allocation (the entry should not exist)."""
        return self.bht.remove_pc(pc)

    def storage_kb(self) -> float:
        return self.storage_bits() / 8192.0
