"""IMLI: the Inner-Most Loop Iteration counter (Seznec et al.,
MICRO-48 — reference [33] of the paper).

The paper positions local predictors against IMLI's "new dimension in
branch history": instead of per-PC iteration counters (a BHT needing
multi-entry repair), IMLI tracks a *single global* register — the
iteration count of the inner-most active loop, incremented each time
the same backward taken branch re-executes and reset when a different
backward branch takes over.  Prediction tables indexed by
``hash(pc, IMLIcount)`` capture iteration-correlated behaviour,
including inner-loop exits.

The architectural appeal — and the reason it belongs in this repository
— is the repair story: the speculative state is one register, so
misprediction recovery is exactly the GHIST treatment (each in-flight
branch carries a copy; restore is one write, zero cycles).  The price
is coverage: only behaviour correlated with the *inner-most* loop's
iteration is captured, where the BHT tracks every branch's own count.

Implemented as a :class:`~repro.core.unit.LocalBranchUnit`, so it drops
into the pipeline in place of a local predictor + repair scheme and is
directly comparable in the harness.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

from repro.core.inflight import CarriedRepair, InflightBranch
from repro.core.unit import LocalBranchUnit
from repro.errors import ConfigError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.trace.records import BranchRecord

__all__ = ["ImliConfig", "ImliUnit"]


@dataclass(frozen=True, slots=True)
class ImliConfig:
    """Sizing of the IMLI component."""

    #: log2 of the (pc, IMLIcount)-indexed counter table.
    log_entries: int = 12
    counter_bits: int = 3
    #: Counter distance from the boundary required to override.
    confidence_margin: int = 3
    #: IMLIcount saturation.
    max_count: int = 1023

    def __post_init__(self) -> None:
        if not 4 <= self.log_entries <= 20:
            raise ConfigError(f"log_entries out of range: {self.log_entries}")
        if self.counter_bits < 2:
            raise ConfigError("counter_bits must be >= 2")
        half = 1 << (self.counter_bits - 1)
        if not 1 <= self.confidence_margin <= half:
            raise ConfigError(f"confidence_margin out of range: {self.confidence_margin}")

    def storage_bits(self) -> int:
        # Table + IMLIcount register + last-backward-PC register.
        return (1 << self.log_entries) * self.counter_bits + 10 + 64


class ImliUnit(LocalBranchUnit):
    """TAGE adjunct predicting from the inner-most loop iteration count."""

    def __init__(self, config: ImliConfig | None = None) -> None:
        super().__init__()
        self.config = config = config if config is not None else ImliConfig()
        self.name = "imli"
        self._mask = (1 << config.log_entries) - 1
        mid = 1 << (config.counter_bits - 1)
        self._mid = mid
        self._ctr_max = (1 << config.counter_bits) - 1
        self._table = [mid] * (1 << config.log_entries)
        #: Speculative IMLI state: (count, last backward-taken PC).
        self._count = 0
        self._last_backward = 0

    # ------------------------------------------------------------- #
    # IMLI state machine

    def _advance(self, pc: int, taken: bool, target: int) -> None:
        """Speculative IMLIcount update at prediction time."""
        if taken and target < pc:  # backward taken branch
            if pc == self._last_backward:
                if self._count < self.config.max_count:
                    self._count += 1
            else:
                self._last_backward = pc
                self._count = 1

    def _index(self, pc: int) -> int:
        bits = pc >> 2
        return (bits ^ (bits >> 7) ^ (self._count * 0x9E3779B1 >> 8)) & self._mask

    def _table_prediction(self, pc: int) -> bool | None:
        ctr = self._table[self._index(pc)]
        if ctr >= self._mid:
            if ctr - self._mid + 1 < self.config.confidence_margin:
                return None
            return True
        if self._mid - ctr < self.config.confidence_margin:
            return None
        return False

    # ------------------------------------------------------------- #
    # LocalBranchUnit interface

    def predict(self, branch: InflightBranch, base_taken: bool, cycle: int) -> bool:
        from repro.core.local_base import LocalPrediction

        pc = branch.pc
        self.stats.lookups += 1
        final = base_taken
        prediction = self._table_prediction(pc)
        if prediction is not None:
            self.stats.local_predictions += 1
            branch.local_pred = LocalPrediction(pc=pc, taken=prediction, count=self._count)
            if prediction == base_taken:
                branch.local_used = True
            elif self.override_enabled:
                branch.local_used = True
                final = prediction
                self.stats.overrides += 1
        branch.predicted_taken = final
        # Carry the IMLI state for recovery; its tiny size (one count +
        # one PC, like GHIST checkpoints) is the architectural point.
        branch.carried = [
            CarriedRepair(pc=self._last_backward, state=self._count, valid=True)
        ]
        branch.checkpointed = True
        self._advance(pc, final, branch.record.target)
        return final

    def _carried_state(self, branch: InflightBranch) -> tuple[int, int]:
        entry = branch.carried[0]  # type: ignore[index]
        return entry.state or 0, entry.pc

    def resolve(
        self, branch: InflightBranch, flushed: Sequence[InflightBranch], cycle: int
    ) -> None:
        if not branch.wrong_path and branch.record.kind.is_conditional:
            # Train with the state the branch saw at fetch.
            count, last = self._carried_state(branch)
            saved = (self._count, self._last_backward)
            self._count, self._last_backward = count, last
            index = self._index(branch.pc)
            self._count, self._last_backward = saved
            ctr = self._table[index]
            if branch.actual_taken:
                if ctr < self._ctr_max:
                    self._table[index] = ctr + 1
            elif ctr > 0:
                self._table[index] = ctr - 1
            self._train_chooser(branch)
            self._note_override_outcome(branch)
        if branch.mispredicted:
            # The whole repair: restore one register pair, then apply
            # the resolved outcome.  Constant cost — IMLI's selling
            # point versus BHT repair.
            count, last = self._carried_state(branch)
            self._count, self._last_backward = count, last
            self._advance(branch.pc, branch.actual_taken, branch.record.target)

    def warm(self, record: "BranchRecord") -> None:
        """Train the counter table and advance the IMLI registers.

        With every outcome known, the speculative and architectural
        IMLI states coincide, so the table index uses the live count —
        the same value the carried-state dance in ``resolve`` restores.
        """
        pc = record.pc
        taken = record.taken
        index = self._index(pc)
        ctr = self._table[index]
        if taken:
            if ctr < self._ctr_max:
                self._table[index] = ctr + 1
        elif ctr > 0:
            self._table[index] = ctr - 1
        self._advance(pc, taken, record.target)

    def retire(self, branch: InflightBranch, cycle: int) -> None:
        """Nothing to release: there is no checkpoint structure."""

    def storage_bits(self) -> int:
        return self.config.storage_bits()
