"""Pattern Table (PT): the second level of the two-level local predictor.

For the loop predictor the PT maps a branch PC to the learned *trip
count* (the paper's "final iteration count") plus a confidence counter.
Splitting the CBPw loop table into BHT (current count, updated at
prediction) and PT (final count, updated only after execution) is the
paper's §2.3 redesign: it halves port pressure and confines repair to
the BHT.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError

__all__ = ["PatternTableConfig", "LoopPatternTable", "PtEntryView"]

_NO_PC = -1


@dataclass(frozen=True, slots=True)
class PatternTableConfig:
    """Geometry and training thresholds of the loop PT.

    The per-entry budget (tag + trip + confidence + direction + LRU)
    matches the paper's Table 2 sizing of ~48 bits/entry (e.g. 128
    entries → 0.75 KB).
    """

    entries: int = 128
    ways: int = 8
    tag_bits: int = 14
    trip_bits: int = 11
    confidence_bits: int = 3
    #: Overrides are issued only at or above this confidence.
    confidence_threshold: int = 3

    def __post_init__(self) -> None:
        if self.entries <= 0 or self.ways <= 0:
            raise ConfigError("PT entries and ways must be positive")
        if self.entries % self.ways:
            raise ConfigError(
                f"PT entries {self.entries} not divisible by ways {self.ways}"
            )
        sets = self.entries // self.ways
        if sets & (sets - 1):
            raise ConfigError(f"PT set count {sets} must be a power of two")
        if not 0 < self.confidence_threshold <= self.max_confidence:
            raise ConfigError(
                f"confidence_threshold {self.confidence_threshold} out of range"
            )

    @property
    def sets(self) -> int:
        return self.entries // self.ways

    @property
    def max_confidence(self) -> int:
        return (1 << self.confidence_bits) - 1

    @property
    def max_trip(self) -> int:
        return (1 << self.trip_bits) - 1

    def storage_bits(self) -> int:
        lru_bits = max(self.ways - 1, 1).bit_length()
        per_entry = (
            self.tag_bits + self.trip_bits + self.confidence_bits + 1 + lru_bits
        )
        return self.entries * per_entry


@dataclass(frozen=True, slots=True)
class PtEntryView:
    """Read-only view of one PT entry returned by lookups."""

    trip: int
    confidence: int
    confident: bool


class LoopPatternTable:
    """Set-associative PC-indexed table of learned trip counts."""

    def __init__(self, config: PatternTableConfig | None = None) -> None:
        self.config = config = config if config is not None else PatternTableConfig()
        total = config.entries
        self._set_mask = config.sets - 1
        self._set_bits = max(config.sets - 1, 1).bit_length()
        self._ways = config.ways
        self._pcs: list[int] = [_NO_PC] * total
        self._trip: list[int] = [0] * total
        self._conf: list[int] = [0] * total
        self._lru: list[int] = [0] * total
        #: pc -> slot index, kept in lockstep with ``_pcs`` so lookups
        #: are one dict probe instead of an associative way scan.
        self._slot_by_pc: dict[int, int] = {}
        self._tick = 0
        self.allocations = 0
        self.evictions = 0

    def _set_base(self, pc: int) -> int:
        bits = pc >> 2
        return ((bits ^ (bits >> self._set_bits)) & self._set_mask) * self._ways

    def _find(self, pc: int) -> int:
        return self._slot_by_pc.get(pc, -1)

    def lookup(self, pc: int) -> PtEntryView | None:
        """Trip/confidence for ``pc``, or None on a miss.

        Lookups refresh LRU: the PT sees one lookup per prediction, so
        recency tracks prediction traffic.
        """
        slot = self._find(pc)
        if slot < 0:
            return None
        self._tick += 1
        self._lru[slot] = self._tick
        conf = self._conf[slot]
        return PtEntryView(
            trip=self._trip[slot],
            confidence=conf,
            confident=conf >= self.config.confidence_threshold,
        )

    def train_exit(self, pc: int, observed_trip: int) -> None:
        """Learn from one completed loop execution (an exit event).

        ``observed_trip`` is the number of dominant-direction iterations
        the branch executed before flipping — derived from the state the
        instruction carried through the pipeline, so a corrupted BHT
        feeds the PT corrupted trips (this is how no-repair poisons even
        future predictions).
        """
        observed_trip = min(observed_trip, self.config.max_trip)
        slot = self._find(pc)
        if slot >= 0:
            if self._trip[slot] == observed_trip:
                if self._conf[slot] < self.config.max_confidence:
                    self._conf[slot] += 1
            elif self._conf[slot] > 0:
                self._conf[slot] -= 1
            else:
                self._trip[slot] = observed_trip
                self._conf[slot] = 1
            self._tick += 1
            self._lru[slot] = self._tick
            return
        self._allocate(pc, observed_trip)

    def penalize(self, pc: int) -> None:
        """Back off confidence after the predictor itself mispredicted.

        The CBPw loop predictor punishes entries whose issued
        predictions turn out wrong, so noisy or drifting branches stop
        overriding quickly.  One extra decrement (on top of the
        trip-mismatch decrement ``train_exit`` applies) proved the right
        strength: a reset-to-zero policy suppresses too many good
        entries on trip-entropy blips, while no penalty lets a counter
        desynced by pattern noise keep issuing wrong overrides.
        """
        slot = self._find(pc)
        if slot >= 0 and self._conf[slot] > 0:
            self._conf[slot] -= 1

    def _allocate(self, pc: int, trip: int) -> None:
        base = self._set_base(pc)
        victim = base
        victim_key = (self._conf[base], self._lru[base])
        for way in range(1, self._ways):
            slot = base + way
            if self._pcs[slot] == _NO_PC:
                victim = slot
                break
            key = (self._conf[slot], self._lru[slot])
            if key < victim_key:
                victim = slot
                victim_key = key
        evicted = self._pcs[victim]
        if evicted != _NO_PC:
            self.evictions += 1
            del self._slot_by_pc[evicted]
        self.allocations += 1
        self._pcs[victim] = pc
        self._slot_by_pc[pc] = victim
        self._trip[victim] = trip
        self._conf[victim] = 1
        self._tick += 1
        self._lru[victim] = self._tick

    def occupancy(self) -> int:
        return sum(1 for pc in self._pcs if pc != _NO_PC)

    def storage_bits(self) -> int:
        return self.config.storage_bits()
