"""Snapshot queue (SQ): whole-BHT checkpointing for repair.

The RAT-checkpoint-style alternative to the history file (paper §2.6):
every prediction snapshots the full BHT into a bounded queue.  Repair is
then a single restore — simple, but storage-hungry (Table 3 charges it
18.2 KB) and slow at realistic port counts because every dirty entry is
one BHT write.

The same structure, bounded to a handful of PCs per snapshot, implements
the SQ variant of limited-PC repair (§6.5).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any

from repro.core.bht import BranchHistoryTable
from repro.errors import ConfigError

__all__ = ["Snapshot", "SnapshotQueue"]


@dataclass(slots=True)
class Snapshot:
    """One queued checkpoint.

    ``payload`` is either a full BHT snapshot tuple or, for the
    limited-PC variant, a list of ``(pc, state, valid)`` triples.
    """

    snap_id: int
    uid: int
    payload: Any


class SnapshotQueue:
    """Bounded queue of checkpoints, evicted at retire, flushed on squash."""

    def __init__(self, capacity: int = 32) -> None:
        if capacity <= 0:
            raise ConfigError(f"snapshot queue capacity must be positive: {capacity}")
        self.capacity = capacity
        self._snaps: deque[Snapshot] = deque()
        self._next_id = 0
        self.takes = 0
        self.overflows = 0

    def __len__(self) -> int:
        return len(self._snaps)

    @property
    def full(self) -> bool:
        return len(self._snaps) >= self.capacity

    def take(self, uid: int, payload: Any) -> int | None:
        """Queue a checkpoint for branch ``uid``; None when full."""
        self.takes += 1
        if self.full:
            self.overflows += 1
            return None
        snap = Snapshot(snap_id=self._next_id, uid=uid, payload=payload)
        self._next_id += 1
        self._snaps.append(snap)
        return snap.snap_id

    def take_bht(self, uid: int, bht: BranchHistoryTable) -> int | None:
        """Snapshot the entire BHT (the §2.6 scheme)."""
        if self.full:
            self.takes += 1
            self.overflows += 1
            return None
        return self.take(uid, bht.snapshot())

    def find(self, snap_id: int) -> Snapshot | None:
        for snap in self._snaps:
            if snap.snap_id == snap_id:
                return snap
        return None

    def retire(self, uid: int) -> int:
        """Drop checkpoints of retired branches (uid <= retired uid)."""
        evicted = 0
        snaps = self._snaps
        while snaps and snaps[0].uid <= uid:
            snaps.popleft()
            evicted += 1
        return evicted

    def flush_younger(self, boundary_uid: int) -> int:
        """Drop checkpoints of squashed branches (uid > boundary)."""
        removed = 0
        snaps = self._snaps
        while snaps and snaps[-1].uid > boundary_uid:
            snaps.pop()
            removed += 1
        return removed

    def storage_bits(self, bits_per_snapshot: int) -> int:
        return self.capacity * bits_per_snapshot
