"""In-flight branch bookkeeping shared by the pipeline and repair schemes.

Each fetched conditional branch becomes one :class:`InflightBranch`
carrying everything the paper says an instruction must carry through the
pipeline: the TAGE history checkpoint (GHIST/PHIST repair), its own
pre-update BHT state (11-bit counter, §3.1), an OBQ entry id, and — for
the limited-PC scheme — the pre-update state of the M selected PCs
(§3.3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.trace.records import BranchRecord

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.local_base import LocalPrediction, SpecUpdate
    from repro.predictors.base import Prediction
    from repro.predictors.history import HistoryCheckpoint

__all__ = ["InflightBranch", "CarriedRepair"]


@dataclass(slots=True)
class CarriedRepair:
    """Pre-update BHT state of one PC carried for limited-PC repair."""

    pc: int
    state: int | None  # None = PC had no BHT entry at capture time
    valid: bool


@dataclass(slots=True)
class InflightBranch:
    """One conditional branch between fetch and retirement.

    ``uid`` increases in fetch order across correct and wrong path, so
    program-order comparisons reduce to uid comparisons.
    """

    uid: int
    record: BranchRecord
    wrong_path: bool = False
    #: Set once the branch has been flushed by an older misprediction.
    squashed: bool = False

    # -- timing -------------------------------------------------------
    fetch_cycle: int = 0
    alloc_cycle: int = 0
    resolve_cycle: int = 0
    retire_cycle: int = 0

    # -- prediction ---------------------------------------------------
    predicted_taken: bool = False
    tage_pred: "Prediction | None" = None
    hist_ckpt: "HistoryCheckpoint | None" = None
    local_pred: "LocalPrediction | None" = None
    #: True when the local predictor's direction was used as the final
    #: prediction (an override opportunity, §2.4 step 4).
    local_used: bool = False
    #: True when the multi-stage deferred predictor changed the direction
    #: at the alloc stage (costs an early resteer, §3.2).
    early_resteer: bool = False

    # -- repair state -------------------------------------------------
    spec: "SpecUpdate | None" = None
    #: Second-table speculative update (multi-stage split BHT: the
    #: fetch-stage BHT-TAGE update, while ``spec`` holds BHT-Defer's).
    front_spec: "SpecUpdate | None" = None
    obq_id: int | None = None
    #: False when the branch entered during a repair window and could not
    #: be checkpointed (paper issue (b), §2.5).
    checkpointed: bool = False
    snapshot_id: int | None = None
    carried: list[CarriedRepair] | None = None

    @property
    def pc(self) -> int:
        return self.record.pc

    @property
    def actual_taken(self) -> bool:
        return self.record.taken

    @property
    def mispredicted(self) -> bool:
        """Final-direction misprediction (after any deferred override)."""
        return self.predicted_taken != self.record.taken

    @property
    def carried_pre_state(self) -> int | None:
        """This branch's own pre-update BHT state (11 bits in hardware)."""
        return self.spec.pre_state if self.spec is not None else None
