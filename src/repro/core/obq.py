"""Outstanding Branch Queue (OBQ): the history file for BHT repair.

The OBQ records, per in-flight branch, the BHT state *before* that
branch's speculative update (paper §2.6, §5):

* circular buffer, new entries at the tail;
* entries evicted when the corresponding instruction retires;
* on a flush, entries younger than the mispredicting branch are walked
  by the repair scheme and then removed;
* optional *coalescing* (§3.1): consecutive instances of the same PC
  share entries — only the first and last instance of a run occupy
  slots, intermediates are logically merged into the last one.

Entry ids are monotonically increasing integers, never reused, so a
branch's carried ``obq_id`` stays meaningful across head/tail movement.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.core.local_base import SpecUpdate
from repro.errors import ConfigError
from repro.telemetry import TELEMETRY

__all__ = ["ObqEntry", "OutstandingBranchQueue"]

_OCC_BUCKETS = (0, 2, 4, 8, 16, 32, 64, 128)


@dataclass(slots=True)
class ObqEntry:
    """One history-file record.

    ``pre_state is None`` means the branch allocated its BHT entry fresh
    — the undo is to deallocate, not to restore a state.
    """

    entry_id: int
    pc: int
    pre_state: int | None
    pre_valid: bool
    first_uid: int
    last_uid: int
    #: Number of logically merged instances beyond the first.
    merged: int = 0
    #: True while this entry is the live tail of a same-PC run and can
    #: absorb further instances (coalescing mode only).
    run_open: bool = False


class OutstandingBranchQueue:
    """Bounded history file with optional same-PC run coalescing."""

    def __init__(self, capacity: int = 32, coalesce: bool = False) -> None:
        if capacity <= 0:
            raise ConfigError(f"OBQ capacity must be positive, got {capacity}")
        self.capacity = capacity
        self.coalesce = coalesce
        self._entries: deque[ObqEntry] = deque()
        self._next_id = 0
        self.pushes = 0
        self.merges = 0
        self.overflows = 0

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def full(self) -> bool:
        return len(self._entries) >= self.capacity

    # ------------------------------------------------------------- #
    # insertion

    def push(self, uid: int, spec: SpecUpdate) -> int | None:
        """Checkpoint one speculative update; returns the entry id.

        Returns None when the queue is full and the update could not be
        absorbed into an open run — the branch goes un-checkpointed
        (paper §3.1: "the PCs that enter the pipeline are not assigned
        an OBQ entry id").
        """
        self.pushes += 1
        tel = TELEMETRY
        if tel.enabled:
            reg = tel.registry
            reg.counter("obq.pushes").inc()
            reg.histogram("obq.occupancy", _OCC_BUCKETS).observe(
                len(self._entries)
            )
        entries = self._entries
        if self.coalesce and entries:
            tail = entries[-1]
            if tail.pc == spec.pc:
                if tail.run_open:
                    # Absorb: the previous "last" instance becomes an
                    # intermediate; the entry now shadows the new last
                    # instance (its pre-state and uid move forward).
                    tail.pre_state = spec.pre_state
                    tail.pre_valid = spec.pre_valid
                    tail.last_uid = uid
                    tail.merged += 1
                    self.merges += 1
                    if tel.enabled:
                        tel.registry.counter("obq.merges").inc()
                    return tail.entry_id
                if not self.full:
                    # Second instance of a run: open a "last" entry.
                    entry = self._new_entry(uid, spec, run_open=True)
                    entries.append(entry)
                    return entry.entry_id
                self.overflows += 1
                if tel.enabled:
                    tel.registry.counter("obq.overflows").inc()
                return None
        if self.full:
            self.overflows += 1
            if tel.enabled:
                tel.registry.counter("obq.overflows").inc()
            return None
        entry = self._new_entry(uid, spec, run_open=False)
        entries.append(entry)
        return entry.entry_id

    def _new_entry(self, uid: int, spec: SpecUpdate, run_open: bool) -> ObqEntry:
        entry = ObqEntry(
            entry_id=self._next_id,
            pc=spec.pc,
            pre_state=spec.pre_state,
            pre_valid=spec.pre_valid,
            first_uid=uid,
            last_uid=uid,
            run_open=run_open,
        )
        self._next_id += 1
        return entry

    # ------------------------------------------------------------- #
    # retirement / flush

    def retire(self, uid: int) -> int:
        """Evict head entries fully covered by retirement up to ``uid``."""
        evicted = 0
        entries = self._entries
        while entries and entries[0].last_uid <= uid:
            entries.popleft()
            evicted += 1
        return evicted

    def flush_younger(
        self, boundary_uid: int, boundary_pre_state: int | None = None
    ) -> list[ObqEntry]:
        """Remove entries for squashed branches (uid > boundary).

        A coalesced run can straddle the boundary only when the
        mispredicting branch is itself part of the run; in that case the
        surviving entry's pre-state rolls back to the mispredicting
        branch's carried state (``boundary_pre_state``).

        Returns the fully removed entries, oldest first.
        """
        removed: list[ObqEntry] = []
        entries = self._entries
        while entries and entries[-1].first_uid > boundary_uid:
            removed.append(entries.pop())
        removed.reverse()
        if entries:
            tail = entries[-1]
            if tail.last_uid > boundary_uid:
                # Partially flushed run: shrink to the boundary branch.
                tail.last_uid = boundary_uid
                if boundary_pre_state is not None:
                    tail.pre_state = boundary_pre_state
                    tail.pre_valid = True
            # Any run that was open is closed by the flush: post-resteer
            # instances are a new run.
            tail.run_open = False
        return removed

    # ------------------------------------------------------------- #
    # walks

    def find(self, entry_id: int) -> ObqEntry | None:
        for entry in self._entries:
            if entry.entry_id == entry_id:
                return entry
        return None

    def forward_from(self, entry_id: int) -> list[ObqEntry]:
        """Entries from ``entry_id`` (inclusive) to the tail, oldest first.

        The forward-walk repair order of §3.1.
        """
        result: list[ObqEntry] = []
        seen = False
        for entry in self._entries:
            if entry.entry_id == entry_id:
                seen = True
            if seen:
                result.append(entry)
        return result

    def backward_to(self, entry_id: int) -> list[ObqEntry]:
        """Entries from the tail down to ``entry_id`` (inclusive).

        The backward-walk repair order of §2.6.
        """
        return list(reversed(self.forward_from(entry_id)))

    def entries(self) -> list[ObqEntry]:
        """All live entries, oldest first."""
        return list(self._entries)

    def clear(self) -> None:
        self._entries.clear()

    # ------------------------------------------------------------- #
    # storage

    def storage_bits(self, pc_bits: int = 64, state_bits: int = 11) -> int:
        """Per the paper's OBQ design: 64-bit PC + state + valid bit."""
        return self.capacity * (pc_bits + state_bits + 1)
