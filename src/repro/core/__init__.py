"""The paper's primary contribution: repairable local branch predictors.

Subpackages/modules:

* :mod:`repro.core.bht` / :mod:`repro.core.pattern_table` — the two
  levels of the local predictor;
* :mod:`repro.core.loop_predictor` — CBPw-Loop, the paper's vehicle;
* :mod:`repro.core.two_level_local` — a generic local predictor showing
  the schemes generalise;
* :mod:`repro.core.obq` / :mod:`repro.core.snapshot` — checkpointing
  structures;
* :mod:`repro.core.repair` — all repair schemes;
* :mod:`repro.core.unit` — the pipeline-facing composition.
"""

from repro.core.bht import BhtConfig, BranchHistoryTable
from repro.core.imli import ImliConfig, ImliUnit
from repro.core.inflight import CarriedRepair, InflightBranch
from repro.core.local_base import LocalPrediction, LocalPredictorCore, SpecUpdate
from repro.core.loop_predictor import LoopPredictor, LoopPredictorConfig
from repro.core.obq import ObqEntry, OutstandingBranchQueue
from repro.core.pattern_table import LoopPatternTable, PatternTableConfig
from repro.core.ports import RepairPortConfig, repair_duration
from repro.core.snapshot import Snapshot, SnapshotQueue
from repro.core.storage import StorageBreakdown, system_storage
from repro.core.two_level_local import TwoLevelLocalConfig, TwoLevelLocalPredictor
from repro.core.unit import LocalBranchUnit, StandardLocalUnit, UnitStats

__all__ = [
    "BhtConfig",
    "BranchHistoryTable",
    "ImliConfig",
    "ImliUnit",
    "PatternTableConfig",
    "LoopPatternTable",
    "LoopPredictor",
    "LoopPredictorConfig",
    "TwoLevelLocalConfig",
    "TwoLevelLocalPredictor",
    "LocalPredictorCore",
    "LocalPrediction",
    "SpecUpdate",
    "InflightBranch",
    "CarriedRepair",
    "OutstandingBranchQueue",
    "ObqEntry",
    "SnapshotQueue",
    "Snapshot",
    "RepairPortConfig",
    "repair_duration",
    "StorageBreakdown",
    "system_storage",
    "LocalBranchUnit",
    "StandardLocalUnit",
    "UnitStats",
]
