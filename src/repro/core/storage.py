"""Storage accounting for Table 3's "Storage (KB)" column.

The paper reports total storage as TAGE + local predictor + repair
structures.  Components expose ``storage_bits``; this module aggregates
them into a breakdown used by reports and tests.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.unit import LocalBranchUnit, StandardLocalUnit
from repro.predictors.base import GlobalPredictor

__all__ = ["StorageBreakdown", "system_storage"]

_BITS_PER_KB = 8192


@dataclass(frozen=True, slots=True)
class StorageBreakdown:
    """Bit budget of a full predictor system."""

    baseline_bits: int
    local_bits: int
    repair_bits: int

    @property
    def total_bits(self) -> int:
        return self.baseline_bits + self.local_bits + self.repair_bits

    @property
    def baseline_kb(self) -> float:
        return self.baseline_bits / _BITS_PER_KB

    @property
    def local_kb(self) -> float:
        return self.local_bits / _BITS_PER_KB

    @property
    def repair_kb(self) -> float:
        return self.repair_bits / _BITS_PER_KB

    @property
    def total_kb(self) -> float:
        return self.total_bits / _BITS_PER_KB

    def describe(self) -> str:
        return (
            f"{self.total_kb:.2f} KB "
            f"(baseline {self.baseline_kb:.2f} + local {self.local_kb:.2f} "
            f"+ repair {self.repair_kb:.2f})"
        )


def system_storage(
    baseline: GlobalPredictor, unit: LocalBranchUnit | None
) -> StorageBreakdown:
    """Breakdown for a baseline predictor plus optional local unit."""
    if unit is None:
        return StorageBreakdown(
            baseline_bits=baseline.storage_bits(), local_bits=0, repair_bits=0
        )
    if isinstance(unit, StandardLocalUnit):
        local_bits = unit.local.storage_bits()
        repair_bits = unit.scheme.storage_bits()
    else:
        # Multi-stage and future units report a combined figure; split
        # out the repair scheme when one is exposed.
        scheme = getattr(unit, "scheme", None)
        repair_bits = scheme.storage_bits() if scheme is not None else 0
        local_bits = unit.storage_bits() - repair_bits
    return StorageBreakdown(
        baseline_bits=baseline.storage_bits(),
        local_bits=local_bits,
        repair_bits=repair_bits,
    )
