"""Branch History Table (BHT): the per-PC local state that needs repair.

The BHT is a set-associative table mapping branch PCs to a small opaque
*state* integer — the current iteration count for the loop predictor, a
direction shift register for a generic two-level local predictor.  It is
updated **speculatively at prediction time**, which is exactly why it
must be repaired after mispredictions (paper §2.3.1).

Each entry carries, per Figure 1 of the paper:

* a ``valid`` bit — cleared when the entry's state is known wrong and no
  repair will fix it; re-set when the tracked branch flips direction and
  the state re-initialises (§3.2.1, §3.3);
* a ``repair`` bit — set across all entries when a repair walk starts so
  forward-walk repair applies at most one write per PC (§3.1).

Entries live in parallel flat lists so whole-table snapshots (the
snapshot-queue repair scheme) are cheap ``list.copy()`` operations.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError

__all__ = ["BhtConfig", "BranchHistoryTable"]

_NO_PC = -1


@dataclass(frozen=True, slots=True)
class BhtConfig:
    """Geometry of a BHT (Table 2: 64/128/256 entries, 8-way)."""

    entries: int = 128
    ways: int = 8
    tag_bits: int = 8
    state_bits: int = 12

    def __post_init__(self) -> None:
        if self.entries <= 0 or self.ways <= 0:
            raise ConfigError("BHT entries and ways must be positive")
        if self.entries % self.ways:
            raise ConfigError(
                f"BHT entries {self.entries} not divisible by ways {self.ways}"
            )
        sets = self.entries // self.ways
        if sets & (sets - 1):
            raise ConfigError(f"BHT set count {sets} must be a power of two")

    @property
    def sets(self) -> int:
        return self.entries // self.ways

    def storage_bits(self) -> int:
        """Tag + state + valid + repair + LRU bits per entry."""
        lru_bits = max(self.ways - 1, 1).bit_length()
        per_entry = self.tag_bits + self.state_bits + 1 + 1 + lru_bits
        return self.entries * per_entry


class BranchHistoryTable:
    """Set-associative per-PC state table with repair/valid bits.

    Slots are addressed by a flat index ``set * ways + way``; all lookup
    helpers return slot indices so callers can read and write state
    without re-searching.
    """

    def __init__(self, config: BhtConfig | None = None) -> None:
        self.config = config = config if config is not None else BhtConfig()
        total = config.entries
        self._set_mask = config.sets - 1
        self._set_bits = max(config.sets - 1, 1).bit_length()
        self._ways = config.ways
        self._pcs: list[int] = [_NO_PC] * total
        self._state: list[int] = [0] * total
        self._valid: list[bool] = [False] * total
        self._repair: list[bool] = [False] * total
        self._lru: list[int] = [0] * total
        #: pc -> slot index, kept in lockstep with ``_pcs`` so lookups
        #: are one dict probe instead of an associative way scan.
        self._slot_by_pc: dict[int, int] = {}
        self._tick = 0
        self.allocations = 0
        self.evictions = 0

    # ------------------------------------------------------------- #
    # lookup / allocation

    def _set_base(self, pc: int) -> int:
        # Fold two PC slices so aligned/structured code layouts spread
        # across all sets instead of aliasing into a few.
        bits = pc >> 2
        index = (bits ^ (bits >> self._set_bits)) & self._set_mask
        return index * self._ways

    def find(self, pc: int) -> int:
        """Slot index of ``pc``, or -1 when absent."""
        return self._slot_by_pc.get(pc, -1)

    def touch(self, slot: int) -> None:
        """Mark a slot most-recently-used."""
        self._tick += 1
        self._lru[slot] = self._tick

    def allocate(self, pc: int, state: int) -> int:
        """Install ``pc`` with ``state``, evicting the set's LRU victim.

        The caller must have checked the PC is absent; double allocation
        would create two slots answering to one PC.
        """
        base = self._set_base(pc)
        lru = self._lru
        victim = base
        victim_tick = lru[base]
        for way in range(1, self._ways):
            slot = base + way
            if self._pcs[slot] == _NO_PC:
                victim = slot
                break
            if lru[slot] < victim_tick:
                victim = slot
                victim_tick = lru[slot]
        evicted = self._pcs[victim]
        if evicted != _NO_PC:
            self.evictions += 1
            del self._slot_by_pc[evicted]
        self.allocations += 1
        self._pcs[victim] = pc
        self._slot_by_pc[pc] = victim
        self._state[victim] = state
        self._valid[victim] = True
        self._repair[victim] = False
        self.touch(victim)
        return victim

    # ------------------------------------------------------------- #
    # state access

    def pc_at(self, slot: int) -> int:
        return self._pcs[slot]

    def state_at(self, slot: int) -> int:
        return self._state[slot]

    def set_state(self, slot: int, state: int) -> None:
        self._state[slot] = state

    def is_valid(self, slot: int) -> bool:
        return self._valid[slot]

    def set_valid(self, slot: int, valid: bool) -> None:
        self._valid[slot] = valid

    def invalidate_pc(self, pc: int) -> bool:
        """Clear the valid bit of ``pc``'s entry if present."""
        slot = self.find(pc)
        if slot < 0:
            return False
        self._valid[slot] = False
        return True

    def remove_pc(self, pc: int) -> bool:
        """Deallocate ``pc``'s entry entirely (undo of a fresh allocation)."""
        slot = self._slot_by_pc.pop(pc, -1)
        if slot < 0:
            return False
        self._pcs[slot] = _NO_PC
        self._valid[slot] = False
        self._state[slot] = 0
        return True

    # ------------------------------------------------------------- #
    # repair bits (§3.1)

    def set_all_repair_bits(self) -> None:
        """Start of a repair walk: every entry becomes repairable once."""
        self._repair = [True] * len(self._repair)

    def repair_bit(self, slot: int) -> bool:
        return self._repair[slot]

    def clear_repair_bit(self, slot: int) -> None:
        self._repair[slot] = False

    # ------------------------------------------------------------- #
    # snapshots (snapshot-queue repair scheme)

    def snapshot(self) -> tuple[list[int], list[int], list[bool]]:
        """Cheap full-state snapshot (pcs, states, valid bits)."""
        return (self._pcs.copy(), self._state.copy(), self._valid.copy())

    def restore_snapshot(self, snap: tuple[list[int], list[int], list[bool]]) -> int:
        """Restore a snapshot; returns the number of slots that changed.

        The changed-slot count is the number of BHT writes the repair
        hardware would have to perform, which drives repair timing.
        """
        pcs, states, valid = snap
        dirty = 0
        for slot in range(len(self._pcs)):
            if (
                self._pcs[slot] != pcs[slot]
                or self._state[slot] != states[slot]
                or self._valid[slot] != valid[slot]
            ):
                dirty += 1
        self._pcs = pcs.copy()
        self._state = states.copy()
        self._valid = valid.copy()
        self._slot_by_pc = {
            pc: slot for slot, pc in enumerate(pcs) if pc != _NO_PC
        }
        return dirty

    # ------------------------------------------------------------- #
    # introspection

    def occupancy(self) -> int:
        """Number of allocated slots."""
        return sum(1 for pc in self._pcs if pc != _NO_PC)

    def resident_pcs(self) -> list[int]:
        """All PCs currently tracked (unordered)."""
        return [pc for pc in self._pcs if pc != _NO_PC]

    def storage_bits(self) -> int:
        return self.config.storage_bits()
