"""CBPw-Loop: the loop predictor of the CBP-2016 winner, as a two-level
BHT + PT design (paper §2.3, Figure 1).

The predictor targets branches whose behaviour is a long run of one
direction terminated by a single flip — backward loop branches
(``TTT...N``) and forward if-then-else branches (``NNN...T``).  Per PC
it tracks:

* BHT state: the *current* iteration count plus the dominant direction,
  updated speculatively after every prediction (and therefore the state
  repair schemes must restore);
* PT entry: the learned *final* trip count and a confidence counter,
  updated only after the branch executes.

State encoding: ``state = (count << 1) | dir`` with ``dir = 1`` when the
dominant direction is taken.  Count saturates at the PT's trip width.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.bht import BhtConfig, BranchHistoryTable
from repro.core.local_base import LocalPrediction, LocalPredictorCore, SpecUpdate
from repro.core.pattern_table import LoopPatternTable, PatternTableConfig

__all__ = ["LoopPredictorConfig", "LoopPredictor", "pack_state", "unpack_state"]


def pack_state(count: int, dominant_taken: bool) -> int:
    """Encode (iteration count, dominant direction) into a BHT state."""
    return (count << 1) | (1 if dominant_taken else 0)


def unpack_state(state: int) -> tuple[int, bool]:
    """Decode a BHT state into (iteration count, dominant direction)."""
    return state >> 1, bool(state & 1)


@dataclass(frozen=True)
class LoopPredictorConfig:
    """Sizing bundle for one CBPw-Loop instance.

    The three paper configurations (Table 2) are exposed as the
    :func:`entries` constructor: ``CBPw-Loop64/128/256`` use an 8-way
    BHT of that many entries with a PT of equal entry count.
    """

    bht: BhtConfig = BhtConfig(entries=128, ways=8)
    pt: PatternTableConfig = PatternTableConfig(entries=128, ways=8)

    @classmethod
    def entries(cls, count: int, confidence_threshold: int = 3) -> "LoopPredictorConfig":
        """The paper's CBPw-Loop<count> configuration (64, 128 or 256)."""
        ways = 8 if count >= 8 else count
        return cls(
            bht=BhtConfig(entries=count, ways=ways),
            pt=PatternTableConfig(
                entries=count, ways=ways, confidence_threshold=confidence_threshold
            ),
        )

    def storage_bits(self) -> int:
        return self.bht.storage_bits() + self.pt.storage_bits()


class LoopPredictor(LocalPredictorCore):
    """Two-level loop predictor with externally repairable BHT state."""

    name = "cbpw-loop"

    def __init__(
        self,
        config: LoopPredictorConfig | None = None,
        pt: LoopPatternTable | None = None,
    ) -> None:
        """Args:
        config: Sizing; defaults to CBPw-Loop128.
        pt: Optional externally owned pattern table — the multi-stage
            split-BHT design shares one PT between two BHT stages
            (paper §3.2.1).
        """
        self.config = config = config if config is not None else LoopPredictorConfig()
        self.bht = BranchHistoryTable(config.bht)
        self.pt = pt if pt is not None else LoopPatternTable(config.pt)
        self._shared_pt = pt is not None
        self._max_count = self.pt.config.max_trip
        self.name = f"cbpw-loop{config.bht.entries}"

    # ------------------------------------------------------------- #
    # prediction

    def lookup(self, pc: int) -> LocalPrediction | None:
        slot = self.bht.find(pc)
        if slot < 0 or not self.bht.is_valid(slot):
            return None
        entry = self.pt.lookup(pc)
        if entry is None or not entry.confident:
            return None
        count, dominant = unpack_state(self.bht.state_at(slot))
        self.bht.touch(slot)
        taken = dominant if count < entry.trip else not dominant
        return LocalPrediction(pc=pc, taken=taken, trip=entry.trip, count=count)

    # ------------------------------------------------------------- #
    # speculative state

    def next_state(self, state: int, taken: bool) -> int:
        count, dominant = unpack_state(state)
        if taken == dominant:
            if count < self._max_count:
                count += 1
            return pack_state(count, dominant)
        if count == 0:
            # Two consecutive anti-dominant outcomes: the dominant
            # direction was learned wrong (e.g. allocated from a
            # misprediction); relearn it.
            return pack_state(1, taken)
        return pack_state(0, dominant)

    def initial_state(self, taken: bool) -> int:
        return pack_state(1, taken)

    def spec_update(self, pc: int, taken: bool) -> SpecUpdate:
        slot = self.bht.find(pc)
        if slot < 0:
            state = pack_state(1, taken)
            slot = self.bht.allocate(pc, state)
            return SpecUpdate(
                pc=pc, slot=slot, pre_state=None, pre_valid=False, post_state=state
            )
        pre_state = self.bht.state_at(slot)
        pre_valid = self.bht.is_valid(slot)
        post_state = self.next_state(pre_state, taken)
        self.bht.set_state(slot, post_state)
        count, dominant = unpack_state(post_state)
        if taken != dominant or count <= 1:
            # A direction flip re-initialises the counter: from here the
            # state is right again regardless of earlier corruption, so
            # the entry becomes trustworthy (paper §3.1, §3.2.1).
            self.bht.set_valid(slot, True)
        self.bht.touch(slot)
        return SpecUpdate(
            pc=pc,
            slot=slot,
            pre_state=pre_state,
            pre_valid=pre_valid,
            post_state=post_state,
        )

    def spec_advance(self, pc: int, taken: bool) -> int | None:
        # Fused fast-forward advance: same writes as spec_update, no
        # SpecUpdate receipt (fast-forwarded spans never roll back).
        bht = self.bht
        slot = bht.find(pc)
        if slot < 0:
            bht.allocate(pc, pack_state(1, taken))
            return None
        pre_state = bht.state_at(slot)
        post_state = self.next_state(pre_state, taken)
        bht.set_state(slot, post_state)
        count, dominant = unpack_state(post_state)
        if taken != dominant or count <= 1:
            bht.set_valid(slot, True)
        bht.touch(slot)
        return pre_state

    # ------------------------------------------------------------- #
    # training

    def train(
        self,
        pc: int,
        pre_state: int | None,
        taken: bool,
        predicted: bool | None = None,
    ) -> None:
        """PT update after the branch executes (paper §2.4 step 6).

        Only *exit events* — the branch leaving its dominant direction —
        teach the PT a trip count.  The carried ``pre_state`` supplies
        the iteration the exit happened at.  A wrong own-prediction
        collapses the entry's confidence (the CBPw policy).
        """
        if predicted is not None and predicted != taken:
            self.pt.penalize(pc)
        if pre_state is None:
            return
        count, dominant = unpack_state(pre_state)
        if taken != dominant:
            self.pt.train_exit(pc, count)

    def storage_bits(self) -> int:
        if self._shared_pt:
            # A shared PT is accounted for once, by its owner.
            return self.config.bht.storage_bits()
        return self.config.storage_bits()
