"""Cycle-level out-of-order pipeline model.

A trace-driven timing model of the paper's Skylake-like core, built for
one purpose: faithfully reproduce the *pipeline dynamics around branch
mispredictions* that make local-predictor repair hard —

* predictions (and speculative BHT updates) happen at fetch, deep in
  front of execution;
* branches resolve out of order, many cycles later, with tens of
  instructions (and their speculative updates) in flight behind them;
* on a misprediction the front end has already run down the wrong path,
  polluting predictor state that must now be repaired while the machine
  restarts;
* the ROB bound and retirement pace determine how long OBQ/snapshot
  entries stay live.

The model processes the committed branch stream sequentially.  Timing
per record: fetch bandwidth (taken-branch BTB misses insert bubbles) →
allocation after ``frontend_depth`` cycles, gated by ROB occupancy →
resolution after scheduling plus execution (plus load latency for
load-dependent branches) → in-order retirement.  On a misprediction the
front end replays the recent committed window as wrong-path fetch until
resolution, then flushes, repairs, and resteers.

Wrong-path fetch replays recent committed records because real wrong
paths after loop-exit mispredictions re-execute the loop body — the
first-order effect being extra speculative bumps of the very counters
the repair schemes must restore.  Wrong-path instructions are not
charged against the ROB (they would be flushed before mattering) but do
consume fetch bandwidth, predictor state, and checkpoint entries.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Sequence

from repro.core.inflight import InflightBranch
from repro.core.unit import LocalBranchUnit
from repro.errors import SimulationError
from repro.memory.hierarchy import CacheHierarchy
from repro.pipeline.btb import BranchTargetBuffer
from repro.pipeline.config import PipelineConfig
from repro.pipeline.stats import SimStats
from repro.predictors.base import GlobalPredictor
from repro.telemetry import TELEMETRY, EpisodeEvent, PredictEvent, RetireEvent
from repro.trace.records import BranchKind, BranchRecord
from repro.trace.stream import TraceStream

__all__ = ["PipelineModel"]


class PipelineModel:
    """One simulated core: baseline predictor + optional local unit.

    Args:
        baseline: The global predictor (TAGE in all paper experiments).
        unit: Local predictor + repair scheme, or None for the baseline
            system.
        config: Core timing parameters.
        hierarchy: Cache model for load latencies; None disables memory
            modelling (loads cost L1 latency).
    """

    def __init__(
        self,
        baseline: GlobalPredictor,
        unit: LocalBranchUnit | None = None,
        config: PipelineConfig | None = None,
        hierarchy: CacheHierarchy | None = None,
    ) -> None:
        self.config = config if config is not None else PipelineConfig()
        self.baseline = baseline
        self.unit = unit
        self.hierarchy = hierarchy
        self.btb = BranchTargetBuffer(self.config.btb_entries, self.config.btb_ways)
        self.stats = SimStats()

        self._fe_cycle = 0
        self._last_alloc = 0
        self._last_retire = 0
        self._rob_occupancy = 0
        #: (retire_cycle, group_size, branch or None) in program order.
        self._rob: deque[tuple[int, int, InflightBranch | None]] = deque()
        self._next_uid = 0
        #: Telemetry handle; the disabled path costs one attribute check
        #: per instrumentation site (see repro.telemetry).
        self._tel = TELEMETRY
        self._bind_hot_paths()

    def _bind_hot_paths(self) -> None:
        """(Re)derive the per-branch bound methods and hoisted constants.

        Hot-path bindings: the baseline and BTB never change after
        construction, so the per-branch calls in _issue/_predict go
        through pre-bound methods instead of two-level attribute
        lookups.  Bound at init so subclass overrides still apply;
        checkpoint/spec_push skip the GlobalPredictor delegation layer
        only when the predictor has not overridden them.  The
        specialized-engine driver (:mod:`repro.pipeline.specialize`)
        calls this again after restoring a checkpoint, because a restore
        replaces ``baseline``/``btb`` with deep copies the old bound
        methods no longer point at.
        """
        baseline = self.baseline
        self._base_lookup = baseline.lookup
        base_type = type(baseline)
        if base_type.checkpoint is GlobalPredictor.checkpoint:
            self._base_checkpoint = baseline.history.checkpoint
        else:
            self._base_checkpoint = baseline.checkpoint
        if base_type.spec_push is GlobalPredictor.spec_push:
            self._base_spec_push = baseline.history.push
        else:
            self._base_spec_push = baseline.spec_push
        self._btb_lookup = self.btb.lookup
        self._btb_install = self.btb.install
        # Immutable timing parameters hoisted out of the per-branch path
        # (PipelineConfig is frozen, so these can never drift).
        cfg = self.config
        self._fetch_width = cfg.fetch_width
        self._frontend_depth = cfg.frontend_depth
        self._sched_to_exec = cfg.sched_to_exec
        self._branch_exec_latency = cfg.branch_exec_latency
        self._nonbranch_base_latency = cfg.nonbranch_base_latency
        self._exec_jitter = cfg.exec_jitter
        self._retire_width = cfg.retire_width
        self._btb_miss_penalty = cfg.btb_miss_penalty

    # ------------------------------------------------------------- #
    # public API

    def run(self, records: Sequence[BranchRecord]) -> SimStats:
        """Simulate the committed branch stream; returns the statistics."""
        self.run_segment(records)
        return self.finalize()

    def run_segment(self, records: Sequence[BranchRecord]) -> None:
        """Simulate one contiguous span, accumulating into ``stats``.

        The sampled two-speed engine (``repro.harness.sampling``) calls
        this once per detailed interval, with predictor state warmed by
        functional fast-forward between calls; timing state (cycles,
        ROB, retirement) carries over from segment to segment.  Call
        :meth:`finalize` once after the last segment.  The wrong-path
        replay window starts empty at each segment boundary, so the
        first few mispredictions of a segment replay a shorter wrong
        path — a boundary effect sampling accepts by design.
        """
        stream = TraceStream(records, window=self.config.wrong_path_window)
        self.run_stream(stream)

    def run_stream(self, stream: TraceStream, limit: int | None = None) -> int:
        """Consume up to ``limit`` records from an externally-owned stream.

        Identical per-record behaviour to :meth:`run_segment`, but the
        stream (and with it the wrong-path replay window) survives the
        call — which is what lets the specialized-engine driver
        (:mod:`repro.pipeline.specialize`) interleave generic prefix
        simulation, specialized spans, and post-abort generic replay over
        one uninterrupted window.  Returns the number of records consumed.
        """
        next_record = stream.next_record
        retire_up_to = self._retire_up_to
        issue = self._issue
        resolve_correct = self._resolve_correct
        consumed = 0
        while not stream.exhausted and (limit is None or consumed < limit):
            record = next_record()
            consumed += 1
            retire_up_to(self._fe_cycle)
            branch = issue(record, wrong_path=False)
            if branch is None:
                continue
            if branch.predicted_taken != branch.record.taken:
                self._mispredict_episode(branch, stream)
            else:
                resolve_correct(branch)
        return consumed

    def current_cycle(self) -> int:
        """Front-end/retirement high-water mark, for per-segment deltas.

        Work still in the ROB has not retired yet, so consecutive
        readings slightly undercount each segment's cycles — uniformly,
        which is what the sampling extrapolation needs.
        """
        return max(self._fe_cycle, self._last_retire)

    def finalize(self) -> SimStats:
        """Drain in-flight work and close the run; returns the stats."""
        self._drain()
        return self.stats

    # ------------------------------------------------------------- #
    # per-record issue: fetch, predict, allocate, schedule

    def _issue(self, record: BranchRecord, wrong_path: bool) -> InflightBranch | None:
        """Advance fetch over one instruction group; predict the branch.

        Returns the InflightBranch for conditional branches, None for
        other control flow (which only consumes bandwidth and BTB slots).
        """
        stats = self.stats
        group = record.inst_gap + 1
        fetch_cycles = -(-group // self._fetch_width)
        fetch_cycle = self._fe_cycle + fetch_cycles - 1

        # Taken control flow needs a BTB target; a miss stalls fetch.
        btb_bubble = 0
        if record.taken and not wrong_path:
            if self._btb_lookup(record.pc) is None:
                self._btb_install(record.pc, record.target)
                btb_bubble = self._btb_miss_penalty
                stats.btb_misses += 1

        if wrong_path:
            alloc_cycle = fetch_cycle + self._frontend_depth
        else:
            alloc_cycle = self._allocate(fetch_cycle, group)

        load_latency = 0
        if record.load_addr:
            if self.hierarchy is not None:
                load_latency = self.hierarchy.load_latency(record.load_addr)
            else:
                load_latency = 5

        uid = self._next_uid
        self._next_uid = uid + 1
        exec_jitter = self._exec_jitter
        jitter = ((uid * 2654435761) >> 13) % exec_jitter if exec_jitter else 0
        sched_to_exec = self._sched_to_exec
        resolve_cycle = (
            alloc_cycle
            + sched_to_exec
            + self._branch_exec_latency
            + jitter
            + (load_latency if record.depends_on_load else 0)
        )
        base_latency = self._nonbranch_base_latency
        completion = alloc_cycle + sched_to_exec + (
            load_latency if load_latency > base_latency else base_latency
        )

        branch: InflightBranch | None = None
        if record.kind is BranchKind.COND:
            branch = InflightBranch(
                uid=uid,
                record=record,
                wrong_path=wrong_path,
                fetch_cycle=fetch_cycle,
                alloc_cycle=alloc_cycle,
                resolve_cycle=resolve_cycle,
            )
            self._predict(branch, fetch_cycle, alloc_cycle)
            if not wrong_path:
                stats.cond_branches += 1
                if record.taken:
                    stats.taken_branches += 1
                if branch.tage_pred is not None and (
                    branch.tage_pred.taken != record.taken
                ):
                    stats.base_wrong += 1
            else:
                stats.wrong_path_branches += 1

        # Single boolean check on the (default) disabled-telemetry path;
        # everything telemetry-related lives behind it.
        tel = self._tel
        if tel.enabled:
            reg = tel.registry
            reg.counter("pipeline.fetch_cycles").inc(fetch_cycles)
            if btb_bubble:
                reg.counter("pipeline.btb_bubble_cycles").inc(btb_bubble)
            if tel.tracing and branch is not None:
                tel.emit(
                    PredictEvent(
                        cycle=fetch_cycle,
                        pc=record.pc,
                        predicted=branch.predicted_taken,
                        actual=record.taken,
                        wrong_path=wrong_path,
                    )
                )

        self._fe_cycle += fetch_cycles + btb_bubble
        if not wrong_path:
            stats.branches += 1
            stats.instructions += group
            retire_cycle = max(
                completion,
                resolve_cycle,
                self._last_retire + -(-group // self._retire_width),
            )
            self._last_retire = retire_cycle
            if branch is not None:
                branch.retire_cycle = retire_cycle
            self._rob_occupancy += group
            self._rob.append((retire_cycle, group, branch))
        else:
            branch_retire = max(completion, resolve_cycle)
            if branch is not None:
                branch.retire_cycle = branch_retire
        return branch

    def _predict(self, branch: InflightBranch, fetch_cycle: int, alloc_cycle: int) -> None:
        """Fetch-stage prediction plus alloc-stage (deferred) hook."""
        pc = branch.record.pc
        base_pred = self._base_lookup(pc)
        branch.tage_pred = base_pred
        branch.hist_ckpt = self._base_checkpoint()

        final = base_pred.taken
        unit = self.unit
        if unit is not None:
            final = unit.predict(branch, base_pred.taken, fetch_cycle)
        branch.predicted_taken = final
        self._base_spec_push(pc, final)

        if unit is not None:
            final = unit.at_alloc(branch, alloc_cycle)
            if branch.early_resteer and not branch.wrong_path:
                # Deferred override: squash the younger front-end
                # contents and restart fetch behind this branch.
                self.stats.early_resteers += 1
                restart = alloc_cycle + self.config.early_resteer_penalty
                if restart > self._fe_cycle:
                    self._fe_cycle = restart
            branch.predicted_taken = final

    def _allocate(self, fetch_cycle: int, group: int) -> int:
        """Allocation time for a group, honouring the ROB bound."""
        cfg = self.config
        alloc_cycle = max(fetch_cycle + cfg.frontend_depth, self._last_alloc)
        while self._rob_occupancy + group > cfg.rob_entries:
            if not self._rob:
                raise SimulationError(
                    f"instruction group of {group} exceeds ROB capacity"
                )
            retire_cycle, size, retired = self._rob.popleft()
            self._rob_occupancy -= size
            if retired is not None:
                if self.unit is not None:
                    self.unit.retire(retired, retire_cycle)
                if self._tel.tracing:
                    self._tel.emit(RetireEvent(cycle=retire_cycle, pc=retired.pc))
            if retire_cycle > alloc_cycle:
                self.stats.rob_stall_cycles += retire_cycle - alloc_cycle
                alloc_cycle = retire_cycle
        self._last_alloc = alloc_cycle
        return alloc_cycle

    # ------------------------------------------------------------- #
    # resolution

    def _resolve_correct(self, branch: InflightBranch) -> None:
        """Correctly predicted branch: train everything, no flush."""
        self.baseline.train(branch.tage_pred, branch.actual_taken)
        if self.unit is not None:
            self.unit.resolve(branch, (), branch.resolve_cycle)

    def _mispredict_episode(self, branch: InflightBranch, stream: TraceStream) -> None:
        """Wrong-path fetch, nested wrong-path repairs, flush, resteer."""
        cfg = self.config
        resolve = branch.resolve_cycle
        episode: list[InflightBranch] = []
        pending: list[InflightBranch] = []
        episode_start_fe = self._fe_cycle
        wp_mispredicts_before = self.stats.wrong_path_mispredicts

        if cfg.wrong_path:
            replay = stream.recent(cfg.wrong_path_window)
            index = 0
            produced = 0
            while replay and produced < cfg.wrong_path_max_branches:
                # The back end keeps retiring older correct-path work
                # while the front end runs down the wrong path.
                self._retire_up_to(self._fe_cycle)
                record = replay[index % len(replay)]
                index += 1
                group_cycles = -(-(record.inst_gap + 1) // cfg.fetch_width)
                if self._fe_cycle + group_cycles - 1 >= resolve:
                    break
                wp_branch = self._issue(record, wrong_path=True)
                if wp_branch is not None:
                    episode.append(wp_branch)
                    produced += 1
                    if wp_branch.mispredicted and wp_branch.resolve_cycle < resolve:
                        pending.append(wp_branch)

        # Wrong-path branches can resolve mispredicted before the real
        # (older) branch does — each triggers its own flush and repair,
        # later superseded when the older branch resolves (§2.5c).
        for wp_branch in sorted(pending, key=lambda b: b.resolve_cycle):
            if wp_branch.squashed:
                continue
            flushed = [
                b for b in episode if b.uid > wp_branch.uid and not b.squashed
            ]
            self.stats.wrong_path_mispredicts += 1
            if wp_branch.hist_ckpt is not None:
                self.baseline.recover(
                    wp_branch.hist_ckpt, wp_branch.pc, wp_branch.actual_taken
                )
            if self.unit is not None:
                self.unit.resolve(wp_branch, flushed, wp_branch.resolve_cycle)
            for squashed in flushed:
                squashed.squashed = True

        # The real resolution: flush everything younger, restore the
        # global history, train, repair, resteer.
        flushed = [b for b in episode if not b.squashed]
        self.stats.mispredictions += 1
        self.baseline.recover(branch.hist_ckpt, branch.pc, branch.actual_taken)
        self.baseline.train(branch.tage_pred, branch.actual_taken)
        if self.unit is not None:
            self.unit.resolve(branch, flushed, resolve)
        for squashed in flushed:
            squashed.squashed = True
        self._fe_cycle = resolve + cfg.resteer_penalty

        tel = self._tel
        if tel.enabled:
            reg = tel.registry
            reg.counter("pipeline.episodes").inc()
            reg.counter("pipeline.resteer_cycles").inc(cfg.resteer_penalty)
            if resolve > episode_start_fe:
                reg.counter("pipeline.wrong_path_cycles").inc(
                    resolve - episode_start_fe
                )
            reg.histogram("episode.wrong_path_branches").observe(len(episode))
            if tel.tracing:
                tel.emit(
                    EpisodeEvent(
                        pc=branch.pc,
                        fetch_cycle=branch.fetch_cycle,
                        resolve_cycle=resolve,
                        wrong_path_branches=len(episode),
                        wrong_path_mispredicts=(
                            self.stats.wrong_path_mispredicts
                            - wp_mispredicts_before
                        ),
                        flushed=len(flushed),
                    )
                )

    # ------------------------------------------------------------- #
    # retirement

    def _retire_up_to(self, cycle: int) -> None:
        """Release ROB groups whose retirement time has passed."""
        rob = self._rob
        if not rob or rob[0][0] > cycle:
            return
        tel = self._tel
        tracing = tel.tracing
        unit = self.unit
        popleft = rob.popleft
        freed = 0
        while rob and rob[0][0] <= cycle:
            retire_cycle, size, branch = popleft()
            freed += size
            if branch is not None:
                if unit is not None:
                    unit.retire(branch, retire_cycle)
                if tracing:
                    tel.emit(RetireEvent(cycle=retire_cycle, pc=branch.pc))
        self._rob_occupancy -= freed

    def _drain(self) -> None:
        """Retire everything left in flight and close the run."""
        final_cycle = self._fe_cycle
        tel = self._tel
        while self._rob:
            retire_cycle, size, branch = self._rob.popleft()
            self._rob_occupancy -= size
            if branch is not None:
                if self.unit is not None:
                    self.unit.retire(branch, retire_cycle)
                if tel.tracing:
                    tel.emit(RetireEvent(cycle=retire_cycle, pc=branch.pc))
            if retire_cycle > final_cycle:
                final_cycle = retire_cycle
        self.stats.cycles = max(final_cycle, self._last_retire, 1)
        if tel.enabled:
            # Mirror the stall total accumulated during allocation so
            # the stage breakdown is complete without touching the
            # ROB-bound inner loop.
            tel.registry.counter("pipeline.rob_stall_cycles").inc(
                self.stats.rob_stall_cycles
            )
        self._attach_extra()

    def _attach_extra(self) -> None:
        """Pull component statistics into the run's extra payload."""
        extra = self.stats.extra
        extra["btb_miss_rate"] = self.btb.miss_rate
        if self.hierarchy is not None:
            extra["memory"] = self.hierarchy.stats()
        if self.unit is not None:
            unit_stats = self.unit.stats
            extra["unit"] = {
                "lookups": unit_stats.lookups,
                "local_predictions": unit_stats.local_predictions,
                "overrides": unit_stats.overrides,
                "saves": unit_stats.saves,
                "damages": unit_stats.damages,
                "denied_busy": unit_stats.denied_busy,
                "blocked_updates": unit_stats.blocked_updates,
                "early_resteers": unit_stats.early_resteers,
            }
            scheme = getattr(self.unit, "scheme", None)
            if scheme is not None:
                repair = scheme.stats
                extra["repair"] = {
                    "events": repair.events,
                    "restarts": repair.restarts,
                    "entries_walked": repair.entries_walked,
                    "bht_writes": repair.bht_writes,
                    "busy_cycles": repair.busy_cycles,
                    "uncheckpointed": repair.uncheckpointed,
                    "unrepaired": repair.unrepaired,
                    "skipped_events": repair.skipped_events,
                    "mean_writes_per_event": repair.mean_writes_per_event,
                    "max_writes_per_event": repair.writes_per_event_max,
                }
