"""Columnar batch-sweep kernel: many predictor configs, one trace pass.

Sweeps replay the *same* trace across many predictor configurations —
Table 3 sizings, Figure 14-style sensitivity scans — and the scalar
engine pays the full branch-by-branch Python loop once per config.  For
the table-indexed predictor family (:mod:`repro.predictors.table`:
bimodal, gshare, direct-mapped two-level local) the committed-stream
behaviour is a pure function of prior outcomes, so every config's
per-branch index stream can be *precomputed* from the trace columns and
the remaining work — gather counter, threshold, saturate toward the
outcome, scatter back — vectorised with a leading config axis.

The only sequential dependency left is the saturating-counter chain per
table entry: branch *k*'s prediction reads the state branch *j < k*
wrote whenever they share an index.  The kernel handles that exactly
(not approximately) with a sorted-run schedule per interval:

1. flatten the interval's (config, branch) cells and stable-sort by
   flat table key — cells sharing a counter become one contiguous *run*
   in trace order;
2. iterate *levels*: level ``p`` holds the ``p``-th cell of every run.
   Within a level each run appears at most once, so gather → predict →
   saturate → scatter is conflict-free, and processing levels in order
   replays each run's chain in exact trace order.

Wall-clock is then bounded by the deepest run (the hottest counter) per
interval instead of by total cells, and every prediction is
**bit-identical** to the scalar engine — verified against
:func:`functional_predictions` (the literal per-branch reference) in
the test suite and asserted by ``repro perf``.

Scope: this kernel models prediction accuracy (per-branch predictions,
mispredictions, MPKI), not pipeline timing — IPC/cycles require the
full out-of-order model, and TAGE's tagged allocation paths are not
index-addressed, so both fall back to the exact scalar engine (see
:mod:`repro.harness.batch` for the policy layer).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Sequence

import numpy as np

from repro.errors import ConfigError
from repro.predictors.base import GlobalPredictor
from repro.predictors.table import TablePredictorSpec
from repro.trace.columns import ColumnarTrace
from repro.trace.records import BranchKind, BranchRecord

__all__ = [
    "DEFAULT_INTERVAL",
    "BatchResult",
    "run_batch",
    "functional_predictions",
]

#: Records per vectorised interval.  Intervals only bound the working
#: set (sort buffers are O(configs x interval)); chain state persists in
#: the flat table across boundaries, so results are interval-invariant.
DEFAULT_INTERVAL = 16384

_COND = int(BranchKind.COND)


@dataclass(frozen=True)
class BatchResult:
    """Per-config prediction outcomes of one batch kernel run.

    ``predictions[c, i]`` is config ``c``'s prediction for the ``i``-th
    *conditional* branch of the trace (non-conditional records are not
    predicted, matching the pipeline).  ``instructions`` counts every
    record's full instruction group, exactly like
    :class:`~repro.pipeline.stats.SimStats`, so :meth:`mpki` is
    bit-identical to the scalar engine's for the same trace.
    """

    specs: tuple[TablePredictorSpec, ...]
    #: (configs, cond_branches) predicted directions.
    predictions: "np.ndarray[Any, Any]"
    #: (cond_branches,) actual directions, shared by every config.
    taken: "np.ndarray[Any, Any]"
    cond_branches: int
    taken_branches: int
    instructions: int

    def mispredictions(self, index: int) -> int:
        """Total mispredictions of config ``index``."""
        row = self.predictions[index]
        return int(np.count_nonzero(row != self.taken))

    def mpki(self, index: int) -> float:
        """Mispredictions per kilo-instruction, scalar-engine float math."""
        if self.instructions == 0:
            return 0.0
        return self.mispredictions(index) * 1000.0 / self.instructions

    def accuracy(self, index: int) -> float:
        """Fraction of conditional branches config ``index`` got right."""
        if self.cond_branches == 0:
            return 1.0
        return 1.0 - self.mispredictions(index) / self.cond_branches


def _ghist_stream(taken: "np.ndarray[Any, Any]", bits: int) -> "np.ndarray[Any, Any]":
    """Global history *before* each branch, as packed uint64 words.

    ``out[k]`` bit ``j`` is the outcome of conditional branch
    ``k - 1 - j`` (newest at position 0), exactly the low ``bits`` bits
    of :class:`~repro.predictors.history.GlobalHistory.ghist` at branch
    ``k``'s lookup — on the committed stream the speculative history
    always resolves to actual outcomes before the next lookup.
    """
    n = len(taken)
    out = np.zeros(n, dtype=np.uint64)
    bits_u64 = taken.astype(np.uint64)
    for j in range(min(bits, n)):
        out[j + 1 :] |= bits_u64[: n - 1 - j] << np.uint64(j)
    return out


def _local_patterns(
    pc_words: "np.ndarray[Any, Any]",
    taken: "np.ndarray[Any, Any]",
    spec: TablePredictorSpec,
) -> "np.ndarray[Any, Any]":
    """Per-branch local-history patterns for a ``local2l`` spec.

    The BHT starts all-zero and shifts in actual outcomes per
    direct-mapped PC slot, so branch ``k``'s pattern is the packed
    outcomes of the previous ``history_bits`` branches *mapping to the
    same BHT entry* — recovered by grouping the stream by BHT index
    (stable sort keeps trace order within a group) and accumulating
    shifted outcome bits inside each group.
    """
    n = len(pc_words)
    bht_index = pc_words & np.uint64((1 << spec.bht_log_entries) - 1)
    order = np.argsort(bht_index, kind="stable")
    index_sorted = bht_index[order]
    taken_sorted = taken[order].astype(np.uint64)
    patterns_sorted = np.zeros(n, dtype=np.uint64)
    for j in range(min(spec.history_bits, n)):
        m = n - 1 - j
        if m <= 0:
            break
        same_group = index_sorted[j + 1 :] == index_sorted[: m]
        patterns_sorted[j + 1 :] |= (
            taken_sorted[:m] & same_group.astype(np.uint64)
        ) << np.uint64(j)
    patterns = np.empty(n, dtype=np.uint64)
    patterns[order] = patterns_sorted
    return patterns


def _index_stream(
    spec: TablePredictorSpec,
    pc_words: "np.ndarray[Any, Any]",
    taken: "np.ndarray[Any, Any]",
    ghist: "np.ndarray[Any, Any]" | None,
) -> "np.ndarray[Any, Any]":
    """The per-branch table index every lookup of ``spec`` would use."""
    mask = np.uint64((1 << spec.log_entries) - 1)
    if spec.kind == "bimodal":
        return (pc_words & mask).astype(np.int64)
    if spec.kind == "gshare":
        assert ghist is not None
        hist = ghist & np.uint64((1 << spec.history_bits) - 1)
        return ((pc_words ^ hist) & mask).astype(np.int64)
    patterns = _local_patterns(pc_words, taken, spec)
    return ((patterns ^ pc_words) & mask).astype(np.int64)


def _evaluate_interval(
    keys: "np.ndarray[Any, Any]",
    deltas: "np.ndarray[Any, Any]",
    thresholds: "np.ndarray[Any, Any]",
    maxima: "np.ndarray[Any, Any]",
    tables: "np.ndarray[Any, Any]",
) -> "np.ndarray[Any, Any]":
    """One interval of the sorted-run level schedule (see module doc).

    ``keys``/``deltas``/``thresholds``/``maxima`` are flattened
    (config-major) per-cell vectors; ``tables`` is the persistent flat
    counter plane, updated in place.  Returns the per-cell predictions
    in the same flattened order.
    """
    cells = len(keys)
    order = np.argsort(keys, kind="stable")
    keys_sorted = keys[order]
    deltas_sorted = deltas[order]
    thresholds_sorted = thresholds[order]
    maxima_sorted = maxima[order]
    run_start = np.empty(cells, dtype=bool)
    run_start[0] = True
    np.not_equal(keys_sorted[1:], keys_sorted[:-1], out=run_start[1:])
    run_id = np.cumsum(run_start) - 1
    first_of_run = np.flatnonzero(run_start)
    run_keys = keys_sorted[first_of_run]
    run_states = tables[run_keys]
    position = np.arange(cells, dtype=np.int64) - first_of_run[run_id]
    level_sizes = np.bincount(position)
    level_bounds = np.concatenate(([0], np.cumsum(level_sizes)))
    level_order = np.argsort(position, kind="stable")
    predictions_sorted = np.empty(cells, dtype=bool)
    for level in range(len(level_sizes)):
        cells_here = level_order[level_bounds[level] : level_bounds[level + 1]]
        runs_here = run_id[cells_here]
        states = run_states[runs_here]
        predictions_sorted[cells_here] = states >= thresholds_sorted[cells_here]
        states = states + deltas_sorted[cells_here]
        np.minimum(states, maxima_sorted[cells_here], out=states)
        np.maximum(states, 0, out=states)
        # Each run occurs at most once per level: scatter is exact.
        run_states[runs_here] = states
    tables[run_keys] = run_states
    predictions = np.empty(cells, dtype=bool)
    predictions[order] = predictions_sorted
    return predictions


def run_batch(
    trace: ColumnarTrace,
    specs: Sequence[TablePredictorSpec],
    interval: int = DEFAULT_INTERVAL,
) -> BatchResult:
    """Evaluate every spec's predictions over one trace, vectorised.

    Bit-identical to running each spec's scalar predictor through the
    exact pipeline (committed-stream predictions, mispredictions, and
    MPKI); see the module docstring for why that equivalence holds and
    what falls outside this kernel's scope (timing, TAGE).
    """
    if not specs:
        raise ConfigError("run_batch needs at least one predictor spec")
    if interval < 1:
        raise ConfigError(f"batch interval must be >= 1, got {interval}")
    spec_tuple = tuple(specs)
    kinds = trace.kind
    cond_mask = kinds == _COND
    pc_words = trace.pc[cond_mask] >> np.uint64(2)
    taken = trace.taken[cond_mask]
    n_cond = len(pc_words)
    instructions = int(trace.inst_gap.astype(np.int64).sum()) + len(trace)
    gshare_bits = [s.history_bits for s in spec_tuple if s.kind == "gshare"]
    ghist = _ghist_stream(taken, max(gshare_bits)) if gshare_bits else None
    index_streams = [
        _index_stream(spec, pc_words, taken, ghist) for spec in spec_tuple
    ]
    n_configs = len(spec_tuple)
    sizes = np.array([1 << spec.log_entries for spec in spec_tuple], dtype=np.int64)
    offsets = np.concatenate(([0], np.cumsum(sizes)))
    tables = np.empty(int(offsets[-1]), dtype=np.int16)
    thresholds = np.empty(n_configs, dtype=np.int16)
    maxima = np.empty(n_configs, dtype=np.int16)
    for c, spec in enumerate(spec_tuple):
        # Every supported family initialises weakly taken at the
        # counter midpoint (bimodal/gshare/local2l all do).
        thresholds[c] = 1 << (spec.counter_bits - 1)
        maxima[c] = (1 << spec.counter_bits) - 1
        tables[offsets[c] : offsets[c + 1]] = thresholds[c]
    predictions = np.empty((n_configs, n_cond), dtype=bool)
    deltas = taken.astype(np.int16) * 2 - 1
    for start in range(0, n_cond, interval):
        end = min(n_cond, start + interval)
        span = end - start
        keys = np.concatenate(
            [stream[start:end] + offsets[c] for c, stream in enumerate(index_streams)]
        )
        cell_deltas = np.tile(deltas[start:end], n_configs)
        cell_thresholds = np.repeat(thresholds, span)
        cell_maxima = np.repeat(maxima, span)
        flat = _evaluate_interval(
            keys, cell_deltas, cell_thresholds, cell_maxima, tables
        )
        predictions[:, start:end] = flat.reshape(n_configs, span)
    return BatchResult(
        specs=spec_tuple,
        predictions=predictions,
        taken=taken,
        cond_branches=n_cond,
        taken_branches=int(np.count_nonzero(taken)),
        instructions=instructions,
    )


def functional_predictions(
    predictor: GlobalPredictor, records: Sequence[BranchRecord]
) -> list[bool]:
    """Scalar reference: per-branch predictions on the committed stream.

    Replays the exact committed-stream predictor sequence the pipeline
    produces for a baseline-only system — lookup, history push of the
    *actual* outcome (speculative pushes always resolve to this before
    the next committed lookup), train — and returns each conditional
    branch's predicted direction.  This is the ground truth the batch
    kernel is validated against.
    """
    out: list[bool] = []
    for record in records:
        if record.kind is not BranchKind.COND:
            continue
        prediction = predictor.lookup(record.pc)
        out.append(prediction.taken)
        predictor.history.push(record.pc, record.taken)
        predictor.train(prediction, record.taken)
    return out
