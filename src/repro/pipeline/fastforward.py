"""Functional fast-forward: predictor state without a timing model.

SMARTS/SimPoint-style sampled simulation only measures short detailed
intervals; everything between them must still flow through the
*predictor* state — BHT counts, PT trip tables, TAGE tables, global
history — or the detailed intervals would start cold and measure
warmup transients instead of steady-state behaviour.  This module
streams the non-sampled records through exactly those state updates,
skipping the ROB, ports, wrong-path synthesis, and cycle accounting
that make detailed simulation expensive.

Two speeds are provided:

``skip``
    The cheapest stream: per committed conditional branch, one
    :meth:`~repro.predictors.base.GlobalPredictor.fast_update` (for
    TAGE: a bimodal counter touch) and one
    :meth:`~repro.core.unit.LocalBranchUnit.warm` (architectural
    BHT advance + PT train).  Global history is *not* maintained per
    branch; instead the youngest ``max_length + 1`` conditional
    outcomes of the span are replayed through ``history.push`` at the
    end, which reconstructs GHIST/PHIST and every registered fold
    exactly (folds are pure functions of the history registers).

``warm``
    The detailed warmup window run just before each measured interval:
    full TAGE lookup + train with per-branch history pushes, unit
    warmup, BTB installs, and cache-hierarchy touches.  This re-warms
    the history-indexed tagged tables that ``skip`` leaves untouched.

Neither speed touches :class:`~repro.pipeline.stats.SimStats` — the
fast-forwarded records contribute no instructions, cycles, or
mispredictions; they exist only to keep state warm.  The committed
history after a fast-forwarded span is bit-identical to what a full
detailed run would leave (speculative pushes plus misprediction
recovery net out to the actual outcomes), so the approximation lives
entirely in table contents, never in the history registers.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.core.unit import LocalBranchUnit
from repro.memory.hierarchy import CacheHierarchy
from repro.pipeline.btb import BranchTargetBuffer
from repro.predictors.base import GlobalPredictor
from repro.trace.records import BranchKind, BranchRecord

__all__ = ["FastForwardEngine"]


class FastForwardEngine:
    """State-only execution of trace spans between detailed intervals."""

    __slots__ = ("baseline", "unit", "btb", "hierarchy", "_history_tail")

    def __init__(
        self,
        baseline: GlobalPredictor,
        unit: LocalBranchUnit | None = None,
        btb: BranchTargetBuffer | None = None,
        hierarchy: CacheHierarchy | None = None,
    ) -> None:
        self.baseline = baseline
        self.unit = unit
        self.btb = btb
        self.hierarchy = hierarchy
        # GHIST keeps one spare bit above max_length (see GlobalHistory),
        # so max_length + 1 pushes fully determine every history register
        # and, through them, every fold.
        self._history_tail = baseline.history.max_length + 1

    # ------------------------------------------------------------- #

    def skip(self, records: Sequence[BranchRecord], start: int, end: int) -> int:
        """Cheapest state stream over ``records[start:end]``.

        Returns the number of conditional branches processed.  The
        global history is reconstructed exactly at the end of the span
        by replaying its youngest conditional outcomes.
        """
        if end <= start:
            return 0
        # Find the span index from which the last `tail` conditional
        # records run, so the forward pass can push them as it goes.
        tail_start = end
        remaining = self._history_tail
        cond = BranchKind.COND
        while tail_start > start and remaining > 0:
            tail_start -= 1
            if records[tail_start].kind is cond:
                remaining -= 1

        fast_update = self.baseline.fast_update
        push = self.baseline.history.push
        unit = self.unit
        warm_unit = unit.warm if unit is not None else None
        hierarchy = self.hierarchy
        # Cache touches are pure state writes — nothing in a skip span
        # reads them back — so they are collected and applied in one
        # LRU-equivalent batch at the end (see Cache.touch_batch).  The
        # (much smaller) BTB is deliberately *not* touched here — the
        # warm window re-installs its working set at a fraction of the
        # cost of 1 install per taken branch over the whole span, with
        # no measurable IPC effect.
        loads: list[int] | None = [] if hierarchy is not None else None
        processed = 0
        for i in range(start, end):
            record = records[i]
            if loads is not None and record.load_addr:
                loads.append(record.load_addr)
            if record.kind is not cond:
                continue
            processed += 1
            taken = record.taken
            fast_update(record.pc, taken)
            if warm_unit is not None:
                warm_unit(record)
            if i >= tail_start:
                push(record.pc, taken)
        if hierarchy is not None and loads:
            # Keeps the hierarchy continuously warm: it is a
            # capacity-limited structure whose miss rates feed straight
            # into detailed-interval cycle counts.
            hierarchy.warm_load_batch(loads)
        return processed

    def warm(self, records: Sequence[BranchRecord], start: int, end: int) -> int:
        """Full functional warmup over ``records[start:end]``.

        Trains the complete baseline predictor (history-correct tagged
        lookups included), the local unit, the BTB, and the cache
        hierarchy.  Returns the number of conditional branches
        processed.
        """
        if end <= start:
            return 0
        warm_update = self.baseline.warm_update
        unit = self.unit
        warm_unit = unit.warm if unit is not None else None
        btb = self.btb
        hierarchy = self.hierarchy
        cond = BranchKind.COND
        processed = 0
        for i in range(start, end):
            record = records[i]
            pc = record.pc
            if record.taken and btb is not None:
                # install() updates in place on a hit; probing through
                # lookup() would skew the reported hit/miss counters,
                # which only measure the detailed intervals.
                btb.install(pc, record.target)
            if hierarchy is not None and record.load_addr:
                hierarchy.load_latency(record.load_addr)
            if record.kind is not cond:
                continue
            processed += 1
            # The fused update looks up with the pre-push history (as at
            # fetch) and pushes the actual outcome before training — the
            # committed state a detailed run converges to after recovery.
            warm_update(pc, record.taken)
            if warm_unit is not None:
                warm_unit(record)
        return processed
