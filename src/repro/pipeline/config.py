"""Pipeline model configuration (paper Table 2).

The defaults model the paper's Skylake-like core: 4-wide out-of-order,
224-entry ROB, 64-entry allocation queue, 72/56-entry load/store
buffers, a 2K-entry BTB, and a deep front end whose refill time is what
makes branch mispredictions expensive.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError

__all__ = ["PipelineConfig"]


@dataclass(frozen=True)
class PipelineConfig:
    """Timing and capacity parameters of the core model."""

    # -- widths --------------------------------------------------------
    fetch_width: int = 4
    retire_width: int = 4

    # -- window capacities (Table 2) ------------------------------------
    rob_entries: int = 224
    alloc_queue_entries: int = 64
    load_buffer_entries: int = 72
    store_buffer_entries: int = 56

    # -- depths / latencies ---------------------------------------------
    #: Fetch → allocation distance in cycles.  Allocation-queue buffering
    #: is folded into this figure (the queue smooths bursts; its capacity
    #: bounds how far fetch runs ahead, which the ROB bound dominates).
    frontend_depth: int = 12
    #: Allocation → first possible execution (rename + schedule).
    sched_to_exec: int = 6
    #: Branch ALU latency.
    branch_exec_latency: int = 2
    #: Completion latency charged to a non-branch instruction group with
    #: no modelled load.
    nonbranch_base_latency: int = 3
    #: Deterministic scheduling-jitter range added to branch resolution
    #: (models operand wait variance without a full dependence graph).
    exec_jitter: int = 4

    # -- resteer costs --------------------------------------------------
    #: Redirect cycles after a resolved misprediction before the front
    #: end restarts fetching (the refill itself then costs
    #: ``frontend_depth``, so the full penalty is ~2+12+6+2 cycles).
    #: Because fetch — and therefore branch prediction — restarts almost
    #: immediately, repairs that outlast this shadow start denying the
    #: local predictor its post-resteer predictions, which is exactly
    #: the §2.5(a) effect the schemes differ on.
    resteer_penalty: int = 1
    #: Extra cycles to restart fetch after a deferred-stage (alloc)
    #: override resteer (§3.2); refill cost again comes from depth.
    early_resteer_penalty: int = 1

    # -- BTB --------------------------------------------------------
    btb_entries: int = 2048
    btb_ways: int = 4
    btb_miss_penalty: int = 8

    # -- wrong-path modelling ---------------------------------------
    #: Synthesize wrong-path fetch after mispredictions (the mechanism
    #: that corrupts un-repaired BHT state).  Disable for ablation.
    wrong_path: bool = True
    #: Replay window: wrong-path fetch replays the most recent committed
    #: records (≈ re-running the loop body / fall-through block).  Kept
    #: narrow: real wrong paths reconverge with nearby code quickly, so
    #: the set of *distinct* PCs they pollute is small even when the
    #: episode is long.
    wrong_path_window: int = 12
    #: Bound on synthesized wrong-path branches per episode.  Sized to
    #: roughly one front-end window: deeper wrong paths exist on long
    #: (load-dependent) resolutions, but the instruction queue and
    #: alloc-queue bounds throttle real fetch well before 64 branches.
    wrong_path_max_branches: int = 12

    def __post_init__(self) -> None:
        if self.fetch_width <= 0 or self.retire_width <= 0:
            raise ConfigError("pipeline widths must be positive")
        if self.rob_entries <= 0:
            raise ConfigError("rob_entries must be positive")
        if self.frontend_depth < 1 or self.sched_to_exec < 0:
            raise ConfigError("pipeline depths out of range")
        if self.btb_entries % self.btb_ways:
            raise ConfigError(
                f"btb_entries {self.btb_entries} not divisible by ways {self.btb_ways}"
            )
        if self.wrong_path_window <= 0 or self.wrong_path_max_branches < 0:
            raise ConfigError("wrong-path parameters out of range")

    @classmethod
    def skylake(cls) -> "PipelineConfig":
        """The paper's Table 2 core."""
        return cls()

    def mispredict_penalty_estimate(self) -> int:
        """Approximate full misprediction penalty (for documentation)."""
        return self.resteer_penalty + self.frontend_depth + self.sched_to_exec
