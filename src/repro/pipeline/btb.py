"""Branch Target Buffer: taken-branch target cache (Table 2: 2K entries).

A BTB miss on a taken branch means the front end discovers the target
late and inserts a fetch bubble.  Only hit/miss timing matters here —
targets are stored to make hits meaningful but never drive fetch
addresses (the trace supplies the committed path).
"""

from __future__ import annotations

from repro.errors import ConfigError

__all__ = ["BranchTargetBuffer"]

_NO_PC = -1


class BranchTargetBuffer:
    """Set-associative PC → target cache with LRU replacement."""

    def __init__(self, entries: int = 2048, ways: int = 4) -> None:
        if entries <= 0 or ways <= 0 or entries % ways:
            raise ConfigError(f"bad BTB geometry {entries} entries / {ways} ways")
        sets = entries // ways
        if sets & (sets - 1):
            raise ConfigError(f"BTB set count {sets} must be a power of two")
        self.entries = entries
        self.ways = ways
        self._set_mask = sets - 1
        self._set_bits = max(sets - 1, 1).bit_length()
        self._pcs = [_NO_PC] * entries
        self._targets = [0] * entries
        self._lru = [0] * entries
        self._tick = 0
        self.hits = 0
        self.misses = 0

    def _base(self, pc: int) -> int:
        bits = pc >> 2
        return ((bits ^ (bits >> self._set_bits)) & self._set_mask) * self.ways

    def lookup(self, pc: int) -> int | None:
        """Predicted target for ``pc``, or None on a miss."""
        base = self._base(pc)
        for way in range(self.ways):
            slot = base + way
            if self._pcs[slot] == pc:
                self._tick += 1
                self._lru[slot] = self._tick
                self.hits += 1
                return self._targets[slot]
        self.misses += 1
        return None

    def install(self, pc: int, target: int) -> None:
        """Insert or update the target for ``pc``."""
        base = self._base(pc)
        victim = base
        victim_tick = self._lru[base]
        for way in range(self.ways):
            slot = base + way
            if self._pcs[slot] == pc or self._pcs[slot] == _NO_PC:
                victim = slot
                break
            if self._lru[slot] < victim_tick:
                victim = slot
                victim_tick = self._lru[slot]
        self._pcs[victim] = pc
        self._targets[victim] = target
        self._tick += 1
        self._lru[victim] = self._tick

    @property
    def miss_rate(self) -> float:
        total = self.hits + self.misses
        return self.misses / total if total else 0.0
