"""Trace-guided specialization of the exact detailed engine.

The generic :class:`~repro.pipeline.core.PipelineModel` pays for
generality on every branch: attribute chains, telemetry checks, feature
branches for units/hierarchies/telemetry that a given (system, workload)
pair never takes.  This module removes that cost with a classic
guard/commit/abort scheme:

1. **Profile** — the driver runs a short prefix (a few thousand
   branches) under the generic engine and observes which paths are
   live: is there a local unit?  a cache hierarchy?  do records carry
   load addresses?
2. **Specialize** — from those observations it generates a straight-line
   Python step function (string template → ``ast.parse`` →
   ``compile`` → ``exec``) with dead feature branches removed, config
   constants inlined as literals, hot calls pre-bound to locals, and
   telemetry hooks elided entirely.
3. **Guard** — paths the profile declared dead are protected by runtime
   guards.  A record that needs a dead path raises :class:`GuardTripped`.
4. **Abort** — the driver checkpoints model + stream every
   ``checkpoint_interval`` branches; on a guard trip it restores the
   last checkpoint and finishes the run under the generic engine.
   Specialization is therefore *bit-identical by construction*: every
   committed branch is simulated either by the generic code or by a
   specialized path proven equivalent to it.

Three templates exist.  The stock no-unit TAGE system gets the deep
``"tage"`` template: the provider scan, training updates, history push
and the wrong-path replay of a misprediction episode are all unrolled
into generated straight-line code with per-table constants inlined,
and GHIST/PHIST plus every fold register live in local variables that
sync with the predictor objects only around the (rare) generic
mispredict lookup/train and at span boundaries.  Other pure-lookup
predictors get the ``"nounit"`` template, whose correct path uses the
fused :meth:`~repro.predictors.base.GlobalPredictor.spec_resolve_correct`
and whose mispredictions fall back to the generic
:meth:`~repro.pipeline.core.PipelineModel._mispredict_episode`.
Systems with a local unit get the ``"unit"`` template, which keeps the
full generic predict flow (the unit is stateful and cheap relative to
TAGE) and specializes only the pipeline bookkeeping around it.

This module is simulation code (no environment reads, no clocks); all
policy — whether to specialize, profile length, cache directory — is
decided by :mod:`repro.harness.specialize` and passed in explicitly.
"""

from __future__ import annotations

import ast
import copy
import hashlib
import os
from collections.abc import Callable, Sequence
from dataclasses import astuple, dataclass
from pathlib import Path

from repro.core.inflight import InflightBranch
from repro.errors import SimulationError, SpecializationError
from repro.memory.cache import Cache
from repro.memory.hierarchy import CacheHierarchy
from repro.pipeline.btb import BranchTargetBuffer
from repro.pipeline.core import PipelineModel
from repro.pipeline.stats import SimStats
from repro.predictors.base import GlobalPredictor
from repro.predictors.history import GlobalHistory, HistoryCheckpoint
from repro.predictors.tage import TagePredictor
from repro.telemetry import TELEMETRY
from repro.trace.records import BranchKind, BranchRecord
from repro.trace.stream import TraceStream

__all__ = [
    "SPECIALIZE_VERSION",
    "DEFAULT_PROFILE_BRANCHES",
    "DEFAULT_CHECKPOINT_INTERVAL",
    "GuardTripped",
    "TageGeometry",
    "SpecializationDecision",
    "CompiledEngine",
    "plan_specialization",
    "generate_engine_source",
    "load_engine",
    "run_specialized",
]

#: Bumped whenever codegen output could change for the same inputs.
#: Folded into both the engine cache key and the run manifest's engine
#: tag, so stale cached engines and stale cached *results* both miss.
SPECIALIZE_VERSION = 1

#: Generic-engine prefix observed before deciding what to specialize.
DEFAULT_PROFILE_BRANCHES = 2000

#: Committed branches between model/stream checkpoints inside the
#: specialized span; also the abort replay cost ceiling.
DEFAULT_CHECKPOINT_INTERVAL = 100_000


class GuardTripped(SpecializationError):
    """A specialized engine hit a path its profile declared dead.

    Raised *inside* generated code and caught by :func:`run_specialized`,
    which aborts back to the generic engine from the last checkpoint.
    Never escapes the driver.
    """

    def __init__(self, guard: str) -> None:
        super().__init__(f"specialization guard tripped: {guard}")
        self.guard = guard


# ------------------------------------------------------------------ #
# planning


@dataclass(frozen=True)
class TageGeometry:
    """Flattened TAGE + history structure consumed by the deep template.

    Everything the generated scan/train/push code needs as literals:
    per-table hash constants (mirroring ``TagePredictor._lookup_params``),
    per-fold update constants (mirroring ``GlobalHistory._fold_params``),
    and the scalar saturation bounds.  Plain ints and tuples only, so the
    geometry is hashable and reprs deterministically for fingerprints.
    """

    #: Per table: (log_entries, path_mask, pc_shift, index_slot,
    #: tag0_slot, tag1_slot, index_mask, tag_mask).
    tables: tuple[tuple[int, int, int, int, int, int, int, int], ...]
    #: Per fold: (slot, original_length, outpoint, compressed_length, mask).
    folds: tuple[tuple[int, int, int, int, int], ...]
    bim_mask: int
    ghist_mask: int
    phist_mask: int
    ctr_max: int
    ctr_min: int
    u_max: int
    use_alt_max: int
    use_alt_threshold: int
    u_reset_period: int


@dataclass(frozen=True)
class SpecializationDecision:
    """Everything codegen needs, observed from config + profile prefix.

    The tuple of fields *is* the specialization: two runs with equal
    decisions (and equal templates) produce byte-identical engines,
    which is what makes the on-disk engine cache sound.
    """

    template: str  #: ``"tage"``, ``"nounit"``, or ``"unit"``.
    has_loads: bool  #: Profile prefix contained records with load_addr.
    has_hierarchy: bool  #: A CacheHierarchy is attached.
    fetch_width: int
    frontend_depth: int
    sched_to_exec: int
    branch_exec_latency: int
    nonbranch_base_latency: int
    exec_jitter: int
    retire_width: int
    rob_entries: int
    btb_miss_penalty: int
    early_resteer_penalty: int
    wrong_path: bool
    wrong_path_window: int
    wrong_path_max_branches: int
    resteer_penalty: int
    #: BTB hash geometry, inlined by the deep template.
    btb_ways: int = 0
    btb_set_bits: int = 0
    btb_set_mask: int = 0
    #: L1 data-cache geometry for the deep template's inlined hit probe
    #: (zeros when no hierarchy is attached).
    l1_line_shift: int = 0
    l1_set_mask: int = 0
    l1_latency: int = 0
    #: TAGE structure for the deep template; None for the other two.
    tage: TageGeometry | None = None

    def fingerprint(self) -> str:
        """Stable digest over every field, for the engine cache key."""
        payload = repr(astuple(self)).encode()
        return hashlib.sha256(payload).hexdigest()[:16]


def plan_specialization(
    model: PipelineModel, records: Sequence[BranchRecord], profiled: int
) -> tuple[SpecializationDecision | None, str | None]:
    """Decide whether (and how) to specialize ``model`` for ``records``.

    Returns ``(decision, None)`` when eligible, ``(None, reason)`` when
    the run must stay on the generic engine.  Eligibility is strict:
    any behaviour the templates cannot reproduce bit-for-bit disables
    specialization rather than risking drift.
    """
    if type(model) is not PipelineModel:
        return None, "model subclass"
    if model._tel.tracing:
        return None, "telemetry tracing active"
    baseline = model.baseline
    base_type = type(baseline)
    if base_type.checkpoint is not GlobalPredictor.checkpoint:
        return None, "predictor overrides checkpoint"
    if base_type.spec_push is not GlobalPredictor.spec_push:
        return None, "predictor overrides spec_push"
    if not baseline.pure_lookup:
        return None, "predictor lookup is not pure"
    cfg = model.config
    prefix = records[:profiled]

    # The deep template inlines TAGE's scan/train and the history push
    # into generated straight-line code, so it demands the exact stock
    # classes (a subclass could override any of the methods it elides).
    hierarchy = model.hierarchy
    geometry: TageGeometry | None = None
    if model.unit is not None:
        template = "unit"
    elif (
        type(baseline) is TagePredictor
        and type(baseline.history) is GlobalHistory
        and type(model.btb) is BranchTargetBuffer
        and (
            hierarchy is None
            or (
                type(hierarchy) is CacheHierarchy
                and type(hierarchy.l1) is Cache
            )
        )
    ):
        template = "tage"
        history = baseline.history
        geometry = TageGeometry(
            tables=tuple(baseline._lookup_params),
            folds=tuple(history._fold_params),
            bim_mask=baseline._bim_mask,
            ghist_mask=history._ghist_mask,
            phist_mask=history._phist_mask,
            ctr_max=baseline._ctr_max,
            ctr_min=baseline._ctr_min,
            u_max=baseline._u_max,
            use_alt_max=baseline._use_alt_max,
            use_alt_threshold=(baseline._use_alt_max + 1) // 2,
            u_reset_period=baseline.config.u_reset_period,
        )
    else:
        template = "nounit"

    return (
        SpecializationDecision(
            template=template,
            has_loads=any(r.load_addr for r in prefix),
            has_hierarchy=model.hierarchy is not None,
            fetch_width=cfg.fetch_width,
            frontend_depth=cfg.frontend_depth,
            sched_to_exec=cfg.sched_to_exec,
            branch_exec_latency=cfg.branch_exec_latency,
            nonbranch_base_latency=cfg.nonbranch_base_latency,
            exec_jitter=cfg.exec_jitter,
            retire_width=cfg.retire_width,
            rob_entries=cfg.rob_entries,
            btb_miss_penalty=cfg.btb_miss_penalty,
            early_resteer_penalty=cfg.early_resteer_penalty,
            wrong_path=cfg.wrong_path,
            wrong_path_window=cfg.wrong_path_window,
            wrong_path_max_branches=cfg.wrong_path_max_branches,
            resteer_penalty=cfg.resteer_penalty,
            btb_ways=model.btb.ways,
            btb_set_bits=model.btb._set_bits,
            btb_set_mask=model.btb._set_mask,
            l1_line_shift=(
                hierarchy.l1._line_shift if hierarchy is not None else 0
            ),
            l1_set_mask=(
                hierarchy.l1._set_mask if hierarchy is not None else 0
            ),
            l1_latency=(
                hierarchy.config.l1.latency if hierarchy is not None else 0
            ),
            tage=geometry,
        ),
        None,
    )


# ------------------------------------------------------------------ #
# templates
#
# Each template is a complete, parseable module defining
# ``specialized_step(model, stream, start, stop) -> int``.  Dunder
# names (``__FETCH_WIDTH__`` ...) are placeholders — legal identifiers,
# so the raw templates stay ``ast.parse``-clean for simlint's template
# scanning (GEN001/DET001/SPEC001) — replaced with literals or code at
# generation time.  Every line mirrors a line of
# ``PipelineModel._issue``/``run_stream``; when editing one, diff it
# against the generic engine, not against the other template.

TAGE_STEP_TEMPLATE = '''\
def _resolve_key(entry):
    return entry[1]


def specialized_step(model, stream, start, stop):
    records = stream.records
    window_append = stream.window.append
    stream_recent = stream.recent
    baseline = model.baseline
    base_lookup = model._base_lookup
    hist_checkpoint = model._base_checkpoint
    hist_push = model._base_spec_push
    btb = model.btb
    btb_install = model._btb_install
    btb_pcs = btb._pcs
    btb_lru = btb._lru
    b_tick = btb._tick
    d_btb_hits = 0
    base_train = baseline.train
    age_useful = baseline._age_useful
    hist = baseline.history
    comps = hist.fold_comps
    ghist = hist.ghist
    phist = hist.phist
    use_alt = baseline._use_alt
    usr = baseline._updates_since_reset
    bim = baseline._bimodal
    __TAGE_BIND__
    __HIER_BIND__
    stats = model.stats
    rob = model._rob
    rob_append = rob.append
    rob_popleft = rob.popleft
    fe_cycle = model._fe_cycle
    last_alloc = model._last_alloc
    last_retire = model._last_retire
    rob_occupancy = model._rob_occupancy
    next_uid = model._next_uid
    d_instructions = 0
    d_branches = 0
    d_cond = 0
    d_taken = 0
    d_base_wrong = 0
    d_btb_misses = 0
    d_rob_stall = 0
    d_mispredictions = 0
    d_wp_branches = 0
    d_wp_mispredicts = 0
    for record in records[start:stop]:
        window_append(record)
        if rob and rob[0][0] <= fe_cycle:
            freed = 0
            while rob and rob[0][0] <= fe_cycle:
                freed += rob_popleft()[1]
            rob_occupancy -= freed
        group = record.inst_gap + 1
        fetch_cycles = -(-group // __FETCH_WIDTH__)
        fetch_cycle = fe_cycle + fetch_cycles - 1
        btb_bubble = 0
        if record.taken:
            __BTB_PROBE__
        alloc_cycle = fetch_cycle + __FRONTEND_DEPTH__
        if alloc_cycle < last_alloc:
            alloc_cycle = last_alloc
        while rob_occupancy + group > __ROB_ENTRIES__:
            if not rob:
                raise SimulationError(
                    f"instruction group of {group} exceeds ROB capacity"
                )
            r_cycle, r_size, _r_branch = rob_popleft()
            rob_occupancy -= r_size
            if r_cycle > alloc_cycle:
                d_rob_stall += r_cycle - alloc_cycle
                alloc_cycle = r_cycle
        last_alloc = alloc_cycle
        __LOAD_PREP__
        uid = next_uid
        next_uid = uid + 1
        resolve_cycle = alloc_cycle + __EXEC_BASE__ + __JITTER_EXPR__
        __DEP_STMT__
        completion = alloc_cycle + __COMPLETION_TAIL__
        branch = None
        if record.kind is COND:
            taken = record.taken
            pc = record.pc
            d_cond += 1
            if taken:
                d_taken += 1
            pc_bits = pc >> 2
            __TAGE_SCAN__
            if final_pred == taken:
                __TAGE_COMMIT__
            else:
                __MISPREDICT_FLUSH__
                pred = base_lookup(pc)
                ckpt = hist_checkpoint()
                branch = InflightBranch(
                    uid=uid,
                    record=record,
                    wrong_path=False,
                    fetch_cycle=fetch_cycle,
                    alloc_cycle=alloc_cycle,
                    resolve_cycle=resolve_cycle,
                )
                branch.tage_pred = pred
                branch.hist_ckpt = ckpt
                branch.predicted_taken = pred.taken
                hist_push(pc, pred.taken)
                __MISPREDICT_RELOAD__
                d_base_wrong += 1
        fe_cycle += fetch_cycles + btb_bubble
        d_branches += 1
        d_instructions += group
        retire_cycle = completion if completion > resolve_cycle else resolve_cycle
        pace = last_retire + -(-group // __RETIRE_WIDTH__)
        if pace > retire_cycle:
            retire_cycle = pace
        last_retire = retire_cycle
        rob_occupancy += group
        rob_append((retire_cycle, group, branch))
        if branch is not None:
            branch.retire_cycle = retire_cycle
            __WRONG_PATH_FETCH__
            __PENDING_REPAIRS__
            d_mispredictions += 1
            hck = branch.hist_ckpt
            __FINAL_RECOVER__
            baseline._use_alt = use_alt
            baseline._updates_since_reset = usr
            base_train(pred, taken)
            use_alt = baseline._use_alt
            usr = baseline._updates_since_reset
            fe_cycle = resolve_cycle + __RESTEER_PENALTY__
    __TAGE_FLUSH__
    btb._tick = b_tick
    btb.hits += d_btb_hits
    btb.misses += d_btb_misses
    model._fe_cycle = fe_cycle
    model._last_alloc = last_alloc
    model._last_retire = last_retire
    model._rob_occupancy = rob_occupancy
    model._next_uid = next_uid
    stats.instructions += d_instructions
    stats.branches += d_branches
    stats.cond_branches += d_cond
    stats.taken_branches += d_taken
    stats.base_wrong += d_base_wrong
    stats.btb_misses += d_btb_misses
    stats.rob_stall_cycles += d_rob_stall
    stats.mispredictions += d_mispredictions
    stats.wrong_path_branches += d_wp_branches
    stats.wrong_path_mispredicts += d_wp_mispredicts
    stream.seek(stop)
    return stop
'''

NOUNIT_STEP_TEMPLATE = '''\
def specialized_step(model, stream, start, stop):
    records = stream.records
    window_append = stream.window.append
    baseline = model.baseline
    spec_resolve_correct = baseline.spec_resolve_correct
    base_lookup = model._base_lookup
    hist_checkpoint = model._base_checkpoint
    hist_push = model._base_spec_push
    btb_lookup = model._btb_lookup
    btb_install = model._btb_install
    mispredict_episode = model._mispredict_episode
    __HIER_BIND__
    stats = model.stats
    rob = model._rob
    rob_append = rob.append
    rob_popleft = rob.popleft
    fe_cycle = model._fe_cycle
    last_alloc = model._last_alloc
    last_retire = model._last_retire
    rob_occupancy = model._rob_occupancy
    next_uid = model._next_uid
    d_instructions = 0
    d_branches = 0
    d_cond = 0
    d_taken = 0
    d_base_wrong = 0
    d_btb_misses = 0
    d_rob_stall = 0
    pos = start
    while pos < stop:
        record = records[pos]
        pos += 1
        window_append(record)
        if rob and rob[0][0] <= fe_cycle:
            freed = 0
            while rob and rob[0][0] <= fe_cycle:
                freed += rob_popleft()[1]
            rob_occupancy -= freed
        group = record.inst_gap + 1
        fetch_cycles = -(-group // __FETCH_WIDTH__)
        fetch_cycle = fe_cycle + fetch_cycles - 1
        btb_bubble = 0
        if record.taken and btb_lookup(record.pc) is None:
            btb_install(record.pc, record.target)
            btb_bubble = __BTB_MISS_PENALTY__
            d_btb_misses += 1
        alloc_cycle = fetch_cycle + __FRONTEND_DEPTH__
        if alloc_cycle < last_alloc:
            alloc_cycle = last_alloc
        while rob_occupancy + group > __ROB_ENTRIES__:
            if not rob:
                raise SimulationError(
                    f"instruction group of {group} exceeds ROB capacity"
                )
            r_cycle, r_size, _r_branch = rob_popleft()
            rob_occupancy -= r_size
            if r_cycle > alloc_cycle:
                d_rob_stall += r_cycle - alloc_cycle
                alloc_cycle = r_cycle
        last_alloc = alloc_cycle
        __LOAD_PREP__
        uid = next_uid
        next_uid = uid + 1
        resolve_cycle = alloc_cycle + __EXEC_BASE__ + __JITTER_EXPR__ + __DEP_TERM__
        completion = alloc_cycle + __COMPLETION_TAIL__
        branch = None
        if record.kind is COND:
            taken = record.taken
            pc = record.pc
            d_cond += 1
            if taken:
                d_taken += 1
            if not spec_resolve_correct(pc, taken):
                pred = base_lookup(pc)
                ckpt = hist_checkpoint()
                branch = InflightBranch(
                    uid=uid,
                    record=record,
                    wrong_path=False,
                    fetch_cycle=fetch_cycle,
                    alloc_cycle=alloc_cycle,
                    resolve_cycle=resolve_cycle,
                )
                branch.tage_pred = pred
                branch.hist_ckpt = ckpt
                branch.predicted_taken = pred.taken
                hist_push(pc, pred.taken)
                d_base_wrong += 1
        fe_cycle += fetch_cycles + btb_bubble
        d_branches += 1
        d_instructions += group
        retire_cycle = completion if completion > resolve_cycle else resolve_cycle
        pace = last_retire + -(-group // __RETIRE_WIDTH__)
        if pace > retire_cycle:
            retire_cycle = pace
        last_retire = retire_cycle
        rob_occupancy += group
        rob_append((retire_cycle, group, branch))
        if branch is not None:
            branch.retire_cycle = retire_cycle
            model._fe_cycle = fe_cycle
            model._last_alloc = last_alloc
            model._last_retire = last_retire
            model._rob_occupancy = rob_occupancy
            model._next_uid = next_uid
            stats.instructions += d_instructions
            stats.branches += d_branches
            stats.cond_branches += d_cond
            stats.taken_branches += d_taken
            stats.base_wrong += d_base_wrong
            stats.btb_misses += d_btb_misses
            stats.rob_stall_cycles += d_rob_stall
            d_instructions = 0
            d_branches = 0
            d_cond = 0
            d_taken = 0
            d_base_wrong = 0
            d_btb_misses = 0
            d_rob_stall = 0
            stream.seek(pos)
            mispredict_episode(branch, stream)
            fe_cycle = model._fe_cycle
            last_alloc = model._last_alloc
            last_retire = model._last_retire
            rob_occupancy = model._rob_occupancy
            next_uid = model._next_uid
    model._fe_cycle = fe_cycle
    model._last_alloc = last_alloc
    model._last_retire = last_retire
    model._rob_occupancy = rob_occupancy
    model._next_uid = next_uid
    stats.instructions += d_instructions
    stats.branches += d_branches
    stats.cond_branches += d_cond
    stats.taken_branches += d_taken
    stats.base_wrong += d_base_wrong
    stats.btb_misses += d_btb_misses
    stats.rob_stall_cycles += d_rob_stall
    stream.seek(pos)
    return pos
'''

UNIT_STEP_TEMPLATE = '''\
def specialized_step(model, stream, start, stop):
    records = stream.records
    window_append = stream.window.append
    baseline = model.baseline
    base_train = baseline.train
    base_lookup = model._base_lookup
    hist_checkpoint = model._base_checkpoint
    hist_push = model._base_spec_push
    btb_lookup = model._btb_lookup
    btb_install = model._btb_install
    mispredict_episode = model._mispredict_episode
    unit = model.unit
    unit_predict = unit.predict
    unit_at_alloc = unit.at_alloc
    unit_resolve = unit.resolve
    unit_retire = unit.retire
    __HIER_BIND__
    stats = model.stats
    rob = model._rob
    rob_append = rob.append
    rob_popleft = rob.popleft
    fe_cycle = model._fe_cycle
    last_alloc = model._last_alloc
    last_retire = model._last_retire
    rob_occupancy = model._rob_occupancy
    next_uid = model._next_uid
    d_instructions = 0
    d_branches = 0
    d_cond = 0
    d_taken = 0
    d_base_wrong = 0
    d_btb_misses = 0
    d_rob_stall = 0
    d_early_resteers = 0
    pos = start
    while pos < stop:
        record = records[pos]
        pos += 1
        window_append(record)
        if rob and rob[0][0] <= fe_cycle:
            freed = 0
            while rob and rob[0][0] <= fe_cycle:
                r_cycle, r_size, r_branch = rob_popleft()
                freed += r_size
                if r_branch is not None:
                    unit_retire(r_branch, r_cycle)
            rob_occupancy -= freed
        group = record.inst_gap + 1
        fetch_cycles = -(-group // __FETCH_WIDTH__)
        fetch_cycle = fe_cycle + fetch_cycles - 1
        btb_bubble = 0
        if record.taken and btb_lookup(record.pc) is None:
            btb_install(record.pc, record.target)
            btb_bubble = __BTB_MISS_PENALTY__
            d_btb_misses += 1
        alloc_cycle = fetch_cycle + __FRONTEND_DEPTH__
        if alloc_cycle < last_alloc:
            alloc_cycle = last_alloc
        while rob_occupancy + group > __ROB_ENTRIES__:
            if not rob:
                raise SimulationError(
                    f"instruction group of {group} exceeds ROB capacity"
                )
            r_cycle, r_size, r_branch = rob_popleft()
            rob_occupancy -= r_size
            if r_branch is not None:
                unit_retire(r_branch, r_cycle)
            if r_cycle > alloc_cycle:
                d_rob_stall += r_cycle - alloc_cycle
                alloc_cycle = r_cycle
        last_alloc = alloc_cycle
        __LOAD_PREP__
        uid = next_uid
        next_uid = uid + 1
        resolve_cycle = alloc_cycle + __EXEC_BASE__ + __JITTER_EXPR__ + __DEP_TERM__
        completion = alloc_cycle + __COMPLETION_TAIL__
        branch = None
        taken = False
        if record.kind is COND:
            taken = record.taken
            pc = record.pc
            branch = InflightBranch(
                uid=uid,
                record=record,
                wrong_path=False,
                fetch_cycle=fetch_cycle,
                alloc_cycle=alloc_cycle,
                resolve_cycle=resolve_cycle,
            )
            pred = base_lookup(pc)
            branch.tage_pred = pred
            branch.hist_ckpt = hist_checkpoint()
            final = unit_predict(branch, pred.taken, fetch_cycle)
            branch.predicted_taken = final
            hist_push(pc, final)
            final = unit_at_alloc(branch, alloc_cycle)
            if branch.early_resteer:
                d_early_resteers += 1
                restart = alloc_cycle + __EARLY_RESTEER_PENALTY__
                if restart > fe_cycle:
                    fe_cycle = restart
            branch.predicted_taken = final
            d_cond += 1
            if taken:
                d_taken += 1
            if pred.taken != taken:
                d_base_wrong += 1
        fe_cycle += fetch_cycles + btb_bubble
        d_branches += 1
        d_instructions += group
        retire_cycle = completion if completion > resolve_cycle else resolve_cycle
        pace = last_retire + -(-group // __RETIRE_WIDTH__)
        if pace > retire_cycle:
            retire_cycle = pace
        last_retire = retire_cycle
        rob_occupancy += group
        rob_append((retire_cycle, group, branch))
        if branch is not None:
            branch.retire_cycle = retire_cycle
            if branch.predicted_taken != taken:
                model._fe_cycle = fe_cycle
                model._last_alloc = last_alloc
                model._last_retire = last_retire
                model._rob_occupancy = rob_occupancy
                model._next_uid = next_uid
                stats.instructions += d_instructions
                stats.branches += d_branches
                stats.cond_branches += d_cond
                stats.taken_branches += d_taken
                stats.base_wrong += d_base_wrong
                stats.btb_misses += d_btb_misses
                stats.rob_stall_cycles += d_rob_stall
                stats.early_resteers += d_early_resteers
                d_instructions = 0
                d_branches = 0
                d_cond = 0
                d_taken = 0
                d_base_wrong = 0
                d_btb_misses = 0
                d_rob_stall = 0
                d_early_resteers = 0
                stream.seek(pos)
                mispredict_episode(branch, stream)
                fe_cycle = model._fe_cycle
                last_alloc = model._last_alloc
                last_retire = model._last_retire
                rob_occupancy = model._rob_occupancy
                next_uid = model._next_uid
            else:
                base_train(pred, taken)
                unit_resolve(branch, (), resolve_cycle)
    model._fe_cycle = fe_cycle
    model._last_alloc = last_alloc
    model._last_retire = last_retire
    model._rob_occupancy = rob_occupancy
    model._next_uid = next_uid
    stats.instructions += d_instructions
    stats.branches += d_branches
    stats.cond_branches += d_cond
    stats.taken_branches += d_taken
    stats.base_wrong += d_base_wrong
    stats.btb_misses += d_btb_misses
    stats.rob_stall_cycles += d_rob_stall
    stats.early_resteers += d_early_resteers
    stream.seek(pos)
    return pos
'''

_TEMPLATES = {
    "tage": TAGE_STEP_TEMPLATE,
    "nounit": NOUNIT_STEP_TEMPLATE,
    "unit": UNIT_STEP_TEMPLATE,
}

#: Digest over the raw templates; part of the engine cache key so any
#: template edit invalidates cached engines even without a version bump.
_TEMPLATE_SHA = hashlib.sha256(
    (TAGE_STEP_TEMPLATE + NOUNIT_STEP_TEMPLATE + UNIT_STEP_TEMPLATE).encode()
).hexdigest()[:16]


# ------------------------------------------------------------------ #
# generation and compilation

#: Signature of a generated step function.
StepFn = Callable[[PipelineModel, TraceStream, int, int], int]


@dataclass(frozen=True)
class CompiledEngine:
    """A specialized step function plus its provenance."""

    key: str  #: Cache key (version + config hash + decision + template).
    source: str  #: The generated module source, exactly as compiled.
    step: StepFn


def _render(lines: Sequence[str], indent: int) -> str:
    """Join a generated block for splicing at a template placeholder.

    The first line lands on the placeholder's own indentation; later
    lines carry it explicitly.
    """
    return ("\n" + " " * indent).join(lines)


def _nest(lines: Sequence[str], levels: int = 1) -> list[str]:
    """Indent a generated block ``levels`` suites deeper."""
    pad = "    " * levels
    return [pad + line for line in lines]


def _load_prep_lines(
    decision: SpecializationDecision, *, inline_l1: bool = False
) -> list[str]:
    """Load-latency block, or the loads guard when the profile saw none.

    With ``inline_l1`` (deep template only) the L1 hit case — residency
    probe, LRU refresh, hit tally — is unrolled against the cache's set
    dicts, and only misses delegate to the full hierarchy walk (after
    syncing the locally-held tick/hit counters it reads and bumps).
    """
    if not decision.has_loads:
        return [
            "if record.load_addr:",
            '    raise GuardTripped("loads")',
        ]
    if inline_l1 and decision.has_hierarchy:
        return [
            "load_latency = 0",
            "la = record.load_addr",
            "if la:",
            f"    line = la >> {decision.l1_line_shift}",
            f"    ways = l1_sets[line & {decision.l1_set_mask}]",
            "    if line in ways:",
            "        l1_tick += 1",
            "        ways[line] = l1_tick",
            "        d_l1_hits += 1",
            f"        load_latency = {decision.l1_latency}",
            "    else:",
            "        l1._tick = l1_tick",
            "        l1.hits += d_l1_hits",
            "        d_l1_hits = 0",
            "        load_latency = hier_load(la)",
            "        l1_tick = l1._tick",
        ]
    latency = "hier_load(record.load_addr)" if decision.has_hierarchy else "5"
    return [
        "load_latency = 0",
        "if record.load_addr:",
        f"    load_latency = {latency}",
    ]


# -- deep-TAGE emitters -------------------------------------------------
#
# Each helper returns the lines of one inlined block of the "tage"
# template.  The generated step keeps GHIST/PHIST, the long-history fold
# registers, ``use_alt`` and the aging countdown in *local variables*
# and only syncs them with the predictor objects at the points where
# generic code runs (the mispredict lookup/train) and at the step
# epilogue — so the hot correct path touches no object state beyond the
# table rows.
#
# Folded histories obey the invariant ``comp == chunk-fold(ghist)``:
# the incremental :meth:`FoldedHistory.update` preserves exactly the
# value :meth:`FoldedHistory.rebuild` computes from the raw register.
# The generated engines exploit that algebra — a fold spanning few
# chunks is cheaper to *recompute from GHIST at read time* (two ops per
# chunk, and only for tables the provider scan actually reaches) than
# to maintain on every push.  Only folds wider than
# ``_MAINTAIN_MIN_CHUNKS`` chunks stay push-maintained; the scan walks
# tables top-down, so those long-history folds are precisely the ones
# read on every branch.

#: Chunk count at or above which push-maintenance beats read-time
#: recomputation.  The provider scan reads nearly every table on most
#: branches (it stops only after a second tag hit), so a derived fold
#: costs ~2 interpreter ops per chunk per branch, while maintenance
#: costs ~9 ops per push; the curves cross around four chunks.
_MAINTAIN_MIN_CHUNKS = 5


def _fold_chunks(olen: int, clen: int) -> int:
    return -(-olen // clen)


def _canonical_slots(g: TageGeometry) -> dict[int, int]:
    """Map each fold slot to the first slot with the same fold value.

    Two folds with equal ``(original_length, compressed_length)`` hold
    identical values at every point in time (outpoint and mask are
    functions of those two), so the generated code computes or
    maintains only the first of each group and aliases the rest.
    """
    first: dict[tuple[int, int], int] = {}
    canon: dict[int, int] = {}
    for slot, olen, _outpoint, clen, _cmask in g.folds:
        canon[slot] = first.setdefault((olen, clen), slot)
    return canon


def _fold_ref(g: TageGeometry, slot: int) -> str:
    """The local-variable name carrying this slot's fold value."""
    return f"fc{_canonical_slots(g)[slot]}"


def _maintained_folds(
    g: TageGeometry,
) -> list[tuple[int, int, int, int, int]]:
    """Canonical folds kept in locals and updated on every push."""
    canon = _canonical_slots(g)
    return [
        fold
        for fold in g.folds
        if canon[fold[0]] == fold[0]
        and _fold_chunks(fold[1], fold[3]) >= _MAINTAIN_MIN_CHUNKS
    ]


def _derived_canonical(
    g: TageGeometry,
) -> list[tuple[int, int, int, int, int]]:
    """Canonical folds recomputed from GHIST at read time."""
    canon = _canonical_slots(g)
    return [
        fold
        for fold in g.folds
        if canon[fold[0]] == fold[0]
        and _fold_chunks(fold[1], fold[3]) < _MAINTAIN_MIN_CHUNKS
    ]


def _glow_mask(g: TageGeometry) -> int | None:
    """Width mask of the shadow low-history register, or None.

    Derived folds never span more than ``_MAINTAIN_MIN_CHUNKS`` chunks,
    so all of them fit in a narrow window of recent history.  The
    generated push maintains that window as ``glow`` — a small int
    (one or two CPython digits) — and recomputes derived folds from it,
    instead of paying wide-integer arithmetic against the full GHIST.
    """
    derived = _derived_canonical(g)
    if not derived:
        return None
    return (1 << max(fold[1] for fold in derived)) - 1


def _derived_fold_lines(
    g: TageGeometry, slots: Sequence[int], scratch: str = "gw"
) -> list[str]:
    """Recompute the given derived canonical folds from ``glow``.

    Emits the chunk-XOR rebuild (``FoldedHistory.rebuild``) as straight-
    line code; single-chunk folds collapse to one mask of ``glow``.
    """
    by_slot = {fold[0]: fold for fold in g.folds}
    glow_mask = _glow_mask(g)
    seen = list(dict.fromkeys(slots))
    multi = [s for s in seen if _fold_chunks(by_slot[s][1], by_slot[s][3]) > 1]
    lines: list[str] = []
    scratch_for: dict[int, str] = {}
    for olen in sorted({by_slot[s][1] for s in multi}):
        omask = (1 << olen) - 1
        if omask == glow_mask:
            scratch_for[olen] = "glow"
            continue
        name = f"{scratch}{olen}" if len(multi) > 1 else scratch
        scratch_for[olen] = name
        lines.append(f"{name} = glow & {omask}")
    for s in seen:
        _, olen, _, clen, cmask = by_slot[s]
        chunks = _fold_chunks(olen, clen)
        if chunks == 1:
            lines.append(f"fc{s} = glow & {(1 << olen) - 1}")
        else:
            name = scratch_for[olen]
            terms = " ^ ".join(
                [name] + [f"({name} >> {j * clen})" for j in range(1, chunks)]
            )
            lines.append(f"fc{s} = ({terms}) & {cmask}")
    return lines


def _glow_sync_lines(g: TageGeometry) -> list[str]:
    """Re-derive the shadow register after GHIST changed wholesale."""
    mask = _glow_mask(g)
    return [] if mask is None else [f"glow = ghist & {mask}"]


def _tage_bind_lines(g: TageGeometry) -> list[str]:
    lines: list[str] = []
    for t in range(len(g.tables)):
        lines.append(f"tag{t} = baseline._tag[{t}]")
        lines.append(f"ctr{t} = baseline._ctr[{t}]")
        lines.append(f"u{t} = baseline._u[{t}]")
    lines.extend(
        f"fc{slot} = comps[{slot}]" for slot, *_ in _maintained_folds(g)
    )
    lines.extend(_glow_sync_lines(g))
    return lines


def _hist_flush_lines(g: TageGeometry) -> list[str]:
    """Publish the local history registers back to the predictor objects.

    Maintained folds flush their locals; derived folds are recomputed
    (cheap, and only at flush points) so ``fold_comps`` holds the exact
    values the generic code would have maintained.
    """
    canon = _canonical_slots(g)
    lines = _derived_fold_lines(
        g, [fold[0] for fold in _derived_canonical(g)], scratch="gf"
    )
    lines.extend(
        f"comps[{slot}] = fc{canon[slot]}" for slot, *_ in g.folds
    )
    lines.append("hist.ghist = ghist")
    lines.append("hist.phist = phist")
    return lines


def _hist_reload_lines(g: TageGeometry) -> list[str]:
    lines = ["ghist = hist.ghist", "phist = hist.phist"]
    lines.extend(
        f"fc{slot} = comps[{slot}]" for slot, *_ in _maintained_folds(g)
    )
    lines.extend(_glow_sync_lines(g))
    return lines


def _scan_lines(g: TageGeometry) -> list[str]:
    """Provider scan + final-direction logic, ``lookup`` unrolled.

    Mirrors ``TagePredictor.lookup`` with per-table constants inlined;
    instead of index/tag lists it keeps only what prediction and the
    correct-path train consume: the provider's row aliases and index,
    and the alternate's counter value, captured at match time.
    """
    canon = _canonical_slots(g)
    maintained = {fold[0] for fold in _maintained_folds(g)}
    lines = ["provider = -1", "alt_table = -1"]
    for t in range(len(g.tables) - 1, -1, -1):
        log, path_mask, pc_shift, islot, s0, s1, imask, tmask = g.tables[t]
        derived = [
            c
            for c in dict.fromkeys(canon[s] for s in (islot, s0, s1))
            if c not in maintained
        ]
        hash_lines = _derived_fold_lines(g, derived)
        hash_lines += [
            f"path = phist & {path_mask}",
            f"path ^= path >> {log}",
            f"idx = (pc_bits ^ (pc_bits >> {pc_shift})"
            f" ^ {_fold_ref(g, islot)} ^ path) & {imask}",
        ]
        tag_expr = (
            f"(pc_bits ^ {_fold_ref(g, s0)}"
            f" ^ ({_fold_ref(g, s1)} << 1)) & {tmask}"
        )
        hit_lines = [
            f"provider = {t}",
            "p_idx = idx",
            f"p_ctr_row = ctr{t}",
            f"p_u_row = u{t}",
        ]
        if t == len(g.tables) - 1:
            lines.extend(hash_lines)
            lines.append(f"if tag{t}[idx] == ({tag_expr}):")
            lines.extend(_nest(hit_lines))
        else:
            lines.append("if alt_table < 0:")
            lines.extend(_nest(hash_lines))
            lines.append(f"    if tag{t}[idx] == ({tag_expr}):")
            lines.append("        if provider < 0:")
            lines.extend(_nest(hit_lines, 3))
            lines.append("        else:")
            lines.append(f"            alt_table = {t}")
            lines.append(f"            alt_ctr = ctr{t}[idx]")
    lines.extend(
        [
            f"bim_index = pc_bits & {g.bim_mask}",
            "if provider >= 0:",
            "    p_ctr = p_ctr_row[p_idx]",
            "    provider_pred = p_ctr >= 0",
            "    if alt_table >= 0:",
            "        alt_pred = alt_ctr >= 0",
            "    else:",
            "        alt_pred = bim[bim_index] >= 2",
            "    weak = (p_ctr == 0 or p_ctr == -1) and p_u_row[p_idx] == 0",
            f"    if weak and use_alt >= {g.use_alt_threshold}:",
            "        final_pred = alt_pred",
            "    else:",
            "        final_pred = provider_pred",
            "else:",
            "    provider_pred = bim[bim_index] >= 2",
            "    weak = False",
            "    alt_pred = provider_pred",
            "    final_pred = provider_pred",
        ]
    )
    return lines


def _push_lines(g: TageGeometry, pc_expr: str, taken_expr: str) -> list[str]:
    """Speculative history insert, ``GlobalHistory.push`` unrolled.

    Only the maintained (long-history) folds update here; everything
    else is derived from GHIST when read.  Folds over the same window
    share one evicted-bit extraction.
    """
    lines = [
        f"tk = 1 if {taken_expr} else 0",
        f"ghist = ((ghist << 1) | tk) & {g.ghist_mask}",
        f"phist = ((phist << 1) | ({pc_expr} & 1)) & {g.phist_mask}",
    ]
    glow_mask = _glow_mask(g)
    if glow_mask is not None:
        lines.append(f"glow = ((glow << 1) | tk) & {glow_mask}")
    maintained = _maintained_folds(g)
    ev_for: dict[int, str] = {}
    for _, olen, *_rest in maintained:
        if olen not in ev_for:
            name = f"ev{olen}"
            ev_for[olen] = name
            lines.append(f"{name} = (ghist >> {olen}) & 1")
    for slot, olen, outpoint, clen, cmask in maintained:
        evict = ev_for[olen] if outpoint == 0 else f"({ev_for[olen]} << {outpoint})"
        lines.append(f"fc{slot} = ((fc{slot} << 1) | tk) ^ {evict}")
        lines.append(
            f"fc{slot} = (fc{slot} ^ (fc{slot} >> {clen})) & {cmask}"
        )
    return lines


#: Layout of the wrong-path episode entries: plain lists, private to the
#: generated episode code, holding exactly what the repair pass reads —
#: far cheaper to build per wrong-path branch than an ``InflightBranch``
#: plus a full ``HistoryCheckpoint``.  Indices: 0 uid, 1 resolve cycle,
#: 2 record, 3 squashed flag, 4 ghist, 5 phist, 6.. maintained folds in
#: ``_maintained_folds`` order.
_WP_GHIST = 4


def _wp_entry_expr(g: TageGeometry, uid: str, resolve: str) -> str:
    folds = ", ".join(f"fc{slot}" for slot, *_ in _maintained_folds(g))
    tail = f", {folds}" if folds else ""
    return f"[{uid}, {resolve}, record, False, ghist, phist{tail}]"


def _wp_restore_lines(g: TageGeometry, ckpt_var: str) -> list[str]:
    """History rewind from a wrong-path episode entry."""
    lines = [
        f"ghist = {ckpt_var}[{_WP_GHIST}]",
        f"phist = {ckpt_var}[{_WP_GHIST + 1}]",
    ]
    lines.extend(
        f"fc{fold[0]} = {ckpt_var}[{_WP_GHIST + 2 + i}]"
        for i, fold in enumerate(_maintained_folds(g))
    )
    lines.extend(_glow_sync_lines(g))
    return lines


def _restore_lines(g: TageGeometry, ckpt_var: str) -> list[str]:
    """History rewind from a carried ``HistoryCheckpoint``.

    Derived folds need no restore — once GHIST is rewound they are
    recomputed from it at the next read.
    """
    lines = [
        f"ghist = {ckpt_var}.ghist",
        f"phist = {ckpt_var}.phist",
        f"wf = {ckpt_var}.folds",
    ]
    lines.extend(
        f"fc{slot} = wf[{slot}]" for slot, *_ in _maintained_folds(g)
    )
    lines.extend(_glow_sync_lines(g))
    return lines


def _commit_lines(g: TageGeometry) -> list[str]:
    """Correct-path commit: push the outcome, train, never allocate.

    Mirrors ``TagePredictor.spec_resolve_correct`` after its direction
    check: on this path ``final_pred == taken``, so the allocation
    branch of ``train`` is unreachable and is dropped.
    """
    lines = _push_lines(g, "pc", "taken")
    lines.extend(
        [
            "usr += 1",
            f"if usr >= {g.u_reset_period}:",
            "    usr = 0",
            "    age_useful()",
            "if provider >= 0:",
            "    if weak and provider_pred != alt_pred:",
            "        if alt_pred == taken:",
            f"            if use_alt < {g.use_alt_max}:",
            "                use_alt += 1",
            "        elif use_alt > 0:",
            "            use_alt -= 1",
            "    if taken:",
            f"        if p_ctr < {g.ctr_max}:",
            "            p_ctr_row[p_idx] = p_ctr + 1",
            f"    elif p_ctr > {g.ctr_min}:",
            "        p_ctr_row[p_idx] = p_ctr - 1",
            "    if alt_table < 0:",
            "        bv = bim[bim_index]",
            "        if taken:",
            "            if bv < 3:",
            "                bim[bim_index] = bv + 1",
            "        elif bv > 0:",
            "            bim[bim_index] = bv - 1",
            "    if provider_pred != alt_pred:",
            "        pu = p_u_row[p_idx]",
            "        if provider_pred == taken:",
            f"            if pu < {g.u_max}:",
            "                p_u_row[p_idx] = pu + 1",
            "        elif pu > 0:",
            "            p_u_row[p_idx] = pu - 1",
            "else:",
            "    bv = bim[bim_index]",
            "    if taken:",
            "        if bv < 3:",
            "            bim[bim_index] = bv + 1",
            "    elif bv > 0:",
            "        bim[bim_index] = bv - 1",
        ]
    )
    return lines


def _episode_fetch_lines(
    decision: SpecializationDecision, g: TageGeometry
) -> list[str]:
    """Wrong-path fetch, ``_mispredict_episode``'s replay loop unrolled.

    Wrong-path conditionals get the same inline scan/push as the hot
    path but never train; their checkpoints are built directly from the
    local history registers.
    """
    exec_base = decision.sched_to_exec + decision.branch_exec_latency
    if decision.exec_jitter:
        jitter = f"((uid * 2654435761) >> 13) % {decision.exec_jitter}"
    else:
        jitter = "0"

    cond_body = ["pc_bits = record.pc >> 2"]
    cond_body.extend(_scan_lines(g))
    cond_body.append(
        f"wp_branch = {_wp_entry_expr(g, 'uid', 'wp_resolve')}"
    )
    cond_body.extend(_push_lines(g, "record.pc", "final_pred"))
    cond_body.extend(
        [
            "d_wp_branches += 1",
            "fe_cycle += fetch_cycles",
            "episode.append(wp_branch)",
            "produced += 1",
            "if final_pred != record.taken and wp_resolve < resolve_cycle:",
            "    pending.append(wp_branch)",
        ]
    )

    lines = [
        "episode = []",
        "pending = []",
        f"replay = stream_recent({decision.wrong_path_window})",
        "wp_index = 0",
        "produced = 0",
        f"while replay and produced < {decision.wrong_path_max_branches}:",
        "    if rob and rob[0][0] <= fe_cycle:",
        "        freed = 0",
        "        while rob and rob[0][0] <= fe_cycle:",
        "            freed += rob_popleft()[1]",
        "        rob_occupancy -= freed",
        "    record = replay[wp_index % len(replay)]",
        "    wp_index += 1",
        "    group = record.inst_gap + 1",
        f"    fetch_cycles = -(-group // {decision.fetch_width})",
        "    if fe_cycle + fetch_cycles - 1 >= resolve_cycle:",
        "        break",
        "    fetch_cycle = fe_cycle + fetch_cycles - 1",
        f"    alloc_cycle = fetch_cycle + {decision.frontend_depth}",
    ]
    lines.extend(_nest(_load_prep_lines(decision, inline_l1=True)))
    lines.extend(
        [
            "    uid = next_uid",
            "    next_uid = uid + 1",
            f"    wp_resolve = alloc_cycle + {exec_base} + {jitter}",
        ]
    )
    if decision.has_loads:
        lines.extend(
            [
                "    if load_latency and record.depends_on_load:",
                "        wp_resolve += load_latency",
            ]
        )
    lines.append("    if record.kind is COND:")
    lines.extend(_nest(cond_body, 2))
    lines.extend(
        [
            "    else:",
            "        fe_cycle += fetch_cycles",
        ]
    )
    return lines


def _pending_repair_lines(g: TageGeometry) -> list[str]:
    """Nested wrong-path repairs: recover + squash younger, unrolled."""
    body = [
        "if wp_branch[3]:",
        "    continue",
        "d_wp_mispredicts += 1",
    ]
    body.extend(_wp_restore_lines(g, "wp_branch"))
    body.append("wrec = wp_branch[2]")
    body.extend(_push_lines(g, "wrec.pc", "wrec.taken"))
    body.extend(
        [
            "wp_uid = wp_branch[0]",
            "for flushed in episode:",
            "    if flushed[0] > wp_uid and not flushed[3]:",
            "        flushed[3] = True",
        ]
    )
    lines = [
        "if pending:",
        "    pending.sort(key=_resolve_key)",
        "    for wp_branch in pending:",
    ]
    lines.extend(_nest(body, 2))
    return lines


def _final_recover_lines(g: TageGeometry) -> list[str]:
    """The real branch resolves: rewind history, insert the truth."""
    lines = _restore_lines(g, "hck")
    lines.extend(_push_lines(g, "pc", "taken"))
    return lines


def _btb_probe_lines(decision: SpecializationDecision) -> list[str]:
    """Taken-branch BTB probe, ``BranchTargetBuffer.lookup`` unrolled.

    Ways are unrolled into an if/elif chain over the set's slots; the
    LRU tick and hit/miss tallies live in locals flushed at the step
    epilogue.  Installs are rare, so the miss arm syncs the tick and
    delegates to the bound ``install``.
    """
    lines = [
        "pc_t = record.pc",
        "bb = pc_t >> 2",
        f"bs = ((bb ^ (bb >> {decision.btb_set_bits}))"
        f" & {decision.btb_set_mask}) * {decision.btb_ways}",
    ]
    for way in range(decision.btb_ways):
        slot = "bs" if way == 0 else f"bs + {way}"
        branch = "if" if way == 0 else "elif"
        lines.append(f"{branch} btb_pcs[{slot}] == pc_t:")
        lines.append("    b_tick += 1")
        lines.append(f"    btb_lru[{slot}] = b_tick")
        lines.append("    d_btb_hits += 1")
    lines.extend(
        [
            "else:",
            "    d_btb_misses += 1",
            "    btb._tick = b_tick",
            "    btb_install(pc_t, record.target)",
            "    b_tick = btb._tick",
            f"    btb_bubble = {decision.btb_miss_penalty}",
        ]
    )
    return lines


def generate_engine_source(decision: SpecializationDecision) -> str:
    """Render the template for ``decision`` into compilable source.

    Deterministic: equal decisions yield byte-identical source (the
    GEN001 round-trip contract and the reason disk caching is sound).
    """
    template = _TEMPLATES[decision.template]

    if decision.has_loads and decision.has_hierarchy:
        hier_bind = "hier_load = model.hierarchy.load_latency"
    else:
        hier_bind = "pass"
    if decision.has_loads:
        dep_term = "(load_latency if record.depends_on_load else 0)"
        base = decision.nonbranch_base_latency
        completion_tail = (
            f"{decision.sched_to_exec} + "
            f"(load_latency if load_latency > {base} else {base})"
        )
    else:
        dep_term = "0"
        completion_tail = str(
            decision.sched_to_exec + decision.nonbranch_base_latency
        )
    if decision.exec_jitter:
        jitter_expr = f"((uid * 2654435761) >> 13) % {decision.exec_jitter}"
    else:
        jitter_expr = "0"

    substitutions = {
        "__HIER_BIND__": hier_bind,
        "__LOAD_PREP__": _render(_load_prep_lines(decision), 8),
        "__DEP_TERM__": dep_term,
        "__COMPLETION_TAIL__": completion_tail,
        "__JITTER_EXPR__": jitter_expr,
        "__FETCH_WIDTH__": str(decision.fetch_width),
        "__FRONTEND_DEPTH__": str(decision.frontend_depth),
        "__EXEC_BASE__": str(
            decision.sched_to_exec + decision.branch_exec_latency
        ),
        "__RETIRE_WIDTH__": str(decision.retire_width),
        "__ROB_ENTRIES__": str(decision.rob_entries),
        "__BTB_MISS_PENALTY__": str(decision.btb_miss_penalty),
        "__EARLY_RESTEER_PENALTY__": str(decision.early_resteer_penalty),
        "__RESTEER_PENALTY__": str(decision.resteer_penalty),
    }
    if decision.template == "tage":
        g = decision.tage
        if g is None:
            raise SpecializationError(
                "tage template selected without TAGE geometry"
            )
        mispredict_flush = _hist_flush_lines(g)
        mispredict_flush.append("baseline._use_alt = use_alt")
        epilogue_flush = _hist_flush_lines(g)
        epilogue_flush.append("baseline._use_alt = use_alt")
        epilogue_flush.append("baseline._updates_since_reset = usr")
        if decision.has_loads and decision.has_hierarchy:
            substitutions["__HIER_BIND__"] = _render(
                [
                    "hier_load = model.hierarchy.load_latency",
                    "l1 = model.hierarchy.l1",
                    "l1_sets = l1._sets",
                    "l1_tick = l1._tick",
                    "d_l1_hits = 0",
                ],
                4,
            )
            epilogue_flush.append("l1._tick = l1_tick")
            epilogue_flush.append("l1.hits += d_l1_hits")
        substitutions["__LOAD_PREP__"] = _render(
            _load_prep_lines(decision, inline_l1=True), 8
        )
        if decision.has_loads:
            dep_stmt = _render(
                [
                    "if load_latency and record.depends_on_load:",
                    "    resolve_cycle += load_latency",
                ],
                8,
            )
        else:
            dep_stmt = "pass"
        substitutions["__DEP_STMT__"] = dep_stmt
        if decision.wrong_path:
            wrong_path_fetch = _render(_episode_fetch_lines(decision, g), 12)
            pending_repairs = _render(_pending_repair_lines(g), 12)
        else:
            wrong_path_fetch = "pass"
            pending_repairs = "pass"
        substitutions.update(
            {
                "__TAGE_BIND__": _render(_tage_bind_lines(g), 4),
                "__BTB_PROBE__": _render(_btb_probe_lines(decision), 12),
                "__TAGE_SCAN__": _render(_scan_lines(g), 12),
                "__TAGE_COMMIT__": _render(_commit_lines(g), 16),
                "__MISPREDICT_FLUSH__": _render(mispredict_flush, 16),
                "__MISPREDICT_RELOAD__": _render(_hist_reload_lines(g), 16),
                "__WRONG_PATH_FETCH__": wrong_path_fetch,
                "__PENDING_REPAIRS__": pending_repairs,
                "__FINAL_RECOVER__": _render(_final_recover_lines(g), 12),
                "__TAGE_FLUSH__": _render(epilogue_flush, 4),
            }
        )
    source = template
    for placeholder, value in substitutions.items():
        source = source.replace(placeholder, value)
    if "__" in source.replace("__init__", ""):
        leftover = [tok for tok in source.split() if "__" in tok]
        raise SpecializationError(
            f"unsubstituted placeholder in generated engine: {leftover[:3]}"
        )
    return source


def _compile_engine(source: str, key: str) -> StepFn:
    """Round-trip validate and compile generated source to a step fn."""
    try:
        tree = ast.parse(source)
    except SyntaxError as exc:
        raise SpecializationError(
            f"generated engine {key} failed to parse: {exc}"
        ) from exc
    code = compile(tree, f"<specialized:{key}>", "exec")
    namespace: dict[str, object] = {
        "COND": BranchKind.COND,
        "InflightBranch": InflightBranch,
        "HistoryCheckpoint": HistoryCheckpoint,
        "SimulationError": SimulationError,
        "GuardTripped": GuardTripped,
    }
    exec(code, namespace)  # noqa: S102 - compiled from our own template
    step = namespace.get("specialized_step")
    if not callable(step):
        raise SpecializationError(
            f"generated engine {key} defines no specialized_step()"
        )
    return step  # type: ignore[return-value]


def engine_cache_key(decision: SpecializationDecision, config_hash: str) -> str:
    """Cache key binding engine code to everything that shaped it."""
    payload = "|".join(
        (str(SPECIALIZE_VERSION), config_hash, decision.fingerprint(), _TEMPLATE_SHA)
    )
    return hashlib.sha256(payload.encode()).hexdigest()[:32]


#: In-process engine cache: key -> CompiledEngine.  Unbounded but tiny —
#: one entry per distinct (config, decision) pair seen by this process.
_ENGINE_MEMO: dict[str, CompiledEngine] = {}


def load_engine(
    decision: SpecializationDecision,
    config_hash: str,
    cache_dir: Path | None = None,
) -> CompiledEngine:
    """Fetch a compiled engine: memo, then disk, then fresh codegen.

    Disk entries are validated (``ast.parse`` via compilation) before
    use; unreadable or corrupt files are regenerated in place, never
    trusted.  Cache writes are best-effort — a read-only cache dir
    degrades to in-process caching only.
    """
    key = engine_cache_key(decision, config_hash)
    cached = _ENGINE_MEMO.get(key)
    if cached is not None:
        TELEMETRY.registry.counter("specialize.engine_cache_hits").inc()
        return cached

    disk_path = cache_dir / f"{key}.py" if cache_dir is not None else None
    if disk_path is not None:
        try:
            source = disk_path.read_text()
            engine = CompiledEngine(key, source, _compile_engine(source, key))
            _ENGINE_MEMO[key] = engine
            TELEMETRY.registry.counter("specialize.engine_cache_hits").inc()
            return engine
        except (OSError, SpecializationError):
            pass  # missing or corrupt: fall through to regeneration

    source = generate_engine_source(decision)
    engine = CompiledEngine(key, source, _compile_engine(source, key))
    _ENGINE_MEMO[key] = engine
    TELEMETRY.registry.counter("specialize.engines_compiled").inc()
    if disk_path is not None:
        try:
            disk_path.parent.mkdir(parents=True, exist_ok=True)
            tmp = disk_path.with_name(f"{disk_path.name}.{os.getpid()}.tmp")
            tmp.write_text(source)
            tmp.replace(disk_path)
        except OSError:
            pass  # cache write failure must never fail the run
    return engine


# ------------------------------------------------------------------ #
# checkpoint / restore

#: Model attributes excluded from checkpoints: the shared telemetry
#: handle and the bound hot-path methods (deep-copying a bound method
#: would drag a duplicate of its receiver into the snapshot).  They are
#: re-derived by ``_bind_hot_paths`` after a restore.
_CHECKPOINT_EXCLUDE = frozenset(
    {
        "_tel",
        "_base_lookup",
        "_base_checkpoint",
        "_base_spec_push",
        "_btb_lookup",
        "_btb_install",
    }
)

#: A restorable snapshot: (model state dict, stream checkpoint).
_Snapshot = tuple[dict[str, object], tuple[int, list[BranchRecord]]]


def _take_checkpoint(model: PipelineModel, stream: TraceStream) -> _Snapshot:
    state = {
        k: v for k, v in model.__dict__.items() if k not in _CHECKPOINT_EXCLUDE
    }
    # One deepcopy call so objects shared between attributes (e.g. a
    # unit holding the baseline's history) stay shared in the snapshot.
    return copy.deepcopy((state, stream.checkpoint()))


def _restore_checkpoint(
    model: PipelineModel, stream: TraceStream, snapshot: _Snapshot
) -> None:
    state, stream_state = snapshot
    model.__dict__.update(state)
    model._bind_hot_paths()
    stream.restore(stream_state)


# ------------------------------------------------------------------ #
# the driver


def run_specialized(
    model: PipelineModel,
    records: Sequence[BranchRecord],
    *,
    config_hash: str = "",
    profile_branches: int = DEFAULT_PROFILE_BRANCHES,
    checkpoint_interval: int = DEFAULT_CHECKPOINT_INTERVAL,
    force_abort_at: int | None = None,
    engine_cache_dir: Path | None = None,
) -> tuple[SimStats, dict[str, object]]:
    """Simulate ``records`` on ``model``, specializing after a profile.

    Drop-in replacement for ``model.run(records)`` with bit-identical
    ``SimStats``.  Runs ``profile_branches`` under the generic engine,
    plans a specialization, then alternates specialized spans with
    checkpoints; a guard trip (or ``force_abort_at``, used by tests to
    exercise the abort machinery) restores the last checkpoint and
    finishes generically.

    Returns ``(stats, info)`` where ``info`` records the decision:
    ``engine`` ("generic"/"specialized"), ``reason`` (when generic),
    ``template``, ``total_branches``, ``profiled_branches``,
    ``specialized_branches``
    (branches that *stayed* specialized after any abort), ``checkpoints``,
    ``guards_failed``, ``aborts``, ``aborted``, and ``guard``.
    """
    registry = TELEMETRY.registry
    registry.counter("specialize.runs").inc()

    total = len(records)
    stream = TraceStream(records, window=model.config.wrong_path_window)
    profile_n = min(max(profile_branches, 1), total)
    model.run_stream(stream, limit=profile_n)

    info: dict[str, object] = {
        "engine": "generic",
        "version": SPECIALIZE_VERSION,
        "total_branches": total,
        "profiled_branches": profile_n,
        "specialized_branches": 0,
        "checkpoints": 0,
        "guards_failed": 0,
        "aborts": 0,
        "aborted": False,
        "guard": None,
    }

    if stream.exhausted:
        info["reason"] = "trace shorter than profile prefix"
        return model.finalize(), info

    decision, reason = plan_specialization(model, records, profile_n)
    if decision is None:
        info["reason"] = reason
        model.run_stream(stream)
        return model.finalize(), info

    engine = load_engine(decision, config_hash, cache_dir=engine_cache_dir)
    info["engine"] = "specialized"
    info["template"] = decision.template
    info["engine_key"] = engine.key
    step = engine.step
    interval = max(checkpoint_interval, 1)

    pos = profile_n
    committed = profile_n  # last checkpointed position
    snapshot = _take_checkpoint(model, stream)
    checkpoints = 1
    registry.counter("specialize.checkpoints").inc()

    while pos < total:
        stop = min(total, pos + interval)
        # A forced abort below the profile prefix (0 is valid) trips at
        # the start of the first span: the whole run replays generic.
        forced = force_abort_at is not None and force_abort_at < stop
        try:
            pos = step(
                model, stream, pos, max(pos, force_abort_at) if forced else stop
            )
            if forced:
                raise GuardTripped("forced")
        except GuardTripped as trip:
            registry.counter("specialize.guards_failed").inc()
            registry.counter("specialize.aborts").inc()
            _restore_checkpoint(model, stream, snapshot)
            model.run_stream(stream)
            info["guards_failed"] = 1
            info["aborts"] = 1
            info["aborted"] = True
            info["guard"] = trip.guard
            info["checkpoints"] = checkpoints
            info["specialized_branches"] = committed - profile_n
            return model.finalize(), info
        if pos < total:
            snapshot = _take_checkpoint(model, stream)
            committed = pos
            checkpoints += 1
            registry.counter("specialize.checkpoints").inc()

    info["checkpoints"] = checkpoints
    info["specialized_branches"] = total - profile_n
    return model.finalize(), info
