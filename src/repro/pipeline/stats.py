"""Simulation statistics: the numbers every figure is built from."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

__all__ = ["SimStats"]


@dataclass(slots=True)
class SimStats:
    """Counters produced by one pipeline run."""

    instructions: int = 0
    cycles: int = 0
    branches: int = 0
    cond_branches: int = 0
    taken_branches: int = 0
    mispredictions: int = 0
    #: Baseline-only mispredictions (what TAGE alone would have done on
    #: the same stream) — used for override bookkeeping, not MPKI.
    base_wrong: int = 0
    btb_misses: int = 0
    early_resteers: int = 0
    wrong_path_branches: int = 0
    wrong_path_mispredicts: int = 0
    rob_stall_cycles: int = 0
    #: Extra metadata attached by the harness (unit stats, repair stats,
    #: memory stats, storage breakdown ...).
    extra: dict[str, Any] = field(default_factory=dict)

    @property
    def ipc(self) -> float:
        """Retired instructions per cycle."""
        return self.instructions / self.cycles if self.cycles else 0.0

    @property
    def mpki(self) -> float:
        """Mispredictions per kilo-instruction (conditional, correct path)."""
        if self.instructions == 0:
            return 0.0
        return self.mispredictions * 1000.0 / self.instructions

    @property
    def branch_accuracy(self) -> float:
        if self.cond_branches == 0:
            return 1.0
        return 1.0 - self.mispredictions / self.cond_branches

    def as_dict(self) -> dict[str, Any]:
        """Flat dictionary for reports and persistence."""
        return {
            "instructions": self.instructions,
            "cycles": self.cycles,
            "branches": self.branches,
            "cond_branches": self.cond_branches,
            "taken_branches": self.taken_branches,
            "mispredictions": self.mispredictions,
            "btb_misses": self.btb_misses,
            "early_resteers": self.early_resteers,
            "wrong_path_branches": self.wrong_path_branches,
            "wrong_path_mispredicts": self.wrong_path_mispredicts,
            "ipc": self.ipc,
            "mpki": self.mpki,
            "branch_accuracy": self.branch_accuracy,
            **self.extra,
        }
