"""Out-of-order pipeline substrate (Skylake-like core model, Table 2)."""

from repro.pipeline.btb import BranchTargetBuffer
from repro.pipeline.config import PipelineConfig
from repro.pipeline.core import PipelineModel
from repro.pipeline.stats import SimStats

__all__ = ["PipelineConfig", "PipelineModel", "SimStats", "BranchTargetBuffer"]
