"""Unit tests for the cache hierarchy and prefetchers."""

from repro.memory.cache import Cache, CacheConfig
from repro.memory.hierarchy import CacheHierarchy, HierarchyConfig
from repro.memory.prefetch import NextLinePrefetcher


class TestPrefetcher:
    def test_fills_sequential_lines(self):
        cache = Cache(CacheConfig("t", 4096, 64, 4, 3))
        prefetcher = NextLinePrefetcher(cache, degree=2)
        prefetcher.on_miss(0x1000)
        assert cache.probe(0x1040)
        assert cache.probe(0x1080)
        assert not cache.probe(0x10C0)
        assert prefetcher.issued == 2

    def test_zero_degree(self):
        cache = Cache(CacheConfig("t", 4096, 64, 4, 3))
        prefetcher = NextLinePrefetcher(cache, degree=0)
        prefetcher.on_miss(0x1000)
        assert prefetcher.issued == 0


class TestHierarchy:
    def test_latency_tiers(self):
        hierarchy = CacheHierarchy()
        config = hierarchy.config
        cold = hierarchy.load_latency(0x100000)
        assert cold == (
            config.l1.latency
            + config.l2.latency
            + config.llc.latency
            + config.dram_latency
        )
        warm = hierarchy.load_latency(0x100000)
        assert warm == config.l1.latency

    def test_l2_hit_latency(self):
        hierarchy = CacheHierarchy()
        hierarchy.load_latency(0x200000)  # install everywhere
        hierarchy.l1.invalidate_line(0x200000 >> 6)
        latency = hierarchy.load_latency(0x200000)
        assert latency == hierarchy.config.l1.latency + hierarchy.config.l2.latency

    def test_streaming_benefits_from_prefetch(self):
        hierarchy = CacheHierarchy()
        latencies = [hierarchy.load_latency(0x300000 + 64 * i) for i in range(32)]
        l1_hits = sum(1 for lat in latencies if lat == hierarchy.config.l1.latency)
        # Next-line prefetch (degree 4) turns most stream accesses into
        # L1 hits after the first touch.
        assert l1_hits >= len(latencies) * 0.5

    def test_dram_counted(self):
        hierarchy = CacheHierarchy()
        hierarchy.load_latency(0x400000)
        assert hierarchy.dram_accesses == 1

    def test_stats_keys(self):
        hierarchy = CacheHierarchy()
        hierarchy.load_latency(0x500000)
        stats = hierarchy.stats()
        for key in ("l1_accesses", "l1_miss_rate", "l2_miss_rate", "dram_accesses"):
            assert key in stats

    def test_skylake_preset_matches_table2(self):
        config = HierarchyConfig.skylake()
        assert config.l1.size_bytes == 32 * 1024
        assert config.l2.size_bytes == 256 * 1024
        assert config.llc.size_bytes == 8 * 1024 * 1024
        assert config.l1.latency == 5
        assert config.l2.latency == 15
        assert config.llc.latency == 40
