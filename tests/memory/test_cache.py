"""Unit tests for the set-associative cache model."""

import pytest

from repro.errors import ConfigError
from repro.memory.cache import Cache, CacheConfig


def small_cache(size=1024, line=64, ways=2, latency=3):
    return Cache(CacheConfig("test", size, line, ways, latency))


class TestConfig:
    def test_sets_computed(self):
        config = CacheConfig("L1", 32 * 1024, 64, 8, 5)
        assert config.sets == 64

    def test_validation(self):
        with pytest.raises(ConfigError):
            CacheConfig("bad", 0, 64, 8, 5)
        with pytest.raises(ConfigError):
            CacheConfig("bad", 1000, 64, 8, 5)  # not divisible
        with pytest.raises(ConfigError):
            CacheConfig("bad", 1024, 60, 2, 5)  # non-power-of-2 line
        with pytest.raises(ConfigError):
            CacheConfig("bad", 1024, 64, 2, 0)  # zero latency


class TestAccess:
    def test_miss_then_hit(self):
        cache = small_cache()
        assert not cache.access(0x1000).hit
        assert cache.access(0x1000).hit
        assert cache.hits == 1 and cache.misses == 1

    def test_same_line_hits(self):
        cache = small_cache(line=64)
        cache.access(0x1000)
        assert cache.access(0x1030).hit  # same 64B line

    def test_lru_eviction(self):
        cache = small_cache(size=256, line=64, ways=2)  # 2 sets
        # Three lines mapping to one set (stride = sets * line = 128).
        a, b, c = 0x0, 0x100, 0x200
        cache.access(a)
        cache.access(b)
        cache.access(a)  # a more recent than b
        result = cache.access(c)
        assert result.evicted_line == b >> 6
        assert cache.access(a).hit
        assert not cache.access(b).hit

    def test_probe_does_not_disturb(self):
        cache = small_cache()
        cache.access(0x1000)
        hits, misses = cache.hits, cache.misses
        assert cache.probe(0x1000)
        assert not cache.probe(0x2000)
        assert (cache.hits, cache.misses) == (hits, misses)

    def test_fill_counts_no_access(self):
        cache = small_cache()
        cache.fill(0x1000)
        assert cache.accesses == 0
        assert cache.access(0x1000).hit

    def test_invalidate_line(self):
        cache = small_cache()
        cache.access(0x1000)
        cache.invalidate_line(0x1000 >> 6)
        assert not cache.probe(0x1000)

    def test_miss_rate(self):
        cache = small_cache()
        cache.access(0x1000)
        cache.access(0x1000)
        assert cache.miss_rate == 0.5
        assert small_cache().miss_rate == 0.0
