"""Unit tests for metrics: basic arithmetic, aggregation, S-curves."""

import math

import pytest

from repro.errors import MetricsError
from repro.metrics.aggregate import WorkloadResult, overall, summarize
from repro.metrics.basic import (
    geomean,
    geomean_gain,
    ipc_gain,
    mpki_reduction,
    normalized_gain,
)
from repro.metrics.scurve import scurve


def result(workload="w", category="c", base_mpki=10.0, mpki=7.0, base_ipc=1.0, ipc=1.03):
    return WorkloadResult(
        workload=workload,
        category=category,
        baseline_mpki=base_mpki,
        system_mpki=mpki,
        baseline_ipc=base_ipc,
        system_ipc=ipc,
    )


class TestBasic:
    def test_mpki_reduction(self):
        assert mpki_reduction(10.0, 7.0) == pytest.approx(0.3)
        assert mpki_reduction(10.0, 12.0) == pytest.approx(-0.2)
        assert mpki_reduction(0.0, 5.0) == 0.0

    def test_ipc_gain(self):
        assert ipc_gain(1.0, 1.05) == pytest.approx(0.05)
        assert ipc_gain(2.0, 1.9) == pytest.approx(-0.05)
        assert ipc_gain(0.0, 1.0) == 0.0

    def test_normalized_gain(self):
        assert normalized_gain(0.03, 0.038) == pytest.approx(0.789, abs=1e-3)
        assert normalized_gain(0.03, 0.0) == 0.0
        assert normalized_gain(0.03, -0.01) == 0.0

    def test_geomean(self):
        assert geomean([2.0, 8.0]) == pytest.approx(4.0)
        assert geomean([]) == 0.0
        with pytest.raises(MetricsError):
            geomean([1.0, 0.0])

    def test_geomean_gain(self):
        value = geomean_gain([0.05, 0.02])
        assert value == pytest.approx(math.sqrt(1.05 * 1.02) - 1.0)
        assert geomean_gain([]) == 0.0
        with pytest.raises(MetricsError):
            geomean_gain([-1.5])


class TestAggregate:
    def test_workload_result_properties(self):
        r = result()
        assert r.mpki_reduction == pytest.approx(0.3)
        assert r.ipc_gain == pytest.approx(0.03)

    def test_summarize_groups_by_category(self):
        results = [
            result(workload="a", category="hpc"),
            result(workload="b", category="hpc"),
            result(workload="c", category="mm"),
        ]
        grouped = summarize(results)
        assert set(grouped) == {"hpc", "mm"}
        assert grouped["hpc"].count == 2

    def test_category_means(self):
        results = [
            result(workload="a", mpki=8.0, ipc=1.02),
            result(workload="b", mpki=6.0, ipc=1.04),
        ]
        summary = overall(results)
        assert summary.mean_mpki_reduction == pytest.approx(0.3)
        assert summary.mean_ipc_gain == pytest.approx(
            math.sqrt(1.02 * 1.04) - 1.0
        )

    def test_empty_summary(self):
        summary = overall([])
        assert summary.mean_mpki_reduction == 0.0
        assert summary.mean_ipc_gain == 0.0


class TestScurve:
    def test_sorted_ascending(self):
        results = [
            result(workload="slow", ipc=0.98),
            result(workload="fast", ipc=1.2),
            result(workload="mid", ipc=1.05),
        ]
        curve = scurve(results)
        assert [p.workload for p in curve] == ["slow", "mid", "fast"]
        assert [p.rank for p in curve] == [0, 1, 2]
        assert curve[0].ipc_gain < 0 < curve[-1].ipc_gain

    def test_empty(self):
        assert scurve([]) == []
