"""Unit tests for run manifests and content hashes."""

import os
import subprocess
import sys
from pathlib import Path

import repro
from repro.harness.systems import TABLE3_SYSTEMS
from repro.pipeline.config import PipelineConfig
from repro.telemetry.manifest import RunManifest, build_manifest, stable_hash
from repro.workloads.suite import get_workload

_SYSTEM = TABLE3_SYSTEMS[0]

_HASH_SCRIPT = """\
from repro.harness.systems import TABLE3_SYSTEMS
from repro.pipeline.config import PipelineConfig
from repro.telemetry.manifest import build_manifest
from repro.workloads.suite import get_workload

m = build_manifest(
    get_workload("hpc-fft"), TABLE3_SYSTEMS[0], 5000, PipelineConfig()
)
print(m.config_hash, m.workload_hash)
"""


def _manifest(branches: int = 5000) -> RunManifest:
    return build_manifest(
        get_workload("hpc-fft"), _SYSTEM, branches, PipelineConfig()
    )


class TestStableHash:
    def test_insensitive_to_key_order(self):
        assert stable_hash({"a": 1, "b": 2}) == stable_hash({"b": 2, "a": 1})

    def test_sensitive_to_values(self):
        assert stable_hash({"a": 1}) != stable_hash({"a": 2})

    def test_short_hex(self):
        h = stable_hash({"x": 1})
        assert len(h) == 16
        int(h, 16)  # valid hex


class TestManifest:
    def test_identity_fields(self):
        m = _manifest()
        assert m.workload == "hpc-fft"
        assert m.system == _SYSTEM.name
        assert m.branches == 5000
        assert m.repro_version
        assert m.python
        assert m.manifest_version == 1
        assert m.wall_s is None  # stamped by the runner, not here

    def test_same_inputs_same_hashes(self):
        a, b = _manifest(), _manifest()
        assert a.config_hash == b.config_hash
        assert a.workload_hash == b.workload_hash

    def test_workload_hash_tracks_branch_count(self):
        assert _manifest(5000).workload_hash != _manifest(6000).workload_hash

    def test_config_hash_tracks_system(self):
        other = build_manifest(
            get_workload("hpc-fft"), TABLE3_SYSTEMS[1], 5000, PipelineConfig()
        )
        assert other.config_hash != _manifest().config_hash

    def test_env_capture_only_repro_vars(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "smoke")
        monkeypatch.setenv("UNRELATED_VAR", "nope")
        env = _manifest().env
        assert env.get("REPRO_SCALE") == "smoke"
        assert "UNRELATED_VAR" not in env

    def test_dict_round_trip(self):
        m = _manifest()
        assert RunManifest.from_dict(m.as_dict()) == m

    def test_from_dict_ignores_unknown_keys(self):
        payload = _manifest().as_dict()
        payload["future_field"] = "whatever"
        assert RunManifest.from_dict(payload).workload == "hpc-fft"

    def test_hashes_stable_across_processes(self):
        """The hashes must not depend on PYTHONHASHSEED or process state."""
        m = _manifest()
        outputs = []
        for seed in ("1", "2"):
            env = dict(os.environ, PYTHONHASHSEED=seed)
            src_dir = str(Path(repro.__file__).resolve().parents[1])
            env["PYTHONPATH"] = os.pathsep.join(
                p for p in (env.get("PYTHONPATH"), src_dir) if p
            )
            proc = subprocess.run(
                [sys.executable, "-c", _HASH_SCRIPT],
                capture_output=True,
                text=True,
                env=env,
                check=True,
            )
            outputs.append(proc.stdout.split())
        assert outputs[0] == outputs[1] == [m.config_hash, m.workload_hash]
