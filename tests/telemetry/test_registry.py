"""Unit tests for the metrics registry and exporters."""

import json

import pytest

from repro.errors import TelemetryError
from repro.telemetry.export import json_summary, prometheus_text
from repro.telemetry.registry import (
    Histogram,
    MetricsRegistry,
    NullRegistry,
    Timer,
)


class TestCounter:
    def test_get_or_create_and_increment(self):
        reg = MetricsRegistry()
        reg.counter("a.b").inc()
        reg.counter("a.b").inc(4)
        assert reg.counter("a.b").value == 5
        assert len(reg) == 1

    def test_distinct_names_are_distinct(self):
        reg = MetricsRegistry()
        reg.counter("x").inc()
        assert reg.counter("y").value == 0


class TestGauge:
    def test_last_write_wins(self):
        reg = MetricsRegistry()
        reg.gauge("occ").set(3.0)
        reg.gauge("occ").set(7.5)
        assert reg.gauge("occ").value == 7.5


class TestHistogram:
    def test_bucketing_at_boundaries(self):
        h = Histogram("h", bounds=(1, 4, 16))
        for v in (0, 1, 2, 4, 5, 16, 17, 1000):
            h.observe(v)
        # v <= bound lands in that bucket; past the last bound overflows.
        assert h.counts == [2, 2, 2, 2]
        assert h.count == 8
        assert h.max == 1000
        assert h.sum == 1045
        assert h.mean == pytest.approx(1045 / 8)

    def test_bucket_pairs_label_overflow(self):
        h = Histogram("h", bounds=(2, 8))
        h.observe(100)
        assert h.bucket_pairs() == [("2", 0), ("8", 0), ("+Inf", 1)]

    def test_unsorted_bounds_rejected(self):
        with pytest.raises(TelemetryError, match="ascending"):
            Histogram("h", bounds=(4, 1))

    def test_empty_bounds_rejected(self):
        with pytest.raises(TelemetryError):
            Histogram("h", bounds=())


class TestTimer:
    def test_observe_accumulates(self):
        t = Timer("t")
        t.observe(0.25)
        t.observe(0.75)
        assert t.sum == 1.0
        assert t.count == 2
        assert t.max == 0.75
        assert t.mean == 0.5

    def test_context_manager_records_once(self):
        t = Timer("t")
        with t:
            pass
        assert t.count == 1
        assert t.sum >= 0.0


class TestRegistrySemantics:
    def test_type_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("metric")
        with pytest.raises(TelemetryError, match="already registered"):
            reg.gauge("metric")

    def test_reset_forgets_everything(self):
        reg = MetricsRegistry()
        reg.counter("a").inc(10)
        reg.reset()
        assert len(reg) == 0
        assert reg.counter("a").value == 0

    def test_snapshot_shape(self):
        reg = MetricsRegistry()
        reg.counter("c").inc(2)
        reg.gauge("g").set(1.5)
        reg.histogram("h", bounds=(1, 2)).observe(2)
        reg.timer("t").observe(0.1)
        snap = reg.snapshot()
        assert snap["counters"] == {"c": 2}
        assert snap["gauges"] == {"g": 1.5}
        assert snap["histograms"]["h"]["counts"] == [0, 1, 0]
        assert snap["timers"]["t"]["count"] == 1

    def test_snapshot_is_json_serializable(self):
        reg = MetricsRegistry()
        reg.histogram("h").observe(3)
        json.dumps(reg.snapshot())


class TestNullRegistry:
    def test_instruments_are_shared_noops(self):
        reg = NullRegistry()
        c = reg.counter("anything")
        assert c is reg.counter("else")
        c.inc(100)
        assert c.value == 0
        reg.gauge("g").set(5)
        assert reg.gauge("g").value == 0.0
        reg.histogram("h").observe(7)
        assert reg.histogram("h").count == 0
        with reg.timer("t"):
            pass
        assert reg.timer("t").count == 0

    def test_snapshot_is_empty(self):
        reg = NullRegistry()
        reg.counter("a").inc()
        snap = reg.snapshot()
        assert snap["counters"] == {}
        assert snap["histograms"] == {}


class TestExporters:
    def _registry(self):
        reg = MetricsRegistry()
        reg.counter("pipeline.fetch_cycles").inc(10)
        reg.gauge("obq.level").set(3.0)
        h = reg.histogram("repair.walk_entries", bounds=(1, 4))
        for v in (1, 2, 9):
            h.observe(v)
        reg.timer("run.wall").observe(0.5)
        return reg

    def test_json_summary_round_trips(self):
        payload = json.loads(json_summary(self._registry()))
        assert payload["counters"]["pipeline.fetch_cycles"] == 10

    def test_json_summary_accepts_snapshot_dict(self):
        snap = self._registry().snapshot()
        assert json.loads(json_summary(snap)) == snap

    def test_prometheus_counters_and_gauges(self):
        text = prometheus_text(self._registry())
        assert "# TYPE repro_pipeline_fetch_cycles counter" in text
        assert "repro_pipeline_fetch_cycles_total 10" in text
        assert "repro_obq_level 3.0" in text

    def test_prometheus_histogram_buckets_are_cumulative(self):
        text = prometheus_text(self._registry())
        assert 'repro_repair_walk_entries_bucket{le="1"} 1' in text
        assert 'repro_repair_walk_entries_bucket{le="4"} 2' in text
        assert 'repro_repair_walk_entries_bucket{le="+Inf"} 3' in text
        assert "repro_repair_walk_entries_count 3" in text

    def test_prometheus_timer_summary(self):
        text = prometheus_text(self._registry())
        assert "repro_run_wall_seconds_sum 0.5" in text
        assert "repro_run_wall_seconds_count 1" in text

    def test_empty_registry_exports_empty(self):
        assert prometheus_text(MetricsRegistry()) == ""
