"""Unit tests for the JSONL event sink and trace reader."""

import json

import pytest

from repro.errors import TelemetryError
from repro.telemetry.events import (
    RepairWalkEvent,
    RetireEvent,
    RunEndEvent,
    event_from_dict,
)
from repro.telemetry.sink import JsonlSink, read_events


def retire(cycle: int) -> RetireEvent:
    return RetireEvent(cycle=cycle, pc=0x1000)


def run_end() -> RunEndEvent:
    return RunEndEvent(
        cycles=10,
        instructions=20,
        mispredictions=1,
        ipc=2.0,
        mpki=50.0,
        wall_s=0.1,
        metrics={},
    )


class TestJsonlSink:
    def test_write_and_read_round_trip(self, tmp_path):
        path = tmp_path / "t.jsonl"
        with JsonlSink(path) as sink:
            sink.emit(retire(1))
            sink.emit(
                RepairWalkEvent(cycle=2, scheme="fw", entries=3, writes=2, busy=5)
            )
        events = list(read_events(path))
        assert [e["ev"] for e in events] == ["retire", "repair"]
        assert events[1]["scheme"] == "fw"
        assert sink.emitted == 2
        assert not sink.broken

    def test_buffering_defers_writes_until_flush(self, tmp_path):
        path = tmp_path / "t.jsonl"
        sink = JsonlSink(path, buffer_size=100)
        for c in range(5):
            sink.emit(retire(c))
        assert path.read_text() == ""  # still buffered
        sink.flush()
        assert len(path.read_text().splitlines()) == 5
        sink.close()

    def test_buffer_full_triggers_write(self, tmp_path):
        path = tmp_path / "t.jsonl"
        sink = JsonlSink(path, buffer_size=3)
        for c in range(3):
            sink.emit(retire(c))
        assert len(path.read_text().splitlines()) == 3
        sink.close()

    def test_max_events_truncates_but_keeps_run_end(self, tmp_path):
        path = tmp_path / "t.jsonl"
        with JsonlSink(path, buffer_size=1, max_events=2) as sink:
            for c in range(10):
                sink.emit(retire(c))
            sink.emit(run_end())
        assert sink.emitted == 3  # 2 retires + the exempt run_end
        assert sink.truncated == 8
        tags = [e["ev"] for e in read_events(path)]
        assert tags == ["retire", "retire", "run_end"]

    def test_write_error_marks_broken_not_raises(self, tmp_path):
        path = tmp_path / "t.jsonl"
        sink = JsonlSink(path, buffer_size=1)
        sink.emit(retire(0))
        # Yank the file out from under the sink: next write must not raise.
        sink._file.close()
        sink.emit(retire(1))
        assert sink.broken
        assert sink.error is not None
        assert sink.dropped == 1
        assert sink.emitted == 1  # the first event landed before the break
        # Further emits keep counting drops without raising.
        sink.emit(retire(2))
        assert sink.dropped == 2
        sink.close()

    def test_emit_after_close_is_dropped(self, tmp_path):
        sink = JsonlSink(tmp_path / "t.jsonl")
        sink.close()
        sink.emit(retire(0))
        assert sink.dropped == 1

    def test_bad_buffer_size_rejected(self, tmp_path):
        with pytest.raises(TelemetryError, match="buffer_size"):
            JsonlSink(tmp_path / "t.jsonl", buffer_size=0)

    def test_creates_parent_dirs(self, tmp_path):
        path = tmp_path / "deep" / "nested" / "t.jsonl"
        with JsonlSink(path) as sink:
            sink.emit(retire(0))
        assert path.exists()


class TestReadEvents:
    def test_truncated_tail_is_tolerated(self, tmp_path):
        path = tmp_path / "t.jsonl"
        good = json.dumps(retire(1).as_dict())
        path.write_text(good + "\n" + good[: len(good) // 2])
        events = list(read_events(path))
        assert len(events) == 1  # the readable prefix

    def test_mid_file_corruption_raises(self, tmp_path):
        path = tmp_path / "t.jsonl"
        good = json.dumps(retire(1).as_dict())
        path.write_text("{broken\n" + good + "\n")
        with pytest.raises(TelemetryError, match="corrupt"):
            list(read_events(path))

    def test_non_object_line_raises(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text("[1,2,3]\n" + json.dumps(retire(1).as_dict()) + "\n")
        with pytest.raises(TelemetryError, match="not an object"):
            list(read_events(path))

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(TelemetryError, match="cannot read"):
            list(read_events(tmp_path / "nope.jsonl"))

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "t.jsonl"
        good = json.dumps(retire(1).as_dict())
        path.write_text(good + "\n\n" + good + "\n")
        assert len(list(read_events(path))) == 2


class TestEventSchema:
    def test_as_dict_carries_tag(self):
        payload = retire(7).as_dict()
        assert payload["ev"] == "retire"
        assert payload["cycle"] == 7

    def test_event_from_dict_round_trips(self):
        original = RepairWalkEvent(
            cycle=9, scheme="backward", entries=4, writes=3, busy=12
        )
        rebuilt = event_from_dict(json.loads(json.dumps(original.as_dict())))
        assert rebuilt == original

    def test_unknown_tag_raises(self):
        with pytest.raises(TelemetryError, match="unknown"):
            event_from_dict({"ev": "mystery"})

    def test_malformed_payload_raises(self):
        with pytest.raises(TelemetryError, match="malformed"):
            event_from_dict({"ev": "retire", "cycle": 1})  # pc missing
