"""No-op guarantees and the end-to-end trace pipeline.

The acceptance bar for the subsystem: with telemetry disabled (the
default), simulation outputs are bit-identical to an uninstrumented
run; with a sink attached, ``run --telemetry`` traces summarize back
into the same headline numbers.
"""

import pytest

from repro.harness.runner import run_single
from repro.harness.systems import TABLE3_SYSTEMS
from repro.telemetry import (
    TELEMETRY,
    JsonlSink,
    MetricsRegistry,
    NullRegistry,
    telemetry_enabled_by_env,
)
from repro.telemetry.summary import summarize_trace

_SYSTEM = next(cfg for cfg in TABLE3_SYSTEMS if cfg.name == "forward-walk-coalesce")
_BRANCHES = 2500


@pytest.fixture
def restore_telemetry():
    """Snapshot and restore the global handle around a test."""
    was_enabled = TELEMETRY.enabled
    yield TELEMETRY
    TELEMETRY.detach_sink()
    if was_enabled:
        TELEMETRY.enable()
    else:
        TELEMETRY.disable()


class TestEnablement:
    def test_env_parsing(self, monkeypatch):
        for value in ("off", "0", "false", "none", "OFF", ""):
            monkeypatch.setenv("REPRO_TELEMETRY", value)
            assert not telemetry_enabled_by_env()
        monkeypatch.delenv("REPRO_TELEMETRY")
        assert not telemetry_enabled_by_env()  # off by default
        for value in ("on", "1", "metrics"):
            monkeypatch.setenv("REPRO_TELEMETRY", value)
            assert telemetry_enabled_by_env()

    def test_enable_disable_swap_registry(self, restore_telemetry):
        tel = restore_telemetry
        tel.disable()
        assert type(tel.registry) is NullRegistry
        assert not tel.tracing
        tel.enable()
        assert type(tel.registry) is MetricsRegistry

    def test_attach_sink_implies_enable(self, restore_telemetry, tmp_path):
        tel = restore_telemetry
        tel.disable()
        sink = JsonlSink(tmp_path / "t.jsonl")
        tel.attach_sink(sink)
        assert tel.enabled and tel.tracing
        assert tel.detach_sink() is sink
        assert not tel.tracing
        sink.close()


class TestNoOpFidelity:
    def test_disabled_and_enabled_runs_identical(
        self, tiny_spec, restore_telemetry
    ):
        tel = restore_telemetry
        tel.disable()
        off = run_single(tiny_spec, _SYSTEM, _BRANCHES)
        tel.enable()
        on = run_single(tiny_spec, _SYSTEM, _BRANCHES)
        assert (on.ipc, on.mpki, on.cycles, on.mispredictions) == (
            off.ipc,
            off.mpki,
            off.cycles,
            off.mispredictions,
        )
        assert on.extra == off.extra

    def test_disabled_run_collects_nothing(self, tiny_spec, restore_telemetry):
        tel = restore_telemetry
        tel.disable()
        run_single(tiny_spec, _SYSTEM, _BRANCHES)
        assert tel.registry.snapshot()["counters"] == {}

    def test_manifest_attached_either_way(self, tiny_spec, restore_telemetry):
        restore_telemetry.disable()
        result = run_single(tiny_spec, _SYSTEM, _BRANCHES)
        assert result.manifest is not None
        assert result.manifest["workload"] == tiny_spec.name
        assert result.manifest["wall_s"] is not None


class TestEndToEndTrace:
    def test_trace_summarizes_back_to_run_stats(
        self, tiny_spec, restore_telemetry, tmp_path
    ):
        tel = restore_telemetry
        path = tmp_path / "run.jsonl"
        sink = JsonlSink(path)
        tel.attach_sink(sink)
        result = run_single(tiny_spec, _SYSTEM, _BRANCHES)
        tel.detach_sink()
        sink.close()
        assert not sink.broken

        summary = summarize_trace(path)
        assert not summary.truncated
        assert summary.event_counts["run_start"] == 1
        assert summary.event_counts["run_end"] == 1
        (run,) = summary.runs
        assert run["workload"] == tiny_spec.name
        assert run["system"] == _SYSTEM.name
        assert run["end"]["ipc"] == pytest.approx(result.ipc)
        assert run["end"]["mispredictions"] == result.mispredictions
        assert run["manifest"]["config_hash"] == result.manifest["config_hash"]
        # The forward-walk system repairs after mispredictions, so the
        # trace must carry repair walks and the summary must fold them.
        assert summary.event_counts.get("repair", 0) > 0
        assert summary.walk_entries.count == summary.event_counts["repair"]
        assert summary.metrics["counters"]["pipeline.episodes"] > 0
        rendered = summary.render()
        assert tiny_spec.name in rendered
        assert "repair walks" in rendered

    def test_metrics_reset_between_runs(
        self, tiny_spec, restore_telemetry, tmp_path
    ):
        tel = restore_telemetry
        path = tmp_path / "two.jsonl"
        sink = JsonlSink(path)
        tel.attach_sink(sink)
        run_single(tiny_spec, _SYSTEM, _BRANCHES)
        run_single(tiny_spec, _SYSTEM, _BRANCHES)
        tel.detach_sink()
        sink.close()
        summary = summarize_trace(path)
        assert len(summary.runs) == 2
        first, second = (r["end"]["metrics"]["counters"] for r in summary.runs)
        # Identical runs with a per-run registry reset report identical
        # counters; without the reset the second run would double them.
        assert first == second
