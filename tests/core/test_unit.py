"""Unit tests for the local branch unit (override policy, chooser,
blocked-update handling)."""

from repro.core.repair.no_repair import NoRepair
from repro.core.repair.perfect import PerfectRepair
from tests.core_repair.helpers import SchemeHarness


class TestOverridePolicy:
    def test_local_agreement_marks_used_without_override(self):
        harness = SchemeHarness(PerfectRepair())
        pc = 0x4000
        harness.train_loop(pc, trip=6, executions=8)
        branch = harness.fetch(pc, True, base_taken=True)  # both say taken
        assert branch.local_used
        assert harness.unit.stats.overrides == 0

    def test_differing_prediction_overrides(self):
        harness = SchemeHarness(PerfectRepair())
        pc = 0x4000
        harness.train_loop(pc, trip=6, executions=8)
        for _ in range(6):
            harness.resolve(harness.fetch(pc, True))
        branch = harness.fetch(pc, False, base_taken=True)
        assert branch.local_used
        assert branch.predicted_taken is False
        assert harness.unit.stats.overrides == 1

    def test_saves_and_damages_counted(self):
        harness = SchemeHarness(PerfectRepair())
        pc = 0x4000
        harness.train_loop(pc, trip=6, executions=8)
        for _ in range(6):
            harness.resolve(harness.fetch(pc, True))
        save = harness.fetch(pc, False, base_taken=True)
        harness.resolve(save)
        assert harness.unit.stats.saves == 1
        assert harness.unit.stats.damages == 0


class TestChooser:
    def test_chooser_disables_losing_overrides(self):
        from repro.core.local_base import LocalPrediction

        harness = SchemeHarness(PerfectRepair())
        unit = harness.unit
        # Synthetic resolutions where the local prediction differs from
        # TAGE and loses, over and over.
        start = unit._chooser
        for _ in range(start + 1):
            branch = harness.fetch(0x4000, True, base_taken=True)
            branch.local_pred = LocalPrediction(pc=0x4000, taken=False)
            unit._train_chooser(branch)
        assert not unit.override_enabled
        # A losing streak never underflows.
        for _ in range(5):
            branch = harness.fetch(0x4000, True, base_taken=True)
            branch.local_pred = LocalPrediction(pc=0x4000, taken=False)
            unit._train_chooser(branch)
        assert unit._chooser == 0

    def test_chooser_recovers_from_virtual_wins(self):
        harness = SchemeHarness(PerfectRepair())
        unit = harness.unit
        unit._chooser = 0  # force disabled
        pc = 0x4000
        harness.train_loop(pc, trip=6, executions=10)
        # Correct differing predictions retrain the chooser even while
        # overrides are off.
        for _ in range(12):
            for _ in range(6):
                harness.resolve(harness.fetch(pc, True))
            harness.resolve(harness.fetch(pc, False, base_taken=True))
        assert unit.override_enabled

    def test_agreeing_predictions_do_not_train_chooser(self):
        harness = SchemeHarness(PerfectRepair())
        before = harness.unit._chooser
        pc = 0x4000
        harness.train_loop(pc, trip=6, executions=4)
        assert harness.unit._chooser == before


class TestBlockedUpdates:
    def test_blocked_update_invalidates_entry(self):
        scheme = NoRepair()
        harness = SchemeHarness(scheme)
        pc = 0x4000
        harness.train_loop(pc, trip=6, executions=4)
        scheme._busy_until = 10_000_000  # force a repair window
        branch = harness.fetch(pc, True)
        assert branch.spec is None
        assert not branch.checkpointed
        slot = harness.local.bht.find(pc)
        assert not harness.local.bht.is_valid(slot)
        assert harness.unit.stats.blocked_updates == 1
        assert harness.unit.stats.denied_busy == 1

    def test_wrong_path_branches_do_not_train(self):
        harness = SchemeHarness(PerfectRepair())
        pc = 0x4000
        wp = harness.fetch(pc, True, wrong_path=True)
        harness.resolve(wp)
        assert harness.local.pt.occupancy() == 0

    def test_unit_storage_combines_local_and_scheme(self):
        harness = SchemeHarness(PerfectRepair())
        assert harness.unit.storage_bits() == harness.local.storage_bits()
