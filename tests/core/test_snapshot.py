"""Unit tests for the snapshot queue."""

import pytest

from repro.core.bht import BhtConfig, BranchHistoryTable
from repro.core.snapshot import SnapshotQueue
from repro.errors import ConfigError


class TestSnapshotQueue:
    def test_capacity_validation(self):
        with pytest.raises(ConfigError):
            SnapshotQueue(capacity=0)

    def test_take_and_find(self):
        queue = SnapshotQueue(capacity=4)
        snap_id = queue.take(uid=3, payload="state")
        assert snap_id is not None
        snap = queue.find(snap_id)
        assert snap.uid == 3
        assert snap.payload == "state"

    def test_overflow(self):
        queue = SnapshotQueue(capacity=2)
        assert queue.take(0, "a") is not None
        assert queue.take(1, "b") is not None
        assert queue.take(2, "c") is None
        assert queue.overflows == 1
        assert queue.takes == 3

    def test_retire_drops_old(self):
        queue = SnapshotQueue(capacity=4)
        for uid in range(4):
            queue.take(uid, uid)
        assert queue.retire(1) == 2
        assert len(queue) == 2

    def test_flush_drops_young(self):
        queue = SnapshotQueue(capacity=4)
        ids = [queue.take(uid, uid) for uid in range(4)]
        assert queue.flush_younger(1) == 2
        assert queue.find(ids[0]) is not None
        assert queue.find(ids[3]) is None

    def test_take_bht_round_trip(self):
        queue = SnapshotQueue(capacity=4)
        bht = BranchHistoryTable(BhtConfig(entries=16, ways=4))
        bht.allocate(0x100, 5)
        snap_id = queue.take_bht(uid=0, bht=bht)
        bht.set_state(bht.find(0x100), 99)
        dirty = bht.restore_snapshot(queue.find(snap_id).payload)
        assert dirty == 1
        assert bht.state_at(bht.find(0x100)) == 5

    def test_take_bht_overflow_counted(self):
        queue = SnapshotQueue(capacity=1)
        bht = BranchHistoryTable(BhtConfig(entries=16, ways=4))
        assert queue.take_bht(0, bht) is not None
        assert queue.take_bht(1, bht) is None
        assert queue.overflows == 1

    def test_storage(self):
        queue = SnapshotQueue(capacity=32)
        assert queue.storage_bits(bits_per_snapshot=100) == 3200
