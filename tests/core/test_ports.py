"""Unit tests for repair port configuration and timing."""

import pytest

from repro.core.ports import RepairPortConfig, repair_duration
from repro.errors import ConfigError


class TestRepairPortConfig:
    def test_label(self):
        assert RepairPortConfig(32, 4, 2).label == "32-4-2"

    def test_parse_round_trip(self):
        for label in ("32-4-2", "64-64-64", "16-4-4"):
            assert RepairPortConfig.parse(label).label == label

    def test_parse_rejects_garbage(self):
        for bad in ("32-4", "a-b-c", "32-4-2-1", ""):
            with pytest.raises(ConfigError):
                RepairPortConfig.parse(bad)

    def test_validation(self):
        with pytest.raises(ConfigError):
            RepairPortConfig(0, 4, 4)
        with pytest.raises(ConfigError):
            RepairPortConfig(32, 0, 4)
        with pytest.raises(ConfigError):
            RepairPortConfig(32, 4, 0)


class TestRepairDuration:
    def test_zero_work_is_free(self):
        assert repair_duration(0, 0, 4, 4) == 0

    def test_single_write_is_one_cycle(self):
        assert repair_duration(0, 1, 4, 4) == 1

    def test_bandwidth_bound_on_writes(self):
        assert repair_duration(4, 8, 4, 2) == 4

    def test_bandwidth_bound_on_reads(self):
        assert repair_duration(16, 4, 4, 4) == 4

    def test_max_of_both_sides(self):
        # The paper's average case: ~5 repairs with 4 ports = 2 cycles.
        assert repair_duration(5, 5, 4, 4) == 2

    def test_exact_division(self):
        assert repair_duration(8, 8, 4, 4) == 2
